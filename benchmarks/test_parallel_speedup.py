"""Parallel-exploration benchmark: persistent pool vs the serial loop.

Scales the branchy workload of ``test_solver_incremental`` up to 12
input bytes (4096 feasible paths) and explores it twice: the classic
in-process loop (``workers=1``) and the sharded coordinator over the
persistent worker pool (``workers=4`` by default).  Asserts the
properties that must hold on any machine — the two runs explore the
*identical* path set, cross-worker model-cache merging produces real
reuse (merged-delta hits > 0), and the Program image ships to the pool
exactly once across all parallel runs in this process — and asserts
the ≥2× wall-clock speedup only when the host actually has the cores
to show it (single-core CI runners measure pure IPC overhead; the CI
smoke job pins assertions to path sets and counter ratios for exactly
that reason).

A second, *traced* parallel run feeds :func:`phase_totals`, so the
bench file reports where the parallel wall-clock goes — snapshot
ship/decode/encode, delta merge, coordinator-side merge — next to the
headline ratio.  ``test_classification_suffix_ratio`` runs the
deep-traced workload (interpreter-startup-shaped trace prefix) through
the full Chef pipeline and gates the O(since-restore-suffix) pending
classification: tree steps must undercut full-trace replay ≥10×.

Counters and timings are emitted to ``BENCH_pr10.json`` at the repo root
(schema in ``docs/architecture.md``) so the perf trajectory is tracked
per PR.  The stat dicts in the payload are prefix views of the obs
metrics registry — the same numbers ``Session.metrics()`` reports —
and wall-clock ratios go through :func:`speedup_summary`, which labels
sub-1× runs "overhead-bound" instead of calling them a speedup.
"""

import os

from repro.api.session import SymbolicSession
from repro.bench.perfjson import phase_totals, speedup_summary, update_bench_json
from repro.bench.reporting import render_table
from repro.bench.workloads import branchy_source, deep_traced_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.lowlevel.executor import ExecutorConfig, LowLevelEngine
from repro.obs.telemetry import Telemetry
from repro.parallel import ParallelExplorer, shared_worker_pool
from repro.solver.cache import ModelCache
from repro.solver.csp import CspSolver

#: 12 bytes = 4096 feasible paths (scaled down via env for CI smoke).
_BYTES = int(os.environ.get("REPRO_BENCH_PARALLEL_BYTES", "12"))
_WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))
_MAX_STATES = 1 << (_BYTES + 2)


def test_parallel_speedup(benchmark, report):
    compiled = compile_program(branchy_source(_BYTES))

    def run():
        serial_engine = LowLevelEngine(
            compiled.program,
            solver=CspSolver(cache=ModelCache()),
            config=ExecutorConfig(),
        )
        serial = serial_engine.explore(max_states=_MAX_STATES)
        explorer = ParallelExplorer(
            compiled.program,
            workers=_WORKERS,
            config=ExecutorConfig(),
            batch_size=64,
        )
        parallel = explorer.explore(max_states=_MAX_STATES)
        return serial, parallel

    serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)

    # One extra run with tracing on: the timed runs above stay span-free
    # (honest wall-clock), this one attributes the parallel time to
    # phases.  Same pool, same Program content — ship count must not
    # move.
    traced_explorer = ParallelExplorer(
        compiled.program,
        workers=_WORKERS,
        config=ExecutorConfig(),
        batch_size=64,
        telemetry=Telemetry(enabled=True),
    )
    traced = traced_explorer.explore(max_states=_MAX_STATES)
    coordinator_phases = phase_totals(traced_explorer.telemetry.registry.snapshot())
    worker_phases = phase_totals(traced_explorer.merged_metrics())
    pool = shared_worker_pool(_WORKERS)

    speedup = serial.wall_time / parallel.wall_time if parallel.wall_time else 0.0
    cpu_count = os.cpu_count() or 1
    merged_hits = parallel.cache_stats.get("merged_hits", 0)
    merged_stores = parallel.cache_stats.get("merged_stores", 0)
    summary = speedup_summary(serial.wall_time, {_WORKERS: parallel.wall_time})
    label = summary["runs"][0]["label"]

    rows = [
        ["paths (serial)", len(serial.records)],
        ["paths (parallel)", len(parallel.records)],
        ["path sets identical", serial.path_set() == parallel.path_set()],
        ["workers", parallel.workers],
        ["batches", parallel.batches],
        ["serial wall (s)", f"{serial.wall_time:.3f}"],
        ["parallel wall (s)", f"{parallel.wall_time:.3f}"],
        ["wall ratio", f"{speedup:.2f}x ({label})"],
        ["host cores", cpu_count],
        ["pool spawns / program ships", f"{pool.spawns} / {pool.program_ships}"],
        ["ship wall (s, traced run)",
         f"{coordinator_phases.get('parallel.ship', {}).get('total_s', 0.0):.3f}"],
        ["merge wall (s, traced run)",
         f"{coordinator_phases.get('parallel.merge', {}).get('total_s', 0.0):.3f}"],
        ["worker decode/encode (s)",
         f"{worker_phases.get('snapshot.decode', {}).get('total_s', 0.0):.3f}"
         f" / {worker_phases.get('snapshot.encode', {}).get('total_s', 0.0):.3f}"],
        ["merged-delta stores", merged_stores],
        ["merged-delta hits", merged_hits],
        ["serial solver queries", serial.solver_stats.get("queries", 0)],
        ["parallel solver queries", parallel.solver_stats.get("queries", 0)],
    ]
    report(
        f"Pooled parallel exploration on a {_BYTES}-byte branchy guest "
        f"({len(serial.records)} paths, {_WORKERS} workers)",
        render_table(["metric", "value"], rows),
    )

    update_bench_json(
        "parallel_speedup",
        {
            "workload": {"kind": "branchy", "bytes": _BYTES, "paths": len(serial.records)},
            "serial": {
                "wall_time_s": round(serial.wall_time, 4),
                "solver_stats": serial.solver_stats,
            },
            "parallel": {
                "workers": _WORKERS,
                "batches": parallel.batches,
                "wall_time_s": round(parallel.wall_time, 4),
                "solver_stats": parallel.solver_stats,
                "cache_stats": parallel.cache_stats,
                "coordinator_cache": parallel.coordinator_cache,
            },
            "pool": {
                "spawns": pool.spawns,
                "program_ships": pool.program_ships,
                "configures": pool.configures,
            },
            "phases_traced_run": {
                "coordinator": coordinator_phases,
                "workers": worker_phases,
            },
            "speedup_summary": summary,
            "path_sets_identical": serial.path_set() == parallel.path_set(),
        },
    )

    # Portable acceptance bar: identical exploration + real cross-worker
    # cache flow + ship-once pooling, regardless of host core count.
    assert len(serial.records) == 1 << _BYTES, len(serial.records)
    assert serial.path_set() == parallel.path_set()
    assert traced.path_set() == parallel.path_set()
    assert merged_stores > 0, parallel.cache_stats
    assert merged_hits > 0, parallel.cache_stats
    # Both parallel runs (timed + traced) leased the same warm pool and
    # shipped content-identical Program images: one spawn set, one ship.
    assert pool.spawns == _WORKERS, (pool.spawns, _WORKERS)
    assert pool.program_ships == 1, pool.program_ships
    assert pool.configures >= 2, pool.configures
    # The traced run recorded every phase it claims to attribute.
    for phase in ("parallel.ship", "parallel.merge"):
        assert coordinator_phases.get(phase, {}).get("count", 0) > 0, phase
    for phase in ("snapshot.decode", "snapshot.encode", "worker.merge_delta"):
        assert worker_phases.get(phase, {}).get("count", 0) > 0, phase
    # The wall-clock claim is ">=2x at 4 workers"; it needs hardware
    # that can actually run the workers concurrently (a 1-core container
    # measures pure IPC overhead) and at least the 4-worker fan-out (2
    # workers cap below 2x by construction).
    if _WORKERS >= 4 and cpu_count >= _WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup at {_WORKERS} workers on {cpu_count} cores, "
            f"got {speedup:.2f}x"
        )


def test_classification_suffix_ratio(report):
    """Chef pending classification is O(suffix): ≥10× under full replay.

    The deep-traced guest front-loads a 64-report HLPC prelude before
    the branch cascade — the interpreter-startup shape where every
    path's full trace is long but each since-restore suffix is short.
    ``coordinator.classify_full_trace`` accumulates what trace replay
    would walk per pending state; ``coordinator.classify_steps`` is
    what suffix grafting actually walked.
    """
    session = SymbolicSession.from_program(
        compile_program(deep_traced_source(_BYTES)).program,
        ChefConfig(time_budget=600.0, workers=_WORKERS),
    )
    result = session.run()
    metrics = session.metrics()
    steps = metrics["coordinator.classify_steps"]
    full = metrics["coordinator.classify_full_trace"]
    states = metrics["coordinator.classify_states"]
    ratio = full / steps if steps else 0.0

    rows = [
        ["paths", result.ll_paths],
        ["hl paths", result.hl_paths],
        ["states classified", states],
        ["suffix tree steps", steps],
        ["full-trace equivalent", full],
        ["reduction", f"{ratio:.1f}x"],
    ]
    report(
        f"O(suffix) pending classification on the {_BYTES}-byte deep-traced "
        f"guest ({_WORKERS} workers)",
        render_table(["metric", "value"], rows),
    )

    update_bench_json(
        "classification_suffix",
        {
            "workload": {
                "kind": "deep-traced",
                "bytes": _BYTES,
                "paths": result.ll_paths,
            },
            "workers": _WORKERS,
            "classify_states": states,
            "classify_steps": steps,
            "classify_full_trace": full,
            "reduction_ratio": round(ratio, 2),
            "ingest_steps": metrics.get("coordinator.ingest_steps", 0),
        },
    )

    assert result.ll_paths == 1 << _BYTES, result.ll_paths
    assert states > 0 and steps > 0
    assert ratio >= 10.0, (
        f"classification walked {steps} tree steps where full-trace replay "
        f"would walk {full} ({ratio:.1f}x); the PR gate is >=10x"
    )
