"""Parallel-exploration benchmark: sharded frontier vs the serial loop.

Scales the branchy workload of ``test_solver_incremental`` up to 12
input bytes (4096 feasible paths) and explores it twice: the classic
in-process loop (``workers=1``) and the sharded coordinator/worker pool
(``workers=4`` by default).  Asserts the properties that must hold on
any machine — the two runs explore the *identical* path set, and
cross-worker model-cache merging produces real reuse (merged-delta hits
> 0) — and asserts the ≥2× wall-clock speedup only when the host
actually has the cores to show it (single-core CI runners measure pure
IPC overhead; the CI smoke job pins assertions to path sets and query
counts for exactly that reason).

Counters and timings are emitted to ``BENCH_pr6.json`` at the repo root
(schema in ``docs/architecture.md``) so the perf trajectory is tracked
per PR.  The stat dicts in the payload are prefix views of the obs
metrics registry — the same numbers ``Session.metrics()`` reports —
and wall-clock ratios go through :func:`speedup_summary`, which labels
sub-1× runs "overhead-bound" instead of calling them a speedup.
"""

import os

from repro.bench.perfjson import speedup_summary, update_bench_json
from repro.bench.reporting import render_table
from repro.bench.workloads import branchy_source
from repro.clay import compile_program
from repro.lowlevel.executor import ExecutorConfig, LowLevelEngine
from repro.parallel import ParallelExplorer
from repro.solver.cache import ModelCache
from repro.solver.csp import CspSolver

#: 12 bytes = 4096 feasible paths (scaled down via env for CI smoke).
_BYTES = int(os.environ.get("REPRO_BENCH_PARALLEL_BYTES", "12"))
_WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))
_MAX_STATES = 1 << (_BYTES + 2)



def test_parallel_speedup(benchmark, report):
    compiled = compile_program(branchy_source(_BYTES))

    def run():
        serial_engine = LowLevelEngine(
            compiled.program,
            solver=CspSolver(cache=ModelCache()),
            config=ExecutorConfig(),
        )
        serial = serial_engine.explore(max_states=_MAX_STATES)
        explorer = ParallelExplorer(
            compiled.program,
            workers=_WORKERS,
            config=ExecutorConfig(),
            batch_size=64,
        )
        parallel = explorer.explore(max_states=_MAX_STATES)
        return serial, parallel

    serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)

    speedup = serial.wall_time / parallel.wall_time if parallel.wall_time else 0.0
    cpu_count = os.cpu_count() or 1
    merged_hits = parallel.cache_stats.get("merged_hits", 0)
    merged_stores = parallel.cache_stats.get("merged_stores", 0)
    summary = speedup_summary(serial.wall_time, {_WORKERS: parallel.wall_time})
    label = summary["runs"][0]["label"]

    rows = [
        ["paths (serial)", len(serial.records)],
        ["paths (parallel)", len(parallel.records)],
        ["path sets identical", serial.path_set() == parallel.path_set()],
        ["workers", parallel.workers],
        ["batches", parallel.batches],
        ["serial wall (s)", f"{serial.wall_time:.3f}"],
        ["parallel wall (s)", f"{parallel.wall_time:.3f}"],
        ["wall ratio", f"{speedup:.2f}x ({label})"],
        ["host cores", cpu_count],
        ["merged-delta stores", merged_stores],
        ["merged-delta hits", merged_hits],
        ["serial solver queries", serial.solver_stats.get("queries", 0)],
        ["parallel solver queries", parallel.solver_stats.get("queries", 0)],
    ]
    report(
        f"Sharded parallel exploration on a {_BYTES}-byte branchy guest "
        f"({len(serial.records)} paths, {_WORKERS} workers)",
        render_table(["metric", "value"], rows),
    )

    update_bench_json(
        "parallel_speedup",
        {
            "workload": {"kind": "branchy", "bytes": _BYTES, "paths": len(serial.records)},
            "serial": {
                "wall_time_s": round(serial.wall_time, 4),
                "solver_stats": serial.solver_stats,
            },
            "parallel": {
                "workers": _WORKERS,
                "batches": parallel.batches,
                "wall_time_s": round(parallel.wall_time, 4),
                "solver_stats": parallel.solver_stats,
                "cache_stats": parallel.cache_stats,
                "coordinator_cache": parallel.coordinator_cache,
            },
            "speedup_summary": summary,
            "path_sets_identical": serial.path_set() == parallel.path_set(),
        },
    )

    # Portable acceptance bar: identical exploration + real cross-worker
    # cache flow, regardless of how many cores the host happens to have.
    assert len(serial.records) == 1 << _BYTES, len(serial.records)
    assert serial.path_set() == parallel.path_set()
    assert merged_stores > 0, parallel.cache_stats
    assert merged_hits > 0, parallel.cache_stats
    # The wall-clock claim is ">=2x at 4 workers"; it needs hardware
    # that can actually run the workers concurrently (a 1-core container
    # measures pure IPC overhead) and at least the 4-worker fan-out (2
    # workers cap below 2x by construction).
    if _WORKERS >= 4 and cpu_count >= _WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup at {_WORKERS} workers on {cpu_count} cores, "
            f"got {speedup:.2f}x"
        )
