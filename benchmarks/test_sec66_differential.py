"""§6.6: using the Chef-generated engine as a reference implementation.

The paper found a bug in NICE's handling of ``if not <expr>`` statements
by tracking its test cases along the high-level paths Chef generates.
This benchmark reproduces the experiment: with the bug replica enabled,
differential testing flags missed feasible paths and/or redundant tests;
with the fix, the two engines agree.
"""

from repro.bench.reporting import render_table
from repro.dedicated import differential_test

_PROGRAM = '''
def classify(flag, x):
    if not flag == 1:
        if x > 3:
            return 1
        return 2
    if x > 1:
        return 3
    return 4

f = sym_int(0, 0, 1)
x = sym_int(0, 0, 7)
print(classify(f, x))
'''


def test_sec66_differential_testing(benchmark, report):
    def run():
        fixed = differential_test(_PROGRAM, time_budget=4.0, legacy_not_bug=False)
        buggy = differential_test(_PROGRAM, time_budget=4.0, legacy_not_bug=True)
        return fixed, buggy

    fixed, buggy = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["fixed engine", fixed.chef_paths, fixed.dedicated_paths,
         len(fixed.missed_by_dedicated), fixed.redundant_dedicated_tests,
         "no" if not fixed.found_bug else "YES"],
        ["with 'if not' bug", buggy.chef_paths, buggy.dedicated_paths,
         len(buggy.missed_by_dedicated), buggy.redundant_dedicated_tests,
         "YES" if buggy.found_bug else "no"],
    ]
    report(
        "§6.6: differential testing against the CHEF reference engine",
        render_table(
            ["Dedicated engine", "CHEF paths", "dedicated paths",
             "missed", "redundant", "bug found"],
            rows,
        ),
    )

    assert not fixed.found_bug, "fixed engine must agree with CHEF"
    assert buggy.found_bug, "the replicated NICE bug must be detected"
