"""Table 2: effort to support Python and Lua in Chef.

Counts, from the Clay interpreter sources, the lines belonging to the
interpreter core vs. the Chef-specific additions (HLPC instrumentation,
symbolic-execution optimizations, native extensions) plus the symbolic
test library — the same breakdown as the paper's Table 2.  The expected
*shape*: instrumentation is a tiny fraction of the core, and the Lua
interpreter is several times smaller than the Python one.
"""

from repro.bench.effort import effort_table
from repro.bench.reporting import render_table


def test_table2_effort(benchmark, report):
    rows = benchmark.pedantic(effort_table, rounds=1, iterations=1)
    by_language = {row.language: row for row in rows}
    python = by_language["Python"]
    lua = by_language["Lua"]

    # Shape assertions mirroring Table 2.
    assert python.core_loc > lua.core_loc, "Python interpreter must be larger"
    assert python.hlpc_loc < 60, "HLPC instrumentation must stay tiny"
    assert lua.hlpc_loc < 60
    assert python.hlpc_loc / python.core_loc < 0.05
    assert python.optimization_loc > python.hlpc_loc
    assert python.test_library_loc > 0

    table_rows = []
    table_rows.append(
        ["Interpreter core size (Clay LoC)", python.core_loc, lua.core_loc]
    )
    table_rows.append(
        [
            "HLPC instrumentation (Clay LoC)",
            f"{python.hlpc_loc} ({python.instrumented_fraction(python.hlpc_loc):.2f}%)",
            f"{lua.hlpc_loc} ({lua.instrumented_fraction(lua.hlpc_loc):.2f}%)",
        ]
    )
    table_rows.append(
        [
            "Sym. optimizations (Clay LoC)",
            f"{python.optimization_loc} ({python.instrumented_fraction(python.optimization_loc):.2f}%)",
            f"{lua.optimization_loc} ({lua.instrumented_fraction(lua.optimization_loc):.2f}%)",
        ]
    )
    table_rows.append(
        [
            "Native extensions (Clay LoC)",
            f"{python.native_loc} ({python.instrumented_fraction(python.native_loc):.2f}%)",
            f"{lua.native_loc} ({lua.instrumented_fraction(lua.native_loc):.2f}%)",
        ]
    )
    table_rows.append(
        ["Test library (host LoC)", python.test_library_loc, lua.test_library_loc]
    )
    report(
        "Table 2: effort to support Python and Lua in CHEF (reproduction scale)",
        render_table(["Component", "Python", "Lua"], table_rows),
    )
