"""Shared fixtures for the benchmark suite.

Every benchmark prints a paper-shaped table through the ``report``
fixture; collected reports are emitted in the terminal summary so they
survive pytest's output capture.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchSettings
from repro.interpreters import clay_sources_available

_REPORTS = []

#: Benchmark modules that execute a guest interpreter end-to-end; the
#: seed snapshot is missing the Clay interpreter sources (ROADMAP open
#: item), so these skip with an explicit reason until they land.
_NEEDS_GUEST_INTERPRETER = {
    "test_fig8_path_counts.py",
    "test_fig9_coverage.py",
    "test_fig10_efficiency.py",
    "test_fig11_opt_breakdown.py",
    "test_fig12_overhead.py",
    "test_sec66_differential.py",
    "test_table2_effort.py",
    "test_table3_packages.py",
    "test_table4_features.py",
}


def pytest_collection_modifyitems(config, items):
    if clay_sources_available():
        return
    skip = pytest.mark.skip(
        reason="interpreter Clay sources are not in the tree (seed gap; see ROADMAP)"
    )
    for item in items:
        if item.path.name in _NEEDS_GUEST_INTERPRETER:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def settings() -> BenchSettings:
    return BenchSettings()


@pytest.fixture
def report():
    def _report(title: str, body: str) -> None:
        _REPORTS.append((title, body))

    return _report


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction outputs")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in body.split("\n"):
            terminalreporter.write_line(line)
