"""Shared fixtures for the benchmark suite.

Every benchmark prints a paper-shaped table through the ``report``
fixture; collected reports are emitted in the terminal summary so they
survive pytest's output capture.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchSettings

_REPORTS = []


@pytest.fixture(scope="session")
def settings() -> BenchSettings:
    return BenchSettings()


@pytest.fixture
def report():
    def _report(title: str, body: str) -> None:
        _REPORTS.append((title, body))

    return _report


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction outputs")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in body.split("\n"):
            terminalreporter.write_line(line)
