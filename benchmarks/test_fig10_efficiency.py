"""Figure 10: fraction of low-level paths that contribute a new
high-level path, over time, per configuration.

Expected shape (the paper's headline efficiency result): the aggregate
configuration sustains a much higher HL/LL ratio than the baseline
throughout the run.
"""

from repro.bench.harness import PAPER_CONFIGS, BenchSettings, run_matrix
from repro.bench.reporting import fig10_series, render_table
from repro.targets import all_targets

_CONFIG_ORDER = [
    "CUPA + Optimizations", "Optimizations Only", "CUPA Only", "Baseline",
]


def _selected(settings: BenchSettings):
    if settings.full:
        return all_targets()
    names = {"simplejson", "ConfigParser", "markdown", "cliargs"}
    return [t for t in all_targets() if t.name in names]


def test_fig10_efficiency(benchmark, settings: BenchSettings, report):
    packages = _selected(settings)

    def run():
        return run_matrix(packages, PAPER_CONFIGS, settings)

    runs = benchmark.pedantic(run, rounds=1, iterations=1)

    aggregates = {}
    for language, label in (("minipy", "Python"), ("minilua", "Lua")):
        series = fig10_series(runs, language, _CONFIG_ORDER, buckets=5)
        rows = []
        for config in _CONFIG_ORDER:
            rows.append(
                [config] + [f"{100.0 * v:6.1f}%" for v in series[config]]
            )
        report(
            f"Figure 10 ({label}): HL/LL path ratio over normalised time",
            render_table(
                ["Configuration", "t1", "t2", "t3", "t4", "t5"], rows
            ),
        )
        nonzero = [v for v in series["CUPA + Optimizations"] if v > 0]
        base_nonzero = [v for v in series["Baseline"] if v > 0]
        aggregates[language] = (
            sum(nonzero) / len(nonzero) if nonzero else 0.0,
            sum(base_nonzero) / len(base_nonzero) if base_nonzero else 0.0,
        )

    # The aggregate configuration must be more efficient than the baseline
    # for at least one language, and never collapse to zero.
    assert any(agg > base for agg, base in aggregates.values()), aggregates
    assert all(agg > 0 for agg, _base in aggregates.values()), aggregates
