"""Frontend benchmark: PyLite lowering + exploration counters per pack.

For each scenario package (parser / state machine / codec) this runs the
whole pipeline — ast → TAC → CFG → LVM emission → symbolic exploration —
and reports the lowering footprint (TAC instructions, CFG blocks, LVM
instructions) next to the exploration counters (paths, solver queries)
and the §6.6 differential verdict.  Everything lands in
``BENCH_pr10.json`` under ``frontend`` so a lowering change that bloats
the bytecode or multiplies solver queries shows up in the committed
numbers.  Gates are counters and the differential check — never
wall-clock.
"""

from repro.bench.perfjson import update_bench_json
from repro.bench.reporting import render_table
from repro.chef.options import ChefConfig
from repro.frontend import compile_pylite
from repro.symtest.runner import SymbolicTestRunner
from repro.targets import pylite_targets


def _lowering_counters(source: str) -> dict:
    compiled = compile_pylite(source)
    tac_instrs = sum(len(f.instrs) for f in compiled.module.functions.values())
    blocks = sum(len(cfg.blocks) for cfg in compiled.cfgs.values())
    program = compiled.build_program()
    lvm_instrs = sum(len(f.instrs) for f in program.functions.values())
    return {
        "functions": len(compiled.module.functions),
        "tac_instrs": tac_instrs,
        "cfg_blocks": blocks,
        "lvm_instrs": lvm_instrs,
        "lvm_functions": len(program.functions),
    }


def test_frontend_packs(benchmark, settings, report):
    budget = max(settings.budget, 2.0)

    def run_all():
        rows = []
        for target in pylite_targets():
            runner = SymbolicTestRunner(
                target.source,
                target.symbolic_test(),
                ChefConfig(time_budget=budget),
            )
            result = runner.run_symbolic()
            reports = runner.engine.differential_sweep(result.suite)
            rows.append((target, result, reports))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = []
    payload = {}
    for target, result, diff_reports in rows:
        lowering = _lowering_counters(target.source)
        mismatches = [r for r in diff_reports if not r.matches]
        queries = result.solver_stats.get("queries", 0)
        table.append(
            [
                target.name,
                lowering["tac_instrs"],
                lowering["cfg_blocks"],
                lowering["lvm_instrs"],
                result.hl_paths,
                result.ll_paths,
                queries,
                f"{len(diff_reports) - len(mismatches)}/{len(diff_reports)}",
            ]
        )
        payload[target.name] = {
            "lowering": lowering,
            "hl_paths": result.hl_paths,
            "ll_paths": result.ll_paths,
            "solver_queries": queries,
            "differential_checked": len(diff_reports),
            "differential_matched": len(diff_reports) - len(mismatches),
        }

        # Hard gates: exploration found real paths and CPython agrees
        # on every single one of them (§6.6 analogue).
        assert result.hl_paths >= 2, target.name
        assert not mismatches, [(target.name, r.detail) for r in mismatches]

    report(
        "PyLite frontend: lowering + exploration counters per pack "
        f"(budget {budget:.1f}s)",
        render_table(
            [
                "package", "TAC", "blocks", "LVM", "HL paths",
                "LL paths", "queries", "diff",
            ],
            table,
        ),
    )
    update_bench_json("frontend", payload)
