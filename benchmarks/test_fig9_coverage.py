"""Figure 9: line coverage achieved by each configuration, using
coverage-optimized CUPA (§3.4) for the CUPA configurations.

Expected shape: the aggregate configuration's coverage is at least
competitive everywhere and visibly better for the parser-heavy packages
(the paper calls out simplejson and xlrd).
"""

from repro.bench.harness import PAPER_CONFIGS, BenchSettings, aggregate, run_matrix
from repro.bench.reporting import fig9_rows, render_table
from repro.targets import all_targets

_CONFIG_ORDER = [
    "CUPA + Optimizations", "Optimizations Only", "CUPA Only", "Baseline",
]


def _selected(settings: BenchSettings):
    if settings.full:
        return all_targets()
    names = {"simplejson", "xlrd", "HTMLParser", "haml", "cliargs"}
    return [t for t in all_targets() if t.name in names]


def test_fig9_coverage(benchmark, settings: BenchSettings, report):
    packages = _selected(settings)

    def run():
        return run_matrix(
            packages, PAPER_CONFIGS, settings, strategy_override="cupa-cov"
        )

    runs = benchmark.pedantic(run, rounds=1, iterations=1)

    for language, label in (("minipy", "Python"), ("minilua", "Lua")):
        names = [p.name for p in packages if p.language == language]
        if not names:
            continue
        rows = fig9_rows(runs, names, _CONFIG_ORDER)
        report(
            f"Figure 9 ({label}): line coverage per configuration "
            f"(coverage-optimized CUPA)",
            render_table(["Package"] + _CONFIG_ORDER, rows),
        )

    names = [p.name for p in packages]
    agg = sum(aggregate(runs, n, "CUPA + Optimizations")["coverage"] for n in names)
    base = sum(aggregate(runs, n, "Baseline")["coverage"] for n in names)
    assert agg >= base * 0.9, (
        f"aggregate coverage ({agg:.2f}) collapsed vs baseline ({base:.2f})"
    )
    assert agg > 0, "aggregate must cover something"
