"""Figure 11: contribution of each interpreter optimization (Python).

Four interpreter builds, adding the §4.2 optimizations one by one in the
paper's order (none → +symbolic-pointer avoidance → +hash neutralization
→ +fast-path elimination); high-level paths found with path-optimized
CUPA, printed relative to the fully optimized build.

Expected shape: for most packages more optimizations help, but not
monotonically for every package — the paper highlights xlrd, where some
optimizations hurt; we assert only that optimized builds collectively
beat the unoptimized one.
"""

from repro.bench.harness import BenchSettings, run_package
from repro.bench.reporting import fig11_rows, render_table
from repro.chef.options import InterpreterBuildOptions
from repro.targets import python_targets


def _selected(settings: BenchSettings):
    targets = python_targets()
    if settings.full:
        return targets
    names = {"argparse", "simplejson", "ConfigParser", "xlrd"}
    return [t for t in targets if t.name in names]


def test_fig11_optimization_breakdown(benchmark, settings: BenchSettings, report):
    packages = _selected(settings)
    labels = InterpreterBuildOptions.cumulative_labels()

    def run():
        results = {}
        for package in packages:
            by_level = {}
            for level in range(4):
                result = run_package(
                    package,
                    "cupa-path",
                    InterpreterBuildOptions.cumulative(level),
                    settings.budget,
                    seed=0,
                    config_name=labels[level],
                    path_instr_budget=settings.path_instr_budget,
                    measure_coverage=False,
                )
                by_level[level] = float(result.hl_paths)
            results[package.name] = by_level
        return results

    per_build = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = fig11_rows(per_build, labels)
    report(
        "Figure 11: interpreter optimization breakdown (Python, HL paths "
        "relative to the fully optimized build)",
        render_table(
            ["Package"] + [labels[i] for i in range(4)], rows
        ),
    )

    total_none = sum(levels[0] for levels in per_build.values())
    total_best = sum(max(levels.values()) for levels in per_build.values())
    assert total_best > total_none, (
        f"optimized builds ({total_best}) must beat vanilla ({total_none})"
    )
