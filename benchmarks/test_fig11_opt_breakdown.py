"""Figure 11: contribution of each interpreter optimization (Python).

Four interpreter builds, adding the §4.2 optimizations one by one in the
paper's order (none → +symbolic-pointer avoidance → +hash neutralization
→ +fast-path elimination); high-level paths found with path-optimized
CUPA, printed relative to the fully optimized build.

Expected shape: for most packages more optimizations help, but not
monotonically for every package — the paper highlights xlrd, where some
optimizations hurt; we assert only that optimized builds collectively
beat the unoptimized one.
"""

from repro.bench.harness import (
    SOLVER_STAT_KEYS,
    BenchSettings,
    run_package,
    sum_solver_stats,
)
from repro.bench.reporting import fig11_rows, render_table, solver_stats_rows
from repro.chef.options import InterpreterBuildOptions
from repro.targets import python_targets


def _selected(settings: BenchSettings):
    targets = python_targets()
    if settings.full:
        return targets
    names = {"argparse", "simplejson", "ConfigParser", "xlrd"}
    return [t for t in targets if t.name in names]


def test_fig11_optimization_breakdown(benchmark, settings: BenchSettings, report):
    packages = _selected(settings)
    labels = InterpreterBuildOptions.cumulative_labels()

    def run():
        results = {}
        package_runs = []
        for package in packages:
            by_level = {}
            for level in range(4):
                result = run_package(
                    package,
                    "cupa-path",
                    InterpreterBuildOptions.cumulative(level),
                    settings.budget,
                    seed=0,
                    config_name=labels[level],
                    path_instr_budget=settings.path_instr_budget,
                    measure_coverage=False,
                )
                by_level[level] = float(result.hl_paths)
                package_runs.append(result)
            results[package.name] = by_level
        return results, package_runs

    per_build, package_runs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = fig11_rows(per_build, labels)
    report(
        "Figure 11: interpreter optimization breakdown (Python, HL paths "
        "relative to the fully optimized build)",
        render_table(
            ["Package"] + [labels[i] for i in range(4)], rows
        ),
    )
    report(
        "Solver counters for the Fig. 11 workload (incremental reuse)",
        render_table(
            ["Config"] + list(SOLVER_STAT_KEYS), solver_stats_rows(package_runs)
        ),
    )

    total_none = sum(levels[0] for levels in per_build.values())
    total_best = sum(max(levels.values()) for levels in per_build.values())
    assert total_best > total_none, (
        f"optimized builds ({total_best}) must beat vanilla ({total_none})"
    )
    # The incremental constraint-set architecture must show actual reuse
    # on this workload: sibling activations share path-condition prefixes.
    totals = sum_solver_stats(package_runs)
    assert totals["incremental_hits"] > 0, totals
    assert totals["component_cache_hits"] > 0, totals
    assert totals["atoms_sliced"] > 0, totals
