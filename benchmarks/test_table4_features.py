"""Table 4: language-feature support, Chef vs dedicated engines.

The matrix itself reproduces the paper's assessment; the CHEF and NICE
columns are *verified live* by probe programs: every probe must complete
under the Chef-generated engine, while the dedicated NICE-style engine
must reject exactly the probes the matrix marks unsupported.
"""

from repro.bench.reporting import render_table
from repro.chef.options import ChefConfig
from repro.dedicated import DedicatedNiceEngine, FEATURE_MATRIX
from repro.dedicated.features import PROBES
from repro.interpreters.minipy.engine import MiniPyEngine


def test_table4_features(benchmark, report):
    def run_probes():
        outcomes = []
        for feature, program, nice_ok in PROBES:
            chef = MiniPyEngine(
                program, ChefConfig(strategy="cupa-path", time_budget=2.0)
            )
            chef_result = chef.run()
            nice = DedicatedNiceEngine(program)
            nice_result = nice.run(time_budget=2.0)
            outcomes.append(
                (feature, chef_result.hl_paths, nice_result.unsupported, nice_ok)
            )
        return outcomes

    outcomes = benchmark.pedantic(run_probes, rounds=1, iterations=1)

    for feature, chef_paths, nice_unsupported, nice_ok in outcomes:
        assert chef_paths >= 1, f"CHEF failed the {feature!r} probe"
        if nice_ok:
            assert nice_unsupported is None, (
                f"dedicated engine unexpectedly rejected {feature!r}: "
                f"{nice_unsupported}"
            )
        else:
            assert nice_unsupported is not None, (
                f"dedicated engine should reject {feature!r}"
            )

    rows = []
    for group, feature, support in FEATURE_MATRIX:
        rows.append(
            [group, feature, support["CHEF"], support["CutiePy"],
             support["NICE"], support["Commuter"]]
        )
    probe_rows = [
        [feature, "complete", "rejected" if not ok else "handled"]
        for feature, _paths, _unsup, ok in outcomes
    ]
    report(
        "Table 4: language feature support (matrix + live probe verification)",
        render_table(
            ["Group", "Feature", "CHEF", "CutiePy", "NICE", "Commuter"], rows
        )
        + "\n\nLive probes (CHEF vs dedicated NICE-style engine):\n"
        + render_table(["Probe", "CHEF", "Dedicated"], probe_rows),
    )
