"""Incremental-solving microbenchmark (no guest interpreter needed).

Exhaustively explores a branchy LVM guest whose path conditions are the
query stream the incremental constraint-set architecture targets:
sibling states share long path-condition prefixes, and most branch atoms
touch a single input byte, so independence slicing and the engine-wide
component cache should absorb nearly all of the solver work.

Asserts the architecture's observable effect — nonzero incremental hits,
sliced atoms and component-cache hits — and reports the counters so the
perf trajectory is visible per PR.
"""

from repro.bench.perfjson import update_bench_json
from repro.bench.reporting import render_table
from repro.bench.workloads import branchy_source
from repro.clay import compile_program
from repro.lowlevel.executor import ExecutorConfig, LowLevelEngine
from repro.solver.cache import ModelCache
from repro.solver.csp import CspSolver

_BYTES = 6



def _explore(engine: LowLevelEngine, max_states: int = 512) -> int:
    done = 0
    state = engine.new_state()
    queue = engine.run_path(state)
    done += 1
    while queue and done < max_states:
        candidate = queue.pop()
        if engine.activate(candidate) != "sat":
            continue
        queue.extend(engine.run_path(candidate))
        done += 1
    return done


def test_solver_incremental_reuse(benchmark, report):
    compiled = compile_program(branchy_source(_BYTES))

    def run():
        # A fresh, isolated cache: this measures the architecture, not
        # leftovers from other benchmarks sharing the global cache.
        solver = CspSolver(cache=ModelCache())
        engine = LowLevelEngine(
            compiled.program, solver=solver, config=ExecutorConfig()
        )
        paths = _explore(engine)
        return paths, solver.stats.as_dict(), solver.cache.stats_dict()

    paths, stats, cache_stats = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[k, v] for k, v in stats.items()]
    rows += [[f"cache_{k}", v] for k, v in cache_stats.items()]
    report(
        f"Incremental solving on a {_BYTES}-byte branchy guest "
        f"({paths} paths explored)",
        render_table(["counter", "value"], rows),
    )
    update_bench_json(
        "solver_incremental",
        {
            "workload": {"kind": "branchy", "bytes": _BYTES, "paths": paths},
            "solver_stats": stats,
            "cache_stats": cache_stats,
        },
    )

    assert paths == 1 << _BYTES, f"expected full exploration, got {paths}"
    # The architecture's acceptance bar: real reuse, not just plumbing.
    assert stats["incremental_hits"] > 0, stats
    assert stats["atoms_sliced"] > 0, stats
    assert stats["component_cache_hits"] > 0, stats
    # Slicing must leave search effort sub-linear in the query volume:
    # every activation re-solving its full path condition would cost
    # ~|pc| steps per query; component reuse keeps it near one fresh
    # component per activation.
    assert stats["search_steps"] < stats["queries"] * _BYTES, stats
