"""Micro-benchmark: table-dispatched concrete operators vs the seed if-chain.

``_apply_binop`` is the single hottest function in ``_eval`` (every
``conc()`` shadow evaluation of every instruction lands there), so PR 4
replaced the 19-arm if-chain with a module-level table of ``operator``
based functions.  This benchmark keeps a faithful copy of the seed's
if-chain and times both over the full operator mix; the win is reported
to ``BENCH_pr10.json``.  The timing assertion is deliberately loose (the
table must at minimum not regress) — the hard assertion is semantic
equivalence over the whole operator space.
"""

import os
import time

from repro.bench.perfjson import update_bench_json
from repro.bench.reporting import render_table
from repro.lowlevel.expr import BINOPS, UNOPS, _apply_binop, _apply_unop


def _seed_apply_binop(op, a, b):
    """The seed's if-chain, kept verbatim as the comparison baseline."""
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0:
            raise ZeroDivisionError("guest division by zero")
        return a // b
    if op == "mod":
        if b == 0:
            raise ZeroDivisionError("guest modulo by zero")
        return a % b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return a << b
    if op == "shr":
        return a >> b
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    if op == "lt":
        return int(a < b)
    if op == "le":
        return int(a <= b)
    if op == "gt":
        return int(a > b)
    if op == "ge":
        return int(a >= b)
    if op == "land":
        return int(bool(a) and bool(b))
    if op == "lor":
        return int(bool(a) or bool(b))
    raise ValueError(f"unknown binary operator {op!r}")


def _seed_apply_unop(op, a):
    if op == "neg":
        return -a
    if op == "bnot":
        return ~a
    if op == "lnot":
        return int(a == 0)
    raise ValueError(f"unknown unary operator {op!r}")


#: Every binop applied to operands that are legal for all of them.
_WORKLOAD = [(op, a, b) for op in sorted(BINOPS) for a in (0, 7, 255) for b in (1, 3, 64)]


def _time_fn(fn, repeats: int = 5, loops: int = 200) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            for op, a, b in _WORKLOAD:
                fn(op, a, b)
        best = min(best, time.perf_counter() - start)
    return best


def test_binop_dispatch_table(benchmark, report):
    # Semantic equivalence over the full operator space, including the
    # error paths, is the hard requirement — workers=1 must stay
    # bit-for-bit identical to the seed engine.
    for op in sorted(BINOPS):
        for a in (-9, -1, 0, 1, 7, 255):
            for b in (-3, 1, 2, 64):
                try:
                    expected = _seed_apply_binop(op, a, b)
                except (ZeroDivisionError, ValueError) as exc:
                    expected = type(exc)
                try:
                    actual = _apply_binop(op, a, b)
                except (ZeroDivisionError, ValueError) as exc:
                    actual = type(exc)
                assert actual == expected, (op, a, b, actual, expected)
    for op in sorted(UNOPS):
        for a in (-9, 0, 1, 255):
            assert _apply_unop(op, a) == _seed_apply_unop(op, a), (op, a)

    def run():
        chain = _time_fn(_seed_apply_binop)
        table = _time_fn(_apply_binop)
        return chain, table

    chain, table = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = chain / table if table else 0.0
    ops = len(_WORKLOAD) * 200

    report(
        "Concrete binop dispatch: seed if-chain vs operator table",
        render_table(
            ["variant", "best-of-5 (s)", "ns/op"],
            [
                ["seed if-chain", f"{chain:.4f}", f"{1e9 * chain / ops:.1f}"],
                ["operator table", f"{table:.4f}", f"{1e9 * table / ops:.1f}"],
                ["speedup", f"{ratio:.2f}x", ""],
            ],
        ),
    )
    update_bench_json(
        "expr_dispatch",
        {
            "ops_timed": ops,
            "if_chain_ns_per_op": round(1e9 * chain / ops, 2),
            "table_ns_per_op": round(1e9 * table / ops, 2),
            "speedup": round(ratio, 3),
        },
    )
    # Loose floor: the table must not regress dispatch.  Never asserted
    # on CI runners — relative wall-clock is still wall-clock, and CPU
    # steal on shared runners can slow either measurement arbitrarily;
    # the hard assertion above is semantic equivalence.
    if not os.environ.get("CI"):
        assert table <= chain * 1.25, (table, chain)
