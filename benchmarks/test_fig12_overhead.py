"""Figure 12: Chef's per-high-level-path overhead vs. the dedicated
NICE-style engine, on the MAC-learning controller, per interpreter build.

For each number of symbolic Ethernet frames we compare average execution
time per high-level path: T_chef / T_nice.  Expected shape from the
paper: the unoptimized builds are orders of magnitude slower (symbolic
pointers, then symbolic hashes dominate), each added optimization
reduces the overhead substantially, and even the full build stays slower
than the hand-written engine (Chef pays for running a whole interpreter).
"""

import os

from repro.bench.harness import BenchSettings
from repro.bench.reporting import fig12_rows, render_table
from repro.chef.options import ChefConfig, InterpreterBuildOptions
from repro.dedicated import DedicatedNiceEngine
from repro.interpreters.minipy.engine import MiniPyEngine
from repro.targets.mac_controller import driver_source

_MAX_FRAMES = int(os.environ.get("REPRO_BENCH_FIG12_FRAMES", "3"))


def _chef_time_per_path(source: str, level: int, budget: float) -> float:
    engine = MiniPyEngine(
        source,
        ChefConfig(
            strategy="cupa-path",
            seed=0,
            time_budget=budget,
            interpreter_options=InterpreterBuildOptions.cumulative(level),
            path_instr_budget=120_000,
        ),
    )
    result = engine.run()
    return result.duration / max(result.hl_paths, 1)


def _nice_time_per_path(source: str, budget: float) -> float:
    engine = DedicatedNiceEngine(source)
    result = engine.run(time_budget=budget)
    return result.duration / max(result.paths, 1)


def test_fig12_overhead(benchmark, settings: BenchSettings, report):
    labels = InterpreterBuildOptions.cumulative_labels()
    budget = max(settings.budget, 1.5)

    def run():
        overheads = {}
        for frames in range(1, _MAX_FRAMES + 1):
            source = driver_source(frames)
            nice_time = _nice_time_per_path(source, budget)
            overheads[frames] = {}
            for level in range(4):
                chef_time = _chef_time_per_path(source, level, budget)
                overheads[frames][level] = chef_time / max(nice_time, 1e-9)
        return overheads

    overheads = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = fig12_rows(overheads, labels)
    report(
        "Figure 12: CHEF overhead vs. dedicated NICE-style engine "
        "(T_chef/T_nice per HL path, MAC-learning controller)",
        render_table(
            ["Frames"] + [labels[i] for i in range(4)], rows
        ),
    )

    # Shape assertions: Chef is slower than the hand-written engine, and
    # the fully optimized build beats the unoptimized one.
    for frames, by_level in overheads.items():
        assert by_level[3] >= 1.0, (
            f"Chef should not beat the dedicated engine ({frames} frames)"
        )
    total_vanilla = sum(by_level[0] for by_level in overheads.values())
    total_full = sum(by_level[3] for by_level in overheads.values())
    assert total_full < total_vanilla, (
        "optimizations must reduce Chef's overhead "
        f"(full {total_full:.1f}x vs vanilla {total_vanilla:.1f}x)"
    )
