"""Table 1: the Chef guest API.

Verifies that every call of the paper's Table 1 is implemented by the
low-level engine and exercised end-to-end by a guest program.
"""

from repro.bench.reporting import render_table
from repro.clay import compile_program
from repro.lowlevel import api
from repro.lowlevel.executor import LowLevelEngine

_API_DESCRIPTIONS = {
    api.LOG_PC: "Log the interpreter PC and opcode",
    api.START_SYMBOLIC: "Start the symbolic execution",
    api.END_SYMBOLIC: "Terminate the symbolic state",
    api.MAKE_SYMBOLIC: "Make buffer symbolic",
    api.CONCRETIZE: "Concretize buffer of bytes",
    api.UPPER_BOUND: "Get maximum value for expression on current path",
    api.IS_SYMBOLIC: "Check if buffer is symbolic",
    api.ASSUME: "Assume constraint",
}

_EXERCISE_ALL = """
const BUF = 500;
fn main() {
    start_symbolic();
    make_symbolic(BUF, 2, 0, 255);
    log_pc(1, 7);
    var x = load(BUF);
    out(is_symbolic(x));
    assume(x < 100);
    var bound = upper_bound(x + 5);
    out(bound);
    var pinned = concretize(load(BUF + 1));
    out(is_symbolic(load(BUF + 1)));
    log_pc(2, 9);
    end_symbolic();
}
"""


def test_table1_api_surface(benchmark, report):
    def run():
        engine = LowLevelEngine(compile_program(_EXERCISE_ALL).program)
        state = engine.new_state()
        engine.run_path(state)
        return state

    state = benchmark.pedantic(run, rounds=1, iterations=1)
    assert state.status == "halted"
    is_sym, bound, pinned_sym = state.machine.output
    assert is_sym == 1
    # upper_bound is a sound over-approximation from the input domain
    # (0..255), deliberately independent of the path condition.
    assert bound == 260
    assert pinned_sym == 1  # concretize constrains the path, not the memory

    rows = [[name, _API_DESCRIPTIONS[name]] for name in api.TABLE1_CALLS]
    report(
        "Table 1: the CHEF API (all implemented and exercised)",
        render_table(["API Call", "Description"], rows),
    )
