"""Table 3: testing results for the 11 Python and Lua packages.

For each package: LOC, coverable LOC, exception types discovered
(total / undocumented) and hangs — under the full configuration
(path-optimized CUPA + optimized interpreter), as in the paper.

Expected shape: mini-xlrd yields several exception types, most of them
undocumented (the paper found 5 total / 4 undocumented); the Lua JSON
package hangs (unterminated-comment bug); all other packages raise only
documented exceptions and never hang.
"""

from repro.bench.harness import BenchSettings, run_package
from repro.bench.reporting import render_table
from repro.chef.options import InterpreterBuildOptions
from repro.interpreters.minilua.compiler import compile_lua
from repro.interpreters.minipy.compiler import compile_source
from repro.targets import all_targets


def _coverable(package) -> int:
    full = package.source.rstrip() + "\n\n" + package.symbolic_test().build_driver()
    if package.language == "minipy":
        return len(compile_source(full).coverable_lines)
    return len(compile_lua(full).coverable_lines)


def test_table3_packages(benchmark, settings: BenchSettings, report):
    budget = max(settings.budget, 2.0)

    def run_all():
        rows = []
        for package in all_targets():
            result = run_package(
                package,
                "cupa-path",
                InterpreterBuildOptions.full(),
                budget,
                seed=0,
                config_name="full",
                path_instr_budget=settings.path_instr_budget,
                measure_coverage=False,
            )
            rows.append((package, result))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = []
    xlrd_result = None
    json_result = None
    for package, result in rows:
        if package.language == "minipy":
            exceptions = f"{len(result.exception_names)} / {len(result.undocumented)}"
        else:
            exceptions = "--"  # the paper does not track Lua exceptions
        hangs = "hang" if result.hangs else "--"
        table.append(
            [
                package.name,
                package.loc(),
                package.ptype,
                package.description,
                _coverable(package),
                exceptions,
                hangs,
            ]
        )
        if package.name == "xlrd":
            xlrd_result = result
        if package.name == "JSON":
            json_result = result

    report(
        "Table 3: testing results (full config, budget "
        f"{budget:.1f}s per package)",
        render_table(
            ["Package", "LOC", "Type", "Description", "Coverable LOC",
             "Exceptions", "Hangs"],
            table,
        ),
    )

    # Shape assertions from the paper's Table 3.
    assert xlrd_result is not None and json_result is not None
    assert len(xlrd_result.undocumented) >= 2, (
        "xlrd must expose undocumented exception types "
        f"(got {xlrd_result.exception_names})"
    )
    assert json_result.hangs > 0, "the Lua JSON comment bug must hang"
    for package, result in rows:
        if package.language == "minipy" and package.name != "xlrd":
            assert not result.undocumented, (
                f"{package.name} raised undocumented {result.undocumented}"
            )
