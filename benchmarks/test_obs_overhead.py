"""Disabled-telemetry overhead guard for the hot dispatch loop.

The instrumentation contract (docs/architecture.md, "Observability") is
that spans sit at *batch* granularity — one per executed path, per
solver query, per snapshot codec call — never per interpreted
instruction, and that with tracing disabled a span site costs a single
``telemetry.enabled`` branch (the hot sites in the executor and solver
all use that guard; unguarded call sites get the shared no-op span).
This microbenchmark holds the engine to that: a dispatch-shaped loop
(one guarded span site per simulated path of ``_OPS_PER_PATH`` integer
ops) must stay within 5% of the same loop with no telemetry at all.

Timing uses best-of-``_ROUNDS`` minima on both sides, which is the
standard way to make a microbenchmark robust to scheduler noise — the
minimum is the run with the least interference, and only a systematic
cost (the thing we are guarding against) can raise it.

A second assertion pins the mechanism itself: a disabled
``Telemetry.span`` call must return the ``NULL_SPAN`` singleton, not
allocate.
"""

from __future__ import annotations

import time

from repro.bench.perfjson import update_bench_json
from repro.bench.reporting import render_table
from repro.obs.telemetry import NULL_SPAN, Telemetry

_PATHS = 400
_OPS_PER_PATH = 1000
_ROUNDS = 7

#: ≤5% on the dispatch microbench — the ISSUE acceptance bar.
_MAX_OVERHEAD = 0.05


def _plain_workload() -> int:
    acc = 0
    for _path in range(_PATHS):
        for op in range(_OPS_PER_PATH):
            acc += op & 7
    return acc


def _instrumented_workload(telemetry: Telemetry) -> int:
    # Mirrors the engine's hot-site pattern exactly (run_path, check):
    # guard on the enabled flag, only build a span when tracing is on.
    acc = 0
    for path in range(_PATHS):
        if telemetry.enabled:
            with telemetry.span("engine.run_path", sid=path):
                for op in range(_OPS_PER_PATH):
                    acc += op & 7
        else:
            for op in range(_OPS_PER_PATH):
                acc += op & 7
    return acc


def _best_of(fn, *args) -> float:
    best = float("inf")
    for _ in range(_ROUNDS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_telemetry_overhead(benchmark, report):
    telemetry = Telemetry(enabled=False)
    assert telemetry.span("engine.run_path", sid=0) is NULL_SPAN

    # Warm both code paths before timing.
    _plain_workload()
    _instrumented_workload(telemetry)

    def run():
        return _best_of(_plain_workload), _best_of(_instrumented_workload, telemetry)

    plain, instrumented = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = instrumented / plain - 1.0 if plain else 0.0

    report(
        "Disabled-telemetry overhead on a dispatch-shaped loop "
        f"({_PATHS} paths x {_OPS_PER_PATH} ops, one span site per path)",
        render_table(
            ["metric", "value"],
            [
                ["plain best (ms)", f"{plain * 1e3:.3f}"],
                ["instrumented best (ms)", f"{instrumented * 1e3:.3f}"],
                ["overhead", f"{overhead * 100:.2f}%"],
                ["budget", f"{_MAX_OVERHEAD * 100:.0f}%"],
            ],
        ),
    )
    update_bench_json(
        "obs_disabled_overhead",
        {
            "paths": _PATHS,
            "ops_per_path": _OPS_PER_PATH,
            "plain_best_s": round(plain, 6),
            "instrumented_best_s": round(instrumented, 6),
            "overhead_fraction": round(overhead, 4),
            "budget_fraction": _MAX_OVERHEAD,
        },
    )

    assert overhead <= _MAX_OVERHEAD, (
        f"disabled telemetry costs {overhead * 100:.2f}% on the dispatch "
        f"microbench (budget {_MAX_OVERHEAD * 100:.0f}%) — a span site is "
        "supposed to be one branch when tracing is off"
    )
