"""Fault-tolerance smoke benchmark: recovery counters per PR.

Runs the three headline chaos scenarios at benchmark scale and emits
their counters to ``BENCH_pr10.json`` (``fault_tolerance`` section), so
the recovery story is tracked per PR alongside the perf trajectory:

- worker SIGKILL mid-round at ``workers=2`` — path multiset must equal
  the uninjected run, with ``recovery.requeued_chunks > 0``;
- checkpoint, abandon, resume — ``TestCaseFound`` multiset must equal
  the crash-free run, with ``checkpoint.resumes == 1``;
- solver deadline storm — the wedged run terminates with
  ``solver.deadline_unknowns > 0``.

Every gate is a counter or a multiset — never wall-clock.
"""

from collections import Counter

from repro.api.events import CheckpointSaved, PathCompleted, TestCaseFound
from repro.api.session import SymbolicSession
from repro.bench.perfjson import update_bench_json
from repro.bench.reporting import render_table
from repro.bench.workloads import branchy_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.faults import FaultPlan
from repro.parallel.pool import close_shared_pools

_BYTES = 4
_PATHS = 2 ** _BYTES


def _case_key(case):
    return (
        tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
        case.status,
        case.hl_path_signature,
        tuple(case.output),
    )


def _multiset(events, kind):
    return Counter(_case_key(e.case) for e in events if isinstance(e, kind))


def _run(config):
    program = compile_program(branchy_source(_BYTES)).program
    session = SymbolicSession.from_program(program, config)
    events = list(session.events())
    return session, events


def test_fault_tolerance_counters(report, tmp_path):
    close_shared_pools()
    try:
        # -- worker kill mid-round -------------------------------------------
        baseline, base_events = _run(ChefConfig(time_budget=120.0, workers=2))
        close_shared_pools()
        injected, inj_events = _run(
            ChefConfig(
                time_budget=120.0,
                workers=2,
                fault_plan=FaultPlan.from_seed(9, kill_chunk=(1, 1)),
            )
        )
        assert _multiset(inj_events, PathCompleted) == _multiset(
            base_events, PathCompleted
        )
        recovery = injected.metrics()
        assert recovery.get("recovery.worker_crashes", 0) >= 1
        assert recovery.get("recovery.requeued_chunks", 0) > 0

        # -- checkpoint / abandon / resume -----------------------------------
        ckpt_dir = str(tmp_path / "ckpt")
        program = compile_program(branchy_source(_BYTES)).program
        doomed = SymbolicSession.from_program(
            program,
            ChefConfig(
                time_budget=120.0, checkpoint_dir=ckpt_dir, checkpoint_every=4
            ),
        )
        stream = doomed.events()
        for event in stream:
            if isinstance(event, CheckpointSaved):
                break
        stream.close()
        resumed = SymbolicSession.resume(ckpt_dir)
        resumed_events = list(resumed.events())
        assert _multiset(resumed_events, TestCaseFound) == _multiset(
            base_events, TestCaseFound
        )
        ckpt_metrics = resumed.metrics()
        assert ckpt_metrics.get("checkpoint.resumes") == 1

        # -- solver deadline storm -------------------------------------------
        wedged, wedged_events = _run(
            ChefConfig(
                time_budget=60.0,
                solver_deadline_s=0.01,
                fault_plan=FaultPlan(wedge_from_query=2, wedge_seconds=0.05),
            )
        )
        storm = wedged.metrics()
        assert storm.get("solver.deadline_unknowns", 0) > 0
    finally:
        close_shared_pools()

    rows = [
        ["worker kill: paths (=uninjected)", str(injected.result.ll_paths)],
        ["recovery.worker_crashes", str(recovery.get("recovery.worker_crashes"))],
        ["recovery.requeued_chunks", str(recovery.get("recovery.requeued_chunks"))],
        ["checkpoint.saves (resumed run)", str(ckpt_metrics.get("checkpoint.saves", 0))],
        ["checkpoint.resumes", str(ckpt_metrics.get("checkpoint.resumes"))],
        ["deadline storm: paths", str(wedged.result.ll_paths)],
        ["solver.deadline_unknowns", str(storm.get("solver.deadline_unknowns"))],
    ]
    report(
        "Fault tolerance: recovery counters (multiset-gated, no wall-clock)",
        render_table(["scenario / counter", "value"], rows),
    )
    update_bench_json(
        "fault_tolerance",
        {
            "workload_paths": _PATHS,
            "worker_kill": {
                "ll_paths": injected.result.ll_paths,
                "path_multiset_equal": True,
                "worker_crashes": recovery.get("recovery.worker_crashes", 0),
                "requeued_chunks": recovery.get("recovery.requeued_chunks", 0),
                "quarantined_states": recovery.get(
                    "recovery.quarantined_states", 0
                ),
            },
            "checkpoint_resume": {
                "ll_paths": resumed.result.ll_paths,
                "testcase_multiset_equal": True,
                "saves": ckpt_metrics.get("checkpoint.saves", 0),
                "resumes": ckpt_metrics.get("checkpoint.resumes", 0),
                "corrupt_frames_skipped": ckpt_metrics.get(
                    "checkpoint.corrupt_frames_skipped", 0
                ),
            },
            "deadline_storm": {
                "ll_paths": wedged.result.ll_paths,
                "deadline_unknowns": storm.get("solver.deadline_unknowns", 0),
                "timeouts": storm.get("solver.timeouts", 0),
            },
        },
    )
