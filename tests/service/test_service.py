"""End-to-end service-daemon tests: multi-tenant sessions over one pool.

The acceptance contract, all counter-gated (no wall-clock assertions):

- two *concurrent* daemon sessions of the same target produce exactly
  the per-session path-event multiset of a standalone in-process
  ``Session.run()``, and the Program image ships once across all of
  them (``pool.program_ships == 1`` in ``stats``);
- with a cache directory, a warm second run of the same target reports
  ``service.cache.cross_run_hits > 0`` — persisted solver verdicts were
  reused across engine runs — with an unchanged path multiset;
- budgets are clamped server-side and surface as ``BudgetExhausted``.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.session import SymbolicSession
from repro.bench.workloads import branchy_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.parallel.pool import shared_worker_pool
from repro.service import ChefService, ServiceConfig, ServiceError
from repro.service import protocol


def _in_process_multiset(source: str):
    """Wire-event multiset of a standalone in-process session."""
    program = compile_program(source).program
    session = SymbolicSession.from_program(
        program, ChefConfig(time_budget=120.0, max_ll_paths=10_000, workers=2)
    )
    wire_events = [protocol.event_to_wire(event) for event in session.events()]
    return protocol.path_event_multiset(wire_events), session.result


class TestControlOps:
    def test_ping(self, daemon_factory):
        _service, client = daemon_factory()
        reply = client.ping()
        assert reply["ok"] is True

    def test_stats_shape(self, daemon_factory):
        _service, client = daemon_factory()
        stats = client.stats()
        assert stats["ok"] is True
        assert "metrics" in stats
        assert stats["pool"]["workers"] == 2

    def test_unknown_op_is_an_error_line(self, daemon_factory):
        _service, client = daemon_factory()
        with pytest.raises(ServiceError, match="unknown op"):
            client._simple({"op": "frobnicate"})

    def test_run_without_target_is_rejected(self, daemon_factory):
        service, client = daemon_factory()
        with pytest.raises(ServiceError):
            client.run(clay=None, language=None, source=None)
        rejected = service.registry.counter("service.sessions.rejected").value
        assert rejected == 1


class TestConcurrentSessions:
    def test_two_concurrent_sessions_match_in_process_run(self, daemon_factory):
        source = branchy_source(4)
        expected, baseline = _in_process_multiset(source)
        assert baseline.ll_paths == 16
        service, client = daemon_factory()
        outcomes = {}

        def drive(tag):
            try:
                outcomes[tag] = client.run(clay=source)
            except BaseException as exc:
                outcomes[tag] = exc

        threads = [
            threading.Thread(target=drive, args=(tag,)) for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        for tag in ("a", "b"):
            assert not isinstance(outcomes[tag], BaseException), outcomes[tag]
            events, result = outcomes[tag]
            assert result["ll_paths"] == 16
            assert protocol.path_event_multiset(events) == expected
        stats = client.stats()
        # One pool, one spawn set, ONE program ship across the baseline
        # in-process run and both daemon tenants (content-digest dedup).
        assert stats["pool"]["spawns"] == 2
        assert stats["pool"]["program_ships"] == 1
        metrics = stats["metrics"]
        assert metrics["service.sessions.started"] == 2
        assert metrics["service.sessions.finished"] == 2
        assert metrics["service.sessions.active"] == 0


class TestPersistentCacheReuse:
    def test_warm_second_run_hits_across_runs(self, daemon_factory, tmp_path):
        source = branchy_source(4)
        cache_dir = tmp_path / "svc-cache"
        service, client = daemon_factory(cache_dir=str(cache_dir))
        first_events, first_result = client.run(clay=source)
        assert first_result["ll_paths"] == 16
        stores = list(cache_dir.glob("*.cache"))
        assert len(stores) == 1, "one persistent store per target digest"
        assert stores[0].stat().st_size > 0
        second_events, second_result = client.run(clay=source)
        assert second_result["ll_paths"] == 16
        assert protocol.path_event_multiset(
            second_events
        ) == protocol.path_event_multiset(first_events)
        metrics = client.stats()["metrics"]
        assert metrics.get("service.cache.persistent_loaded", 0) > 0
        assert metrics.get("service.cache.cross_run_hits", 0) > 0, (
            "warm run must reuse persisted solver verdicts, not re-solve"
        )


class TestBudgets:
    def test_ll_path_budget_surfaces_as_budget_exhausted(self, daemon_factory):
        source = branchy_source(4)
        _service, client = daemon_factory()
        events, result = client.run(clay=source, config={"max_ll_paths": 4})
        names = [event["event"] for event in events]
        assert "BudgetExhausted" in names
        assert names[-1] == "RunFinished"
        assert result["ll_paths"] < 16

    def test_clamps_are_service_policy(self):
        service = ChefService(
            ServiceConfig(
                socket_path="unused.sock",
                workers=3,
                max_time_budget=7.0,
                max_ll_paths=50,
            )
        )
        config = service._clamp_config(
            {
                "time_budget": 10_000.0,
                "max_ll_paths": 0,
                "workers": 64,  # ignored: worker count is service policy
                "strategy": "cupa",
                "seed": 11,
            }
        )
        assert config.time_budget == 7.0
        assert config.max_ll_paths == 50
        assert config.workers == 3
        assert config.strategy == "cupa"
        assert config.seed == 11
        capped = service._clamp_config({"max_ll_paths": 9_999})
        assert capped.max_ll_paths == 50
        inside = service._clamp_config({"time_budget": 2.5, "max_ll_paths": 12})
        assert inside.time_budget == 2.5
        assert inside.max_ll_paths == 12


class TestSolverDeadlinePolicy:
    def test_deadline_clamps_to_service_cap(self):
        service = ChefService(
            ServiceConfig(socket_path="unused.sock", max_solver_deadline_s=0.5)
        )
        assert service._clamp_config({"solver_deadline_s": 10.0}).solver_deadline_s == 0.5
        assert service._clamp_config({"solver_deadline_s": 0.1}).solver_deadline_s == 0.1
        # The cap is a floor against wedged sessions: it applies even to
        # requests that asked for no deadline at all.
        assert service._clamp_config({}).solver_deadline_s == 0.5

    def test_no_cap_leaves_deadline_requests_alone(self):
        service = ChefService(ServiceConfig(socket_path="unused.sock"))
        assert service._clamp_config({}).solver_deadline_s is None
        assert service._clamp_config({"solver_deadline_s": 3.0}).solver_deadline_s == 3.0


class TestCheckpointedSessions:
    def test_run_then_resume_through_the_daemon(self, daemon_factory, tmp_path):
        source = branchy_source(4)
        ckpt_dir = str(tmp_path / "svc-ckpt")
        _service, client = daemon_factory()
        first_events, first_result = client.run(
            clay=source, config={"checkpoint_dir": ckpt_dir, "checkpoint_every": 1}
        )
        assert first_result["ll_paths"] == 16
        assert "CheckpointSaved" in [event["event"] for event in first_events]

        resumed_events, resumed_result = client.run(resume=ckpt_dir)
        assert resumed_result["ll_paths"] == 16
        assert protocol.path_event_multiset(
            resumed_events
        ) == protocol.path_event_multiset(first_events)
        metrics = client.stats()["metrics"]
        assert metrics.get("service.checkpoint.saves", 0) > 0
        assert metrics.get("service.checkpoint.resumes", 0) == 1
