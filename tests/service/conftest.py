"""Service-suite fixtures: a daemon-in-a-thread and a clean pool registry."""

from __future__ import annotations

import threading
import time

import pytest

from repro.parallel.pool import close_shared_pools
from repro.service import ChefService, ServiceClient, ServiceConfig


@pytest.fixture(autouse=True)
def _fresh_shared_pools():
    """Isolate the process-wide pool registry per test."""
    close_shared_pools()
    yield
    close_shared_pools()


@pytest.fixture
def daemon_factory(tmp_path):
    """Start a :class:`ChefService` in a thread; yield a factory.

    The factory returns ``(service, client)`` once the daemon answers
    ``ping``.  Teardown always requests shutdown and joins the thread.
    """
    running = []

    def start(**overrides) -> tuple:
        socket_path = str(tmp_path / f"svc{len(running)}.sock")
        config = ServiceConfig(
            socket_path=socket_path,
            workers=2,
            max_time_budget=120.0,
            **overrides,
        )
        service = ChefService(config)
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(socket_path, timeout=120.0)
        deadline = time.monotonic() + 30.0
        last_error = None
        while time.monotonic() < deadline:
            try:
                client.ping()
                break
            except OSError as exc:
                last_error = exc
                time.sleep(0.05)
        else:
            raise RuntimeError(f"daemon never came up: {last_error}")
        running.append((client, thread))
        return service, client

    yield start

    for client, thread in running:
        try:
            client.shutdown()
        except Exception:
            pass
        thread.join(timeout=30.0)
