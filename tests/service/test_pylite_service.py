"""PyLite through the service daemon: the third-language round trip.

One ``register_language`` call is supposed to light up the whole stack;
this suite holds the daemon to that — an in-daemon session, the
``python -m repro.service run --language pylite`` CLI path, and
registry-derived CLI help.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.service.client import ServiceError

SOURCE = (
    "n = sym_int(5, 0, 9)\n"
    "total = 0\n"
    "for i in range(3):\n"
    "    total = total + n\n"
    "if total > 20:\n"
    '    raise ValueError("too big")\n'
    "print(total)\n"
)


class TestDaemonSessions:
    def test_pylite_session_round_trip(self, daemon_factory):
        _service, client = daemon_factory()
        events, result = client.run(
            language="pylite", source=SOURCE, config={"time_budget": 60.0}
        )
        kinds = [e.get("event") for e in events]
        assert "TestCaseFound" in kinds
        assert result["hl_paths"] == 2  # total <= 20 vs ValueError

    def test_unknown_language_is_rejected_with_known_names(self, daemon_factory):
        _service, client = daemon_factory()
        with pytest.raises(ServiceError, match="pylite"):
            client.run(language="ruby", source="x = 1\n")

    def test_compile_error_is_rejected_not_crashed(self, daemon_factory):
        service, client = daemon_factory()
        with pytest.raises(ServiceError):
            client.run(language="pylite", source="x = 1 / 2\n")
        # ...and the daemon keeps serving.
        assert client.ping()["ok"] is True


class TestCli:
    def _cli(self, *argv, timeout=120.0):
        env = dict(os.environ)
        src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src_root)
        return subprocess.run(
            [sys.executable, "-m", "repro.service", *argv],
            capture_output=True,
            text=True,
            timeout=timeout,
            env=env,
        )

    def test_run_subcommand_against_live_daemon(self, daemon_factory, tmp_path):
        service, _client = daemon_factory()
        target = tmp_path / "target.py"
        target.write_text(SOURCE)
        proc = self._cli(
            "run",
            "--socket", service.config.socket_path,
            "--language", "pylite",
            "--file", str(target),
            "--time-budget", "60",
            "--quiet",
        )
        assert proc.returncode == 0, proc.stderr
        lines = [json.loads(l) for l in proc.stdout.splitlines() if l.strip()]
        finished = [e for e in lines if e.get("event") == "RunFinished"]
        assert len(finished) == 1
        assert finished[0]["result"]["hl_paths"] == 2

    def test_run_help_lists_registered_languages(self):
        proc = self._cli("run", "--help", timeout=60.0)
        assert proc.returncode == 0
        help_text = proc.stdout
        for name in ("minilua", "minipy", "pylite"):
            assert name in help_text
