"""Dedicated NICE-style engine and differential testing."""

import pytest

from repro.dedicated import DedicatedNiceEngine, differential_test
from repro.dedicated.features import FEATURE_MATRIX, PROBES

from tests.conftest import requires_clay


class TestNiceEngine:
    def test_explores_symbolic_int_branches(self):
        engine = DedicatedNiceEngine("""
x = sym_int(0, 0, 9)
if x > 4:
    print(1)
else:
    print(0)
""")
        result = engine.run(time_budget=5.0)
        assert result.paths == 2
        assert result.unsupported is None

    def test_nested_branches(self):
        engine = DedicatedNiceEngine("""
x = sym_int(0, 0, 9)
y = sym_int(0, 0, 9)
if x > 4:
    if y > 4:
        print(3)
    else:
        print(2)
else:
    print(1)
""")
        result = engine.run(time_budget=5.0)
        assert result.paths == 3

    def test_dict_membership_on_symbolic_key(self):
        engine = DedicatedNiceEngine("""
d = {1: 10, 3: 30}
x = sym_int(0, 0, 4)
if x in d:
    print(1)
else:
    print(0)
""")
        result = engine.run(time_budget=5.0)
        assert result.paths == 2

    def test_loops_with_symbolic_bound_checks(self):
        engine = DedicatedNiceEngine("""
n = sym_int(0, 0, 3)
i = 0
while i < n:
    i += 1
print(i)
""")
        result = engine.run(time_budget=5.0)
        assert result.paths == 4  # n = 0..3

    def test_symbolic_string_unsupported(self):
        engine = DedicatedNiceEngine('s = sym_string("ab")\nprint(len(s))')
        result = engine.run(time_budget=2.0)
        assert result.unsupported is not None

    def test_exceptions_unsupported(self):
        engine = DedicatedNiceEngine("""
x = sym_int(0, 0, 3)
try:
    print(x)
except ValueError:
    print(0)
""")
        result = engine.run(time_budget=2.0)
        assert result.unsupported is not None

    def test_native_methods_unsupported(self):
        engine = DedicatedNiceEngine('print("abc".find("b"))')
        result = engine.run(time_budget=2.0)
        assert result.unsupported is not None

    def test_concrete_programs_have_one_path(self):
        engine = DedicatedNiceEngine("x = 1\nprint(x + 1)")
        result = engine.run(time_budget=2.0)
        assert result.paths == 1
        assert result.branch_conditions == 0

    def test_max_paths_limit(self):
        engine = DedicatedNiceEngine("""
a = sym_int(0, 0, 1)
b = sym_int(0, 0, 1)
c = sym_int(0, 0, 1)
if a > 0:
    print(1)
if b > 0:
    print(2)
if c > 0:
    print(3)
""")
        result = engine.run(time_budget=5.0, max_paths=3)
        assert result.paths == 3


_NOT_PROGRAM = """
def gate(flag, x):
    if not flag == 1:
        return x + 100
    return x

f = sym_int(0, 0, 1)
x = sym_int(0, 0, 3)
print(gate(f, x))
"""


@requires_clay
class TestDifferential:
    def test_agreement_without_bug(self):
        report = differential_test(_NOT_PROGRAM, time_budget=5.0, legacy_not_bug=False)
        assert not report.found_bug
        assert report.chef_paths == report.dedicated_paths

    def test_not_bug_detected(self):
        report = differential_test(_NOT_PROGRAM, time_budget=5.0, legacy_not_bug=True)
        assert report.found_bug
        assert report.missed_by_dedicated or report.redundant_dedicated_tests


class TestFeatureMatrix:
    def test_rows_complete(self):
        engines = {"CHEF", "CutiePy", "NICE", "Commuter"}
        for _group, _feature, support in FEATURE_MATRIX:
            assert engines <= set(support)

    def test_chef_dominates_nice(self):
        """Table 4's visual takeaway: CHEF's column dominates NICE's."""
        order = {"none": 0, "partial": 1, "complete": 2}
        for group, feature, support in FEATURE_MATRIX:
            if group == "meta":
                continue
            assert order[support["CHEF"]] >= order[support["NICE"]], feature

    def test_probe_list_covers_key_features(self):
        probed = {feature for feature, _src, _ok in PROBES}
        assert "Strings" in probed
        assert "Advanced control flow" in probed
        assert "Native methods" in probed
