"""MiniLua host VM semantics battery."""

import pytest

from repro.interpreters.minilua.bytecode import (
    LUA_ERROR_ARITH,
    LUA_ERROR_TYPE,
    LUA_ERROR_USER,
)
from repro.interpreters.minilua.compiler import compile_lua
from repro.interpreters.minilua.hostvm import LuaHostVM


def run(source, inputs=None):
    return LuaHostVM(compile_lua(source), symbolic_inputs=inputs).run()


def out_of(source, inputs=None):
    result = run(source, inputs)
    assert result.error is None, result.error
    return result.output


class TestValues:
    def test_arithmetic_integer_division(self):
        assert out_of("print(7 / 2)\nprint(7 % 3)") == [1, 3, 1, 1]

    def test_concat_coerces(self):
        assert out_of('print("n=" .. 42)')[2:] == [ord(c) for c in "n=42"]

    def test_zero_is_truthy(self):
        assert out_of("if 0 then print(1) else print(0) end") == [1, 1]

    def test_nil_and_false_are_falsy(self):
        assert out_of("if nil then print(1) else print(0) end") == [1, 0]
        assert out_of("if false then print(1) else print(0) end") == [1, 0]

    def test_unset_global_is_nil(self):
        assert out_of("print(never_set)") == [3]

    def test_inequality_operator(self):
        assert out_of('print("a" ~= "b")') == [2, 1]


class TestTables:
    def test_constructor_and_length(self):
        assert out_of("local t = {10, 20, 30}\nprint(#t)\nprint(t[2])") == [1, 3, 1, 20]

    def test_string_keys_and_dot_sugar(self):
        assert out_of('local t = {}\nt.name = 5\nprint(t["name"])') == [1, 5]

    def test_missing_key_is_nil(self):
        assert out_of("local t = {}\nprint(t[99])") == [3]

    def test_table_insert_appends(self):
        assert out_of("local t = {1}\ntable.insert(t, 2)\nprint(#t)\nprint(t[2])") == [1, 2, 1, 2]

    def test_nil_assignment_deletes(self):
        assert out_of("local t = {1, 2}\nt[2] = nil\nprint(#t)") == [1, 1]

    def test_length_stops_at_hole(self):
        assert out_of("local t = {}\nt[1] = 1\nt[3] = 3\nprint(#t)") == [1, 1]


class TestControlFlow:
    def test_numeric_for(self):
        assert out_of("local s = 0\nfor i = 1, 5 do s = s + i end\nprint(s)") == [1, 15]

    def test_for_with_break(self):
        src = """
local found = 0
for i = 1, 10 do
    if i == 4 then
        found = i
        break
    end
end
print(found)
"""
        assert out_of(src) == [1, 4]

    def test_while_and_elseif(self):
        src = """
function grade(n)
    if n > 8 then
        return "A"
    elseif n > 5 then
        return "B"
    else
        return "C"
    end
end
print(grade(9))
print(grade(7))
print(grade(1))
"""
        out = out_of(src)
        assert out == [4, 1, ord("A"), 4, 1, ord("B"), 4, 1, ord("C")]

    def test_functions_pad_missing_args_with_nil(self):
        src = """
function f(a, b)
    if b == nil then
        return 1
    end
    return 2
end
print(f(5))
print(f(5, 6))
"""
        assert out_of(src) == [1, 1, 1, 2]


class TestStdlib:
    def test_string_sub_one_based_inclusive(self):
        assert out_of('print(string.sub("hello", 2, 4))')[2:] == [ord(c) for c in "ell"]

    def test_string_sub_negative(self):
        assert out_of('print(string.sub("hello", -3, -1))')[2:] == [ord(c) for c in "llo"]

    def test_string_find_one_based_or_nil(self):
        assert out_of('print(string.find("hello", "ll"))') == [1, 3]
        assert out_of('print(string.find("hello", "zz"))') == [3]

    def test_string_byte_char(self):
        assert out_of('print(string.byte("A", 1))') == [1, 65]
        assert out_of("print(string.char(66))") == [4, 1, 66]
        assert out_of('print(string.byte("A", 9))') == [3]

    def test_string_case(self):
        assert out_of('print(string.upper("aB"))')[2:] == [ord(c) for c in "AB"]
        assert out_of('print(string.lower("aB"))')[2:] == [ord(c) for c in "ab"]

    def test_tostring_tonumber(self):
        assert out_of("print(tostring(12))")[2:] == [ord(c) for c in "12"]
        assert out_of("print(tostring(nil))")[2:] == [ord(c) for c in "nil"]
        assert out_of('print(tonumber("  -9 "))') == [1, -9]
        assert out_of('print(tonumber("4x"))') == [3]


class TestErrors:
    def test_error_builtin(self):
        result = run('error("boom")')
        assert result.error is not None
        assert result.error.code == LUA_ERROR_USER

    def test_arith_on_string_is_error(self):
        result = run('local x = "a" + 1')
        assert result.error.code == LUA_ERROR_ARITH

    def test_call_non_function(self):
        result = run("local x = 5\nx()")
        assert result.error.code == LUA_ERROR_TYPE

    def test_index_non_table(self):
        result = run("local x = 5\nprint(x[1])")
        assert result.error.code == LUA_ERROR_TYPE

    def test_nil_table_key_rejected(self):
        result = run("local t = {}\nt[nil] = 1")
        assert result.error.code == LUA_ERROR_TYPE

    def test_budget_flags_infinite_loop(self):
        result = LuaHostVM(compile_lua("while true do end"), instr_budget=5000).run()
        assert result.hit_budget


class TestSymbolicReplay:
    def test_sym_string(self):
        result = run('local s = sym_string("xx")\nprint(s)', inputs=["ok"])
        assert result.output[2:] == [ord("o"), ord("k")]

    def test_sym_int(self):
        result = run("local n = sym_int(0, 0, 9)\nprint(n)", inputs=[[5]])
        assert result.output == [1, 5]
