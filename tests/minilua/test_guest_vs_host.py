"""MiniLua differential tests: Clay interpreter vs host VM."""

import pytest

from repro.chef.options import ChefConfig, InterpreterBuildOptions
from repro.interpreters.minilua.engine import MiniLuaEngine

from tests.conftest import requires_clay

pytestmark = requires_clay

_PROGRAMS = {
    "arith": """
print(2 + 3 * 4)
print(7 / 2)
print(7 % 3)
print(2 < 3)
""",
    "strings": """
local s = "Hello World"
print(string.sub(s, 1, 5))
print(string.find(s, "World"))
print(string.lower(s))
print(#s)
print("a" .. 1 .. true)
""",
    "tables": """
local t = {5, 6}
table.insert(t, 7)
print(#t)
print(t[3])
t.key = "v"
print(t.key)
t[2] = nil
print(#t)
""",
    "control": """
local total = 0
for i = 1, 10 do
    if i % 2 == 0 then
        total = total + i
    end
end
print(total)
local n = 1
while n < 50 do n = n * 2 end
print(n)
""",
    "functions": """
function fib(n)
    if n < 2 then
        return n
    end
    return fib(n - 1) + fib(n - 2)
end
print(fib(12))
""",
    "logic": """
print(true and 1 == 1)
print(false or nil)
print(not nil)
print(0 and true)
""",
}


@pytest.mark.parametrize("name", sorted(_PROGRAMS))
@pytest.mark.parametrize("build", ["vanilla", "full"])
def test_lua_guest_matches_host(name, build):
    options = (
        InterpreterBuildOptions.full()
        if build == "full"
        else InterpreterBuildOptions.vanilla()
    )
    engine = MiniLuaEngine(
        _PROGRAMS[name],
        ChefConfig(
            time_budget=30.0,
            interpreter_options=options,
            path_instr_budget=3_000_000,
        ),
    )
    result = engine.run()
    case = result.suite.cases[0]
    assert case.status == "halted", (case.status, case.output)
    host = engine.replay(case)
    assert host.error is None, host.error
    assert case.output == host.output


def test_lua_error_agrees():
    engine = MiniLuaEngine('error("x")', ChefConfig(time_budget=30.0))
    result = engine.run()
    case = result.suite.cases[0]
    host = engine.replay(case)
    assert case.exception_type == host.error.code


def test_lua_symbolic_branching():
    source = """
local s = sym_string("\\0\\0\\0")
if string.find(s, "@") == nil then
    print(0)
else
    print(1)
end
"""
    engine = MiniLuaEngine(source, ChefConfig(strategy="cupa-path", time_budget=8.0))
    result = engine.run()
    outputs = {tuple(c.output) for c in result.hl_test_cases}
    assert (1, 0) in outputs and (1, 1) in outputs
