"""MiniLua frontend/compiler unit tests."""

import pytest

from repro.errors import MiniLangCompileError, MiniLangSyntaxError
from repro.interpreters.minilua.bytecode import LOp, LUA_BUILTINS
from repro.interpreters.minilua.compiler import compile_lua
from repro.interpreters.minilua.frontend import parse_lua, tokenize_lua


class TestLexer:
    def test_keywords_and_names(self):
        toks = tokenize_lua("local x = nil")
        assert [t.kind for t in toks[:-1]] == ["kw", "name", "op", "kw"]

    def test_comments_stripped(self):
        toks = tokenize_lua("x = 1 -- comment\ny = 2")
        values = [t.value for t in toks if t.kind == "num"]
        assert values == [1, 2]

    def test_string_escapes(self):
        toks = tokenize_lua(r'"a\n\x41"')
        assert toks[0].value == "a\nA"

    def test_lua_operators(self):
        toks = tokenize_lua("a ~= b .. #c")
        ops = [t.value for t in toks if t.kind == "op"]
        assert ops == ["~=", "..", "#"]

    def test_unterminated_string(self):
        with pytest.raises(MiniLangSyntaxError):
            tokenize_lua('"oops')


class TestParser:
    def test_chunk_shape(self):
        chunk = parse_lua("""
function f(a)
    return a + 1
end
local y = f(2)
""")
        assert len(chunk.body) == 2

    def test_elseif_chain(self):
        chunk = parse_lua("""
if a then
    x = 1
elseif b then
    x = 2
else
    x = 3
end
""")
        outer = chunk.body[0]
        assert outer.orelse and outer.orelse[0].orelse

    def test_dot_is_string_index(self):
        chunk = parse_lua("x = t.field")
        index = chunk.body[0].value
        assert index.key.value == "field"

    def test_statement_must_be_call(self):
        with pytest.raises(MiniLangSyntaxError):
            parse_lua("x + 1")

    def test_concat_right_associative(self):
        chunk = parse_lua('x = "a" .. "b" .. "c"')
        node = chunk.body[0].value
        assert node.right.op == ".."


class TestCompiler:
    def test_locals_vs_globals(self):
        module = compile_lua("""
g = 1
local l = 2
function f(p)
    local inner = p
    return inner + g
end
""")
        assert "g" in module.global_names
        assert "f" in module.global_names
        assert "l" not in module.global_names  # chunk-local
        func = [c for c in module.codes if c.name == "f"][0]
        assert func.argcount == 1
        assert "inner" in func.varnames

    def test_dotted_builtins_resolved(self):
        module = compile_lua('x = string.sub("abc", 1, 2)')
        assert "string.sub" in module.global_names
        slot = module.global_names["string.sub"]
        assert module.global_inits[slot] == ("builtin", LUA_BUILTINS["string.sub"])

    def test_numeric_for_desugars_to_while(self):
        module = compile_lua("for i = 1, 3 do print(i) end")
        main = module.codes[0]
        ops = [op for op, _arg in main.instrs]
        assert LOp.POP_JUMP_IF_FALSE in ops
        assert "i" in main.varnames

    def test_break_outside_loop_rejected(self):
        with pytest.raises(MiniLangCompileError):
            compile_lua("break")

    def test_jump_targets_in_range(self):
        module = compile_lua("""
function f(x)
    while x > 0 do
        if x == 2 then
            break
        end
        x = x - 1
    end
    return x
end
""")
        for code in module.codes:
            n = len(code.instrs)
            for op, arg in code.instrs:
                if op in (LOp.JUMP, LOp.POP_JUMP_IF_FALSE, LOp.POP_JUMP_IF_TRUE):
                    assert 0 <= arg <= n

    def test_coverable_lines(self):
        module = compile_lua("x = 1\n\n-- c\ny = 2\n")
        assert module.coverable_lines == [1, 4]
