"""Service-seam chaos: dropped connections vs. client retry/backoff.

The daemon's fault plan hangs up on clients before reading their
request; a client without retries must fail fast with a clear error,
and a client with retries must ride out the drop budget and finish the
operation — including a full ``run`` stream, which is only ever
re-submitted when *zero* events have streamed (replaying a half-run
would duplicate path events).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.bench.workloads import branchy_source
from repro.faults import FaultPlan
from repro.service import ChefService, ServiceClient, ServiceConfig
from repro.service.__main__ import _build_parser
from repro.service.client import ServiceError

#: drop the first two connections, before any reply crosses the wire.
_DROP_PLAN = FaultPlan(drop_connection_after_events=1, drop_connections=2)


@pytest.fixture
def faulty_daemon(tmp_path):
    """A daemon whose first two connections are dropped.

    Readiness waits on the socket *file* — the usual ping-until-alive
    loop would burn the drop budget the test is about.
    """
    socket_path = str(tmp_path / "svc.sock")
    service = ChefService(
        ServiceConfig(
            socket_path=socket_path,
            workers=2,
            max_time_budget=120.0,
            fault_plan=_DROP_PLAN,
        )
    )
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30.0
    while not os.path.exists(socket_path):
        assert time.monotonic() < deadline, "daemon socket never appeared"
        time.sleep(0.01)
    yield socket_path, service
    try:
        # Enough retries to out-last whatever drop budget remains.
        ServiceClient(socket_path, retries=4, backoff=0.01).shutdown()
    except Exception:
        pass
    thread.join(timeout=30.0)


class TestConnectionDrops:
    def test_no_retries_fails_fast(self, faulty_daemon):
        socket_path, _service = faulty_daemon
        client = ServiceClient(socket_path)  # retries=0
        # The drop surfaces as a clean no-reply close or as a reset/
        # broken pipe, depending on how far the request write got.
        with pytest.raises((ServiceError, ConnectionError)):
            client.ping()

    def test_retries_ride_out_the_drop_budget(self, faulty_daemon):
        socket_path, service = faulty_daemon
        client = ServiceClient(socket_path, retries=3, backoff=0.01)
        assert client.ping()["ok"]
        assert (
            service.registry.counter("service.connections_dropped").value == 2
        )

    def test_run_stream_retries_before_first_event(self, faulty_daemon):
        socket_path, _service = faulty_daemon
        client = ServiceClient(socket_path, retries=3, backoff=0.01)
        events, result = client.run(clay=branchy_source(3))
        assert result["ll_paths"] == 8
        finished = [e for e in events if e.get("event") == "RunFinished"]
        assert len(finished) == 1, "retries must not duplicate the stream"

    def test_deadline_bounds_the_retry_loop(self, tmp_path):
        client = ServiceClient(
            str(tmp_path / "never.sock"),
            retries=50,
            backoff=0.01,
            deadline=0.2,
        )
        start = time.monotonic()
        with pytest.raises((ServiceError, OSError)):
            client.ping()
        assert time.monotonic() - start < 5.0


class TestServiceCli:
    def test_run_accepts_retry_and_timeout_flags(self):
        args = _build_parser().parse_args(
            [
                "run", "--socket", "/tmp/s.sock", "--clay-file", "t.clay",
                "--retries", "2", "--timeout", "7.5",
                "--solver-deadline", "0.5", "--checkpoint-dir", "/tmp/ck",
            ]
        )
        assert args.retries == 2
        assert args.timeout == 7.5
        assert args.solver_deadline == 0.5
        assert args.checkpoint_dir == "/tmp/ck"

    def test_resume_verb_parses(self):
        args = _build_parser().parse_args(
            [
                "resume", "--socket", "/tmp/s.sock", "--checkpoint", "/tmp/ck",
                "--retries", "1", "--time-budget", "9",
            ]
        )
        assert args.command == "resume"
        assert args.checkpoint == "/tmp/ck"
        assert args.retries == 1
        assert args.time_budget == 9.0

    def test_serve_accepts_solver_deadline_cap(self):
        args = _build_parser().parse_args(
            ["serve", "--socket", "/tmp/s.sock", "--max-solver-deadline", "2.0"]
        )
        assert args.max_solver_deadline == 2.0
