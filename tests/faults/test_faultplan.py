"""Unit tests for the deterministic fault-injection harness itself.

The chaos scenarios (worker kills, wedged solvers, torn checkpoints)
only prove anything if the harness is exactly reproducible and exactly
free when disabled — both are pinned here.
"""

from __future__ import annotations

import pytest

from repro.errors import SolverTimeout
from repro.faults import FaultInjector, FaultPlan, make_injector, strip_noop


class TestFaultPlan:
    def test_from_seed_is_deterministic(self):
        assert FaultPlan.from_seed(7) == FaultPlan.from_seed(7)
        assert FaultPlan.from_seed(7).kill_chunk is not None

    def test_from_seed_overrides_win(self):
        plan = FaultPlan.from_seed(7, kill_chunk=(1, 2), kill_attempts=5)
        assert plan.kill_chunk == (1, 2)
        assert plan.kill_attempts == 5
        assert plan.seed == 7

    def test_seeds_sweep_distinct_schedules(self):
        kills = {FaultPlan.from_seed(s).kill_chunk for s in range(16)}
        assert len(kills) > 1

    def test_default_plan_is_noop(self):
        assert FaultPlan().is_noop
        assert not FaultPlan(kill_chunk=(0, 0)).is_noop
        assert not FaultPlan(wedge_from_query=0).is_noop
        assert not FaultPlan(fail_query_every=3).is_noop
        assert not FaultPlan(truncate_tail_bytes=1).is_noop
        assert not FaultPlan(drop_connection_after_events=0).is_noop

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan.from_seed(3, fail_query_every=2)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestMakeInjector:
    def test_none_and_noop_plans_yield_no_injector(self):
        assert make_injector(None) is None
        assert make_injector(FaultPlan()) is None
        assert strip_noop(FaultPlan()) is None
        assert strip_noop(None) is None

    def test_real_plan_yields_injector(self):
        plan = FaultPlan(kill_chunk=(0, 1))
        injector = make_injector(plan)
        assert isinstance(injector, FaultInjector)
        assert strip_noop(plan) is plan


class TestKillHook:
    def test_kill_matches_original_coordinates_and_attempt(self):
        injector = make_injector(FaultPlan(kill_chunk=(1, 2)))
        assert injector.should_kill_task((1, 2, 0))
        assert not injector.should_kill_task((1, 2, 1)), "requeue must be spared"
        assert not injector.should_kill_task((1, 3, 0))
        assert not injector.should_kill_task((0, 2, 0))
        assert not injector.should_kill_task(None)

    def test_kill_attempts_keeps_killing_requeues(self):
        injector = make_injector(FaultPlan(kill_chunk=(0, 0), kill_attempts=3))
        assert injector.should_kill_task((0, 0, 0))
        assert injector.should_kill_task((0, 0, 2))
        assert not injector.should_kill_task((0, 0, 3))


class TestSolverHook:
    def test_fail_query_every_nth(self):
        injector = make_injector(FaultPlan(fail_query_every=3))
        injector.on_solver_query()  # 1
        injector.on_solver_query()  # 2
        with pytest.raises(SolverTimeout):
            injector.on_solver_query()  # 3
        injector.on_solver_query()  # 4
        injector.on_solver_query()  # 5
        with pytest.raises(SolverTimeout):
            injector.on_solver_query()  # 6

    def test_wedge_only_from_ordinal(self, monkeypatch):
        import repro.faults as faults_mod

        sleeps = []
        monkeypatch.setattr(faults_mod.time, "sleep", sleeps.append)
        injector = make_injector(
            FaultPlan(wedge_from_query=2, wedge_seconds=0.5)
        )
        injector.on_solver_query()  # ordinal 0: clean
        injector.on_solver_query()  # ordinal 1: clean
        assert sleeps == []
        injector.on_solver_query()  # ordinal 2: wedged
        injector.on_solver_query()  # ordinal 3: wedged
        assert sleeps == [0.5, 0.5]


class TestTruncateHook:
    def test_truncation_burns_out(self, tmp_path):
        injector = make_injector(
            FaultPlan(truncate_tail_bytes=3, truncate_writes=2)
        )
        path = tmp_path / "victim.bin"
        path.write_bytes(b"0123456789")
        assert injector.maybe_truncate(str(path))
        assert path.read_bytes() == b"0123456"
        assert injector.maybe_truncate(str(path))
        assert path.read_bytes() == b"0123"
        # Burned out: third write survives untouched.
        assert not injector.maybe_truncate(str(path))
        assert path.read_bytes() == b"0123"

    def test_truncation_never_goes_negative(self, tmp_path):
        injector = make_injector(FaultPlan(truncate_tail_bytes=100))
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"xy")
        assert injector.maybe_truncate(str(path))
        assert path.read_bytes() == b""

    def test_missing_file_is_not_torn(self, tmp_path):
        injector = make_injector(FaultPlan(truncate_tail_bytes=1))
        assert not injector.maybe_truncate(str(tmp_path / "absent"))


class TestConnectionHook:
    def test_drops_burn_out(self):
        injector = make_injector(
            FaultPlan(drop_connection_after_events=1, drop_connections=2)
        )
        assert not injector.should_drop_connection(0)
        assert injector.should_drop_connection(1)
        assert injector.should_drop_connection(5)
        assert not injector.should_drop_connection(5), "budget exhausted"
