"""Shared fixtures for the chaos suite.

Every test here runs against the process-wide shared worker pools, and
several of them deliberately crash workers; the autouse fixture makes
sure one test's carnage (replacement pools, quarantined registries)
never leaks into the next.
"""

from __future__ import annotations

import pytest

from repro.parallel.pool import close_shared_pools


@pytest.fixture(autouse=True)
def _fresh_shared_pools():
    """Isolate the process-wide pool registry per test."""
    close_shared_pools()
    yield
    close_shared_pools()
