"""Solver graceful degradation: wedged queries become ``unknown``.

A per-query deadline turns a wedged backend into counted ``unknown``
verdicts instead of a hung campaign; the executor's ``unknown_policy``
decides whether the affected state is pruned (sound default) or adopts
its seed assignment and keeps exploring (optimistic).
"""

from __future__ import annotations

from repro.api.events import RunFinished
from repro.api.session import SymbolicSession
from repro.bench.workloads import branchy_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.faults import FaultPlan

_DEPTH = 3
_PATHS = 2 ** _DEPTH


def _run(fault_plan, *, workers=1, **overrides):
    program = compile_program(branchy_source(_DEPTH)).program
    config = ChefConfig(
        time_budget=60.0, workers=workers, fault_plan=fault_plan, **overrides
    )
    session = SymbolicSession.from_program(program, config)
    events = list(session.events())
    return session, events


class TestDeadlineDegradation:
    def test_wedged_solver_degrades_to_unknown_serial(self):
        """Every query past #2 stalls longer than the deadline allows."""
        session, events = _run(
            FaultPlan(wedge_from_query=2, wedge_seconds=0.05),
            solver_deadline_s=0.01,
        )
        assert isinstance(events[-1], RunFinished), "wedged run must terminate"
        metrics = session.metrics()
        assert metrics.get("solver.deadline_unknowns", 0) > 0
        # Unknown activations are pruned under the default policy.
        assert session.result.engine_stats.get("states_timeout", 0) > 0
        assert session.result.ll_paths < _PATHS
        assert session.result.duration < 60.0

    def test_wedged_workers_degrade_in_parallel(self):
        """The deadline and the wedge both ship through pool configure."""
        session, events = _run(
            FaultPlan(wedge_from_query=2, wedge_seconds=0.05),
            workers=2,
            solver_deadline_s=0.01,
        )
        assert isinstance(events[-1], RunFinished)
        assert session.metrics().get("solver.deadline_unknowns", 0) > 0

    def test_no_deadline_means_no_deadline_unknowns(self):
        session, _events = _run(None)
        assert session.metrics().get("solver.deadline_unknowns", 0) == 0
        assert session.result.ll_paths == _PATHS


class TestInjectedSolverFailures:
    def test_injected_timeouts_are_counted_and_survived(self):
        session, events = _run(FaultPlan(fail_query_every=3))
        assert isinstance(events[-1], RunFinished)
        assert session.metrics().get("solver.timeouts", 0) > 0
        assert session.result.ll_paths <= _PATHS


class TestUnknownPolicy:
    def test_prune_policy_drops_every_unknown_activation(self):
        """With every query failing, only the boot path survives."""
        session, _events = _run(FaultPlan(fail_query_every=1))
        assert session.result.ll_paths == 1
        assert session.result.engine_stats.get("states_unknown_adopted", 0) == 0

    def test_feasible_policy_adopts_seed_and_keeps_exploring(self):
        session, _events = _run(
            FaultPlan(fail_query_every=1), unknown_policy="feasible"
        )
        assert session.result.engine_stats.get("states_unknown_adopted", 0) > 0
        assert session.result.ll_paths > 1
