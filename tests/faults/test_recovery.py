"""Lost-chunk recovery: a SIGKILLed worker must not change the run.

The acceptance bar for the fault-tolerance layer: with a seeded
:class:`FaultPlan` killing a worker mid-run at ``workers=2``, the path
multiset is identical to an uninjected run, ``recovery.*`` counters
tell the story, metrics fold exactly once (no double-counted
``solver.*``), and no zombie children outlive the pool.  Repeat-offender
states are quarantined instead of wedging the run in a crash loop.
"""

from __future__ import annotations

import multiprocessing
from collections import Counter

from repro.api.events import PathCompleted, StateQuarantined, TestCaseFound
from repro.api.session import SymbolicSession
from repro.bench.workloads import branchy_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.faults import FaultPlan
from repro.parallel.pool import close_shared_pools

#: branchy_source(4) explores exactly 2**4 low-level paths.
_DEPTH = 4
_PATHS = 2 ** _DEPTH

#: Round 1 holds the boot path's 4 pending children as 4 singleton
#: chunks (workers * steal_factor = 8 > 4), so (round=1, chunk=1) is a
#: deterministic mid-run kill point at workers=2.
_KILL = (1, 1)


def _case_key(case):
    return (
        tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
        case.status,
        case.hl_path_signature,
        tuple(case.output),
    )


def _run_campaign(fault_plan=None, **config_overrides):
    """One workers=2 campaign; returns (session, events list)."""
    program = compile_program(branchy_source(_DEPTH)).program
    config = ChefConfig(
        time_budget=120.0,
        workers=2,
        fault_plan=fault_plan,
        **config_overrides,
    )
    session = SymbolicSession.from_program(program, config)
    events = list(session.events())
    return session, events


class TestKillRecovery:
    def test_worker_kill_preserves_path_multiset(self):
        baseline, base_events = _run_campaign()
        close_shared_pools()  # injected run gets its own pool lifecycle
        injected, inj_events = _run_campaign(
            fault_plan=FaultPlan.from_seed(9, kill_chunk=_KILL)
        )

        def multiset(events):
            return Counter(
                _case_key(e.case) for e in events if isinstance(e, PathCompleted)
            )

        assert baseline.result.ll_paths == _PATHS
        assert injected.result.ll_paths == _PATHS
        assert multiset(inj_events) == multiset(base_events)

        metrics = injected.metrics()
        assert metrics.get("recovery.worker_crashes", 0) >= 1
        assert metrics.get("recovery.requeued_chunks", 0) > 0
        assert metrics.get("recovery.quarantined_states", 0) == 0
        assert baseline.metrics().get("recovery.worker_crashes", 0) == 0

    def test_worker_kill_leaves_no_zombie_children(self):
        _session, _events = _run_campaign(
            fault_plan=FaultPlan(kill_chunk=_KILL)
        )
        # The replacement pool's workers are the only children left...
        children = multiprocessing.active_children()  # reaps exited ones
        assert all(child.is_alive() for child in children)
        assert len(children) == 2
        # ...and closing the registry leaves zero.
        close_shared_pools()
        assert multiprocessing.active_children() == []

    def test_crash_recovery_never_double_counts_solver_metrics(self):
        """Satellite: the dead worker's slice folds exactly once.

        ``solver.queries`` increments once per feasibility check before
        any cache lookup, so the injected run must land on *exactly*
        the uninjected count: the kill fires at task pickup (no queries
        for the fatal chunk), in-flight results of the dead worker are
        never folded, and requeued singletons run exactly once.
        """
        baseline, _ = _run_campaign()
        base_metrics = baseline.metrics()
        close_shared_pools()
        injected, _ = _run_campaign(fault_plan=FaultPlan(kill_chunk=_KILL))
        inj_metrics = injected.metrics()

        assert injected.result.ll_paths == baseline.result.ll_paths == _PATHS
        assert inj_metrics.get("recovery.worker_crashes", 0) >= 1
        for name in (
            "solver.queries",
            "solver.sat",
            "solver.unsat",
            "engine.paths_completed",
        ):
            assert inj_metrics.get(name) == base_metrics.get(name), name


class TestQuarantine:
    def test_repeat_offender_state_is_quarantined(self):
        """A state that keeps killing workers is dropped, not retried forever."""
        session, events = _run_campaign(
            fault_plan=FaultPlan(kill_chunk=(1, 0), kill_attempts=99),
            quarantine_threshold=2,
        )
        quarantined = [e for e in events if isinstance(e, StateQuarantined)]
        assert len(quarantined) == 1
        assert quarantined[0].crashes == 2

        metrics = session.metrics()
        assert metrics.get("recovery.quarantined_states") == 1
        assert metrics.get("recovery.worker_crashes") == 2
        # The rest of the frontier still completes; only the offender's
        # subtree is lost.
        assert 0 < session.result.ll_paths < _PATHS
        assert session.result.ll_paths == len(
            [e for e in events if isinstance(e, PathCompleted)]
        )

    def test_spared_requeue_avoids_quarantine(self):
        """Default kill_attempts=1 spares the requeue: nothing quarantined."""
        session, events = _run_campaign(fault_plan=FaultPlan(kill_chunk=(1, 0)))
        assert not [e for e in events if isinstance(e, StateQuarantined)]
        assert session.result.ll_paths == _PATHS
        assert session.metrics().get("recovery.quarantined_states", 0) == 0

    def test_quarantine_keeps_test_suite_consistent(self):
        session, events = _run_campaign(
            fault_plan=FaultPlan(kill_chunk=(1, 0), kill_attempts=99),
            quarantine_threshold=2,
        )
        found = [e.case for e in events if isinstance(e, TestCaseFound)]
        assert len(found) == session.result.hl_paths
        assert all(case.new_hl_path for case in found)
