"""Checkpoint/resume under crashes and torn writes.

The headline acceptance scenario: a campaign SIGKILLed between
checkpoints resumes to the *identical* ``TestCaseFound`` multiset a
crash-free run produces.  The torn-write tests cut the checkpoint file
at every byte offset of its final frame and require longest-valid-
prefix recovery with the damage counted.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import struct
import time
from collections import Counter

import pytest

from repro.api.events import CheckpointSaved, RunFinished, TestCaseFound
from repro.api.session import SymbolicSession
from repro.bench.workloads import branchy_source
from repro.chef.checkpoint import (
    checkpoint_path,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.chef.options import ChefConfig
from repro.chef.testcase import TestCase
from repro.clay import compile_program
from repro.faults import FaultPlan

_LEN = struct.Struct(">Q")


def _case_key(case):
    return (
        tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
        case.status,
        case.hl_path_signature,
        tuple(case.output),
    )


def _found_multiset(events):
    return Counter(
        _case_key(e.case) for e in events if isinstance(e, TestCaseFound)
    )


def _run_to_events(depth, **overrides):
    program = compile_program(branchy_source(depth)).program
    session = SymbolicSession.from_program(
        program, ChefConfig(time_budget=120.0, **overrides)
    )
    return session, list(session.events())


def _frame_offsets(path):
    """Byte offset of each frame header in a checkpoint file."""
    offsets = []
    size = os.path.getsize(path)
    with open(path, "rb") as fh:
        while fh.tell() < size:
            offsets.append(fh.tell())
            (length,) = _LEN.unpack(fh.read(_LEN.size))
            fh.seek(length, os.SEEK_CUR)
    return offsets, size


class TestCheckpointCadence:
    def test_serial_run_emits_and_persists_checkpoints(self, tmp_path):
        ckpt_dir = str(tmp_path / "ckpt")
        session, events = _run_to_events(
            4, workers=1, checkpoint_dir=ckpt_dir, checkpoint_every=4
        )
        saves = [e for e in events if isinstance(e, CheckpointSaved)]
        assert saves, "checkpoint cadence produced no CheckpointSaved events"
        assert has_checkpoint(ckpt_dir)
        assert os.path.exists(os.path.join(ckpt_dir, "model-cache.store"))
        assert session.metrics().get("checkpoint.saves") == len(saves)
        assert session.result.ll_paths == 16

    def test_parallel_abandon_then_resume_identical_multiset(self, tmp_path):
        baseline, base_events = _run_to_events(4, workers=2)
        ckpt_dir = str(tmp_path / "ckpt")
        program = compile_program(branchy_source(4)).program
        session = SymbolicSession.from_program(
            program,
            ChefConfig(
                time_budget=120.0, workers=2,
                checkpoint_dir=ckpt_dir, checkpoint_every=1,
            ),
        )
        stream = session.events()
        for event in stream:
            if isinstance(event, CheckpointSaved):
                break
        stream.close()  # abandon the campaign mid-run
        assert has_checkpoint(ckpt_dir)

        resumed = SymbolicSession.resume(ckpt_dir, workers=2)
        resumed_events = list(resumed.events())
        assert _found_multiset(resumed_events) == _found_multiset(base_events)
        assert resumed.result.ll_paths == baseline.result.ll_paths == 16
        assert resumed.metrics().get("checkpoint.resumes") == 1


def _campaign_child(ckpt_dir: str, depth: int) -> None:
    program = compile_program(branchy_source(depth)).program
    session = SymbolicSession.from_program(
        program,
        ChefConfig(
            time_budget=120.0, workers=1,
            checkpoint_dir=ckpt_dir, checkpoint_every=2,
        ),
    )
    session.run()


class TestSigkillResume:
    def test_sigkilled_campaign_resumes_to_identical_multiset(self, tmp_path):
        depth = 5  # 32 paths, checkpoint every 2: plenty of kill window
        baseline, base_events = _run_to_events(depth, workers=1)

        ckpt_dir = str(tmp_path / "ckpt")
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_campaign_child, args=(ckpt_dir, depth))
        child.start()
        try:
            deadline = time.monotonic() + 60.0
            while not has_checkpoint(ckpt_dir):
                assert child.is_alive() or has_checkpoint(ckpt_dir), (
                    "campaign child died before writing a checkpoint"
                )
                assert time.monotonic() < deadline
                time.sleep(0.01)
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.join(timeout=30.0)
        assert child.exitcode == -signal.SIGKILL or child.exitcode == 0

        # Resume from the checkpoint *file* path (directories work too).
        resumed = SymbolicSession.resume(checkpoint_path(ckpt_dir))
        resumed_events = list(resumed.events())
        assert isinstance(resumed_events[-1], RunFinished)
        assert _found_multiset(resumed_events) == _found_multiset(base_events)
        assert resumed.result.ll_paths == baseline.result.ll_paths == 2 ** depth
        assert resumed.metrics().get("checkpoint.resumes") == 1


def _tiny_checkpoint(directory, frontier=(b"snap-a", b"snap-b")):
    cases = [
        TestCase(test_id=0, inputs={"b0": [97]}, status="ok", output=[1]),
        TestCase(test_id=1, inputs={"b0": [0]}, status="ok", output=[0]),
    ]
    return save_checkpoint(
        str(directory),
        config=ChefConfig(),
        namespace="t0",
        program_blob=b"program-image",
        rng_state=("synthetic", 1),
        ll_paths=2,
        tree="tree-payload",
        cfg="cfg-payload",
        timeline=[(0.1, 1, 1)],
        cases=cases,
        frontier=list(frontier),
    )


class TestTornCheckpoint:
    def test_truncate_at_every_offset_of_final_frame(self, tmp_path):
        """Longest-valid-prefix recovery at every possible tear point."""
        path = _tiny_checkpoint(tmp_path / "full")
        offsets, size = _frame_offsets(path)
        assert len(offsets) == 4  # meta, tree, cases, frontier
        blob = open(path, "rb").read()
        final_start = offsets[-1]
        torn_path = tmp_path / "torn.ckpt"
        for cut in range(final_start, size):
            torn_path.write_bytes(blob[:cut])
            ckpt = load_checkpoint(str(torn_path))
            assert ckpt.namespace == "t0"
            assert ckpt.ll_paths == 2
            assert ckpt.tree == "tree-payload"
            assert [c.test_id for c in ckpt.cases] == [0, 1]
            assert ckpt.frontier == [], f"cut at {cut} resurrected the frontier"
            # A cut exactly on the frame boundary looks like a clean
            # three-frame file; any cut inside the frame is damage.
            assert ckpt.corrupt_frames_skipped == (0 if cut == final_start else 1)

    def test_truncating_earlier_frames_loses_only_their_sections(self, tmp_path):
        path = _tiny_checkpoint(tmp_path / "full")
        offsets, _size = _frame_offsets(path)
        blob = open(path, "rb").read()
        torn_path = tmp_path / "torn.ckpt"
        # Mid-cases tear: tree survives, cases and frontier are lost.
        torn_path.write_bytes(blob[: offsets[3] - 1])
        ckpt = load_checkpoint(str(torn_path))
        assert ckpt.tree == "tree-payload"
        assert ckpt.cases == [] and ckpt.frontier == []
        assert ckpt.corrupt_frames_skipped == 1
        # Mid-meta tear: nothing recoverable -> hard error.
        torn_path.write_bytes(blob[: offsets[1] - 1])
        with pytest.raises(ValueError):
            load_checkpoint(str(torn_path))

    def test_garbage_frame_ends_scan_without_crashing(self, tmp_path):
        path = _tiny_checkpoint(tmp_path / "full")
        garbage = b"not a pickle"
        with open(path, "ab") as fh:
            fh.write(_LEN.pack(len(garbage)) + garbage)
        ckpt = load_checkpoint(path)
        assert ckpt.frontier == [b"snap-a", b"snap-b"]
        assert ckpt.corrupt_frames_skipped == 1

    def test_wrong_magic_frame_is_rejected(self, tmp_path):
        path = _tiny_checkpoint(tmp_path / "full")
        rogue = pickle.dumps(("other-magic/9", "frontier", [b"evil"]))
        with open(path, "ab") as fh:
            fh.write(_LEN.pack(len(rogue)) + rogue)
        ckpt = load_checkpoint(path)
        assert ckpt.frontier == [b"snap-a", b"snap-b"]
        assert ckpt.corrupt_frames_skipped == 1

    def test_fault_injected_torn_save_still_resumes(self, tmp_path):
        """Every save torn by the plan; resume recovers a valid prefix."""
        ckpt_dir = str(tmp_path / "ckpt")
        session, events = _run_to_events(
            3,
            workers=1,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=2,
            fault_plan=FaultPlan(truncate_tail_bytes=7, truncate_writes=99),
        )
        assert session.result.ll_paths == 8  # tearing never hurt the run
        resumed = SymbolicSession.resume(ckpt_dir)
        resumed_events = list(resumed.events())
        assert isinstance(resumed_events[-1], RunFinished)
        metrics = resumed.metrics()
        assert metrics.get("checkpoint.resumes") == 1
        assert metrics.get("checkpoint.corrupt_frames_skipped", 0) >= 1
        # Whatever the tear cost, the resumed multiset never exceeds the
        # crash-free one.
        full = _found_multiset(events)
        assert not (_found_multiset(resumed_events) - full)
