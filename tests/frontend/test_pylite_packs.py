"""Scenario-pack exploration: symtest end-to-end plus the §6.6 check.

Every pack (parser / state machine / codec) runs through the Fig. 7
symbolic-test pipeline at 1 and 2 workers; the path multiset must be
identical, and every generated test case must replay identically under
vanilla CPython (the differential oracle).
"""

import pytest

from repro.chef.options import ChefConfig
from repro.symtest.runner import SymbolicTestRunner
from repro.targets import pylite_targets


def _multiset(suite):
    return sorted(
        (
            tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
            tuple(case.output),
            case.exception_type,
            case.hang,
        )
        for case in suite.cases
    )


def _run(target, workers):
    runner = SymbolicTestRunner(
        target.source,
        target.symbolic_test(),
        ChefConfig(workers=workers, time_budget=120.0),
    )
    return runner, runner.run_symbolic()


@pytest.mark.parametrize("target", pylite_targets(), ids=lambda t: t.name)
class TestScenarioPacks:
    def test_differential_replay_all_cases(self, target):
        runner, result = _run(target, workers=1)
        assert result.suite.cases
        reports = runner.engine.differential_sweep(result.suite)
        assert all(r.matches for r in reports), [
            r.detail for r in reports if not r.matches
        ]

    def test_worker_counts_agree(self, target):
        _, serial = _run(target, workers=1)
        _, parallel = _run(target, workers=2)
        assert _multiset(serial.suite) == _multiset(parallel.suite)


class TestPackFindings:
    def test_parseint_finds_the_documented_valueerror(self):
        runner, result = _run(pylite_targets()[0], workers=1)
        names = {
            runner.engine.exception_name(t) for t in result.suite.exceptions()
        }
        assert "ValueError" in names

    def test_turnstile_raises_only_documented_exceptions(self):
        target = next(t for t in pylite_targets() if t.name == "turnstile")
        runner, result = _run(target, workers=1)
        names = {
            runner.engine.exception_name(t) for t in result.suite.exceptions()
        }
        assert names  # the unknown-command RuntimeError path is reachable
        assert all(target.is_documented(n) for n in names), names

    def test_rle_roundtrip_assertion_never_fires(self):
        target = next(t for t in pylite_targets() if t.name == "rle")
        runner, result = _run(target, workers=1)
        names = {
            runner.engine.exception_name(t) for t in result.suite.exceptions()
        }
        assert "AssertionError" not in names
