"""PyLite through the full stack: Session, workers, replay, semantics.

The acceptance bar for the frontend: ``Session("pylite", source)``
explores a symbolic branch+loop program with an identical path multiset
at 1, 2 and 4 workers, and every generated test case replays identically
under vanilla CPython.
"""

import pytest

import repro
from repro.api.session import SymbolicSession
from repro.chef.options import ChefConfig
from repro.interpreters.pylite.engine import PyLiteEngine


#: branch + loop over a symbolic string — the acceptance-criterion shape.
SCAN_SOURCE = (
    's = sym_string("ab!")\n'
    "seen = 0\n"
    "for i in range(len(s)):\n"
    "    c = ord(s[i])\n"
    "    if c < 48:\n"
    '        raise ValueError("control byte")\n'
    '    if s[i] == "a":\n'
    "        seen = seen + 1\n"
    "print(seen)\n"
)


def _multiset(suite):
    """Order-independent fingerprint of a test suite."""
    return sorted(
        (
            tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
            tuple(case.output),
            case.exception_type,
            case.hang,
        )
        for case in suite.cases
    )


class TestSessionEndToEnd:
    def test_pylite_is_a_session_language(self):
        assert "pylite" in repro.languages()

    def test_single_worker_run(self):
        session = repro.Session("pylite", SCAN_SOURCE)
        result = session.run()
        assert len(result.suite.cases) >= 4
        # at least one ValueError path and one clean path
        names = {session.exception_name(t) for t in result.suite.exceptions()}
        assert "ValueError" in names

    def test_path_multiset_identical_across_worker_counts(self):
        baseline = None
        for workers in (1, 2, 4):
            session = repro.Session(
                "pylite", SCAN_SOURCE, ChefConfig(workers=workers)
            )
            fingerprint = _multiset(session.run().suite)
            if baseline is None:
                baseline = fingerprint
            assert fingerprint == baseline, f"workers={workers} diverged"

    def test_differential_replay_of_every_case(self):
        engine = PyLiteEngine(SCAN_SOURCE)
        result = engine.run()
        reports = engine.differential_sweep(result.suite)
        assert reports and all(r.matches for r in reports), [
            r.detail for r in reports if not r.matches
        ]

    def test_session_replay_facade(self):
        session = repro.Session("pylite", SCAN_SOURCE)
        result = session.run()
        clean = [c for c in result.suite.cases if c.exception_type is None]
        assert clean
        host = session.replay(clean[0])
        assert host.exception is None
        assert list(host.output) == list(clean[0].output)

    def test_session_coverage(self):
        session = repro.Session("pylite", SCAN_SOURCE)
        result = session.run()
        covered, coverable = session.coverage(result.suite, replay_all=True)
        assert coverable == 9
        assert len(covered) == coverable  # exhaustive run covers every line

    def test_reexploration_via_for_engine(self):
        engine = PyLiteEngine(SCAN_SOURCE)
        first = SymbolicSession.for_engine(engine, language="pylite").run()
        second = SymbolicSession.for_engine(engine, language="pylite").run()
        assert _multiset(first.suite) == _multiset(second.suite)


class TestCPythonCornerSemantics:
    """Differential replay doubles as the semantics oracle: explore a
    corner, then require the LVM and CPython to agree on every path."""

    def _sweep(self, source):
        engine = PyLiteEngine(source)
        result = engine.run()
        reports = engine.differential_sweep(result.suite)
        assert reports and all(r.matches for r in reports), [
            r.detail for r in reports if not r.matches
        ]
        return engine, result

    def test_conditionally_bound_local_raises_unbound_local(self):
        # The straight-line "already assigned" shortcut would get this
        # wrong: binding happens on only one side of the branch.
        engine, result = self._sweep(
            "def f(n):\n"
            "    if n > 0:\n"
            "        x = 1\n"
            "    return x\n"
            "n = sym_int(1, 0, 1)\n"
            "print(f(n))\n"
        )
        names = {engine.exception_name(t) for t in result.suite.exceptions()}
        assert "UnboundLocalError" in names

    def test_unbound_global_raises_name_error(self):
        engine, result = self._sweep(
            "n = sym_int(0, 0, 1)\n"
            "if n == 1:\n"
            "    y = 5\n"
            "print(y)\n"
        )
        names = {engine.exception_name(t) for t in result.suite.exceptions()}
        assert "NameError" in names

    def test_division_by_symbolic_zero_forks(self):
        engine, result = self._sweep(
            "n = sym_int(1, 0, 3)\nprint(10 // n)\n"
        )
        names = {engine.exception_name(t) for t in result.suite.exceptions()}
        assert "ZeroDivisionError" in names

    def test_negative_floor_division_matches_cpython(self):
        # CPython floors toward -inf; naive truncation would diverge.
        self._sweep("n = sym_int(1, -3, 3)\nif n != 0:\n    print(-7 // n)\n")

    def test_negative_modulo_matches_cpython(self):
        self._sweep("n = sym_int(1, -3, 3)\nif n != 0:\n    print(-7 % n)\n")

    def test_index_wraparound_and_bounds(self):
        engine, result = self._sweep(
            's = "ab"\n'
            "n = sym_int(0, -4, 4)\n"
            "print(ord(s[n]))\n"
        )
        names = {engine.exception_name(t) for t in result.suite.exceptions()}
        assert "IndexError" in names

    def test_chr_range_check(self):
        engine, result = self._sweep(
            "n = sym_int(65, 200, 300)\nprint(chr(n))\n"
        )
        names = {engine.exception_name(t) for t in result.suite.exceptions()}
        assert "ValueError" in names

    def test_dict_missing_key_forks_key_error(self):
        engine, result = self._sweep(
            "d = {}\n"
            'd["a"] = 1\n'
            'd["b"] = 2\n'
            's = sym_string("a")\n'
            "print(d[s])\n"
        )
        names = {engine.exception_name(t) for t in result.suite.exceptions()}
        assert "KeyError" in names

    def test_boolop_returns_operand_value(self):
        self._sweep(
            "n = sym_int(0, 0, 2)\n"
            "x = n or 7\n"
            "y = n and 9\n"
            "print(x)\nprint(y)\n"
        )

    def test_string_membership(self):
        self._sweep(
            's = sym_string("ab")\n'
            'if "a" in s:\n'
            "    print(1)\n"
            "else:\n"
            "    print(0)\n"
        )
