"""Golden tests for the PyLite frontend: source → IR dump → CFG → paths.

Each case pins the *exact* three-address IR listing and CFG shape for a
small program, then runs it symbolically and pins the exact path count.
A lowering change that shifts an instruction, a temp number or an edge
shows up here as a readable diff, not as a mystery path-count change
three layers up.
"""

import textwrap

from repro.frontend import compile_pylite
from repro.interpreters.pylite.engine import PyLiteEngine


def _explore(source):
    engine = PyLiteEngine(source)
    result = engine.run()
    reports = engine.differential_sweep(result.suite)
    assert all(r.matches for r in reports), [r.detail for r in reports]
    return result


BRANCH_SOURCE = (
    "n = sym_int(5, 0, 9)\n"
    "if n < 3:\n"
    "    print(0)\n"
    "else:\n"
    "    print(1)\n"
)

BRANCH_IR = """\
func main() temps=12
    0: line 1 kind=1
    1: t0 = 5
    2: t1 = 0
    3: t2 = 9
    4: t3 = sym_int(t0, t1, t2)
    5: global n = t3
    6: line 2 kind=2
    7: t4 = global n
    8: t5 = 3
    9: t6 = t4 lt t5
   10: if t6 jmp @11 else @15
   11: line 3 kind=5
   12: t7 = 0
   13: t8 = print(t7)
   14: jmp @18
   15: line 5 kind=5
   16: t9 = 1
   17: t10 = print(t9)
   18: t11 = None
   19: ret t11
"""

BRANCH_CFG = """\
cfg main: 4 blocks
  B0 [0..11) -> B1, B2
  B1 [11..15) -> B3
  B2 [15..18) -> B3
  B3 [18..20) -> -
"""


class TestBranch:
    def test_ir_dump(self):
        assert compile_pylite(BRANCH_SOURCE).dump_ir() == BRANCH_IR.rstrip("\n")

    def test_cfg_dump(self):
        assert compile_pylite(BRANCH_SOURCE).dump_cfg() == BRANCH_CFG.rstrip("\n")

    def test_path_count(self):
        assert len(_explore(BRANCH_SOURCE).suite.cases) == 2


SIGN_SOURCE = textwrap.dedent(
    """\
    def sign(x):
        if x < 0:
            return -1
        if x > 0:
            return 1
        return 0

    n = sym_int(1, -2, 2)
    print(sign(n))
    """
)

SIGN_IR = """\
func main() temps=9
    0: line 8 kind=1
    1: t0 = 1
    2: t1 = 2
    3: t2 = neg t1
    4: t3 = 2
    5: t4 = sym_int(t0, t2, t3)
    6: global n = t4
    7: line 9 kind=5
    8: t5 = global n
    9: t6 = sign(t5)
   10: t7 = print(t6)
   11: t8 = None
   12: ret t8

func sign(x) temps=10
    0: line 2 kind=2
    1: t1 = 0
    2: t2 = t0 lt t1
    3: if t2 jmp @4 else @9
    4: line 3 kind=6
    5: t3 = 1
    6: t4 = neg t3
    7: ret t4
    8: jmp @9
    9: line 4 kind=2
   10: t5 = 0
   11: t6 = t0 gt t5
   12: if t6 jmp @13 else @17
   13: line 5 kind=6
   14: t7 = 1
   15: ret t7
   16: jmp @17
   17: line 6 kind=6
   18: t8 = 0
   19: ret t8
   20: t9 = None
   21: ret t9
"""


class TestSign:
    def test_ir_dump(self):
        assert compile_pylite(SIGN_SOURCE).dump_ir() == SIGN_IR.rstrip("\n")

    def test_cfg_shape(self):
        cfgs = compile_pylite(SIGN_SOURCE).cfgs
        assert len(cfgs["main"].blocks) == 1
        sign = cfgs["sign"]
        assert len(sign.blocks) == 8
        assert sign.edge_list() == [
            (0, 1), (0, 3), (2, 3), (3, 4), (3, 6), (5, 6),
        ]

    def test_path_count(self):
        # x<0 / x>0 / x==0 — one path per return.
        assert len(_explore(SIGN_SOURCE).suite.cases) == 3


COUNT_SOURCE = (
    's = sym_string("ab")\n'
    "count = 0\n"
    "for i in range(len(s)):\n"
    '    if s[i] == "a":\n'
    "        count = count + 1\n"
    "print(count)\n"
)

COUNT_CFG = """\
cfg main: 6 blocks
  B0 [0..13) -> B1
  B1 [13..15) -> B2, B5
  B2 [15..23) -> B3, B4
  B3 [23..29) -> B4
  B4 [29..32) -> B1
  B5 [32..37) -> -
"""


class TestForLoop:
    def test_cfg_dump(self):
        assert compile_pylite(COUNT_SOURCE).dump_cfg() == COUNT_CFG.rstrip("\n")

    def test_back_edge_exists(self):
        cfg = compile_pylite(COUNT_SOURCE).cfgs["main"]
        assert (4, 1) in cfg.edge_list()  # loop latch → header

    def test_path_count(self):
        # Length is concrete (2); each char forks on == "a": 2 * 2 paths.
        assert len(_explore(COUNT_SOURCE).suite.cases) == 4


ASSERT_SOURCE = (
    "n = sym_int(2, 0, 3)\n"
    "assert n != 3\n"
    "print(n)\n"
)

ASSERT_CFG = """\
cfg main: 3 blocks
  B0 [0..11) -> B2, B1
  B1 [11..12) -> -
  B2 [12..17) -> -
"""


class TestAssert:
    def test_cfg_dump(self):
        assert compile_pylite(ASSERT_SOURCE).dump_cfg() == ASSERT_CFG.rstrip("\n")

    def test_path_count_and_failure_path(self):
        result = _explore(ASSERT_SOURCE)
        assert len(result.suite.cases) == 2
        engine = PyLiteEngine(ASSERT_SOURCE)
        names = sorted(
            engine.exception_name(t) for t in result.suite.exceptions()
        )
        assert names == ["AssertionError"]


class TestCompiledArtifact:
    def test_fresh_program_per_build(self):
        compiled = compile_pylite(BRANCH_SOURCE)
        assert compiled.build_program() is not compiled.build_program()

    def test_coverable_lines(self):
        compiled = compile_pylite(BRANCH_SOURCE)
        # line 4 is the bare "else:" — not a coverable statement.
        assert set(compiled.coverable_lines) == {1, 2, 3, 5}
