"""PyLite subset boundary: programs outside the subset fail loudly.

The frontend's contract is "restricted but real": whatever it accepts
must behave exactly like CPython, and whatever it can't guarantee that
for must be rejected at compile time with a line number — never lowered
to something subtly different.
"""

import pytest

from repro.errors import ReproError
from repro.frontend import compile_pylite
from repro.frontend.lower import PyLiteSyntaxError


REJECTED = [
    ("true_division", "x = 7 / 2\n"),
    ("chained_comparison", "ok = 0 < 1 < 2\n"),
    ("try_except", "try:\n    x = 1\nexcept ValueError:\n    x = 2\n"),
    ("class_def", "class C:\n    pass\n"),
    ("import", "import os\n"),
    ("lambda", "f = lambda x: x\n"),
    ("while_else", "while 0:\n    pass\nelse:\n    x = 1\n"),
    ("main_reserved", "def main():\n    return 0\n"),
    ("nested_def", "def f():\n    def g():\n        return 1\n    return 2\n"),
    ("default_args", "def f(x=1):\n    return x\n"),
    ("unknown_function", "x = frob(1)\n"),
    ("function_as_value", "def f():\n    return 1\nx = f\n"),
    ("assign_to_builtin", "len = 3\n"),
    ("bad_user_arity", "def f(x):\n    return x\ny = f(1, 2)\n"),
    ("bad_builtin_arity", "x = ord(\"a\", \"b\")\n"),
    ("for_over_list", "for x in [1, 2]:\n    pass\n"),
    ("symbolic_range_step", "n = 2\nfor i in range(0, 9, n):\n    pass\n"),
    ("zero_range_step", "for i in range(0, 9, 0):\n    pass\n"),
    ("unknown_exception", "raise FrobError\n"),
    ("fstring", "x = f\"hi\"\n"),
    ("float_literal", "x = 1.5\n"),
]


@pytest.mark.parametrize(
    "source", [case[1] for case in REJECTED], ids=[case[0] for case in REJECTED]
)
def test_rejected_constructs(source):
    with pytest.raises(PyLiteSyntaxError):
        compile_pylite(source)


def test_syntax_error_is_repro_error():
    with pytest.raises(ReproError):
        compile_pylite("x = 7 / 2\n")


def test_syntax_error_carries_line_number():
    with pytest.raises(PyLiteSyntaxError) as exc:
        compile_pylite("x = 1\ny = 7 / 2\n")
    assert "line 2" in str(exc.value)


def test_cpython_syntax_errors_are_wrapped():
    with pytest.raises(PyLiteSyntaxError):
        compile_pylite("def f(:\n")


ACCEPTED = [
    ("floor_division", "x = 7 // 2\n"),
    ("negative_range_step", "for i in range(9, 0, -1):\n    pass\n"),
    ("docstring_skipped", 'def f(x):\n    "doc"\n    return x\ny = f(1)\n'),
    ("boolop_values", "x = 0 or 3\ny = x and 2\n"),
    ("augassign", "x = 1\nx += 2\n"),
]


@pytest.mark.parametrize(
    "source", [case[1] for case in ACCEPTED], ids=[case[0] for case in ACCEPTED]
)
def test_accepted_constructs(source):
    compile_pylite(source)
