"""Unit tests of the target packages themselves, run on the host VMs.

These test the *libraries* (parsers and tools written in MiniPy, MiniLua
and PyLite), independent of symbolic execution — the same way a
downstream user of those packages would.
"""

import pytest

from repro.interpreters.minilua.compiler import compile_lua
from repro.interpreters.minilua.hostvm import LuaHostVM
from repro.interpreters.minipy.compiler import compile_source
from repro.interpreters.minipy.hostvm import HostVM
from repro.interpreters.pylite.hostvm import PyLiteHostVM
from repro.targets import (
    all_targets,
    lua_targets,
    pylite_targets,
    python_targets,
    target_by_name,
)
from repro.targets import minilua_packages as LUA
from repro.targets import minipy_packages as PY
from repro.targets import pylite_packages as PL
from repro.targets.mac_controller import CONTROLLER_SOURCE, driver_source


def run_py(package_source, driver):
    vm = HostVM(compile_source(package_source + "\n" + driver))
    return vm.run()


def run_lua(package_source, driver):
    vm = LuaHostVM(compile_lua(package_source + "\n" + driver))
    return vm.run()


def run_pylite(package_source, driver):
    vm = PyLiteHostVM(package_source + "\n" + driver, symbolic_inputs=[])
    return vm.run()


class TestRegistry:
    def test_target_counts(self):
        # 11 Table 3 rows plus the 3-package PyLite scenario pack.
        assert len(python_targets()) == 6
        assert len(lua_targets()) == 5
        assert len(pylite_targets()) == 3

    def test_lookup_by_name(self):
        assert target_by_name("xlrd").language == "minipy"
        assert target_by_name("rle").language == "pylite"
        with pytest.raises(KeyError):
            target_by_name("nonexistent")

    def test_lookup_is_memoized(self):
        # target_by_name used to rebuild every TargetPackage per call;
        # the registry is now built once and indexed by name.
        assert target_by_name("xlrd") is target_by_name("xlrd")
        assert target_by_name("haml") in all_targets()
        assert all_targets()[0] is all_targets()[0]

    def test_all_targets_returns_fresh_list(self):
        targets = all_targets()
        targets.clear()
        assert len(all_targets()) == 14

    def test_loc_positive(self):
        # Table 3 rows are real little libraries; the PyLite scenario
        # pack is deliberately smaller (frontend smoke fodder).
        floors = {"pylite": 15}
        for target in all_targets():
            assert target.loc() > floors.get(target.language, 20), target.name

    def test_loc_comment_prefix_comes_from_guest_language(self):
        from repro.symtest.coverage import count_loc

        assert target_by_name("xlrd").guest_language().comment_prefix == "#"
        assert target_by_name("haml").guest_language().comment_prefix == "--"
        haml = target_by_name("haml")
        assert haml.loc() == count_loc(haml.source, comment_prefix="--")

    def test_documented_classification(self):
        xlrd = target_by_name("xlrd")
        assert xlrd.is_documented("XLRDError")
        assert xlrd.is_documented("ValueError")  # common stdlib
        assert not xlrd.is_documented("BadZipfile")
        assert not xlrd.is_documented("IndexError")  # per the paper

    def test_symbolic_tests_build(self):
        for target in all_targets():
            driver = target.symbolic_test().build_driver()
            assert "sym_" in driver


class TestArgparse:
    def test_flag_with_value(self):
        r = run_py(PY.ARGPARSE_SOURCE, """
p = make_parser()
add_argument(p, "--verbose")
args = parse_args(p, ["--verbose", "yes"])
print(args["verbose"])
""")
        assert r.exception is None
        assert r.output[2:] == [ord(c) for c in "yes"]

    def test_flag_equals_syntax_and_prefix_match(self):
        r = run_py(PY.ARGPARSE_SOURCE, """
p = make_parser()
add_argument(p, "--output")
args = parse_args(p, ["--out=x"])
print(args["output"])
""")
        assert r.exception is None

    def test_typed_positional(self):
        r = run_py(PY.ARGPARSE_SOURCE, """
p = make_parser()
add_argument(p, "#count")
args = parse_args(p, ["42"])
print(args["count"] + 1)
""")
        assert r.output == [1, 43]

    def test_unknown_flag_raises_keyerror(self):
        r = run_py(PY.ARGPARSE_SOURCE, """
p = make_parser()
args = parse_args(p, ["--nope"])
""")
        assert r.exception.name == "KeyError"

    def test_missing_positional(self):
        r = run_py(PY.ARGPARSE_SOURCE, """
p = make_parser()
add_argument(p, "name")
args = parse_args(p, [])
""")
        assert r.exception.name == "ArgumentError"


class TestConfigParser:
    def test_sections_and_options(self):
        r = run_py(PY.CONFIGPARSER_SOURCE, r"""
conf = parse_config("[db]\nHost = local\n; comment\n[web]\nport=80")
print(get_option(conf, "db", "HOST"))
print(get_option(conf, "web", "port"))
""")
        assert r.exception is None

    def test_option_before_section(self):
        r = run_py(PY.CONFIGPARSER_SOURCE, 'parse_config("a=1")')
        assert r.exception.name == "ParsingError"

    def test_unterminated_header(self):
        r = run_py(PY.CONFIGPARSER_SOURCE, 'parse_config("[oops")')
        assert r.exception.name == "ParsingError"


class TestHtmlParser:
    def test_balanced_document(self):
        r = run_py(PY.HTMLPARSER_SOURCE, """
events = parse_html("<p>hi &amp; bye</p>")
print(len(events))
""")
        assert r.exception is None
        assert r.output == [1, 3]

    def test_mismatched_close(self):
        r = run_py(PY.HTMLPARSER_SOURCE, 'parse_html("<a></b>")')
        assert r.exception.name == "HTMLParseError"

    def test_unknown_entity(self):
        r = run_py(PY.HTMLPARSER_SOURCE, 'parse_html("&bogus;")')
        assert r.exception.name == "HTMLParseError"


class TestSimpleJson:
    def test_nested_document(self):
        r = run_py(PY.SIMPLEJSON_SOURCE, """
v = loads('{"a": [1, -2, true], "b": null}')
print(len(v))
print(v["a"][1])
""")
        assert r.exception is None
        assert r.output == [1, 2, 1, -2]

    def test_string_escapes(self):
        r = run_py(PY.SIMPLEJSON_SOURCE, r"""
v = loads('"a\nb"')
print(len(v))
""")
        assert r.output == [1, 3]

    def test_trailing_data_rejected(self):
        r = run_py(PY.SIMPLEJSON_SOURCE, 'loads("1 x")')
        assert r.exception.name == "JSONDecodeError"

    def test_invalid_escape_is_valueerror(self):
        r = run_py(PY.SIMPLEJSON_SOURCE, 'loads(\'"a\' + chr(92) + \'qb"\')')
        assert r.exception.name == "ValueError"

    def test_depth_limit(self):
        r = run_py(PY.SIMPLEJSON_SOURCE, 'loads("[[[[[[[[1]]]]]]]]")')
        assert r.exception.name == "JSONDecodeError"


class TestUnicodeCsv:
    def test_quoted_fields(self):
        r = run_py(PY.UNICODECSV_SOURCE, """
rows = parse_csv('a,"b,c"\\nd,e')
print(len(rows))
print(rows[0][1])
""")
        assert r.exception is None
        assert r.output[:2] == [1, 2]

    def test_unterminated_quote(self):
        r = run_py(PY.UNICODECSV_SOURCE, 'parse_csv(\'"oops\')')
        assert r.exception.name == "CSVError"

    def test_ragged_rows_rejected(self):
        r = run_py(PY.UNICODECSV_SOURCE, 'parse_csv("a,b\\nc")')
        assert r.exception.name == "CSVError"


class TestXlrd:
    def test_valid_workbook(self):
        r = run_py(PY.XLRD_SOURCE, r"""
book = open_workbook("BF\x01\x02ab\x02\x02\x05\x00\x09\x00")
print(len(book["sheets"]))
print(book["cells"])
""")
        assert r.exception is None
        assert r.output == [1, 1, 1, 5]

    def test_zip_magic_raises_badzipfile(self):
        r = run_py(PY.XLRD_SOURCE, 'open_workbook("PK\\x01\\x02")')
        assert r.exception.name == "BadZipfile"

    def test_bad_magic(self):
        r = run_py(PY.XLRD_SOURCE, 'open_workbook("XX")')
        assert r.exception.name == "XLRDError"

    def test_unknown_record_type_raises_error(self):
        r = run_py(PY.XLRD_SOURCE, 'open_workbook("BF\\xff\\x00")')
        assert r.exception.name == "error"

    def test_truncated_record_raises_indexerror(self):
        r = run_py(PY.XLRD_SOURCE, 'open_workbook("BF\\x01")')
        assert r.exception.name == "IndexError"


class TestLuaTargets:
    def test_cliargs(self):
        r = run_lua(LUA.CLIARGS_SOURCE, """
local args = parse_args({"--name=x", "-v", "pos"})
print(args["name"])
print(args["v"])
print(args[1])
""")
        assert r.error is None

    def test_haml(self):
        r = run_lua(LUA.HAML_SOURCE, 'print(render("%p hello"))')
        assert r.error is None
        assert r.output[2:] == [ord(c) for c in "<p>hello</p>"]

    def test_json_decodes(self):
        r = run_lua(LUA.JSON_SOURCE, """
local v = decode("[1, -2, true]")
print(v[1])
print(v[2])
""")
        assert r.error is None
        assert r.output == [1, 1, 1, -2]

    def test_json_comment_skipping_works_when_terminated(self):
        r = run_lua(LUA.JSON_SOURCE, 'print(decode("/* c */ 7"))')
        assert r.error is None
        assert r.output == [1, 7]

    def test_json_unterminated_comment_hangs(self):
        module = compile_lua(LUA.JSON_SOURCE + '\ndecode("/* oops")')
        result = LuaHostVM(module, instr_budget=200_000).run()
        assert result.hit_budget, "the seeded bug must spin forever"

    def test_markdown(self):
        r = run_lua(LUA.MARKDOWN_SOURCE, 'print(convert_line("## title"))')
        assert r.output[2:] == [ord(c) for c in "<h2>title</h2>"]

    def test_markdown_emphasis_balance(self):
        r = run_lua(LUA.MARKDOWN_SOURCE, 'print(convert_line("a *b* c"))')
        assert r.error is None
        r2 = run_lua(LUA.MARKDOWN_SOURCE, 'convert_line("a *b")')
        assert r2.error is not None

    def test_moonscript(self):
        r = run_lua(LUA.MOONSCRIPT_SOURCE, 'print(compile_chunk("x=1;if go!;return x"))')
        assert r.error is None


class TestPyLiteTargets:
    def test_parseint(self):
        r = run_pylite(PL.PARSEINT_SOURCE, "print(parse_int(\"-42\"))")
        assert r.exception is None
        assert r.output == [-42, 10]

    def test_parseint_rejects_garbage(self):
        r = run_pylite(PL.PARSEINT_SOURCE, "parse_int(\"4x\")")
        assert r.exception is not None
        assert r.exception.name == "ValueError"

    def test_turnstile(self):
        r = run_pylite(
            PL.TURNSTILE_SOURCE,
            'm = run_machine("ccpp")\nprint(m["entries"])\nprint(m["coins"])',
        )
        assert r.exception is None
        # second push bounces off the locked state
        assert r.output == [1, 10, 2, 10]

    def test_turnstile_unknown_command(self):
        r = run_pylite(PL.TURNSTILE_SOURCE, 'run_machine("x")')
        assert r.exception.name == "RuntimeError"

    def test_rle_roundtrip(self):
        r = run_pylite(PL.RLE_SOURCE, 'print(roundtrip("aaabcc"))')
        assert r.exception is None
        assert r.output == [3, 10]


class TestMacController:
    def test_learning_and_forwarding(self):
        r = run_py(CONTROLLER_SOURCE, """
sw = make_switch()
print(process_frame(sw, 1, 2, 2048, 0))
print(process_frame(sw, 2, 1, 2048, 1))
print(process_frame(sw, 9, 9, 7, 2))
""")
        assert r.exception is None
        # unknown dst -> flood (-1); learned dst -> port 0; bad type -> drop (-2)
        assert r.output == [1, -1, 1, 0, 1, -2]

    def test_driver_generation(self):
        source = driver_source(3)
        r = HostVM(compile_source(source)).run()
        assert r.exception is None
        assert len([w for w in r.output]) >= 6
