"""Chef engine loop tests over hand-written Clay 'interpreters'."""

import pytest

from repro.chef import Chef, ChefConfig
from repro.chef.options import InterpreterBuildOptions
from repro.clay import compile_program

# A toy "interpreter": reports one HLPC per input cell, with a high-level
# branch afterwards — gives 2^4 HL paths over 4 input chars... no: the
# HLPC stream differs per branch direction, so each prefix of matches is
# its own HL path.
_TOY = """
const BUF = 1000;
fn main() {
    make_symbolic(BUF, 4, 0, 255);
    start_symbolic();
    var i = 0;
    while (i < 4) {
        log_pc(i, 7);
        if (BUF[i] == 'k') {
            log_pc(100 + i, 9);
        } else {
            log_pc(200 + i, 9);
        }
        i = i + 1;
    }
    end_symbolic();
}
"""


def _run(strategy="cupa-path", seed=0, budget=5.0, max_hl=0, source=_TOY):
    compiled = compile_program(source)
    config = ChefConfig(
        strategy=strategy, seed=seed, time_budget=budget, max_hl_paths=max_hl
    )
    return Chef(compiled.program, config).run()


class TestEngineLoop:
    def test_explores_all_high_level_paths(self):
        result = _run()
        # 4 binary high-level branches => 16 distinct HL paths.
        assert result.hl_paths == 16
        assert result.ll_paths >= 16

    def test_all_strategies_work(self):
        for strategy in ("random", "cupa-path", "cupa-cov"):
            result = _run(strategy=strategy)
            assert result.hl_paths == 16, strategy

    def test_max_hl_paths_stops_early(self):
        result = _run(max_hl=4)
        assert 4 <= result.hl_paths <= 6

    def test_test_cases_have_inputs(self):
        result = _run()
        for case in result.hl_test_cases:
            assert "b0" in case.inputs
            assert len(case.inputs["b0"]) == 4

    def test_hl_tests_unique_signatures(self):
        result = _run()
        signatures = [c.hl_path_signature for c in result.hl_test_cases]
        assert len(signatures) == len(set(signatures))

    def test_cfg_discovered(self):
        result = _run()
        assert result.cfg_nodes >= 9  # 4 loop pcs + 8 branch pcs (some shared)
        assert result.cfg_edges > 0

    def test_timeline_monotone(self):
        result = _run()
        hl_values = [hl for _t, hl, _ll in result.timeline]
        assert hl_values == sorted(hl_values)

    def test_deterministic_given_seed(self):
        a = _run(strategy="cupa-path", seed=3, max_hl=8)
        b = _run(strategy="cupa-path", seed=3, max_hl=8)
        assert a.hl_paths == b.hl_paths
        assert [c.inputs for c in a.hl_test_cases] == [c.inputs for c in b.hl_test_cases]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            _run(strategy="nope")


class TestOptions:
    def test_cumulative_builds(self):
        assert InterpreterBuildOptions.cumulative(0) == InterpreterBuildOptions.vanilla()
        assert InterpreterBuildOptions.cumulative(3) == InterpreterBuildOptions.full()
        level1 = InterpreterBuildOptions.cumulative(1)
        assert level1.symbolic_pointer_avoidance
        assert not level1.hash_neutralization

    def test_cumulative_range_checked(self):
        with pytest.raises(ValueError):
            InterpreterBuildOptions.cumulative(4)

    def test_flag_words(self):
        flags = InterpreterBuildOptions.full().as_flag_words()
        assert flags == {
            "opt_symptr": 1, "opt_hash_neutral": 1, "opt_fastpath_elim": 1,
        }

    def test_with_override(self):
        opts = InterpreterBuildOptions.full().with_(hash_neutralization=False)
        assert not opts.hash_neutralization
        assert opts.symbolic_pointer_avoidance
