"""TestCase / TestSuite container tests."""

from repro.chef.testcase import TestCase, TestSuite


def _case(i, **kwargs):
    defaults = dict(test_id=i, inputs={"b0": [104, 105]}, status="halted")
    defaults.update(kwargs)
    return TestCase(**defaults)


class TestTestCase:
    def test_input_string_decoding(self):
        case = _case(0)
        assert case.input_string("b0") == "hi"
        assert case.input_string("missing") == ""

    def test_repr_flags(self):
        case = _case(1, new_hl_path=True, exception_type=5, hang=True)
        text = repr(case)
        assert "new-hl" in text and "exc=5" in text and "hang" in text


class TestTestSuite:
    def test_high_level_filter(self):
        suite = TestSuite()
        suite.add(_case(0, new_hl_path=True))
        suite.add(_case(1, new_hl_path=False))
        suite.add(_case(2, new_hl_path=True))
        assert len(suite) == 3
        assert [c.test_id for c in suite.high_level_tests()] == [0, 2]

    def test_exceptions_grouped_by_type(self):
        suite = TestSuite()
        suite.add(_case(0, exception_type=2))
        suite.add(_case(1, exception_type=2))
        suite.add(_case(2, exception_type=5))
        suite.add(_case(3))
        grouped = suite.exceptions()
        assert set(grouped) == {2, 5}
        assert len(grouped[2]) == 2

    def test_hangs_and_crashes(self):
        suite = TestSuite()
        suite.add(_case(0, hang=True, status="budget"))
        suite.add(_case(1, interpreter_crash=True, status="fault"))
        suite.add(_case(2))
        assert len(suite.hangs()) == 1
        assert len(suite.crashes()) == 1

    def test_iteration(self):
        suite = TestSuite()
        suite.add(_case(0))
        assert [c.test_id for c in suite] == [0]
