"""High-level tree and CFG tests."""

from repro.chef.hltree import HighLevelCfg, HighLevelTree


class TestHighLevelTree:
    def test_advance_creates_nodes_once(self):
        tree = HighLevelTree()
        a = tree.advance(tree.ROOT, 100)
        b = tree.advance(tree.ROOT, 100)
        assert a == b
        c = tree.advance(a, 200)
        assert c != a
        assert tree.hlpc_of(c) == 200

    def test_distinct_paths_by_signature(self):
        tree = HighLevelTree()
        sig1 = 0
        for pc in (1, 2, 3):
            sig1 = tree.extend_signature(sig1, pc)
        sig2 = 0
        for pc in (1, 3, 2):
            sig2 = tree.extend_signature(sig2, pc)
        assert sig1 != sig2
        assert tree.record_path(sig1)
        assert not tree.record_path(sig1)
        assert tree.record_path(sig2)
        assert tree.distinct_paths() == 2

    def test_signature_order_sensitive(self):
        tree = HighLevelTree()
        assert tree.extend_signature(0, 5) != tree.extend_signature(0, 6)


class TestHighLevelCfg:
    def _linear(self, cfg, pcs, opcode=7):
        prev = None
        for pc in pcs:
            cfg.observe(prev, opcode if prev is not None else None, pc, opcode)
            prev = pc

    def test_edges_discovered(self):
        cfg = HighLevelCfg()
        self._linear(cfg, [1, 2, 3])
        assert cfg.successors[1] == {2}
        assert cfg.edge_count() == 2
        assert cfg.node_count() == 3

    def test_branching_opcode_detection(self):
        cfg = HighLevelCfg()
        # pc 10 (opcode 9) branches to 11 and 12; plenty of occurrences so
        # the 10%-rarest filter keeps opcode 9.
        for dst in (11, 12):
            cfg.observe(None, None, 10, 9)
            cfg.observe(10, 9, dst, 7)
        assert 9 in cfg.branching_opcodes()

    def test_potential_branching_points(self):
        cfg = HighLevelCfg()
        for dst in (11, 12):
            cfg.observe(10, 9, dst, 7)
        cfg.opcode_of[10] = 9
        # pc 20 has the branching opcode but only one successor so far.
        cfg.observe(None, None, 20, 9)
        cfg.observe(20, 9, 21, 7)
        assert 20 in cfg.potential_branching_points()
        assert 10 not in cfg.potential_branching_points()

    def test_distance_to_uncovered(self):
        cfg = HighLevelCfg()
        for dst in (11, 12):
            cfg.observe(10, 9, dst, 7)
        # chain 1 -> 2 -> 20(branching, single successor)
        cfg.observe(None, None, 1, 7)
        cfg.observe(1, 7, 2, 7)
        cfg.observe(2, 7, 20, 9)
        cfg.observe(20, 9, 21, 7)
        assert cfg.distance_to_uncovered(20) == 0
        assert cfg.distance_to_uncovered(2) == 1
        assert cfg.distance_to_uncovered(1) == 2

    def test_distance_cache_invalidated_on_change(self):
        cfg = HighLevelCfg()
        for dst in (11, 12):
            cfg.observe(10, 9, dst, 7)
        cfg.observe(None, None, 30, 9)
        cfg.observe(30, 9, 31, 7)
        first = cfg.distance_to_uncovered(30)
        assert first == 0
        # Second successor appears: 30 is no longer a potential branching point.
        cfg.observe(30, 9, 32, 7)
        assert cfg.distance_to_uncovered(30) != 0

    def test_unreachable_distance_is_large(self):
        cfg = HighLevelCfg()
        cfg.observe(None, None, 1, 7)
        assert cfg.distance_to_uncovered(1) >= 1_000_000
