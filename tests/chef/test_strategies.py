"""Search strategy unit tests (random baseline + both CUPA instances)."""

import random
from collections import Counter

from repro.chef.hltree import HighLevelCfg
from repro.chef.strategies import (
    CoverageCupaStrategy,
    PathCupaStrategy,
    RandomStrategy,
    make_strategy,
)


class FakePending:
    """Just enough of a State for strategy bookkeeping."""

    def __init__(self, dyn_node=0, static_hlpc=0, fork_ll_pc=0,
                 fork_group=None, fork_index=0):
        self.meta = {"dyn_node": dyn_node, "static_hlpc": static_hlpc}
        self.fork_ll_pc = fork_ll_pc
        self.fork_group = fork_group
        self.fork_index = fork_index


class TestRandomStrategy:
    def test_drains_all(self):
        strategy = RandomStrategy(random.Random(0))
        states = [FakePending() for _ in range(20)]
        for s in states:
            strategy.add(s)
        drained = [strategy.select() for _ in range(20)]
        assert strategy.select() is None
        assert set(map(id, drained)) == set(map(id, states))

    def test_uniform_over_states(self):
        rng = random.Random(1)
        hits = Counter()
        for _ in range(600):
            strategy = RandomStrategy(rng)
            a, b = FakePending(), FakePending()
            a.tag, b.tag = "a", "b"
            strategy.add(a)
            strategy.add(b)
            hits[strategy.select().tag] += 1
        counts = sorted(hits.values())
        assert counts[0] > 200  # roughly 50/50


class TestPathCupa:
    def test_hot_spot_does_not_dominate(self):
        """One dynamic-HLPC class with 50 states vs one with 1 state:
        selection must be roughly 50/50 by class (§3.3)."""
        rng = random.Random(2)
        wins = Counter()
        for _ in range(300):
            strategy = PathCupaStrategy(rng)
            strategy.add(FakePending(dyn_node=1, fork_ll_pc=9))
            for i in range(50):
                strategy.add(FakePending(dyn_node=2, fork_ll_pc=9))
            picked = strategy.select()
            wins[picked.meta["dyn_node"]] += 1
        assert wins[1] > 90

    def test_second_level_partitions_by_ll_pc(self):
        rng = random.Random(3)
        wins = Counter()
        for _ in range(300):
            strategy = PathCupaStrategy(rng)
            strategy.add(FakePending(dyn_node=1, fork_ll_pc=100))
            for _ in range(30):
                strategy.add(FakePending(dyn_node=1, fork_ll_pc=200))
            wins[strategy.select().fork_ll_pc] += 1
        assert wins[100] > 90


class TestCoverageCupa:
    def _cfg_with_target(self):
        cfg = HighLevelCfg()
        # opcode 9 branches at hlpc 10 -> known branching opcode.
        for dst in (11, 12):
            cfg.observe(10, 9, dst, 7)
        # hlpc 20: branching opcode, single successor = potential target;
        # hlpc 30: plain opcode far from anything.
        cfg.observe(None, None, 20, 9)
        cfg.observe(20, 9, 21, 7)
        cfg.observe(None, None, 30, 7)
        return cfg

    def test_states_near_uncovered_branch_preferred(self):
        cfg = self._cfg_with_target()
        rng = random.Random(4)
        wins = Counter()
        for _ in range(400):
            strategy = CoverageCupaStrategy(rng, cfg)
            strategy.add(FakePending(static_hlpc=20))  # distance 0
            strategy.add(FakePending(static_hlpc=30))  # unreachable
            wins[strategy.select().meta["static_hlpc"]] += 1
        assert wins[20] > wins[30] * 5

    def test_fork_weight_prefers_latest_fork(self):
        """§3.4: the last state to fork at a location gets max weight."""
        cfg = self._cfg_with_target()
        rng = random.Random(5)
        wins = Counter()
        for _ in range(500):
            strategy = CoverageCupaStrategy(rng, cfg, fork_weight_p=0.25)
            early = FakePending(static_hlpc=20, fork_group=(1, 7), fork_index=1)
            late = FakePending(static_hlpc=20, fork_group=(1, 7), fork_index=4)
            strategy.add(early)
            strategy.add(late)
            wins[strategy.select().fork_index] += 1
        assert wins[4] > wins[1] * 3

    def test_states_without_group_have_unit_weight(self):
        cfg = self._cfg_with_target()
        strategy = CoverageCupaStrategy(random.Random(6), cfg)
        state = FakePending(static_hlpc=20)
        strategy.add(state)
        assert strategy.select() is state


class TestFactory:
    def test_make_strategy_names(self):
        cfg = HighLevelCfg()
        rng = random.Random(0)
        assert isinstance(make_strategy("random", rng, cfg), RandomStrategy)
        assert isinstance(make_strategy("cupa-path", rng, cfg), PathCupaStrategy)
        assert isinstance(make_strategy("cupa-cov", rng, cfg), CoverageCupaStrategy)
