"""CUPA partition-tree tests, including the class-uniformity property."""

import random
from collections import Counter

import pytest

from repro.chef.cupa import CupaTree


class FakeState:
    def __init__(self, cls_a, cls_b, name):
        self.cls_a = cls_a
        self.cls_b = cls_b
        self.name = name

    def __repr__(self):
        return f"FakeState({self.name})"


def _tree(rng=None, weights=None):
    return CupaTree(
        classifiers=[lambda s: s.cls_a, lambda s: s.cls_b],
        rng=rng or random.Random(0),
        weight_fns=weights,
    )


class TestBasics:
    def test_add_select_roundtrip(self):
        tree = _tree()
        state = FakeState(1, 1, "only")
        tree.add(state)
        assert len(tree) == 1
        assert tree.select() is state
        assert len(tree) == 0
        assert tree.select() is None

    def test_selection_removes(self):
        tree = _tree()
        states = [FakeState(i % 2, 0, i) for i in range(10)]
        for s in states:
            tree.add(s)
        picked = [tree.select() for _ in range(10)]
        assert sorted(s.name for s in picked) == list(range(10))

    def test_states_listing(self):
        tree = _tree()
        for i in range(5):
            tree.add(FakeState(0, i, i))
        assert len(tree.states()) == 5

    def test_requires_classifiers(self):
        with pytest.raises(ValueError):
            CupaTree([], random.Random(0))

    def test_weight_fn_count_checked(self):
        with pytest.raises(ValueError):
            CupaTree([lambda s: 0], random.Random(0), weight_fns=[None, None])


class TestClassUniformity:
    def test_small_class_not_starved(self):
        """The core CUPA property (§3.2): a class with 1 state is selected
        as often as a class with 100 states."""
        rng = random.Random(42)
        counts = Counter()
        trials = 400
        for _ in range(trials):
            tree = _tree(rng=rng)
            tree.add(FakeState("small", 0, "the-one"))
            for i in range(100):
                tree.add(FakeState("big", 0, f"b{i}"))
            first = tree.select()
            counts[first.cls_a] += 1
        # Uniform over classes => ~50/50, far from the 1/101 a flat queue
        # would give the small class.
        assert counts["small"] > trials * 0.35
        assert counts["big"] > trials * 0.35

    def test_weighted_level_biases_selection(self):
        rng = random.Random(7)
        weights = [lambda key, _level: 10.0 if key == "hot" else 0.1, None]
        counts = Counter()
        for _ in range(300):
            tree = _tree(rng=rng, weights=weights)
            tree.add(FakeState("hot", 0, "h"))
            tree.add(FakeState("cold", 0, "c"))
            counts[tree.select().cls_a] += 1
        assert counts["hot"] > counts["cold"] * 3

    def test_weighted_leaf_selection(self):
        rng = random.Random(9)
        counts = Counter()
        for _ in range(300):
            tree = CupaTree([lambda s: 0], rng)
            heavy = FakeState(0, 0, "heavy")
            light = FakeState(0, 0, "light")
            tree.add(heavy)
            tree.add(light)
            picked = tree.select_weighted_leaf(
                lambda s: 10.0 if s.name == "heavy" else 0.1
            )
            counts[picked.name] += 1
        assert counts["heavy"] > counts["light"] * 3

    def test_empty_classes_pruned(self):
        tree = _tree()
        tree.add(FakeState(1, 1, "a"))
        tree.select()
        tree.add(FakeState(2, 2, "b"))
        assert tree.select().name == "b"
