"""Public API smoke tests (the README quickstart must work)."""

import repro

from tests.conftest import requires_clay


def test_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@requires_clay
def test_readme_quickstart_flow():
    engine = repro.MiniPyEngine(
        '''
def check(s):
    if s.find("@") < 1:
        raise ValueError("bad")
    return 1

data = sym_string("\\x00\\x00\\x00")
print(check(data))
''',
        repro.ChefConfig(strategy="cupa-path", seed=0, time_budget=5.0),
    )
    result = engine.run()
    assert result.hl_paths >= 2
    exceptional = [c for c in result.hl_test_cases if c.exception_type is not None]
    clean = [c for c in result.hl_test_cases if c.exception_type is None]
    assert exceptional and clean
    for case in result.hl_test_cases:
        replay = engine.replay(case)
        assert replay.output == case.output


@requires_clay
def test_lua_engine_exported():
    engine = repro.MiniLuaEngine(
        "print(1 + 1)", repro.ChefConfig(time_budget=10.0)
    )
    result = engine.run()
    assert result.suite.cases[0].output == [1, 2]


def test_build_options_exported():
    opts = repro.InterpreterBuildOptions.full()
    assert opts.hash_neutralization
