"""Public API smoke tests (the README quickstart must work)."""

import pytest

import repro
import repro.api

from tests.conftest import requires_clay


def test_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_all_is_sorted_and_resolvable():
    # CI's api-smoke job asserts the same two invariants: every __all__
    # name resolves, and the list stays sorted (merge conflicts show up
    # as ordering noise otherwise).
    assert repro.__all__ == sorted(repro.__all__)
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_session_exported_and_aliased():
    assert repro.Session is repro.SymbolicSession
    assert repro.Session is repro.api.Session


def test_language_registry_exported():
    assert repro.languages() == ["minilua", "minipy", "pylite"]
    assert repro.get_language("minipy").comment_prefix == "#"


def test_session_bad_language_error():
    with pytest.raises(repro.ReproError) as exc:
        repro.Session("ruby", "x = 1")
    assert "ruby" in str(exc.value)
    assert isinstance(exc.value, repro.UnknownLanguageError)


def test_session_events_consumed_twice_raises_cleanly():
    from repro.bench.workloads import branchy_source
    from repro.clay import compile_program

    session = repro.Session.from_program(
        compile_program(branchy_source(2)).program,
        repro.ChefConfig(time_budget=60.0),
    )
    events = list(session.events())
    assert isinstance(events[-1], repro.RunFinished)
    with pytest.raises(repro.ReproError):
        session.events()


@requires_clay
def test_readme_quickstart_flow():
    engine = repro.MiniPyEngine(
        '''
def check(s):
    if s.find("@") < 1:
        raise ValueError("bad")
    return 1

data = sym_string("\\x00\\x00\\x00")
print(check(data))
''',
        repro.ChefConfig(strategy="cupa-path", seed=0, time_budget=5.0),
    )
    result = engine.run()
    assert result.hl_paths >= 2
    exceptional = [c for c in result.hl_test_cases if c.exception_type is not None]
    clean = [c for c in result.hl_test_cases if c.exception_type is None]
    assert exceptional and clean
    for case in result.hl_test_cases:
        replay = engine.replay(case)
        assert replay.output == case.output


@requires_clay
def test_lua_engine_exported():
    engine = repro.MiniLuaEngine(
        "print(1 + 1)", repro.ChefConfig(time_budget=10.0)
    )
    result = engine.run()
    assert result.suite.cases[0].output == [1, 2]


def test_build_options_exported():
    opts = repro.InterpreterBuildOptions.full()
    assert opts.hash_neutralization
