"""SymbolicSession facade + event-stream tests (clay-free: pure-LVM guests)."""

from collections import Counter

import pytest

from repro.api import (
    BatchMerged,
    BudgetExhausted,
    PathCompleted,
    RunFinished,
    Session,
    SymbolicSession,
    TestCaseFound,
)
from repro.bench.workloads import traced_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.errors import ReproError

from tests.conftest import requires_clay


def _program(n=3):
    return compile_program(traced_source(n)).program


def _config(workers=1, **kw):
    kw.setdefault("strategy", "cupa-path")
    kw.setdefault("seed", 0)
    kw.setdefault("time_budget", 60.0)
    return ChefConfig(workers=workers, **kw)


def _case_key(event):
    case = event.case
    return (
        tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
        case.status,
        tuple(case.output),
    )


def _path_event_multiset(events):
    """Multiset of (event type, case identity) over the path events."""
    return Counter(
        (type(e).__name__, _case_key(e))
        for e in events
        if isinstance(e, (PathCompleted, TestCaseFound))
    )


class TestSessionBasics:
    def test_session_is_symbolic_session(self):
        assert Session is SymbolicSession

    def test_bad_language_raises_before_any_work(self):
        with pytest.raises(ReproError) as exc:
            Session("cobol", "x = 1")
        assert "cobol" in str(exc.value)

    def test_run_returns_result_and_caches(self):
        session = Session.from_program(_program(), _config())
        result = session.run()
        assert result.ll_paths == 8
        assert result.hl_paths == 8
        assert session.run() is result
        assert session.result is result

    def test_events_end_with_run_finished(self):
        session = Session.from_program(_program(), _config())
        events = list(session.events())
        assert isinstance(events[-1], RunFinished)
        assert events[-1].result is session.result

    def test_events_consumed_twice_raises_cleanly(self):
        session = Session.from_program(_program(2), _config())
        list(session.events())
        with pytest.raises(ReproError):
            session.events()

    def test_events_claimed_twice_raises_even_unconsumed(self):
        session = Session.from_program(_program(2), _config())
        stream = session.events()
        with pytest.raises(ReproError):
            session.events()
        list(stream)  # the first claim still works

    def test_run_after_events_consumed_returns_cached_result(self):
        session = Session.from_program(_program(2), _config())
        events = list(session.events())
        assert session.run() is events[-1].result

    def test_run_matches_event_stream_test_cases(self):
        blocking = Session.from_program(_program(), _config()).run()
        events = list(Session.from_program(_program(), _config()).events())
        found = {_case_key(e) for e in events if isinstance(e, TestCaseFound)}
        expected = {
            (
                tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
                case.status,
                tuple(case.output),
            )
            for case in blocking.hl_test_cases
        }
        assert found == expected

    def test_every_test_case_found_is_also_path_completed(self):
        events = list(Session.from_program(_program(), _config()).events())
        paths = {_case_key(e) for e in events if isinstance(e, PathCompleted)}
        found = {_case_key(e) for e in events if isinstance(e, TestCaseFound)}
        assert found <= paths

    def test_replay_needs_a_language_engine(self):
        session = Session.from_program(_program(2), _config())
        with pytest.raises(ReproError):
            session.replay(None)

    def test_failed_exploration_poisons_session_with_accurate_error(self):
        session = Session.from_program(_program(2), _config())

        class Boom(RuntimeError):
            pass

        def exploding_stream():
            raise Boom()
            yield  # pragma: no cover

        session._chef_instance().stream = exploding_stream
        with pytest.raises(Boom):
            list(session.events())
        # Retrying reports the failure, not "already claimed".
        with pytest.raises(ReproError, match="raised"):
            session.run()

    def test_budget_exhausted_event_carries_reason(self):
        session = Session.from_program(
            _program(), _config(max_ll_paths=2)
        )
        events = list(session.events())
        budget = [e for e in events if isinstance(e, BudgetExhausted)]
        assert [e.reason for e in budget] == ["ll-paths"]


class TestEventStreamDeterminism:
    """The event multiset is a function of the workload, not the worker
    count: ISSUE 5's scheduling-independence criterion."""

    def _events(self, workers):
        session = Session.from_program(_program(4), _config(workers=workers))
        return list(session.events())

    def test_workers_2_matches_workers_1_event_multiset(self):
        serial = self._events(workers=1)
        parallel = self._events(workers=2)
        assert sum(isinstance(e, PathCompleted) for e in serial) == 16
        assert _path_event_multiset(serial) == _path_event_multiset(parallel)

    def test_parallel_stream_emits_batch_merged(self):
        serial = self._events(workers=1)
        parallel = self._events(workers=2)
        assert not any(isinstance(e, BatchMerged) for e in serial)
        merges = [e for e in parallel if isinstance(e, BatchMerged)]
        assert merges
        # deterministic chunk order: rounds ascend, chunks ascend per round.
        assert [(e.round_no, e.chunk_index) for e in merges] == sorted(
            (e.round_no, e.chunk_index) for e in merges
        )

    def test_parallel_run_result_matches_serial(self):
        serial = Session.from_program(_program(4), _config(workers=1)).run()
        parallel = Session.from_program(_program(4), _config(workers=2)).run()
        assert serial.ll_paths == parallel.ll_paths == 16
        assert serial.hl_paths == parallel.hl_paths


@requires_clay
class TestLanguageSessions:
    """Session(language, source) parity with the legacy engine facades.

    Skipped until the Clay interpreter sources land (seed gap)."""

    _SOURCE = (
        "def check(s):\n"
        "    if s.find(\"@\") < 1:\n"
        "        raise ValueError(\"bad\")\n"
        "    return 1\n"
        "\n"
        "data = sym_string(\"\\x00\\x00\\x00\")\n"
        "print(check(data))\n"
    )

    @staticmethod
    def _case_set(result):
        return {
            (
                tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
                case.status,
                tuple(case.output),
            )
            for case in result.suite
        }

    def test_minipy_session_reproduces_engine_results(self):
        from repro.interpreters.minipy.engine import MiniPyEngine

        config = ChefConfig(strategy="cupa-path", seed=0, time_budget=5.0)
        legacy = MiniPyEngine(self._SOURCE, config).run()
        session = Session("minipy", self._SOURCE, config)
        result = session.run()
        assert self._case_set(result) == self._case_set(legacy)
        for case in result.hl_test_cases:
            assert session.replay(case).output == case.output

    def test_minilua_session_runs(self):
        session = Session("minilua", "print(1 + 1)", ChefConfig(time_budget=10.0))
        result = session.run()
        assert result.suite.cases[0].output == [1, 2]
