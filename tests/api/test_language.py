"""GuestLanguage protocol + registry tests."""

import pytest

from repro.api.language import (
    GuestLanguage,
    UnknownLanguageError,
    _REGISTRY,
    get_language,
    languages,
    register_language,
)
from repro.errors import ReproError
from repro.interpreters.minilua.frontend import tokenize_lua
from repro.interpreters.minipy.frontend import tokenize


#: strings whose literals must survive frontend lexing unchanged.
ROUND_TRIP_CASES = [
    "plain",
    'has "quotes"',
    "back\\slash",
    'mix "q" and \\ and more \\\\',
    "\x00\x01\x1f\x7f\xff",
    "tab\tnewline\nquote'",
    "",
]


class TestRegistry:
    def test_builtins_registered(self):
        assert languages() == ["minilua", "minipy", "pylite"]

    def test_get_language_comment_prefixes(self):
        assert get_language("minipy").comment_prefix == "#"
        assert get_language("minilua").comment_prefix == "--"
        assert get_language("pylite").comment_prefix == "#"

    def test_get_language_passthrough(self):
        lang = get_language("minipy")
        assert get_language(lang) is lang

    def test_unknown_language_error_lists_known(self):
        with pytest.raises(UnknownLanguageError) as exc:
            get_language("ruby")
        # All three builtins, quoted, in sorted order.
        assert "'minilua', 'minipy', 'pylite'" in str(exc.value)

    def test_unknown_language_error_is_repro_error(self):
        with pytest.raises(ReproError):
            get_language("ruby")

    def test_reregistering_same_object_is_noop(self):
        lang = get_language("minipy")
        assert register_language(lang) is lang

    def test_registering_conflicting_name_rejected(self):
        impostor = GuestLanguage(
            name="minipy",
            comment_prefix=";",
            engine_factory=lambda *a: None,
            quote_literal=repr,
        )
        with pytest.raises(ReproError):
            register_language(impostor)
        # ...and the registry stays usable afterwards.
        assert languages() == ["minilua", "minipy", "pylite"]

    def test_conflict_detected_even_before_first_lookup(self):
        # Regression: registering an impostor under a builtin name
        # *before* any get_language()/languages() call used to succeed
        # (builtins load lazily) and then poison every later lookup,
        # which would raise "already registered" from _load_builtins.
        # register_language now loads the builtins first.
        import sys

        from repro.api import language as language_module

        saved_registry = dict(_REGISTRY)
        module_names = [
            "repro.interpreters.minipy.language",
            "repro.interpreters.minilua.language",
            "repro.interpreters.pylite.language",
        ]
        saved_modules = {n: sys.modules.pop(n) for n in module_names if n in sys.modules}
        _REGISTRY.clear()
        language_module._builtins_loaded = False
        try:
            impostor = GuestLanguage(
                name="minilua",
                comment_prefix=";",
                engine_factory=lambda *a: None,
                quote_literal=repr,
            )
            with pytest.raises(ReproError):
                register_language(impostor)
            assert languages() == ["minilua", "minipy", "pylite"]
        finally:
            _REGISTRY.clear()
            _REGISTRY.update(saved_registry)
            sys.modules.update(saved_modules)
            language_module._builtins_loaded = True

    def test_third_language_is_one_registration_away(self):
        toy = GuestLanguage(
            name="toylang",
            comment_prefix=";;",
            engine_factory=lambda *a: None,
            quote_literal=lambda s: "<" + s + ">",
        )
        register_language(toy)
        try:
            assert get_language("toylang") is toy
            assert "toylang" in languages()
            assert toy.declare_string("s", "ab") == "s = sym_string(<ab>)"
            assert toy.declare_int("n", 3, 0, 9) == "n = sym_int(3, 0, 9)"
            assert toy.loc("a\n;; comment\n\nb\n") == 2
        finally:
            del _REGISTRY["toylang"]

    def test_host_vm_optional(self):
        toy = GuestLanguage(
            name="no-vm",
            comment_prefix="#",
            engine_factory=lambda *a: None,
            quote_literal=repr,
        )
        with pytest.raises(ReproError):
            toy.host_vm(None, [])


class TestQuoting:
    @pytest.mark.parametrize("text", ROUND_TRIP_CASES)
    def test_minipy_literal_round_trips_through_lexer(self, text):
        literal = get_language("minipy").quote_literal(text)
        tokens = tokenize(f"x = {literal}\n")
        values = [t.value for t in tokens if t.kind == "str"]
        assert values == [text]

    @pytest.mark.parametrize("text", ROUND_TRIP_CASES)
    def test_minilua_literal_round_trips_through_lexer(self, text):
        literal = get_language("minilua").quote_literal(text)
        tokens = tokenize_lua(f"x = {literal}\n")
        values = [t.value for t in tokens if t.kind == "str"]
        assert values == [text]

    @pytest.mark.parametrize("text", ROUND_TRIP_CASES)
    def test_pylite_literal_round_trips_through_ast(self, text):
        # PyLite is parsed by CPython's ast, so the literal must read
        # back identically under Python's own literal rules.
        import ast

        literal = get_language("pylite").quote_literal(text)
        assert ast.literal_eval(literal) == text

    def test_loc_uses_language_comment_prefix(self):
        assert get_language("minipy").loc("a = 1\n# c\nb = 2\n") == 2
        assert get_language("minilua").loc("x = 1\n-- c\ny = 2\n") == 2
        assert get_language("pylite").loc("a = 1\n# c\n\nb = 2\n") == 2
