"""Lint-style guard for PR 5's no-string-dispatch invariant.

Language behaviour must flow through the :class:`GuestLanguage` registry;
the only files allowed to name a language are the per-language
``interpreters/<lang>/language.py`` registration modules.  This test
walks the AST of every module under ``src/repro`` and flags comparisons
of a ``language`` value against a string literal anywhere else — the
pattern the registry was introduced to eliminate.
"""

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent


def _is_language_ref(node: ast.expr) -> bool:
    """``language``/``lang`` names or ``*.language`` attributes."""
    if isinstance(node, ast.Name):
        return node.id in {"language", "lang", "language_name"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"language", "lang", "language_name"}
    return False


def _is_string_literal(node: ast.expr) -> bool:
    """A string constant, or a tuple/list/set containing one (``in``)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return any(_is_string_literal(elt) for elt in node.elts)
    return False


def _string_dispatch_sites(tree: ast.AST):
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        has_language = any(_is_language_ref(op) for op in operands)
        has_literal = any(_is_string_literal(op) for op in operands)
        if has_language and has_literal:
            yield node.lineno


def _is_registration_module(path: Path) -> bool:
    rel = path.relative_to(SRC_ROOT)
    return (
        len(rel.parts) == 3
        and rel.parts[0] == "interpreters"
        and rel.parts[2] == "language.py"
    )


class TestNoStringDispatch:
    def test_no_language_string_comparisons_outside_language_modules(self):
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if _is_registration_module(path):
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for lineno in _string_dispatch_sites(tree):
                offenders.append(f"{path.relative_to(SRC_ROOT)}:{lineno}")
        assert not offenders, (
            "language-name string comparisons outside interpreters/*/language.py "
            f"(route through repro.api.get_language instead): {offenders}"
        )

    def test_guard_actually_detects_the_pattern(self):
        # The lint must not be vacuous: feed it the forbidden shape.
        tree = ast.parse("if package.language == 'minipy':\n    pass\n")
        assert list(_string_dispatch_sites(tree)) == [1]
        tree = ast.parse("ok = language in ('a', 'b')\n")
        assert list(_string_dispatch_sites(tree)) == [1]
        tree = ast.parse("if kind == 'minipy':\n    pass\n")
        assert list(_string_dispatch_sites(tree)) == []

    def test_registration_modules_exist_for_every_language(self):
        # The allow-list is real: each registered language has its
        # interpreters/<name>/language.py registration module.
        for name in repro.languages():
            assert (SRC_ROOT / "interpreters" / name / "language.py").is_file()
