"""Determinism: sharded exploration covers the identical path set.

Exhaustive exploration of a branchy guest must produce the same set of
(inputs, status, output) paths at every worker count — parallelism may
reorder discovery but never change what is discovered.
"""

from __future__ import annotations

import pytest

from repro.chef.engine import Chef
from repro.bench.workloads import branchy_source, traced_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.lowlevel.executor import ExecutorConfig, LowLevelEngine
from repro.parallel import ParallelExplorer, path_set
from repro.solver.cache import ModelCache
from repro.solver.csp import CspSolver

_BYTES = 5  # 32 feasible paths: big enough to shard, fast enough for CI




def _serial_result(program):
    engine = LowLevelEngine(
        program, solver=CspSolver(cache=ModelCache()), config=ExecutorConfig()
    )
    return engine.explore(max_states=512)


class TestLowLevelDeterminism:
    def test_workers_1_matches_manual_loop(self):
        """workers=1 is the classic in-process loop: same paths, same
        engine counters as driving run_path/activate by hand."""
        compiled = compile_program(branchy_source(_BYTES))
        result = _serial_result(compiled.program)

        manual_engine = LowLevelEngine(
            compiled.program, solver=CspSolver(cache=ModelCache()), config=ExecutorConfig()
        )
        state = manual_engine.new_state()
        queue = manual_engine.run_path(state)
        while queue:
            candidate = queue.pop()
            if manual_engine.activate(candidate) != "sat":
                continue
            queue.extend(manual_engine.run_path(candidate))
        assert result.engine_stats["paths_completed"] == manual_engine.stats.paths_completed
        assert result.engine_stats["forks"] == manual_engine.stats.forks
        assert len(result.records) == 1 << _BYTES

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_explores_identical_path_set(self, workers):
        compiled = compile_program(branchy_source(_BYTES))
        serial = _serial_result(compiled.program)
        explorer = ParallelExplorer(
            compiled.program, workers=workers, config=ExecutorConfig(), batch_size=4
        )
        parallel = explorer.explore(max_states=512)
        assert len(parallel.records) == 1 << _BYTES
        assert parallel.path_set() == serial.path_set()
        # Identical solver workload, just sharded: same query count.
        assert parallel.solver_stats["queries"] == serial.solver_stats["queries"]

    def test_parallel_runs_show_cross_worker_cache_reuse(self):
        compiled = compile_program(branchy_source(_BYTES))
        explorer = ParallelExplorer(
            compiled.program, workers=2, config=ExecutorConfig(), batch_size=2
        )
        result = explorer.explore(max_states=512)
        assert result.cache_stats["merged_stores"] > 0
        assert result.cache_stats["merged_hits"] > 0


class TestChefDeterminism:
    def _run(self, program, workers):
        config = ChefConfig(
            strategy="cupa-path", seed=0, time_budget=60.0, workers=workers
        )
        return Chef(program, config).run()

    @staticmethod
    def _case_set(suite):
        return frozenset(
            (
                tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
                case.status,
                tuple(case.output),
            )
            for case in suite
        )

    def test_chef_parallel_matches_serial(self):
        compiled = compile_program(traced_source(4))
        serial = self._run(compiled.program, workers=1)
        parallel = self._run(compiled.program, workers=2)
        assert serial.ll_paths == parallel.ll_paths == 16
        assert serial.hl_paths == parallel.hl_paths
        assert self._case_set(serial.suite) == self._case_set(parallel.suite)
        # The replayed traces rebuild the same high-level structures.
        assert serial.cfg_nodes == parallel.cfg_nodes
        assert serial.cfg_edges == parallel.cfg_edges
        assert serial.tree_nodes == parallel.tree_nodes

    def test_chef_parallel_coverage_strategy(self):
        compiled = compile_program(traced_source(3))
        config = ChefConfig(
            strategy="cupa-cov", seed=1, time_budget=60.0, workers=2
        )
        result = Chef(compiled.program, config).run()
        assert result.ll_paths == 8
        assert result.hl_paths == 8
