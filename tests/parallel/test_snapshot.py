"""Snapshot round-tripping: pickled expressions re-intern, restored
states replay to the same verdicts as the originals."""

from __future__ import annotations

import pickle

import pytest

from repro.clay import compile_program
from repro.bench.workloads import branchy_source
from repro.lowlevel.executor import ExecutorConfig, LowLevelEngine
from repro.lowlevel.expr import (
    Expr,
    Sym,
    clear_intern_cache,
    fingerprint,
    mk_binop,
    mk_unop,
)
from repro.parallel.snapshot import path_record_of, restore_state, snapshot_state
from repro.solver.cache import ModelCache, reset_global_model_cache
from repro.solver.constraints import ConstraintSet
from repro.solver.csp import CspSolver



def _fresh_engine(n_bytes: int = 3) -> LowLevelEngine:
    compiled = compile_program(branchy_source(n_bytes))
    return LowLevelEngine(
        compiled.program, solver=CspSolver(cache=ModelCache()), config=ExecutorConfig()
    )


class TestExprPickling:
    def test_same_process_roundtrip_is_identity(self):
        x = Sym("x", 0, 255)
        expr = mk_binop("add", mk_binop("mul", x, 3), mk_unop("neg", Sym("y", 0, 9)))
        assert pickle.loads(pickle.dumps(expr)) is expr

    def test_shared_subgraphs_stay_shared(self):
        x = Sym("x", 0, 255)
        shared = mk_binop("mul", x, 7)
        expr = mk_binop("add", shared, mk_binop("xor", shared, 1))
        restored = pickle.loads(pickle.dumps(expr))
        assert restored.a is restored.b.a

    def test_fresh_process_simulation_reinterns(self):
        # Simulate a fresh worker: pickle, clear every process-global
        # table (ids get recycled), then load twice — both loads must
        # intern to the same node with the original structure.
        x = Sym("x", 0, 255)
        expr = mk_binop("lt", mk_binop("add", x, 4), 100)
        original_repr = repr(expr)
        original_fp = fingerprint(expr)
        blob = pickle.dumps(expr)
        reset_global_model_cache()
        clear_intern_cache()
        Sym.reset_registry()
        first = pickle.loads(blob)
        second = pickle.loads(blob)
        assert first is second
        assert repr(first) == original_repr
        assert fingerprint(first) == original_fp

    def test_fingerprint_stable_and_structural(self):
        x = Sym("x", 0, 255)
        y = Sym("y", 0, 255)
        a = mk_binop("add", x, 1)
        b = mk_binop("add", y, 1)
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) == fingerprint(mk_binop("add", x, 1))
        # Ints fingerprint too (atoms can be concrete residues).
        assert fingerprint(3) == fingerprint(3)
        assert fingerprint(3) != fingerprint(4)


class TestConstraintSetPickling:
    def test_roundtrip_atoms_and_model(self):
        x = Sym("x", 0, 255)
        cs = ConstraintSet.empty().append(mk_binop("gt", x, 4))
        cs.note_model({"x": 10})
        cs = cs.append(mk_binop("lt", x, 100))
        restored = pickle.loads(pickle.dumps(cs))
        assert [repr(a) for a in restored.atoms()] == [repr(a) for a in cs.atoms()]
        # Atoms re-intern to the very same nodes in-process.
        assert all(ra is a for ra, a in zip(restored.atoms(), cs.atoms()))
        # The nearest known model survives the trip.
        model, prefix, suffix = restored.split_at_model()
        assert model == {"x": 10}
        assert len(prefix) == 1 and len(suffix) == 1

    def test_empty_set_roundtrip(self):
        restored = pickle.loads(pickle.dumps(ConstraintSet.empty()))
        assert len(restored) == 0


class TestStateSnapshots:
    def test_pending_state_roundtrips_and_replays_identically(self):
        engine = _fresh_engine(3)
        root = engine.new_state()
        queue = engine.run_path(root)
        assert queue, "branchy guest must fork"
        original = queue.pop()

        blob = pickle.dumps(snapshot_state(original))
        restored = restore_state(pickle.loads(blob), engine.program, sid=999)

        # Re-interning: the restored path condition is made of the very
        # same interned atom objects, so id()-keyed caches stay sound.
        assert all(
            ra is a
            for ra, a in zip(restored.path_condition.atoms(), original.path_condition.atoms())
            if isinstance(a, Expr)
        )
        assert restored.pending and original.pending
        assert restored.seed_assignment == original.seed_assignment

        # Activate and run both: same verdict, same assignment, same record.
        v_original = engine.activate(original)
        v_restored = engine.activate(restored)
        assert v_original == v_restored == "sat"
        assert restored.assignment == original.assignment
        engine.run_path(original)
        engine.run_path(restored)
        assert path_record_of(restored).identity() == path_record_of(original).identity()

    def test_terminated_state_snapshot_preserves_outcome(self):
        engine = _fresh_engine(2)
        root = engine.new_state()
        engine.run_path(root)
        assert root.terminated()
        snap = pickle.loads(pickle.dumps(snapshot_state(root)))
        restored = restore_state(snap, engine.program, sid=1000)
        assert restored.machine.status == root.machine.status
        assert restored.machine.output == root.machine.output
        assert path_record_of(restored).identity() == path_record_of(root).identity()

    def test_memory_delta_excludes_untouched_static_data(self):
        engine = _fresh_engine(2)
        root = engine.new_state()
        engine.run_path(root)
        snap = snapshot_state(root)
        # The delta must not re-ship untouched static data.
        static = engine.program.static_data
        assert all(
            key not in static or static[key] != value
            for key, value in snap.mem_changed.items()
        )
        restored = restore_state(snap, engine.program, sid=1)
        assert restored.machine.memory.to_dict() == root.machine.memory.to_dict()


class TestCrossProcessRoundtrip:
    def test_snapshot_survives_a_real_process_boundary(self):
        import multiprocessing

        engine = _fresh_engine(3)
        root = engine.new_state()
        queue = engine.run_path(root)
        pending = queue.pop()
        snap = snapshot_state(pending)

        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        with ctx.Pool(1) as pool:
            child_fps = pool.apply(_fingerprints_in_child, (engine.program, snap))
        parent_fps = [
            fingerprint(a) for a in pending.path_condition.atoms() if isinstance(a, Expr)
        ]
        assert child_fps == parent_fps


def _fingerprints_in_child(program, snap):
    restored = restore_state(snap, program, sid=0)
    return [
        fingerprint(a) for a in restored.path_condition.atoms() if isinstance(a, Expr)
    ]


class TestSharedValueEncoding:
    def test_memory_values_sharing_a_spine_flatten_once(self):
        # Ten cells each holding (a prefix of) one deep accumulator chain
        # must encode the spine once, not once per cell.
        eng = _fresh_engine(2)
        state = eng.new_state()
        var = Sym("snap_spine", 0, 255)
        depth = 200
        node = var
        chain = []
        for i in range(depth):
            node = mk_binop("add", mk_binop("mul", node, 3), i % 251)
            chain.append(node)
        for cell in range(10):
            state.machine.memory[900 + cell] = chain[depth - 1 - cell]
        snap = snapshot_state(state)
        # Spine nodes + constants, NOT ~10x the spine.
        assert len(snap.expr_instrs) < 3 * (2 * depth + 2)
        restored = restore_state(snap, eng.program, eng._fresh_sid())
        for cell in range(10):
            assert restored.machine.memory[900 + cell] is chain[depth - 1 - cell]
