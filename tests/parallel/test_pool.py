"""Persistent worker-pool lifecycle and the O(suffix) classification gate.

Covers the PR's counter-gated acceptance criteria, which are core-count
independent (no wall-clock assertions anywhere):

- warm reuse: two ``Session.run()`` calls share one pool — workers are
  spawned once (``pool.spawns == workers``) and the Program image ships
  once per pool (``pool.program_ships == 1``), even though the second
  session compiled its own (content-identical) Program object;
- explicit ``close()`` is idempotent, and a dead worker surfaces a
  clear :class:`WorkerCrashError` instead of a hang (fail-fast with
  liveness polling);
- pending classification is O(since-restore suffix), not O(path-depth):
  ``coordinator.classify_steps`` must undercut the honest full-replay
  equivalent (``coordinator.classify_full_trace``) by ≥10× on the
  deep-traced workload.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.api.session import SymbolicSession
from repro.bench.workloads import branchy_source, deep_traced_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.parallel.coordinator import ParallelExplorer
from repro.parallel.pool import (
    WorkerCrashError,
    WorkerPool,
    close_shared_pools,
    shared_worker_pool,
)


@pytest.fixture(autouse=True)
def _fresh_shared_pools():
    """Isolate the process-wide pool registry per test."""
    close_shared_pools()
    yield
    close_shared_pools()


def _run_once(source: str, workers: int = 2) -> SymbolicSession:
    program = compile_program(source).program
    session = SymbolicSession.from_program(
        program, ChefConfig(time_budget=120.0, workers=workers)
    )
    session.run()
    return session


class TestWarmReuse:
    def test_two_session_runs_share_one_pool_and_one_program_ship(self):
        first = _run_once(branchy_source(4))
        pool = shared_worker_pool(2)
        assert pool.spawns == 2
        assert pool.program_ships == 1
        assert pool.configures == 1
        # A second session compiles its own Program object; the pool
        # dedupes by content hash and reuses the warm workers.
        second = _run_once(branchy_source(4))
        assert shared_worker_pool(2) is pool
        assert pool.spawns == 2, "warm reuse must not respawn workers"
        assert pool.program_ships == 1, "Program must ship once per pool, not per run"
        assert pool.configures == 2
        assert first.result.ll_paths == second.result.ll_paths == 16

    def test_distinct_programs_ship_separately_but_reuse_workers(self):
        _run_once(branchy_source(3))
        _run_once(branchy_source(4))
        pool = shared_worker_pool(2)
        assert pool.spawns == 2
        assert pool.program_ships == 2

    def test_program_ship_metric_lands_in_session_metrics(self):
        session = _run_once(branchy_source(4))
        metrics = session.metrics()
        assert metrics["parallel.program_ships"] == 1
        assert metrics["parallel.pool_spawns"] == 2


class TestLifecycle:
    def test_close_is_idempotent(self):
        program = compile_program(branchy_source(3)).program
        pool = WorkerPool(2)
        pool.configure(program, None, "t", 10_000)
        assert pool.spawns == 2
        pool.close()
        assert pool.closed
        pool.close()  # second close is a no-op, not an error
        assert pool.closed and not pool._procs

    def test_close_shared_pools_is_idempotent(self):
        _run_once(branchy_source(3))
        close_shared_pools()
        close_shared_pools()
        # The registry replaces closed pools transparently.
        assert not shared_worker_pool(2).closed

    def test_explorer_release_keeps_shared_pool_warm(self):
        program = compile_program(branchy_source(4)).program
        explorer = ParallelExplorer(program, workers=2)
        result = explorer.explore(max_states=512)
        assert len(result.records) == 16
        pool = shared_worker_pool(2)
        assert not pool.closed
        assert not pool._leased, "explore() must release its lease"
        # The next explorer leases the same warm pool.
        again = ParallelExplorer(program, workers=2).explore(max_states=512)
        assert again.path_set() == result.path_set()
        assert shared_worker_pool(2) is pool
        assert pool.spawns == 2


class TestCrashHandling:
    def test_dead_worker_fails_configure_fast(self):
        program = compile_program(branchy_source(3)).program
        pool = WorkerPool(2)
        pool.configure(program, None, "t", 10_000)
        victim = pool._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)
        start = time.monotonic()
        with pytest.raises(WorkerCrashError):
            pool.configure(program, None, "t", 10_000)
        assert time.monotonic() - start < 30.0, "fail-fast, not a hang"
        assert pool.broken
        pool.close()

    def test_all_workers_dead_fails_round_fast(self):
        program = compile_program(branchy_source(3)).program
        pool = WorkerPool(2)
        explorer = ParallelExplorer(program, workers=2, pool=pool)
        explorer.start()
        for proc in pool._procs:
            os.kill(proc.pid, signal.SIGKILL)
        for proc in pool._procs:
            proc.join(timeout=10.0)
        from repro.parallel.snapshot import boot_snapshot

        with pytest.raises(WorkerCrashError):
            explorer.submit([boot_snapshot(program)])
        assert pool.broken
        explorer.close()
        pool.close()

    def test_broken_shared_pool_is_replaced(self):
        _run_once(branchy_source(3))
        pool = shared_worker_pool(2)
        pool.broken = True
        replacement = shared_worker_pool(2)
        assert replacement is not pool
        # Exploration still works through the replacement.
        session = _run_once(branchy_source(3))
        assert session.result.ll_paths == 8


class TestSuffixClassification:
    def test_classify_steps_scale_with_suffix_not_path_depth(self):
        """Regression gate: classification is O(since-restore suffix).

        ``classify_full_trace`` accumulates each classified state's
        whole high-level instruction count — exactly what the pre-pool
        coordinator walked per pending.  On a workload with a long
        shared trace prefix (interpreter-startup shape), suffix
        grafting must undercut it by an order of magnitude.
        """
        session = _run_once(deep_traced_source(8), workers=2)
        metrics = session.metrics()
        steps = metrics["coordinator.classify_steps"]
        full = metrics["coordinator.classify_full_trace"]
        assert metrics["coordinator.classify_states"] > 0
        assert steps > 0
        assert full >= 10 * steps, (
            f"classification walked {steps} tree steps where full-trace "
            f"replay would walk {full}; expected >= 10x reduction"
        )

    def test_suffix_grafting_matches_serial_high_level_structures(self):
        serial = _run_once(deep_traced_source(6), workers=1).result
        parallel = _run_once(deep_traced_source(6), workers=2).result
        assert parallel.hl_paths == serial.hl_paths
        assert parallel.tree_nodes == serial.tree_nodes
        assert parallel.cfg_nodes == serial.cfg_nodes
        assert parallel.cfg_edges == serial.cfg_edges
        serial_sigs = {c.hl_path_signature for c in serial.suite.cases}
        parallel_sigs = {c.hl_path_signature for c in parallel.suite.cases}
        assert parallel_sigs == serial_sigs


class TestLeaseQueueing:
    def test_acquire_waits_fifo(self):
        import threading

        pool = WorkerPool(2)
        assert pool.try_acquire()
        order = []

        def waiter(tag):
            assert pool.acquire(timeout=30.0)
            order.append(tag)
            pool.release()

        first = threading.Thread(target=waiter, args=("a",))
        first.start()
        time.sleep(0.1)
        second = threading.Thread(target=waiter, args=("b",))
        second.start()
        time.sleep(0.1)
        pool.release()
        first.join(timeout=10.0)
        second.join(timeout=10.0)
        assert order == ["a", "b"], "lease hand-off must be first-come-first-served"
        pool.close()

    def test_try_acquire_defers_to_waiters(self):
        import threading

        pool = WorkerPool(2)
        assert pool.try_acquire()
        acquired = threading.Event()

        def waiter():
            assert pool.acquire(timeout=30.0)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        # Queue-jumping past a blocked waiter would starve it.
        assert not pool.try_acquire()
        pool.release()
        thread.join(timeout=10.0)
        assert acquired.is_set()
        pool.release()
        pool.close()

    def test_acquire_times_out(self):
        pool = WorkerPool(2)
        assert pool.try_acquire()
        assert pool.acquire(timeout=0.1) is False
        pool.release()
        pool.close()

    def test_close_releases_waiters(self):
        import threading

        pool = WorkerPool(2)
        assert pool.try_acquire()
        outcome = {}

        def waiter():
            outcome["acquired"] = pool.acquire(timeout=30.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        pool.close()
        thread.join(timeout=10.0)
        assert outcome["acquired"] is False


class TestConcurrentSessions:
    def test_two_concurrent_sessions_share_pool_and_ship_once(self):
        """The daemon's common case: interleaved sessions, one warm pool.

        The old ``shared_worker_pool`` fell back to a *transient* pool
        whenever the shared one was leased, so two interleaved sessions
        paid full spawn + program-ship cost each; FIFO lease queueing
        plus round-scoped explorer leases make them alternate rounds on
        the one pool instead.
        """
        import threading

        source = branchy_source(4)
        sessions = [
            SymbolicSession.from_program(
                compile_program(source).program,
                ChefConfig(time_budget=120.0, workers=2),
            )
            for _ in range(2)
        ]
        errors = []

        def drive(session):
            try:
                session.run()
            except BaseException as exc:  # surfaces in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(s,)) for s in sessions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors, errors
        pool = shared_worker_pool(2)
        assert pool.spawns == 2, "concurrent sessions must not spawn private pools"
        assert pool.program_ships == 1, "ship-once must hold across sessions"
        assert not pool._leased
        first, second = (session.result for session in sessions)
        assert first.ll_paths == second.ll_paths == 16
        first_ids = {
            (tuple(sorted((k, tuple(v)) for k, v in c.inputs.items())), c.status)
            for c in first.suite.cases
        }
        second_ids = {
            (tuple(sorted((k, tuple(v)) for k, v in c.inputs.items())), c.status)
            for c in second.suite.cases
        }
        assert first_ids == second_ids


class TestCloseEscalation:
    def test_close_leaves_no_live_children(self):
        program = compile_program(branchy_source(3)).program
        pool = WorkerPool(2)
        pool.configure(program, None, "t", 10_000)
        procs = list(pool._procs)
        pool.close()
        assert all(not proc.is_alive() for proc in procs)
        assert pool.kills == 0  # polite stop sufficed

    def test_close_escalates_to_kill_for_wedged_worker(self):
        """A SIGSTOPped worker ignores both the stop message and SIGTERM
        (it stays pending while the process is stopped); only SIGKILL
        reaps it.  The old best-effort close left it as a zombie child.
        """
        program = compile_program(branchy_source(3)).program
        pool = WorkerPool(2)
        pool.configure(program, None, "t", 10_000)
        procs = list(pool._procs)
        os.kill(procs[0].pid, signal.SIGSTOP)
        pool.close(join_timeout=0.5)
        assert pool.kills >= 1
        assert all(not proc.is_alive() for proc in procs), (
            "close() must leave no live children, even wedged ones"
        )


class TestEpochKeyedJournals:
    def test_stale_epoch_marks_do_not_skip_deltas(self, monkeypatch):
        """Regression: journal marks are keyed (pool epoch, pid).

        Pids recycle; bare-pid marks surviving a crashed-pool
        replacement would claim the new pool's workers already merged
        entries they have never seen, and the delta broadcast would
        silently skip them.  Marks from a dead epoch must not raise the
        export base.
        """
        from repro.lowlevel.expr import Sym, mk_binop
        from repro.parallel.snapshot import boot_snapshot

        program = compile_program(branchy_source(3)).program
        explorer = ParallelExplorer(program, workers=2)
        explorer.start()
        pool = shared_worker_pool(2)
        x = Sym("pm_stale", 0, 255)
        atom = mk_binop("eq", x, 1)
        explorer.master_cache.store(
            explorer.master_cache.key_for([atom]), {x.name: 1}, atoms=[atom]
        )
        # Forge sky-high marks under a previous pool's epoch, as left
        # behind by a crash-then-replace with recycled pids.
        explorer._pid_marks = {
            (pool.epoch - 1, 111): 10**9,
            (pool.epoch - 1, 222): 10**9,
        }
        shipped = {}
        real_run_round = pool.run_round

        def spy(run_id, round_no, chunks, delta, **kwargs):
            shipped.setdefault("delta", list(delta))
            return real_run_round(run_id, round_no, chunks, delta, **kwargs)

        monkeypatch.setattr(pool, "run_round", spy)
        explorer.submit([boot_snapshot(program)])
        explorer.close()
        assert len(shipped["delta"]) >= 1, (
            "stale-epoch marks raised the delta base; replacement-pool "
            "workers would silently miss cache entries"
        )

    def test_crash_mid_run_retries_on_replacement_pool(self):
        """A worker crash mid-run replaces the pool and retries the round.

        The completed path set must be the full exhaustive one — the
        failed round merged nothing, the retry re-runs it verbatim, and
        (epoch, pid) keying resets the journal marks for the new pool.
        """
        from repro.parallel.coordinator import path_set
        from repro.parallel.snapshot import boot_snapshot

        program = compile_program(branchy_source(4)).program
        explorer = ParallelExplorer(program, workers=2)
        explorer.start()
        first_pool = shared_worker_pool(2)
        first_epoch = first_pool.epoch
        first_procs = list(first_pool._procs)
        frontier = [boot_snapshot(program)]
        records = []
        killed = False
        while frontier:
            batch = [frontier.pop() for _ in range(min(len(frontier), 16))]
            for result in explorer.submit(batch):
                records.extend(result.records)
                frontier.extend(result.pending)
            if not killed:
                for proc in first_procs:
                    os.kill(proc.pid, signal.SIGKILL)
                for proc in first_procs:
                    proc.join(timeout=10.0)
                killed = True
        explorer.close()
        assert killed
        replacement = shared_worker_pool(2)
        assert replacement.epoch != first_epoch
        assert first_pool.closed or first_pool.broken
        assert len(records) == 16
        # All live journal marks belong to the replacement epoch.
        assert {epoch for (epoch, _pid) in explorer._pid_marks} <= {replacement.epoch}
        # Identical identities on an undisturbed run.
        baseline = ParallelExplorer(program, workers=2).explore(max_states=512)
        assert path_set(records) == baseline.path_set()


class TestSessionStreamLifecycle:
    def test_abandoned_stream_unwinds_and_pool_is_reacquirable(self):
        """Regression: walking away from ``Session.events()`` mid-stream
        must deterministically unwind the Chef loop — no lingering pool
        lease, and the shared pool immediately serves the next session.
        """
        from repro.errors import ReproError

        program = compile_program(branchy_source(4)).program
        session = SymbolicSession.from_program(
            program, ChefConfig(time_budget=120.0, workers=2)
        )
        stream = session.events()
        next(stream)  # exploration has started (first round merged)
        stream.close()  # consumer abandons mid-stream
        pool = shared_worker_pool(2)
        assert not pool.broken
        assert pool.try_acquire(), "abandoned stream leaked the pool lease"
        pool.release()
        with pytest.raises(ReproError):
            session.events()  # half-explored session is poisoned
        follow_up = SymbolicSession.from_program(
            compile_program(branchy_source(4)).program,
            ChefConfig(time_budget=120.0, workers=2),
        )
        assert follow_up.run().ll_paths == 16
        assert shared_worker_pool(2) is pool
        assert pool.spawns == 2, "abandonment must not cost a respawn"
