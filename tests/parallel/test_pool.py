"""Persistent worker-pool lifecycle and the O(suffix) classification gate.

Covers the PR's counter-gated acceptance criteria, which are core-count
independent (no wall-clock assertions anywhere):

- warm reuse: two ``Session.run()`` calls share one pool — workers are
  spawned once (``pool.spawns == workers``) and the Program image ships
  once per pool (``pool.program_ships == 1``), even though the second
  session compiled its own (content-identical) Program object;
- explicit ``close()`` is idempotent, and a dead worker surfaces a
  clear :class:`WorkerCrashError` instead of a hang (fail-fast with
  liveness polling);
- pending classification is O(since-restore suffix), not O(path-depth):
  ``coordinator.classify_steps`` must undercut the honest full-replay
  equivalent (``coordinator.classify_full_trace``) by ≥10× on the
  deep-traced workload.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.api.session import SymbolicSession
from repro.bench.workloads import branchy_source, deep_traced_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.parallel.coordinator import ParallelExplorer
from repro.parallel.pool import (
    WorkerCrashError,
    WorkerPool,
    close_shared_pools,
    shared_worker_pool,
)


@pytest.fixture(autouse=True)
def _fresh_shared_pools():
    """Isolate the process-wide pool registry per test."""
    close_shared_pools()
    yield
    close_shared_pools()


def _run_once(source: str, workers: int = 2) -> SymbolicSession:
    program = compile_program(source).program
    session = SymbolicSession.from_program(
        program, ChefConfig(time_budget=120.0, workers=workers)
    )
    session.run()
    return session


class TestWarmReuse:
    def test_two_session_runs_share_one_pool_and_one_program_ship(self):
        first = _run_once(branchy_source(4))
        pool = shared_worker_pool(2)
        assert pool.spawns == 2
        assert pool.program_ships == 1
        assert pool.configures == 1
        # A second session compiles its own Program object; the pool
        # dedupes by content hash and reuses the warm workers.
        second = _run_once(branchy_source(4))
        assert shared_worker_pool(2) is pool
        assert pool.spawns == 2, "warm reuse must not respawn workers"
        assert pool.program_ships == 1, "Program must ship once per pool, not per run"
        assert pool.configures == 2
        assert first.result.ll_paths == second.result.ll_paths == 16

    def test_distinct_programs_ship_separately_but_reuse_workers(self):
        _run_once(branchy_source(3))
        _run_once(branchy_source(4))
        pool = shared_worker_pool(2)
        assert pool.spawns == 2
        assert pool.program_ships == 2

    def test_program_ship_metric_lands_in_session_metrics(self):
        session = _run_once(branchy_source(4))
        metrics = session.metrics()
        assert metrics["parallel.program_ships"] == 1
        assert metrics["parallel.pool_spawns"] == 2


class TestLifecycle:
    def test_close_is_idempotent(self):
        program = compile_program(branchy_source(3)).program
        pool = WorkerPool(2)
        pool.configure(program, None, "t", 10_000)
        assert pool.spawns == 2
        pool.close()
        assert pool.closed
        pool.close()  # second close is a no-op, not an error
        assert pool.closed and not pool._procs

    def test_close_shared_pools_is_idempotent(self):
        _run_once(branchy_source(3))
        close_shared_pools()
        close_shared_pools()
        # The registry replaces closed pools transparently.
        assert not shared_worker_pool(2).closed

    def test_explorer_release_keeps_shared_pool_warm(self):
        program = compile_program(branchy_source(4)).program
        explorer = ParallelExplorer(program, workers=2)
        result = explorer.explore(max_states=512)
        assert len(result.records) == 16
        pool = shared_worker_pool(2)
        assert not pool.closed
        assert not pool._leased, "explore() must release its lease"
        # The next explorer leases the same warm pool.
        again = ParallelExplorer(program, workers=2).explore(max_states=512)
        assert again.path_set() == result.path_set()
        assert shared_worker_pool(2) is pool
        assert pool.spawns == 2


class TestCrashHandling:
    def test_dead_worker_fails_configure_fast(self):
        program = compile_program(branchy_source(3)).program
        pool = WorkerPool(2)
        pool.configure(program, None, "t", 10_000)
        victim = pool._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)
        start = time.monotonic()
        with pytest.raises(WorkerCrashError):
            pool.configure(program, None, "t", 10_000)
        assert time.monotonic() - start < 30.0, "fail-fast, not a hang"
        assert pool.broken
        pool.close()

    def test_all_workers_dead_fails_round_fast(self):
        program = compile_program(branchy_source(3)).program
        pool = WorkerPool(2)
        explorer = ParallelExplorer(program, workers=2, pool=pool)
        explorer.start()
        for proc in pool._procs:
            os.kill(proc.pid, signal.SIGKILL)
        for proc in pool._procs:
            proc.join(timeout=10.0)
        from repro.parallel.snapshot import boot_snapshot

        with pytest.raises(WorkerCrashError):
            explorer.submit([boot_snapshot(program)])
        assert pool.broken
        explorer.close()
        pool.close()

    def test_broken_shared_pool_is_replaced(self):
        _run_once(branchy_source(3))
        pool = shared_worker_pool(2)
        pool.broken = True
        replacement = shared_worker_pool(2)
        assert replacement is not pool
        # Exploration still works through the replacement.
        session = _run_once(branchy_source(3))
        assert session.result.ll_paths == 8


class TestSuffixClassification:
    def test_classify_steps_scale_with_suffix_not_path_depth(self):
        """Regression gate: classification is O(since-restore suffix).

        ``classify_full_trace`` accumulates each classified state's
        whole high-level instruction count — exactly what the pre-pool
        coordinator walked per pending.  On a workload with a long
        shared trace prefix (interpreter-startup shape), suffix
        grafting must undercut it by an order of magnitude.
        """
        session = _run_once(deep_traced_source(8), workers=2)
        metrics = session.metrics()
        steps = metrics["coordinator.classify_steps"]
        full = metrics["coordinator.classify_full_trace"]
        assert metrics["coordinator.classify_states"] > 0
        assert steps > 0
        assert full >= 10 * steps, (
            f"classification walked {steps} tree steps where full-trace "
            f"replay would walk {full}; expected >= 10x reduction"
        )

    def test_suffix_grafting_matches_serial_high_level_structures(self):
        serial = _run_once(deep_traced_source(6), workers=1).result
        parallel = _run_once(deep_traced_source(6), workers=2).result
        assert parallel.hl_paths == serial.hl_paths
        assert parallel.tree_nodes == serial.tree_nodes
        assert parallel.cfg_nodes == serial.cfg_nodes
        assert parallel.cfg_edges == serial.cfg_edges
        serial_sigs = {c.hl_path_signature for c in serial.suite.cases}
        parallel_sigs = {c.hl_path_signature for c in parallel.suite.cases}
        assert parallel_sigs == serial_sigs
