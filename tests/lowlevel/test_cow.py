"""CowMap unit tests plus a model-based property test against dict."""

import pytest
from hypothesis import given, strategies as st

from repro.lowlevel.cow import _MAX_DEPTH, CowMap


class TestForkCompaction:
    """Regression: fork() compacts the shared chain once, up front."""

    def test_layer_depth_bounded_after_repeated_forks(self):
        m = CowMap({0: 0})
        children = []
        for i in range(10 * _MAX_DEPTH):
            m[i] = i
            children.append(m.fork())
        assert len(m._layers) <= _MAX_DEPTH + 1
        for child in children:
            assert len(child._layers) <= _MAX_DEPTH + 1

    def test_child_shares_compacted_layer_with_parent(self):
        m = CowMap()
        # Build the chain to exactly the compaction threshold.
        while len(m._layers) < _MAX_DEPTH:
            m[len(m._layers)] = 1
            m.fork()
        m[999] = 999
        child = m.fork()  # push exceeds _MAX_DEPTH: compaction fires
        assert len(m._layers) == 1
        # One flatten serves both maps: the child references the same
        # compacted layer object instead of flattening the chain again.
        assert child._layers[0] is m._layers[0]
        assert child.to_dict() == m.to_dict()

    def test_contents_correct_after_compaction(self):
        m = CowMap({0: "base"})
        expected = {0: "base"}
        forks = []
        for i in range(1, 3 * _MAX_DEPTH):
            m[i] = i * 10
            expected[i] = i * 10
            if i == 5:
                del m[0]
                del expected[0]
            forks.append((m.fork(), dict(expected)))
        assert m.to_dict() == expected
        for fork, frozen in forks:
            assert fork.to_dict() == frozen


class TestBasics:
    def test_set_get(self):
        m = CowMap()
        m[1] = "a"
        assert m[1] == "a"
        assert m.get(2) is None
        assert m.get(2, "d") == "d"

    def test_initial_contents(self):
        m = CowMap({1: 10, 2: 20})
        assert m[1] == 10 and m[2] == 20
        assert len(m) == 2

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            CowMap()[99]

    def test_delete(self):
        m = CowMap({1: 10})
        del m[1]
        assert 1 not in m
        with pytest.raises(KeyError):
            del m[1]

    def test_contains_and_len(self):
        m = CowMap()
        m["k"] = 1
        assert "k" in m
        assert "x" not in m
        assert len(m) == 1

    def test_overwrite(self):
        m = CowMap({1: 10})
        m[1] = 11
        assert m[1] == 11
        assert len(m) == 1


class TestForkSemantics:
    def test_fork_shares_existing(self):
        parent = CowMap({1: 10})
        child = parent.fork()
        assert child[1] == 10

    def test_child_writes_invisible_to_parent(self):
        parent = CowMap({1: 10})
        child = parent.fork()
        child[1] = 99
        child[2] = 2
        assert parent[1] == 10
        assert 2 not in parent

    def test_parent_writes_after_fork_invisible_to_child(self):
        parent = CowMap({1: 10})
        child = parent.fork()
        parent[1] = 55
        parent[3] = 3
        assert child[1] == 10
        assert 3 not in child

    def test_delete_in_child_only(self):
        parent = CowMap({1: 10})
        child = parent.fork()
        del child[1]
        assert 1 in parent
        assert 1 not in child

    def test_deep_fork_chain_compacts(self):
        m = CowMap({0: 0})
        forks = []
        for i in range(1, 64):
            m[i] = i
            forks.append(m.fork())
        assert m[0] == 0
        assert m[63] == 63
        # Layer chains are bounded by compaction.
        assert len(m._layers) <= 13
        for i, f in enumerate(forks, start=1):
            assert f[i] == i

    def test_iteration_skips_tombstones(self):
        m = CowMap({1: 10, 2: 20})
        child = m.fork()
        del child[1]
        assert sorted(child.keys()) == [2]
        assert child.to_dict() == {2: 20}


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("set"), st.integers(0, 20), st.integers(-5, 5)),
            st.tuples(st.just("del"), st.integers(0, 20), st.just(0)),
            st.tuples(st.just("fork"), st.just(0), st.just(0)),
        ),
        max_size=60,
    )
)
def test_cowmap_matches_dict_model(ops):
    """CowMap must behave exactly like dict under set/del/fork."""
    cow = CowMap()
    model = {}
    snapshots = []
    for op, key, value in ops:
        if op == "set":
            cow[key] = value
            model[key] = value
        elif op == "del":
            if key in model:
                del cow[key]
                del model[key]
        else:
            snapshots.append((cow.fork(), dict(model)))
    assert cow.to_dict() == model
    assert len(cow) == len(model)
    for snap_cow, snap_model in snapshots:
        # Forks taken earlier must still match their frozen models...
        # except that these forks were of the *same* underlying map and we
        # kept mutating the original; forks must show the state at fork time.
        assert snap_cow.to_dict() == snap_model


class TestSnapshotDelta:
    def test_delta_fast_path_matches_slow_path(self):
        base = {i: i * 10 for i in range(50)}
        fast = CowMap.from_base_and_delta(base, {})
        slow = CowMap(base)  # base copied into a private layer
        for cow in (fast, slow):
            cow[1] = 111          # changed
            cow[100] = 5          # added
            del cow[2]            # deleted from base
            cow[3] = 30           # written equal to base value
            cow[101] = 7
            del cow[101]          # added then deleted: absent everywhere
        child_fast = fast.fork()  # push writes into a layer above base
        child_fast[102] = 9
        assert fast._layers[0] is base  # fast path actually applies
        changed_f, deleted_f = fast.delta_against(base)
        changed_s, deleted_s = slow.delta_against(base)
        assert changed_f == changed_s == {1: 111, 100: 5}
        assert set(deleted_f) == set(deleted_s) == {2}
        restored = CowMap.from_base_and_delta(base, changed_f, deleted_f)
        assert restored.to_dict() == fast.to_dict()
        changed_c, deleted_c = child_fast.delta_against(base)
        assert changed_c == {1: 111, 100: 5, 102: 9}
        assert set(deleted_c) == {2}


class TestEmptyBaseDelta:
    def test_empty_base_still_anchors_the_fast_path(self):
        # Programs without static data (the Clay bench guests) restore
        # against an *empty* base dict.  The base must still be kept by
        # reference: dropping it pushed every forked descendant onto the
        # full re-flatten path in delta_against.
        base: dict = {}
        m = CowMap.from_base_and_delta(base, {})
        assert m._layers and m._layers[0] is base
        m[5] = 50
        child = m.fork()
        child[6] = 60
        del child[5]
        assert child._layers[0] is base
        changed, deleted = child.delta_against(base)
        assert changed == {6: 60}
        assert deleted == ()  # 5 never existed in base: no tombstone leaks
        restored = CowMap.from_base_and_delta(base, changed, deleted)
        assert restored.to_dict() == child.to_dict() == {6: 60}


class TestBasePreservingCompaction:
    def test_base_layer_survives_deep_fork_lineage(self):
        base = {i: i * 10 for i in range(40)}
        m = CowMap.from_base_and_delta(base, {})
        expected = dict(base)
        for i in range(3 * _MAX_DEPTH):
            m[1000 + i] = i
            expected[1000 + i] = i
            if i == 4:
                del m[7]
                del expected[7]
            m = m.fork()
        # Compaction fired several times, yet the shared base is still
        # the bottom layer and the chain stays bounded.
        assert m._layers[0] is base
        assert len(m._layers) <= _MAX_DEPTH + 2
        assert m.to_dict() == expected
        changed, deleted = m.delta_against(base)
        assert set(deleted) == {7}
        assert 7 not in changed
        restored = CowMap.from_base_and_delta(base, changed, deleted)
        assert restored.to_dict() == expected
