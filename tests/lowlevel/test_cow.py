"""CowMap unit tests plus a model-based property test against dict."""

import pytest
from hypothesis import given, strategies as st

from repro.lowlevel.cow import CowMap


class TestBasics:
    def test_set_get(self):
        m = CowMap()
        m[1] = "a"
        assert m[1] == "a"
        assert m.get(2) is None
        assert m.get(2, "d") == "d"

    def test_initial_contents(self):
        m = CowMap({1: 10, 2: 20})
        assert m[1] == 10 and m[2] == 20
        assert len(m) == 2

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            CowMap()[99]

    def test_delete(self):
        m = CowMap({1: 10})
        del m[1]
        assert 1 not in m
        with pytest.raises(KeyError):
            del m[1]

    def test_contains_and_len(self):
        m = CowMap()
        m["k"] = 1
        assert "k" in m
        assert "x" not in m
        assert len(m) == 1

    def test_overwrite(self):
        m = CowMap({1: 10})
        m[1] = 11
        assert m[1] == 11
        assert len(m) == 1


class TestForkSemantics:
    def test_fork_shares_existing(self):
        parent = CowMap({1: 10})
        child = parent.fork()
        assert child[1] == 10

    def test_child_writes_invisible_to_parent(self):
        parent = CowMap({1: 10})
        child = parent.fork()
        child[1] = 99
        child[2] = 2
        assert parent[1] == 10
        assert 2 not in parent

    def test_parent_writes_after_fork_invisible_to_child(self):
        parent = CowMap({1: 10})
        child = parent.fork()
        parent[1] = 55
        parent[3] = 3
        assert child[1] == 10
        assert 3 not in child

    def test_delete_in_child_only(self):
        parent = CowMap({1: 10})
        child = parent.fork()
        del child[1]
        assert 1 in parent
        assert 1 not in child

    def test_deep_fork_chain_compacts(self):
        m = CowMap({0: 0})
        forks = []
        for i in range(1, 64):
            m[i] = i
            forks.append(m.fork())
        assert m[0] == 0
        assert m[63] == 63
        # Layer chains are bounded by compaction.
        assert len(m._layers) <= 13
        for i, f in enumerate(forks, start=1):
            assert f[i] == i

    def test_iteration_skips_tombstones(self):
        m = CowMap({1: 10, 2: 20})
        child = m.fork()
        del child[1]
        assert sorted(child.keys()) == [2]
        assert child.to_dict() == {2: 20}


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("set"), st.integers(0, 20), st.integers(-5, 5)),
            st.tuples(st.just("del"), st.integers(0, 20), st.just(0)),
            st.tuples(st.just("fork"), st.just(0), st.just(0)),
        ),
        max_size=60,
    )
)
def test_cowmap_matches_dict_model(ops):
    """CowMap must behave exactly like dict under set/del/fork."""
    cow = CowMap()
    model = {}
    snapshots = []
    for op, key, value in ops:
        if op == "set":
            cow[key] = value
            model[key] = value
        elif op == "del":
            if key in model:
                del cow[key]
                del model[key]
        else:
            snapshots.append((cow.fork(), dict(model)))
    assert cow.to_dict() == model
    assert len(cow) == len(model)
    for snap_cow, snap_model in snapshots:
        # Forks taken earlier must still match their frozen models...
        # except that these forks were of the *same* underlying map and we
        # kept mutating the original; forks must show the state at fork time.
        assert snap_cow.to_dict() == snap_model
