"""LIR program model tests."""

import pytest

from repro.errors import MachineError
from repro.lowlevel.program import Function, FunctionBuilder, Instr, Opcode, Program


def _trivial_function(name="f", n_instrs=3):
    fb = FunctionBuilder(name, 0)
    for _ in range(n_instrs - 1):
        fb.const(0)
    fb.emit(Opcode.RET, a=None)
    return fb.finish()


class TestFunctionBuilder:
    def test_registers_allocate_after_params(self):
        fb = FunctionBuilder("f", 2)
        assert fb.new_reg() == 2
        assert fb.new_reg() == 3

    def test_labels_patch_jumps(self):
        fb = FunctionBuilder("f", 0)
        label = fb.new_label()
        fb.emit(Opcode.JMP, a=fb.label_ref(label))
        fb.place_label(label)
        fb.emit(Opcode.RET, a=None)
        func = fb.finish()
        assert func.instrs[0].a == 1

    def test_branch_targets_patch(self):
        fb = FunctionBuilder("f", 0)
        cond = fb.const(1)
        l1, l2 = fb.new_label(), fb.new_label()
        fb.emit(Opcode.BR, a=cond, b=fb.label_ref(l1), extra=fb.label_ref(l2))
        fb.place_label(l1)
        fb.emit(Opcode.RET, a=None)
        fb.place_label(l2)
        fb.emit(Opcode.RET, a=None)
        func = fb.finish()
        br = func.instrs[1]
        assert br.b == 2 and br.extra == 3

    def test_unplaced_label_rejected(self):
        fb = FunctionBuilder("f", 0)
        label = fb.new_label()
        fb.emit(Opcode.JMP, a=fb.label_ref(label))
        with pytest.raises(MachineError):
            fb.finish()

    def test_double_label_placement_rejected(self):
        fb = FunctionBuilder("f", 0)
        label = fb.new_label()
        fb.place_label(label)
        with pytest.raises(MachineError):
            fb.place_label(label)


class TestProgram:
    def test_finalize_assigns_disjoint_ids(self):
        prog = Program("a")
        prog.add_function(_trivial_function("a", 3))
        prog.add_function(_trivial_function("b", 4))
        prog.finalize()
        ids = set()
        for name in ("a", "b"):
            func = prog.get_function(name)
            for i in range(len(func.instrs)):
                ids.add(func.instr_id(i))
        assert len(ids) == 7

    def test_locate_roundtrip(self):
        prog = Program("a")
        prog.add_function(_trivial_function("a", 2))
        prog.add_function(_trivial_function("b", 2))
        prog.finalize()
        func = prog.get_function("b")
        assert prog.locate(func.instr_id(1)) == ("b", 1)

    def test_locate_unknown_raises(self):
        prog = Program("a")
        prog.add_function(_trivial_function("a"))
        prog.finalize()
        with pytest.raises(MachineError):
            prog.locate(10_000)

    def test_duplicate_function_rejected(self):
        prog = Program("a")
        prog.add_function(_trivial_function("a"))
        with pytest.raises(MachineError):
            prog.add_function(_trivial_function("a"))

    def test_add_after_finalize_rejected(self):
        prog = Program("a")
        prog.add_function(_trivial_function("a"))
        prog.finalize()
        with pytest.raises(MachineError):
            prog.add_function(_trivial_function("b"))

    def test_static_data_and_data_end(self):
        prog = Program("a")
        prog.set_static(100, [1, 2, 3])
        assert prog.static_data[101] == 2
        assert prog.data_end == 103

    def test_undefined_function_raises(self):
        prog = Program("a")
        with pytest.raises(MachineError):
            prog.get_function("missing")

    def test_disassemble_mentions_functions(self):
        prog = Program("a")
        prog.add_function(_trivial_function("a"))
        prog.finalize()
        assert "fn a" in prog.disassemble()

    def test_instr_repr_readable(self):
        instr = Instr(Opcode.BIN, dst=2, a=0, b=1, extra="add")
        assert "add" in repr(instr)
