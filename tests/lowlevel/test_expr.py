"""Unit and property tests for the symbolic expression DAG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lowlevel.expr import (
    BinExpr,
    Sym,
    UnExpr,
    evaluate,
    is_symbolic,
    mk_binop,
    mk_unop,
    negate_condition,
    truth_condition,
)


@pytest.fixture
def x():
    return Sym("tx_x", 0, 255)


@pytest.fixture
def y():
    return Sym("tx_y", 0, 255)


class TestInterning:
    def test_same_structure_same_object(self, x, y):
        a = mk_binop("add", x, y)
        b = mk_binop("add", x, y)
        assert a is b

    def test_different_op_different_object(self, x, y):
        assert mk_binop("add", x, y) is not mk_binop("sub", x, y)

    def test_sym_registry_reuses_instances(self):
        assert Sym("tx_reuse", 0, 9) is Sym("tx_reuse", 0, 9)

    def test_sym_domain_conflict_rejected(self):
        Sym("tx_conflict", 0, 9)
        with pytest.raises(ValueError):
            Sym("tx_conflict", 0, 10)


class TestConstantFolding:
    def test_concrete_operands_fold(self):
        assert mk_binop("add", 2, 3) == 5
        assert mk_binop("mul", 4, 5) == 20
        assert mk_binop("lt", 1, 2) == 1
        assert mk_unop("neg", 7) == -7
        assert mk_unop("lnot", 0) == 1

    def test_identities(self, x):
        assert mk_binop("add", x, 0) is x
        assert mk_binop("mul", x, 1) is x
        assert mk_binop("mul", x, 0) == 0
        assert mk_binop("and", x, 0) == 0
        assert mk_binop("or", x, 0) is x
        assert mk_binop("sub", x, x) == 0
        assert mk_binop("eq", x, x) == 1
        assert mk_binop("ne", x, x) == 0

    def test_commutative_constant_moves_right(self, x):
        node = mk_binop("add", 5, x)
        assert isinstance(node, BinExpr)
        assert node.a is x
        assert node.b == 5

    def test_add_chain_folds(self, x):
        node = mk_binop("add", mk_binop("add", x, 3), 4)
        assert isinstance(node, BinExpr)
        assert node.b == 7

    def test_offset_comparison_folds(self, x):
        # (x + 10) < 20  ==>  x < 10
        node = mk_binop("lt", mk_binop("add", x, 10), 20)
        assert isinstance(node, BinExpr)
        assert node.a is x
        assert node.b == 10

    def test_comparison_flip_with_constant_left(self, x):
        node = mk_binop("lt", 5, x)
        assert isinstance(node, BinExpr)
        assert node.op == "gt"
        assert node.a is x

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            mk_binop("div", 4, 0)

    def test_unknown_op_rejected(self, x):
        with pytest.raises(ValueError):
            mk_binop("pow", x, 2)
        with pytest.raises(ValueError):
            mk_unop("sqrt", x)


class TestEvaluation:
    def test_basic(self, x, y):
        expr = mk_binop("add", mk_binop("mul", x, 3), y)
        assert evaluate(expr, {"tx_x": 5, "tx_y": 2}) == 17

    def test_concrete_passthrough(self):
        assert evaluate(42, {}) == 42

    def test_missing_variable_raises(self, x):
        with pytest.raises(KeyError):
            evaluate(mk_binop("add", x, 1), {})

    def test_deep_expression_evaluates_iteratively(self, x):
        expr = x
        for _ in range(5000):
            expr = mk_binop("add", expr, 1)
        assert evaluate(expr, {"tx_x": 0}) == 5000

    def test_memo_shared_subtrees(self, x):
        shared = mk_binop("mul", x, 7)
        expr = mk_binop("add", shared, shared)
        assert evaluate(expr, {"tx_x": 3}) == 42

    def test_dispatch_tables_cover_operator_sets_exactly(self):
        # The table-dispatched _eval assumes every declared operator has
        # an entry (and nothing undeclared sneaks in).
        from repro.lowlevel.expr import BINOP_FUNCS, BINOPS, UNOP_FUNCS, UNOPS

        assert set(BINOP_FUNCS) == BINOPS
        assert set(UNOP_FUNCS) == UNOPS

    def test_unknown_operator_still_raises(self):
        from repro.lowlevel.expr import _apply_binop, _apply_unop

        with pytest.raises(ValueError):
            _apply_binop("nope", 1, 2)
        with pytest.raises(ValueError):
            _apply_unop("nope", 1)

    def test_division_by_zero_still_raises_through_table(self):
        from repro.lowlevel.expr import _apply_binop

        with pytest.raises(ZeroDivisionError):
            _apply_binop("div", 1, 0)
        with pytest.raises(ZeroDivisionError):
            _apply_binop("mod", 1, 0)


class TestConditions:
    def test_negate_comparison(self, x):
        cond = mk_binop("lt", x, 10)
        neg = negate_condition(cond)
        assert neg.op == "ge"

    def test_negate_concrete(self):
        assert negate_condition(0) == 1
        assert negate_condition(7) == 0

    def test_negate_generic_expr(self, x):
        neg = negate_condition(mk_binop("add", x, 1))
        assert isinstance(neg, UnExpr) and neg.op == "lnot"

    def test_truth_of_comparison_is_itself(self, x):
        cond = mk_binop("eq", x, 3)
        assert truth_condition(cond) is cond

    def test_truth_of_arith_becomes_ne(self, x):
        t = truth_condition(mk_binop("add", x, 1))
        assert t.op == "ne"

    def test_double_negation_of_comparisons(self, x):
        cond = mk_binop("le", x, 9)
        assert negate_condition(negate_condition(cond)) is cond

    def test_lnot_of_comparison_flips(self, x):
        node = mk_unop("lnot", mk_binop("eq", x, 3))
        assert node.op == "ne"


_small = st.integers(min_value=-100, max_value=100)
_ops = st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "eq", "ne",
                        "lt", "le", "gt", "ge", "land", "lor"])


class TestProperties:
    @given(a=_small, b=_small, op=_ops)
    def test_folding_matches_evaluation(self, a, b, op):
        # Folding two constants must equal building with one symbolic side
        # and evaluating.
        var = Sym("tx_prop", -100, 100)
        folded = mk_binop(op, a, b)
        symbolic = mk_binop(op, var, b)
        assert evaluate(symbolic, {"tx_prop": a}) == folded

    @given(v=_small)
    def test_negation_is_boolean_complement(self, v):
        var = Sym("tx_neg", -100, 100)
        cond = mk_binop("gt", var, 0)
        env = {"tx_neg": v}
        assert evaluate(cond, env) + evaluate(negate_condition(cond), env) == 1

    @given(v=_small, w=_small)
    def test_interned_equality_implies_equal_value(self, v, w):
        var = Sym("tx_int1", -100, 100)
        e1 = mk_binop("add", mk_binop("mul", var, 3), v)
        e2 = mk_binop("add", mk_binop("mul", var, 3), v)
        assert e1 is e2
        if isinstance(e1, int):
            return
        assert evaluate(e1, {"tx_int1": w}) == evaluate(e2, {"tx_int1": w})


class TestPickling:
    def test_deep_chain_pickles_iteratively(self):
        # A hash-like loop over a symbolic buffer builds chains this deep;
        # a recursive pickle encoding segfaults (C stack) long before
        # RecursionError.  The flat-instruction codec must survive it.
        import pickle

        from repro.lowlevel.expr import flatten_values, rebuild_values

        var = Sym("tx_deep", 0, 255)
        node = var
        for i in range(50_000):
            node = mk_binop("add", mk_binop("mul", node, 3), i % 251)
        blob = pickle.dumps(node)
        restored = pickle.loads(blob)
        # Same process: must re-intern to the identical node.
        assert restored is node
        instrs, refs = flatten_values((node,))
        assert rebuild_values(instrs)[refs[0]] is node

    def test_shared_structure_flattens_once(self):
        from repro.lowlevel.expr import flatten_values

        var = Sym("tx_share", 0, 255)
        common = mk_binop("mul", var, 7)
        a = mk_binop("add", common, 1)
        b = mk_binop("add", common, 2)
        instrs, refs = flatten_values((a, b))
        assert len(refs) == 2
        # var, common, the constants 1/2/7 and the two adds: no duplicates.
        assert sum(1 for ins in instrs if ins[0] == "b" and ins[1] == "mul") == 1
