"""Machine-state unit tests (frames, memory, forking)."""

import pytest

from repro.errors import GuestFault
from repro.lowlevel.machine import Frame, MachineState, Status
from repro.lowlevel.program import FunctionBuilder, Opcode, Program


def _program(n_funcs=2):
    prog = Program("main")
    for i, name in enumerate(["main", "helper"][:n_funcs]):
        fb = FunctionBuilder(name, 1 if name == "helper" else 0)
        fb.const(0)
        fb.emit(Opcode.RET, a=None)
        prog.add_function(fb.finish())
    return prog.finalize()


class TestBoot:
    def test_boot_pushes_entry_frame(self):
        state = MachineState.boot(_program())
        assert state.top.func.name == "main"
        assert state.status == Status.RUNNING

    def test_unfinalized_program_rejected(self):
        prog = Program("main")
        fb = FunctionBuilder("main", 0)
        fb.emit(Opcode.RET, a=None)
        prog.add_function(fb.finish())
        with pytest.raises(GuestFault):
            MachineState(prog)

    def test_static_data_visible(self):
        prog = Program("main")
        fb = FunctionBuilder("main", 0)
        fb.emit(Opcode.RET, a=None)
        prog.add_function(fb.finish())
        prog.set_static(500, [7, 8])
        prog.finalize()
        state = MachineState.boot(prog)
        assert state.mem_read(500) == 7
        assert state.mem_read(501) == 8


class TestFramesAndMemory:
    def test_call_and_return(self):
        prog = _program()
        state = MachineState.boot(prog)
        state.top.regs = [0] * state.top.func.n_regs
        state.push_frame(prog.get_function("helper"), [42], ret_dst=0)
        assert state.top.func.name == "helper"
        assert state.top.regs[0] == 42
        state.pop_frame(99)
        assert state.top.func.name == "main"
        assert state.top.regs[0] == 99

    def test_arity_check(self):
        prog = _program()
        state = MachineState.boot(prog)
        with pytest.raises(GuestFault):
            state.push_frame(prog.get_function("helper"), [1, 2], ret_dst=None)

    def test_stack_overflow_guard(self):
        prog = _program()
        state = MachineState.boot(prog)
        helper = prog.get_function("helper")
        with pytest.raises(GuestFault):
            for _ in range(MachineState.MAX_CALL_DEPTH + 1):
                state.push_frame(helper, [0], ret_dst=None)

    def test_return_from_entry_halts(self):
        state = MachineState.boot(_program())
        state.pop_frame(0)
        assert state.status == Status.HALTED

    def test_word_helpers(self):
        state = MachineState.boot(_program())
        state.write_words(100, [1, 2, 3])
        assert state.read_words(100, 3) == [1, 2, 3]

    def test_uninitialised_memory_reads_zero(self):
        state = MachineState.boot(_program())
        assert state.mem_read(99999) == 0


class TestForking:
    def test_fork_is_independent(self):
        prog = _program()
        parent = MachineState.boot(prog)
        parent.mem_write(100, 5)
        parent.top.regs[0] = 1
        child = parent.fork()
        child.mem_write(100, 6)
        child.top.regs[0] = 2
        child.top.pc = 1
        assert parent.mem_read(100) == 5
        assert parent.top.regs[0] == 1
        assert parent.top.pc == 0
        assert child.mem_read(100) == 6

    def test_fork_copies_output(self):
        parent = MachineState.boot(_program())
        parent.output.append(1)
        child = parent.fork()
        child.output.append(2)
        assert parent.output == [1]
        assert child.output == [1, 2]

    def test_current_ll_pc(self):
        state = MachineState.boot(_program())
        base = state.current_ll_pc()
        state.top.pc += 1
        assert state.current_ll_pc() == base + 1
