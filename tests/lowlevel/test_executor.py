"""Low-level concolic engine tests (forking, activation, hypercalls)."""

import pytest

from repro.clay import compile_program
from repro.lowlevel.executor import ExecutorConfig, LowLevelEngine
from repro.lowlevel.machine import Status


def _engine(source, **config):
    compiled = compile_program(source)
    return LowLevelEngine(compiled.program, config=ExecutorConfig(**config))


def _explore_all(engine, max_states=200):
    """Exhaustively explore; returns completed states."""
    done = []
    state = engine.new_state()
    queue = engine.run_path(state)
    done.append(state)
    while queue and len(done) < max_states:
        candidate = queue.pop()
        if engine.activate(candidate) != "sat":
            continue
        queue.extend(engine.run_path(candidate))
        done.append(candidate)
    return done


class TestConcreteExecution:
    def test_arithmetic_and_output(self):
        engine = _engine("fn main() { out(2 + 3 * 4); end_symbolic(); }")
        state = engine.new_state()
        engine.run_path(state)
        assert state.machine.output == [14]
        assert state.status == Status.HALTED

    def test_recursion(self):
        engine = _engine("""
            fn fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); }
            fn main() { out(fact(6)); end_symbolic(); }
        """)
        state = engine.new_state()
        engine.run_path(state)
        assert state.machine.output == [720]

    def test_memory_defaults_to_zero(self):
        engine = _engine("fn main() { out(load(12345)); end_symbolic(); }")
        state = engine.new_state()
        engine.run_path(state)
        assert state.machine.output == [0]

    def test_division_by_zero_faults(self):
        # The zero is computed at runtime so constant folding cannot
        # reject the program at compile time.
        engine = _engine("""
            fn main() { var z = load(50); out(1 / z); end_symbolic(); }
        """)
        state = engine.new_state()
        engine.run_path(state)
        assert state.status == Status.FAULT

    def test_abort_faults_with_code(self):
        engine = _engine("fn main() { abort(42); }")
        state = engine.new_state()
        engine.run_path(state)
        assert state.status == Status.FAULT
        assert state.machine.halt_code == 42

    def test_instruction_budget_stops_infinite_loop(self):
        engine = _engine("fn main() { while (1) { } }")
        state = engine.new_state()
        engine.run_path(state, max_instrs=1000)
        assert state.status == Status.BUDGET_EXCEEDED

    def test_main_return_halts(self):
        engine = _engine("fn main() { out(1); }")
        state = engine.new_state()
        engine.run_path(state)
        assert state.status == Status.HALTED


_BRANCHY = """
const BUF = 700;
fn main() {
    make_symbolic(BUF, 1, 0, 255);
    var c = load(BUF);
    if (c == 'a') { out(1); }
    else if (c == 'b') { out(2); }
    else { out(3); }
    end_symbolic();
}
"""


class TestSymbolicExecution:
    def test_fork_produces_pending_states(self):
        engine = _engine(_BRANCHY)
        state = engine.new_state()
        pending = engine.run_path(state)
        assert state.machine.output == [3]  # seed 0 is neither 'a' nor 'b'
        assert len(pending) == 2
        assert all(p.pending for p in pending)

    def test_exploration_covers_all_outcomes(self):
        engine = _engine(_BRANCHY)
        done = _explore_all(engine)
        outputs = sorted(s.machine.output[0] for s in done)
        assert outputs == [1, 2, 3]

    def test_generated_inputs_satisfy_path(self):
        engine = _engine(_BRANCHY)
        done = _explore_all(engine)
        for state in done:
            value = state.input_values()["b0"][0]
            expected = 1 if value == ord("a") else 2 if value == ord("b") else 3
            assert state.machine.output == [expected]

    def test_infeasible_alternate_discarded(self):
        engine = _engine("""
            const BUF = 700;
            fn main() {
                make_symbolic(BUF, 1, 0, 255);
                var c = load(BUF);
                assume(c < 10);
                if (c > 50) { out(1); } else { out(2); }
                end_symbolic();
            }
        """)
        state = engine.new_state()
        pending = engine.run_path(state)
        assert state.machine.output == [2]
        results = [engine.activate(p) for p in pending]
        assert "unsat" in results

    def test_assume_failure_kills_path(self):
        engine = _engine("""
            const BUF = 700;
            fn main() {
                make_symbolic(BUF, 1, 0, 255);
                assume(load(BUF) > 10);
                out(1);
                end_symbolic();
            }
        """)
        state = engine.new_state()
        engine.run_path(state)
        # Seed value 0 contradicts the assumption.
        assert state.status == Status.ASSUME_FAILED

    def test_symbolic_pointer_enumerates_targets(self):
        engine = _engine("""
            const BUF = 700;
            const TBL = 800;
            fn main() {
                store(800, 10);
                store(801, 11);
                store(802, 12);
                store(803, 13);
                make_symbolic(BUF, 1, 0, 3);
                out(load(TBL + load(BUF)));
                end_symbolic();
            }
        """, symptr_fork_limit=4)
        done = _explore_all(engine)
        outputs = sorted(s.machine.output[0] for s in done)
        assert outputs == [10, 11, 12, 13]

    def test_upper_bound_is_sound(self):
        engine = _engine("""
            const BUF = 700;
            fn main() {
                make_symbolic(BUF, 1, 0, 100);
                out(upper_bound(load(BUF) * 2));
                end_symbolic();
            }
        """)
        state = engine.new_state()
        engine.run_path(state)
        assert state.machine.output[0] >= 200

    def test_is_symbolic_and_concretize(self):
        engine = _engine("""
            const BUF = 700;
            fn main() {
                make_symbolic(BUF, 1, 0, 255);
                var v = load(BUF);
                out(is_symbolic(v));
                out(concretize(v));
                out(is_symbolic(concretize(v)));
                end_symbolic();
            }
        """)
        state = engine.new_state()
        engine.run_path(state)
        assert state.machine.output == [1, 0, 0]

    def test_events_recorded(self):
        engine = _engine("fn main() { event(1, 42, 7); end_symbolic(); }")
        state = engine.new_state()
        engine.run_path(state)
        assert len(state.events) == 1
        assert (state.events[0].kind, state.events[0].a) == (1, 42)

    def test_fork_bookkeeping_groups(self):
        engine = _engine("""
            const BUF = 700;
            fn main() {
                make_symbolic(BUF, 3, 0, 255);
                var i = 0;
                while (i < 3) {
                    if (load(BUF + i) == 'x') { out(i); }
                    i = i + 1;
                }
                end_symbolic();
            }
        """)
        state = engine.new_state()
        pending = engine.run_path(state)
        assert len(pending) == 3
        # Same low-level branch location: same fork group, increasing index.
        groups = {p.fork_group for p in pending}
        assert len(groups) == 1
        assert sorted(p.fork_index for p in pending) == [1, 2, 3]

    def test_namespaces_isolate_engines(self):
        e1 = _engine(_BRANCHY)
        e2 = _engine(_BRANCHY)
        s1, s2 = e1.new_state(), e2.new_state()
        e1.run_path(s1)
        e2.run_path(s2)
        assert s1.input_values().keys() == s2.input_values().keys() == {"b0"}
