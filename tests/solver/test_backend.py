"""SolverBackend protocol conformance and seed-behaviour regression.

The refactor moved every consumer onto ``SolverBackend.check`` with
``ConstraintSet`` inputs; these tests pin the protocol surface and prove
the incremental pipeline returns the same verdicts as the seed's
solve-from-scratch behaviour on a fixed query corpus.
"""

import pytest

from repro.errors import SolverTimeout
from repro.lowlevel.expr import Sym, evaluate, mk_binop
from repro.solver.backend import SAT, SolverBackend, UNKNOWN, UNSAT
from repro.solver.cache import ModelCache
from repro.solver.constraints import ConstraintSet
from repro.solver.csp import CspSolver


def _fresh_solver(**kwargs) -> CspSolver:
    return CspSolver(cache=ModelCache(), **kwargs)


class TestProtocol:
    def test_cspsolver_is_a_backend(self):
        assert isinstance(CspSolver(cache=ModelCache()), SolverBackend)

    def test_check_sat_carries_model(self):
        (x,) = (Sym("bk_a_0", 0, 255),)
        result = _fresh_solver().check(
            ConstraintSet.from_atoms([mk_binop("eq", x, 65)])
        )
        assert result.status == SAT and result.is_sat
        assert result.model == {"bk_a_0": 65}

    def test_check_unsat_has_no_model(self):
        (x,) = (Sym("bk_b_0", 0, 255),)
        result = _fresh_solver().check(
            ConstraintSet.from_atoms([mk_binop("gt", x, 255)])
        )
        assert result.status == UNSAT and result.is_unsat
        assert result.model is None

    def test_check_returns_unknown_instead_of_raising(self):
        xs = [Sym(f"bk_c_{i}", 0, 255) for i in range(6)]
        h = 0
        for x in xs:
            h = mk_binop("mod", mk_binop("add", mk_binop("mul", h, 33), x), 65536)
        solver = _fresh_solver(budget=50)
        query = ConstraintSet.from_atoms([mk_binop("eq", h, 12345)])
        result = solver.check(query)
        assert result.status == UNKNOWN and result.is_unknown
        assert solver.stats.timeouts == 1
        # The legacy surface still raises for callers that want it.
        with pytest.raises(SolverTimeout):
            solver.solve(query)

    def test_satisfiable_via_protocol(self):
        (x,) = (Sym("bk_d_0", 0, 255),)
        solver = _fresh_solver()
        assert solver.satisfiable(ConstraintSet.from_atoms([mk_binop("lt", x, 5)]))

    def test_max_value_accepts_constraint_sets(self):
        (x,) = (Sym("bk_e_0", 0, 100),)
        solver = _fresh_solver()
        assert solver.max_value(x, ConstraintSet.from_atoms([mk_binop("lt", x, 50)])) == 49


def _corpus(prefix):
    """Fixed queries spanning the seed solver's behaviours.

    Returns (name, atoms, expected_verdict) triples; expected verdicts
    are the seed CspSolver's answers (pinned by tests/solver/test_csp.py).
    """
    a = Sym(f"{prefix}_a", 0, 255)
    b = Sym(f"{prefix}_b", 0, 255)
    c = Sym(f"{prefix}_c", 0, 9)
    conj = mk_binop("and", mk_binop("eq", a, 104), mk_binop("eq", b, 105))
    return [
        ("simple-eq", [mk_binop("eq", a, 65)], SAT),
        ("bounds", [mk_binop("gt", a, 10), mk_binop("lt", a, 13)], SAT),
        ("multi-var", [mk_binop("gt", mk_binop("add", a, b), 500)], SAT),
        ("independent", [mk_binop("eq", a, 3), mk_binop("eq", b, 4)], SAT),
        ("domain-violation", [mk_binop("gt", a, 255)], UNSAT),
        ("contradiction", [mk_binop("eq", a, 1), mk_binop("eq", a, 2)], UNSAT),
        ("modular", [mk_binop("eq", mk_binop("mul", a, 2), 7)], UNSAT),
        ("conj-chain", [mk_binop("ne", conj, 0)], SAT),
        ("small-domain", [mk_binop("ge", c, 9)], SAT),
        ("empty", [], SAT),
        ("concrete-true", [1, 2], SAT),
        ("concrete-false", [1, 0], UNSAT),
    ]


class TestSeedRegression:
    def test_verdicts_match_seed_behaviour(self):
        """Protocol path == seed verdicts, with models that satisfy."""
        solver = _fresh_solver()
        for name, atoms, expected in _corpus("bkr"):
            result = solver.check(ConstraintSet.from_atoms(atoms))
            assert result.status == expected, name
            if result.is_sat:
                for atom in atoms:
                    if hasattr(atom, "free_vars"):
                        assert evaluate(atom, result.model) != 0, name

    def test_incremental_agrees_with_non_incremental(self):
        """Slicing/model reuse must never change a verdict."""
        plain = _fresh_solver(incremental=False)
        fancy = _fresh_solver()
        for name, atoms, _ in _corpus("bki"):
            # Fresh chains per solver so noted models don't cross over.
            expected = plain.check(ConstraintSet.from_atoms(atoms)).status
            got = fancy.check(ConstraintSet.from_atoms(atoms)).status
            assert got == expected, name

    def test_incremental_agrees_on_extended_chains(self):
        """Append-after-solve (the fork pattern) keeps verdicts identical."""
        a = Sym("bkx_a", 0, 255)
        b = Sym("bkx_b", 0, 255)
        base_atoms = [mk_binop("gt", a, 10), mk_binop("lt", b, 200)]
        extensions = [
            mk_binop("lt", a, 100),   # sat with base
            mk_binop("eq", a, 5),     # contradicts gt(a, 10)
            mk_binop("eq", b, 7),     # sat with base
        ]
        plain = _fresh_solver(incremental=False)
        fancy = _fresh_solver()
        fancy_base = ConstraintSet.from_atoms(base_atoms)
        fancy.solve(fancy_base)  # records a model on the chain
        for ext in extensions:
            expected = plain.check(ConstraintSet.from_atoms(base_atoms + [ext])).status
            got = fancy.check(fancy_base.append(ext)).status
            assert got == expected, ext
