"""Interval arithmetic: units plus a soundness property test."""

from hypothesis import given, strategies as st

from repro.lowlevel.expr import Sym, evaluate, mk_binop, mk_unop
from repro.solver.interval import Interval, interval_eval


class TestIntervalBasics:
    def test_exact_and_contains(self):
        iv = Interval.exact(5)
        assert iv.is_exact() and iv.contains(5) and not iv.contains(6)

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 10).intersect(Interval(None, 3)) == Interval(0, 3)

    def test_empty(self):
        assert Interval(5, 3).is_empty()
        assert not Interval(3, 3).is_empty()

    def test_unbounded_repr(self):
        assert "inf" in repr(Interval.top())


class TestIntervalEval:
    def test_variable_uses_domain(self):
        x = Sym("iv_x", 10, 20)
        iv = interval_eval(x, {"iv_x": (10, 20)})
        assert iv == Interval(10, 20)

    def test_env_overrides_domain(self):
        x = Sym("iv_y", 0, 255)
        iv = interval_eval(x, {"iv_y": (0, 255)}, env={"iv_y": 7})
        assert iv == Interval.exact(7)

    def test_comparison_decided_by_disjoint_ranges(self):
        x = Sym("iv_z", 0, 9)
        cond = mk_binop("lt", x, 100)
        iv = interval_eval(cond, {"iv_z": (0, 9)})
        assert iv == Interval.exact(1)

    def test_mod_bounds(self):
        x = Sym("iv_m", 0, 255)
        iv = interval_eval(mk_binop("mod", x, 8), {"iv_m": (0, 255)})
        assert iv.lo == 0 and iv.hi == 7

    def test_mul_corners(self):
        x = Sym("iv_mul", -3, 4)
        iv = interval_eval(mk_binop("mul", x, -2), {"iv_mul": (-3, 4)})
        assert iv == Interval(-8, 6)


_domain = st.tuples(st.integers(-50, 50), st.integers(-50, 50)).map(
    lambda t: (min(t), max(t))
)
_op = st.sampled_from(
    ["add", "sub", "mul", "mod", "eq", "ne", "lt", "le", "gt", "ge",
     "and", "or", "xor", "land", "lor"]
)


@given(dom=_domain, value_frac=st.floats(0, 1), op=_op, const=st.integers(-20, 20))
def test_interval_eval_is_sound(dom, value_frac, op, const):
    """Every concrete evaluation must fall inside the computed interval."""
    lo, hi = dom
    value = lo + int(value_frac * (hi - lo))
    name = f"iv_p_{lo}_{hi}"
    x = Sym(name, lo, hi)
    if op == "mod" and const == 0:
        const = 1
    expr = mk_binop(op, x, const)
    iv = interval_eval(expr, {name: (lo, hi)})
    concrete = evaluate(expr, {name: value})
    assert iv.contains(concrete), (op, lo, hi, value, const, iv, concrete)


@given(dom=_domain, value_frac=st.floats(0, 1),
       op=st.sampled_from(["neg", "bnot", "lnot"]))
def test_unary_interval_is_sound(dom, value_frac, op):
    lo, hi = dom
    value = lo + int(value_frac * (hi - lo))
    name = f"iv_u_{lo}_{hi}"
    x = Sym(name, lo, hi)
    expr = mk_unop(op, x)
    iv = interval_eval(expr, {name: (lo, hi)})
    concrete = evaluate(expr, {name: value})
    assert iv.contains(concrete)
