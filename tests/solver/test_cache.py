"""ModelCache: component-keyed exact / subset / superset reuse."""

from repro.lowlevel.expr import Sym, mk_binop
from repro.solver.cache import (
    HIT_EXACT,
    HIT_SUBSET_UNSAT,
    HIT_SUPERSET_SAT,
    ModelCache,
    UNSAT,
    global_model_cache,
    reset_global_model_cache,
)


def _atoms(prefix, n):
    xs = [Sym(f"{prefix}_{i}", 0, 255) for i in range(n)]
    return [mk_binop("eq", x, 40 + i) for i, x in enumerate(xs)], xs


class TestExact:
    def test_roundtrip_model(self):
        cache = ModelCache()
        atoms, xs = _atoms("mc_a", 2)
        key = ModelCache.key_for(atoms)
        model = {x.name: 40 + i for i, x in enumerate(xs)}
        cache.store(key, model)
        kind, result = cache.lookup(key)
        assert kind == HIT_EXACT
        assert result == model
        assert cache.hits == 1

    def test_roundtrip_unsat(self):
        cache = ModelCache()
        atoms, _ = _atoms("mc_b", 1)
        key = ModelCache.key_for(atoms)
        cache.store(key, UNSAT)
        assert cache.lookup(key) == (HIT_EXACT, UNSAT)

    def test_miss_counts(self):
        cache = ModelCache()
        atoms, _ = _atoms("mc_c", 1)
        assert cache.lookup(ModelCache.key_for(atoms)) is None
        assert cache.misses == 1

    def test_empty_key_never_cached(self):
        cache = ModelCache()
        cache.store(frozenset(), {"x": 1})
        assert cache.lookup(frozenset()) is None
        assert len(cache) == 0


class TestSubsetSuperset:
    def test_unsat_subset_poisons_supersets(self):
        """A contradiction stays contradictory with more atoms added."""
        cache = ModelCache()
        atoms, _ = _atoms("mc_d", 3)
        cache.store(ModelCache.key_for(atoms[:1]), UNSAT)
        kind, result = cache.lookup(ModelCache.key_for(atoms))
        assert (kind, result) == (HIT_SUBSET_UNSAT, UNSAT)
        assert cache.subset_hits == 1

    def test_sat_superset_model_serves_subsets(self):
        """A model for a superset satisfies every subset of its atoms."""
        cache = ModelCache()
        atoms, xs = _atoms("mc_e", 3)
        model = {x.name: 40 + i for i, x in enumerate(xs)}
        cache.store(ModelCache.key_for(atoms), model)
        kind, result = cache.lookup(ModelCache.key_for(atoms[:2]))
        assert kind == HIT_SUPERSET_SAT
        assert result == model
        assert cache.superset_hits == 1

    def test_sat_subset_is_not_reused(self):
        """A model for fewer atoms proves nothing about more atoms."""
        cache = ModelCache()
        atoms, xs = _atoms("mc_f", 2)
        cache.store(ModelCache.key_for(atoms[:1]), {xs[0].name: 40})
        assert cache.lookup(ModelCache.key_for(atoms)) is None

    def test_unsat_superset_is_not_reused(self):
        """UNSAT of a superset proves nothing about its subsets."""
        cache = ModelCache()
        atoms, _ = _atoms("mc_g", 2)
        cache.store(ModelCache.key_for(atoms), UNSAT)
        assert cache.lookup(ModelCache.key_for(atoms[:1])) is None


class TestBounds:
    def test_entries_evicted_oldest_first(self):
        cache = ModelCache(max_entries=2)
        atoms, xs = _atoms("mc_h", 3)
        for i, atom in enumerate(atoms):
            cache.store(ModelCache.key_for([atom]), {xs[i].name: 40 + i})
        assert len(cache) == 2
        assert cache.lookup(ModelCache.key_for(atoms[:1])) is None  # evicted

    def test_recent_models_bounded(self):
        cache = ModelCache(max_models=2)
        for i in range(5):
            cache.remember_solution({"v": i})
        assert cache.candidate_solutions() == [{"v": 4}, {"v": 3}]

    def test_clear_resets_counters(self):
        cache = ModelCache()
        atoms, _ = _atoms("mc_i", 1)
        cache.store(ModelCache.key_for(atoms), UNSAT)
        cache.lookup(ModelCache.key_for(atoms))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats_dict()["hits"] == 0


class TestGlobal:
    def test_global_instance_shared_and_resettable(self):
        cache = global_model_cache()
        assert cache is global_model_cache()
        atoms, _ = _atoms("mc_j", 1)
        cache.store(ModelCache.key_for(atoms), UNSAT)
        reset_global_model_cache()
        assert len(global_model_cache()) == 0


class TestDeltaProtocol:
    """export_delta / merge: cross-process entry flow (PR 4)."""

    def test_store_with_atoms_journals_once(self):
        cache = ModelCache()
        atoms, xs = _atoms("mc_k", 1)
        key = ModelCache.key_for(atoms)
        cache.store(key, {xs[0].name: 40}, atoms=atoms)
        cache.store(key, {xs[0].name: 41}, atoms=atoms)  # overwrite: no new entry
        assert cache.journal_mark() == 1
        assert len(cache.export_delta(0)) == 1

    def test_marks_slice_the_journal(self):
        cache = ModelCache()
        atoms, xs = _atoms("mc_l", 3)
        for i, atom in enumerate(atoms):
            cache.store(ModelCache.key_for([atom]), {xs[i].name: 40 + i}, atoms=[atom])
        mark = cache.journal_mark()
        assert mark == 3
        assert cache.export_delta(mark) == []
        assert len(cache.export_delta(1)) == 2

    def test_merge_adopts_and_counts_hits(self):
        source = ModelCache()
        atoms, xs = _atoms("mc_m", 2)
        for i, atom in enumerate(atoms):
            source.store(ModelCache.key_for([atom]), {xs[i].name: 40 + i}, atoms=[atom])
        source.store(ModelCache.key_for([atoms[0], atoms[1]]), UNSAT,
                     atoms=[atoms[0], atoms[1]])

        target = ModelCache()
        adopted = target.merge(source.export_delta(0))
        assert adopted == 3
        assert target.merged_stores == 3
        # Hits on merged entries are counted as cross-worker reuse.
        kind, result = target.lookup(ModelCache.key_for([atoms[0]]))
        assert kind == HIT_EXACT and result == {xs[0].name: 40}
        assert target.merged_hits == 1
        assert target.stats_dict()["merged_hits"] == 1

    def test_merge_skips_known_entries(self):
        source = ModelCache()
        atoms, xs = _atoms("mc_n", 1)
        source.store(ModelCache.key_for(atoms), {xs[0].name: 40}, atoms=atoms)
        delta = source.export_delta(0)
        target = ModelCache()
        assert target.merge(delta) == 1
        assert target.merge(delta) == 0  # fingerprint dedup
        # An entry already stored locally is never overwritten by merge.
        other = ModelCache()
        other.store(ModelCache.key_for(atoms), {xs[0].name: 99})
        assert other.merge(delta) == 0
        _kind, result = other.lookup(ModelCache.key_for(atoms))
        assert result == {xs[0].name: 99}

    def test_merged_entries_are_rejournaled_for_rebroadcast(self):
        source = ModelCache()
        atoms, xs = _atoms("mc_o", 1)
        source.store(ModelCache.key_for(atoms), {xs[0].name: 40}, atoms=atoms)
        coordinator = ModelCache()
        coordinator.merge(source.export_delta(0))
        # A coordinator can re-export what it merged.
        rebroadcast = coordinator.export_delta(0)
        assert len(rebroadcast) == 1
        third = ModelCache()
        assert third.merge(rebroadcast) == 1

    def test_journal_window_rolls(self):
        cache = ModelCache(max_journal=2)
        atoms, xs = _atoms("mc_p", 4)
        for i, atom in enumerate(atoms):
            cache.store(ModelCache.key_for([atom]), {xs[i].name: 40 + i}, atoms=[atom])
        assert cache.journal_mark() == 4
        # Stale marks just export what is still windowed (sound: less reuse).
        assert len(cache.export_delta(0)) == 2


class TestEvictionPruning:
    def test_evicted_entries_can_be_rejournaled(self):
        cache = ModelCache(max_entries=2)
        atoms, xs = _atoms("mc_q", 3)
        for i, atom in enumerate(atoms):
            cache.store(ModelCache.key_for([atom]), {xs[i].name: 40 + i}, atoms=[atom])
        # Entry 0 was LRU-evicted; its bookkeeping must not leak nor block
        # re-journaling when the verdict is rediscovered.
        assert len(cache._known_fps) == 2
        assert len(cache._fp_of_key) == 2
        mark = cache.journal_mark()
        cache.store(ModelCache.key_for([atoms[0]]), {xs[0].name: 40}, atoms=[atoms[0]])
        assert len(cache.export_delta(mark)) == 1  # journaled again

    def test_merged_keys_pruned_on_eviction(self):
        source = ModelCache()
        atoms, xs = _atoms("mc_r", 1)
        source.store(ModelCache.key_for(atoms), {xs[0].name: 40}, atoms=atoms)
        target = ModelCache(max_entries=1)
        assert target.merge(source.export_delta(0)) == 1
        other_atoms, other_xs = _atoms("mc_s", 2)
        for i, atom in enumerate(other_atoms):
            target.store(
                ModelCache.key_for([atom]), {other_xs[i].name: 40 + i}, atoms=[atom]
            )
        assert not target._merged_keys


class TestCrossRunCounting:
    def test_persistent_hits_count_as_cross_run(self):
        source = ModelCache()
        atoms, xs = _atoms("mc_t", 1)
        key = ModelCache.key_for(atoms)
        source.store(key, {xs[0].name: 40}, atoms=atoms)
        target = ModelCache()
        delta = source.export_delta(0)
        assert target.merge(delta) == 1
        target.mark_persistent(fp for fp, _atoms, _result in delta)
        kind, _result = target.lookup(key)
        assert kind == HIT_EXACT
        assert target.cross_run_hits == 1
        assert target.merged_hits == 1  # also cross-worker provenance

    def test_unmarked_merge_hits_are_not_cross_run(self):
        source = ModelCache()
        atoms, xs = _atoms("mc_u", 1)
        key = ModelCache.key_for(atoms)
        source.store(key, {xs[0].name: 40}, atoms=atoms)
        target = ModelCache()
        target.merge(source.export_delta(0))
        target.lookup(key)
        assert target.cross_run_hits == 0

    def test_clear_drops_persistent_marks(self):
        cache = ModelCache()
        atoms, _ = _atoms("mc_v", 1)
        cache.mark_persistent([frozenset([1, 2])])
        cache.clear()
        assert not cache._persistent_fps


class TestPersistentStore:
    def _store_with_entries(self, tmp_path, prefix, n):
        from repro.solver.cache import PersistentCacheStore

        cache = ModelCache()
        atoms, xs = _atoms(prefix, n)
        for i, atom in enumerate(atoms):
            cache.store(ModelCache.key_for([atom]), {xs[i].name: 40 + i}, atoms=[atom])
        store = PersistentCacheStore(tmp_path / "verdicts.cache")
        assert store.append_from(cache) == n
        return store, atoms

    def test_roundtrip_across_handles(self, tmp_path):
        from repro.solver.cache import PersistentCacheStore

        store, atoms = self._store_with_entries(tmp_path, "mc_w", 3)
        fresh = PersistentCacheStore(store.path)
        cache = ModelCache()
        assert fresh.load_into(cache) == 3
        assert cache.persistent_loaded == 3
        kind, _result = cache.lookup(ModelCache.key_for([atoms[0]]))
        assert kind == HIT_EXACT
        assert cache.cross_run_hits == 1

    def test_missing_file_loads_empty(self, tmp_path):
        from repro.solver.cache import PersistentCacheStore

        store = PersistentCacheStore(tmp_path / "absent.cache")
        assert store.load() == []
        assert store.load_into(ModelCache()) == 0

    def test_append_dedups_by_fingerprint(self, tmp_path):
        store, _atoms_list = self._store_with_entries(tmp_path, "mc_x", 2)
        cache = ModelCache()
        fresh_handle_entries = store.load()  # same handle: already seen
        assert fresh_handle_entries == []
        # Re-appending entries the handle has seen writes nothing.
        source = ModelCache()
        atoms, xs = _atoms("mc_x", 2)  # same names -> same fingerprints
        for i, atom in enumerate(atoms):
            source.store(ModelCache.key_for([atom]), {xs[i].name: 40 + i}, atoms=[atom])
        assert store.append_from(source) == 0

    def test_corrupt_frame_is_skipped_not_fatal(self, tmp_path):
        from repro.solver.cache import PersistentCacheStore

        store, atoms = self._store_with_entries(tmp_path, "mc_y", 1)
        # Splice a well-framed but unpicklable blob between two good frames.
        garbage = b"not a pickle at all"
        with open(store.path, "ab") as fh:
            fh.write(len(garbage).to_bytes(8, "big") + garbage)
        more = ModelCache()
        extra_atoms, xs = _atoms("mc_y2", 1)
        more.store(
            ModelCache.key_for(extra_atoms), {xs[0].name: 40}, atoms=extra_atoms
        )
        late = PersistentCacheStore(store.path)
        late.append_from(more)
        fresh = PersistentCacheStore(store.path)
        assert len(fresh.load()) == 2  # both good frames, garbage skipped

    def test_truncated_tail_ends_scan_cleanly(self, tmp_path):
        from repro.solver.cache import PersistentCacheStore

        store, atoms = self._store_with_entries(tmp_path, "mc_z", 2)
        with open(store.path, "ab") as fh:
            fh.write((10 ** 6).to_bytes(8, "big") + b"short")  # crashed writer
        fresh = PersistentCacheStore(store.path)
        assert len(fresh.load()) == 2


class TestTornWrites:
    """Torn-write recovery: cut the store at every offset of its tail frame.

    A crashed (or fault-injected) writer can leave any prefix of the
    final frame on disk; every such prefix must load back as the
    longest valid frame prefix, with the damage folded into the
    ``cache.corrupt_frames_skipped`` counter.
    """

    def _two_frame_store(self, tmp_path):
        from repro.solver.cache import PersistentCacheStore

        store = PersistentCacheStore(tmp_path / "verdicts.cache")
        for frame_no in range(2):
            cache = ModelCache()
            atoms, xs = _atoms(f"torn_{frame_no}", 2)
            for i, atom in enumerate(atoms):
                cache.store(
                    ModelCache.key_for([atom]), {xs[i].name: 40 + i}, atoms=[atom]
                )
            assert store.append_from(cache) == 2
        return store

    @staticmethod
    def _frame_offsets(path):
        import os

        offsets = []
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            while fh.tell() < size:
                offsets.append(fh.tell())
                length = int.from_bytes(fh.read(8), "big")
                fh.seek(length, 1)
        return offsets, size

    def test_truncate_at_every_offset_of_final_frame(self, tmp_path):
        from repro.solver.cache import PersistentCacheStore

        store = self._two_frame_store(tmp_path)
        offsets, size = self._frame_offsets(store.path)
        assert len(offsets) == 2
        blob = open(store.path, "rb").read()
        torn = tmp_path / "torn.cache"
        for cut in range(offsets[-1], size):
            torn.write_bytes(blob[:cut])
            handle = PersistentCacheStore(torn)
            cache = ModelCache()
            assert handle.load_into(cache) == 2, f"prefix lost at cut {cut}"
            expected_skips = 0 if cut == offsets[-1] else 1
            assert handle.corrupt_frames_skipped == expected_skips
            assert cache.corrupt_frames_skipped == expected_skips

    def test_desynchronised_stream_after_tear_and_append_is_bounded(self, tmp_path):
        """A tear followed by a later append must not crash the loader."""
        from repro.faults import FaultInjector, FaultPlan
        from repro.solver.cache import PersistentCacheStore

        store = self._two_frame_store(tmp_path)
        injector = FaultInjector(FaultPlan(truncate_tail_bytes=7))
        assert injector.maybe_truncate(str(store.path))
        # A fresh handle appends after the torn tail: the stream past
        # the tear is desynchronised garbage.
        late = PersistentCacheStore(store.path)
        cache = ModelCache()
        atoms, xs = _atoms("torn_late", 1)
        cache.store(ModelCache.key_for(atoms), {xs[0].name: 40}, atoms=atoms)
        late.append_from(cache)
        fresh = PersistentCacheStore(store.path)
        entries = fresh.load()
        assert len(entries) == 2  # the pre-tear frame survives
        assert fresh.corrupt_frames_skipped >= 1
