"""ModelCache: component-keyed exact / subset / superset reuse."""

from repro.lowlevel.expr import Sym, mk_binop
from repro.solver.cache import (
    HIT_EXACT,
    HIT_SUBSET_UNSAT,
    HIT_SUPERSET_SAT,
    ModelCache,
    UNSAT,
    global_model_cache,
    reset_global_model_cache,
)


def _atoms(prefix, n):
    xs = [Sym(f"{prefix}_{i}", 0, 255) for i in range(n)]
    return [mk_binop("eq", x, 40 + i) for i, x in enumerate(xs)], xs


class TestExact:
    def test_roundtrip_model(self):
        cache = ModelCache()
        atoms, xs = _atoms("mc_a", 2)
        key = ModelCache.key_for(atoms)
        model = {x.name: 40 + i for i, x in enumerate(xs)}
        cache.store(key, model)
        kind, result = cache.lookup(key)
        assert kind == HIT_EXACT
        assert result == model
        assert cache.hits == 1

    def test_roundtrip_unsat(self):
        cache = ModelCache()
        atoms, _ = _atoms("mc_b", 1)
        key = ModelCache.key_for(atoms)
        cache.store(key, UNSAT)
        assert cache.lookup(key) == (HIT_EXACT, UNSAT)

    def test_miss_counts(self):
        cache = ModelCache()
        atoms, _ = _atoms("mc_c", 1)
        assert cache.lookup(ModelCache.key_for(atoms)) is None
        assert cache.misses == 1

    def test_empty_key_never_cached(self):
        cache = ModelCache()
        cache.store(frozenset(), {"x": 1})
        assert cache.lookup(frozenset()) is None
        assert len(cache) == 0


class TestSubsetSuperset:
    def test_unsat_subset_poisons_supersets(self):
        """A contradiction stays contradictory with more atoms added."""
        cache = ModelCache()
        atoms, _ = _atoms("mc_d", 3)
        cache.store(ModelCache.key_for(atoms[:1]), UNSAT)
        kind, result = cache.lookup(ModelCache.key_for(atoms))
        assert (kind, result) == (HIT_SUBSET_UNSAT, UNSAT)
        assert cache.subset_hits == 1

    def test_sat_superset_model_serves_subsets(self):
        """A model for a superset satisfies every subset of its atoms."""
        cache = ModelCache()
        atoms, xs = _atoms("mc_e", 3)
        model = {x.name: 40 + i for i, x in enumerate(xs)}
        cache.store(ModelCache.key_for(atoms), model)
        kind, result = cache.lookup(ModelCache.key_for(atoms[:2]))
        assert kind == HIT_SUPERSET_SAT
        assert result == model
        assert cache.superset_hits == 1

    def test_sat_subset_is_not_reused(self):
        """A model for fewer atoms proves nothing about more atoms."""
        cache = ModelCache()
        atoms, xs = _atoms("mc_f", 2)
        cache.store(ModelCache.key_for(atoms[:1]), {xs[0].name: 40})
        assert cache.lookup(ModelCache.key_for(atoms)) is None

    def test_unsat_superset_is_not_reused(self):
        """UNSAT of a superset proves nothing about its subsets."""
        cache = ModelCache()
        atoms, _ = _atoms("mc_g", 2)
        cache.store(ModelCache.key_for(atoms), UNSAT)
        assert cache.lookup(ModelCache.key_for(atoms[:1])) is None


class TestBounds:
    def test_entries_evicted_oldest_first(self):
        cache = ModelCache(max_entries=2)
        atoms, xs = _atoms("mc_h", 3)
        for i, atom in enumerate(atoms):
            cache.store(ModelCache.key_for([atom]), {xs[i].name: 40 + i})
        assert len(cache) == 2
        assert cache.lookup(ModelCache.key_for(atoms[:1])) is None  # evicted

    def test_recent_models_bounded(self):
        cache = ModelCache(max_models=2)
        for i in range(5):
            cache.remember_solution({"v": i})
        assert cache.candidate_solutions() == [{"v": 4}, {"v": 3}]

    def test_clear_resets_counters(self):
        cache = ModelCache()
        atoms, _ = _atoms("mc_i", 1)
        cache.store(ModelCache.key_for(atoms), UNSAT)
        cache.lookup(ModelCache.key_for(atoms))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats_dict()["hits"] == 0


class TestGlobal:
    def test_global_instance_shared_and_resettable(self):
        cache = global_model_cache()
        assert cache is global_model_cache()
        atoms, _ = _atoms("mc_j", 1)
        cache.store(ModelCache.key_for(atoms), UNSAT)
        reset_global_model_cache()
        assert len(global_model_cache()) == 0
