"""ConstraintSet: structural sharing, slicing indexes, model fast path."""

from repro.lowlevel.expr import Sym, mk_binop
from repro.solver.cache import ModelCache
from repro.solver.constraints import ConstraintSet
from repro.solver.csp import CspSolver


def _vars(prefix, n, lo=0, hi=255):
    return [Sym(f"{prefix}_{i}", lo, hi) for i in range(n)]


class TestStructure:
    def test_empty_singleton(self):
        assert ConstraintSet.empty() is ConstraintSet.empty()
        assert len(ConstraintSet.empty()) == 0
        assert not ConstraintSet.empty()
        assert ConstraintSet.empty().atoms() == []

    def test_append_shares_structure(self):
        (x,) = _vars("ccs_a", 1)
        a1 = mk_binop("gt", x, 1)
        a2 = mk_binop("lt", x, 9)
        base = ConstraintSet.empty().append(a1)
        child = base.append(a2)
        assert child.parent is base
        assert base.atoms() == [a1]          # parent unchanged
        assert child.atoms() == [a1, a2]     # oldest first
        assert len(child) == 2
        # Two children share the same parent chain object.
        sibling = base.append(mk_binop("eq", x, 5))
        assert sibling.parent is child.parent is base

    def test_from_atoms_and_extend(self):
        x, y = _vars("ccs_b", 2)
        atoms = [mk_binop("gt", x, 1), mk_binop("lt", y, 9)]
        cs = ConstraintSet.from_atoms(atoms)
        assert cs.atoms() == atoms
        assert ConstraintSet.from_atoms(cs) is cs
        assert cs.extend([]).atoms() == atoms
        assert list(cs) == atoms

    def test_key_is_stable(self):
        (x,) = _vars("ccs_c", 1)
        atom = mk_binop("gt", x, 1)
        assert (
            ConstraintSet.from_atoms([atom]).key()
            == ConstraintSet.from_atoms([atom]).key()
        )

    def test_non_expr_atoms_allowed(self):
        cs = ConstraintSet.from_atoms([1, 0])
        assert cs.atoms() == [1, 0]
        assert cs.free_names == frozenset()


class TestIndexes:
    def test_free_names_accumulate(self):
        x, y = _vars("ccs_d", 2)
        base = ConstraintSet.empty().append(mk_binop("gt", x, 1))
        child = base.append(mk_binop("lt", y, 9))
        assert base.free_names == {x.name}
        assert child.free_names == {x.name, y.name}

    def test_domains(self):
        (x,) = _vars("ccs_e", 1, 3, 7)
        cs = ConstraintSet.from_atoms([mk_binop("gt", x, 4)])
        assert cs.domains() == {x.name: (3, 7)}

    def test_components_split_independent_vars(self):
        x, y, z = _vars("ccs_f", 3)
        cs = ConstraintSet.from_atoms(
            [mk_binop("gt", x, 1), mk_binop("lt", y, 9), mk_binop("eq", z, 4)]
        )
        comps = cs.components()
        assert len(comps) == 3
        assert sorted(len(atoms) for _, atoms in comps) == [1, 1, 1]

    def test_components_merge_linked_vars(self):
        x, y, z = _vars("ccs_g", 3)
        link = mk_binop("lt", mk_binop("add", x, y), 100)
        cs = ConstraintSet.from_atoms([link, mk_binop("eq", z, 4)])
        comps = cs.components()
        assert len(comps) == 2
        names = sorted(sorted(n) for n, _ in comps)
        assert names == [[x.name, y.name], [z.name]]

    def test_components_memoized(self):
        x, y = _vars("ccs_h", 2)
        cs = ConstraintSet.from_atoms([mk_binop("gt", x, 1), mk_binop("lt", y, 9)])
        assert cs.components() is cs.components()


class TestModels:
    def test_split_at_model_finds_nearest_ancestor(self):
        (x,) = _vars("ccs_i", 1)
        a1 = mk_binop("gt", x, 10)
        a2 = mk_binop("lt", x, 20)
        a3 = mk_binop("ne", x, 15)
        base = ConstraintSet.empty().append(a1)
        base.note_model({x.name: 11})
        leaf = base.append(a2).append(a3)
        model, prefix, suffix = leaf.split_at_model()
        assert model == {x.name: 11}
        assert prefix == [a1]
        assert suffix == [a2, a3]

    def test_split_without_model(self):
        (x,) = _vars("ccs_j", 1)
        atoms = [mk_binop("gt", x, 10)]
        model, prefix, suffix = ConstraintSet.from_atoms(atoms).split_at_model()
        assert model is None
        assert prefix == []
        assert suffix == atoms

    def test_solver_records_model_on_set(self):
        (x,) = _vars("ccs_k", 1)
        solver = CspSolver(cache=ModelCache())
        cs = ConstraintSet.from_atoms([mk_binop("eq", x, 7)])
        assert solver.solve(cs) == {x.name: 7}
        assert cs.model == {x.name: 7}

    def test_model_recheck_fast_path(self):
        """Appending a satisfied atom must not trigger any search."""
        x, y = _vars("ccs_l", 2)
        solver = CspSolver(cache=ModelCache())
        base = ConstraintSet.from_atoms(
            [mk_binop("gt", x, 100), mk_binop("lt", y, 50)]
        )
        model = solver.solve(base)
        steps_before = solver.stats.search_steps
        hits_before = solver.stats.incremental_hits
        # The new atom is satisfied by the recorded model: fast path.
        probe = base.append(mk_binop("ge", x, model[x.name]))
        assert solver.solve(probe) is not None
        assert solver.stats.search_steps == steps_before
        assert solver.stats.incremental_hits == hits_before + 1

    def test_slicing_solves_only_touched_component(self):
        """Negating one byte's branch must not re-search other bytes."""
        xs = _vars("ccs_m", 4)
        atoms = [mk_binop("eq", v, 10 + i) for i, v in enumerate(xs)]
        base = ConstraintSet.from_atoms(atoms)
        base.note_model({v.name: 10 + i for i, v in enumerate(xs)})
        solver = CspSolver(cache=ModelCache())
        probe = base.append(mk_binop("ne", xs[0], 10))  # contradicts x0 atom
        assert solver.solve(probe) is None
        # Components of x1..x3 were adopted from the model, never searched.
        assert solver.stats.atoms_sliced == 3
        assert solver.stats.incremental_hits == 1

    def test_known_unsat_memoized(self):
        (x,) = _vars("ccs_n", 1)
        solver = CspSolver(cache=ModelCache())
        cs = ConstraintSet.from_atoms([mk_binop("eq", x, 1), mk_binop("eq", x, 2)])
        assert solver.solve(cs) is None
        assert cs.known_unsat
        hits_before = solver.stats.incremental_hits
        assert solver.solve(cs) is None
        assert solver.stats.incremental_hits == hits_before + 1
