"""CSP solver tests: correctness, decomposition, budgets, max_value."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverTimeout
from repro.lowlevel.expr import Sym, evaluate, mk_binop, mk_unop
from repro.solver.csp import CspSolver


def _vars(prefix, n, lo=0, hi=255):
    return [Sym(f"{prefix}_{i}", lo, hi) for i in range(n)]


class TestSat:
    def test_simple_equality(self):
        (x,) = _vars("cs_a", 1)
        solver = CspSolver()
        assert solver.solve([mk_binop("eq", x, 65)]) == {"cs_a_0": 65}

    def test_conjunction_of_bounds(self):
        (x,) = _vars("cs_b", 1)
        solver = CspSolver()
        sol = solver.solve([mk_binop("gt", x, 10), mk_binop("lt", x, 13)])
        assert sol["cs_b_0"] in (11, 12)

    def test_multi_variable(self):
        x, y = _vars("cs_c", 2)
        solver = CspSolver()
        sol = solver.solve([mk_binop("gt", mk_binop("add", x, y), 500)])
        assert sol["cs_c_0"] + sol["cs_c_1"] > 500

    def test_affine_propagation(self):
        (x,) = _vars("cs_d", 1)
        solver = CspSolver()
        # 3x + 5 == 26  =>  x == 7
        expr = mk_binop("add", mk_binop("mul", x, 3), 5)
        sol = solver.solve([mk_binop("eq", expr, 26)])
        assert sol == {"cs_d_0": 7}
        assert solver.stats.search_steps <= 3

    def test_hint_respected_for_free_variables(self):
        x, y = _vars("cs_e", 2)
        solver = CspSolver()
        sol = solver.solve([mk_binop("eq", x, 1)], hint={"cs_e_1": 42, "cs_e_0": 0})
        assert sol["cs_e_0"] == 1

    def test_independent_components_solved_separately(self):
        x, y = _vars("cs_f", 2)
        solver = CspSolver()
        sol = solver.solve([mk_binop("eq", x, 3), mk_binop("eq", y, 4)])
        assert sol == {"cs_f_0": 3, "cs_f_1": 4}

    def test_empty_constraints_sat(self):
        solver = CspSolver()
        assert solver.solve([]) == {}

    def test_concrete_constraints(self):
        solver = CspSolver()
        assert solver.solve([1, 2]) == {}
        assert solver.solve([1, 0]) is None


class TestUnsat:
    def test_domain_violation(self):
        (x,) = _vars("cs_g", 1)
        solver = CspSolver()
        assert solver.solve([mk_binop("gt", x, 255)]) is None

    def test_contradiction(self):
        (x,) = _vars("cs_h", 1)
        solver = CspSolver()
        assert solver.solve([mk_binop("eq", x, 1), mk_binop("eq", x, 2)]) is None

    def test_modular_impossibility(self):
        (x,) = _vars("cs_i", 1)
        solver = CspSolver()
        # 2x == 7 has no integer solution.
        assert solver.solve([mk_binop("eq", mk_binop("mul", x, 2), 7)]) is None


class TestDecomposition:
    def test_branchfree_equality_chain_propagates(self):
        # (c0==104)&(c1==105) != 0 — the shape produced by fast-path-
        # eliminated string comparison; must solve without search blowup.
        c0, c1 = _vars("cs_j", 2)
        conj = mk_binop("and", mk_binop("eq", c0, 104), mk_binop("eq", c1, 105))
        solver = CspSolver()
        sol = solver.solve([mk_binop("ne", conj, 0)])
        assert sol == {"cs_j_0": 104, "cs_j_1": 105}
        assert solver.stats.search_steps <= 4

    def test_negated_disjunction_decomposes(self):
        c0, c1 = _vars("cs_k", 2)
        disj = mk_binop("or", mk_binop("ne", c0, 0), mk_binop("ne", c1, 0))
        solver = CspSolver()
        sol = solver.solve([mk_binop("eq", disj, 0)])
        assert sol == {"cs_k_0": 0, "cs_k_1": 0}

    def test_land_decomposes(self):
        c0, c1 = _vars("cs_l", 2)
        conj = mk_binop("land", mk_binop("gt", c0, 250), mk_binop("lt", c1, 2))
        solver = CspSolver()
        sol = solver.solve([conj])
        assert sol["cs_l_0"] > 250 and sol["cs_l_1"] < 2


class TestBudget:
    def test_timeout_raised_and_counted(self):
        xs = _vars("cs_m", 6)
        # A hash-like constraint: hard for search.
        h = 0
        for x in xs:
            h = mk_binop("mod", mk_binop("add", mk_binop("mul", h, 33), x), 65536)
        solver = CspSolver(budget=50)
        with pytest.raises(SolverTimeout):
            solver.solve([mk_binop("eq", h, 12345)])
        assert solver.stats.timeouts == 1
        assert solver.stats.search_steps >= 50

    def test_per_call_budget_override(self):
        xs = _vars("cs_n", 6)
        h = 0
        for x in xs:
            h = mk_binop("mod", mk_binop("add", mk_binop("mul", h, 131), x), 4096)
        solver = CspSolver(budget=10_000_000)
        with pytest.raises(SolverTimeout):
            solver.solve([mk_binop("eq", h, 4095)], budget=25)


class TestCaching:
    def test_repeat_query_hits_cache(self):
        (x,) = _vars("cs_o", 1)
        solver = CspSolver()
        atom = mk_binop("eq", x, 9)
        solver.solve([atom])
        before = solver.cache.hits
        solver.solve([atom])
        assert solver.cache.hits == before + 1

    def test_counterexample_reuse(self):
        x, y = _vars("cs_p", 2)
        solver = CspSolver()
        solver.solve([mk_binop("gt", x, 100)])
        solver.solve([mk_binop("gt", x, 100), mk_binop("ge", y, 0)])
        assert solver.stats.cex_reuses >= 1


class TestMaxValue:
    def test_bounded_maximum(self):
        (x,) = _vars("cs_q", 1, 0, 100)
        solver = CspSolver()
        assert solver.max_value(x, [mk_binop("lt", x, 50)]) == 49

    def test_concrete_expression(self):
        solver = CspSolver()
        assert solver.max_value(7, []) == 7

    def test_unsat_returns_none(self):
        (x,) = _vars("cs_r", 1)
        solver = CspSolver()
        assert solver.max_value(x, [mk_binop("gt", x, 999)]) is None

    def test_cap_applies(self):
        (x,) = _vars("cs_s", 1, 0, 255)
        solver = CspSolver()
        big = mk_binop("mul", x, 1 << 30)
        assert solver.max_value(big, [], cap=1000) <= 1000


@settings(max_examples=40)
@given(
    consts=st.lists(st.integers(0, 255), min_size=1, max_size=4),
    bound=st.integers(0, 300),
)
def test_solutions_always_satisfy(consts, bound):
    """Soundness: whatever the solver returns must satisfy the query."""
    solver = CspSolver()
    xs = _vars(f"cs_t{len(consts)}_{bound}", len(consts))
    atoms = [mk_binop("ne", x, c) for x, c in zip(xs, consts)]
    total = 0
    for x in xs:
        total = mk_binop("add", total, x)
    atoms.append(mk_binop("le", total, bound))
    try:
        sol = solver.solve(atoms)
    except SolverTimeout:
        return
    if sol is None:
        # UNSAT is only legitimate when the excluded zeros force the sum
        # above the bound (each x with ne(x, 0) must be at least 1).
        assert bound < sum(1 for c in consts if c == 0)
        return
    for atom in atoms:
        assert evaluate(atom, sol) == 1
