"""Shared fixtures: keep process-global symbolic state out of tests.

Three pieces of state outlive an engine run and would otherwise leak
between tests:

- the ``Sym`` registry (variable name → domain),
- the expression intern table (structural identity is object identity),
- the engine-wide solver model cache, which keys on interned-atom ids
  and therefore MUST be dropped whenever the intern table is — a cleared
  table recycles ids, and a stale cache entry under a recycled id would
  answer the wrong query.

The autouse fixture resets all three after every test, in that
dependency order.
"""

from __future__ import annotations

import pytest

from repro.interpreters import clay_sources_available
from repro.lowlevel.expr import Sym, clear_intern_cache
from repro.solver.cache import reset_global_model_cache

#: Mark for tests that execute a guest interpreter end-to-end; the seed
#: snapshot lacks the Clay interpreter sources (ROADMAP open item), so
#: these skip with a visible reason instead of failing on missing files.
requires_clay = pytest.mark.skipif(
    not clay_sources_available(),
    reason="interpreter Clay sources are not in the tree (seed gap; see ROADMAP)",
)


@pytest.fixture(autouse=True)
def _reset_symbolic_state():
    yield
    reset_global_model_cache()
    clear_intern_cache()
    Sym.reset_registry()
