"""Clay parser/codegen tests via end-to-end concrete execution."""

import pytest

from repro.clay import compile_program
from repro.errors import ClayCompileError, ClaySyntaxError
from repro.lowlevel.executor import LowLevelEngine
from repro.lowlevel.machine import Status


def run(source):
    compiled = compile_program(source)
    engine = LowLevelEngine(compiled.program)
    state = engine.new_state()
    engine.run_path(state)
    assert state.status == Status.HALTED, state.fault_message
    return state.machine.output


class TestExpressions:
    def test_precedence(self):
        assert run("fn main() { out(2 + 3 * 4 - 10 / 2); }") == [9]

    def test_comparisons_yield_01(self):
        assert run("fn main() { out(3 < 4); out(4 < 3); out(5 == 5); }") == [1, 0, 1]

    def test_bitwise(self):
        assert run("fn main() { out(12 & 10); out(12 | 3); out(5 ^ 1); out(1 << 4); out(32 >> 2); }") == [8, 15, 4, 16, 8]

    def test_unary(self):
        assert run("fn main() { out(-5); out(!0); out(!7); out(~0); }") == [-5, 1, 0, -1]

    def test_short_circuit_and(self):
        # The right side would fault; short-circuit must skip it.
        out = run("""
            fn boom() { abort(1); return 0; }
            fn main() { out(0 && boom()); out(1 || boom()); }
        """)
        assert out == [0, 1]

    def test_floor_division_and_modulo(self):
        assert run("fn main() { out(7 / 2); out(7 % 3); out(-7 % 3); }") == [3, 1, 2]

    def test_indexing_sugar(self):
        out = run("""
            global arr[4];
            fn main() {
                arr[0] = 5;
                arr[1] = arr[0] + 1;
                out(arr[1]);
                var base = arr;
                out(base[0]);
            }
        """)
        assert out == [6, 5]


class TestStatementsAndFunctions:
    def test_while_break_continue(self):
        out = run("""
            fn main() {
                var i = 0;
                var total = 0;
                while (1) {
                    i = i + 1;
                    if (i == 3) { continue; }
                    if (i > 5) { break; }
                    total = total + i;
                }
                out(total);
            }
        """)
        assert out == [12]  # 1+2+4+5

    def test_else_if_chain(self):
        out = run("""
            fn classify(n) {
                if (n < 0) { return 1; }
                else if (n == 0) { return 2; }
                else { return 3; }
            }
            fn main() { out(classify(-1)); out(classify(0)); out(classify(9)); }
        """)
        assert out == [1, 2, 3]

    def test_mutual_recursion(self):
        out = run("""
            fn is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
            fn is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
            fn main() { out(is_even(10)); out(is_odd(10)); }
        """)
        assert out == [1, 0]

    def test_globals_and_consts(self):
        out = run("""
            const BASE = 10;
            const DOUBLE = BASE * 2;
            global counter = 5;
            fn bump() { counter = counter + 1; return counter; }
            fn main() { out(bump()); out(bump()); out(DOUBLE); }
        """)
        assert out == [6, 7, 20]

    def test_missing_return_yields_zero(self):
        assert run("fn f() { } fn main() { out(f()); }") == [0]


class TestCompileErrors:
    def test_undefined_variable(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn main() { out(nope); }")

    def test_undefined_function(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn main() { nope(); }")

    def test_arity_mismatch(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn f(a) { return a; } fn main() { out(f(1, 2)); }")

    def test_duplicate_function(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn f() { } fn f() { } fn main() { }")

    def test_redeclared_variable(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn main() { var a = 1; var a = 2; }")

    def test_break_outside_loop(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn main() { break; }")

    def test_missing_entry(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn other() { }")

    def test_entry_with_params_rejected(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn main(a) { }")

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn load() { } fn main() { }")

    def test_assign_to_array_global_rejected(self):
        with pytest.raises(ClayCompileError):
            compile_program("global arr[3]; fn main() { arr = 1; }")

    def test_syntax_error_reports_location(self):
        with pytest.raises(ClaySyntaxError):
            compile_program("fn main( { }")

    def test_nonconstant_global_initialiser(self):
        with pytest.raises(ClayCompileError):
            compile_program("fn f() { return 1; } global g = f(); fn main() { }")


class TestSymbols:
    def test_symbols_exported(self):
        compiled = compile_program("""
            global scalar = 3;
            global table[8];
            fn main() { }
        """)
        assert "scalar" in compiled.symbols
        assert "table" in compiled.symbols
        assert compiled.program.static_data[compiled.symbols["scalar"]] == 3
