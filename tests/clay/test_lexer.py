"""Clay lexer tests."""

import pytest

from repro.clay.lexer import tokenize
from repro.errors import ClaySyntaxError


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)][:-1]  # drop EOF


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = kinds("fn foo var iffy if")
        assert toks == [
            ("kw", "fn"), ("ident", "foo"), ("kw", "var"),
            ("ident", "iffy"), ("kw", "if"),
        ]

    def test_decimal_and_hex(self):
        assert kinds("42 0x2A 0") == [("int", 42), ("int", 42), ("int", 0)]

    def test_char_literals(self):
        assert kinds("'a' '\\n' '\\\\' '\\''") == [
            ("int", 97), ("int", 10), ("int", 92), ("int", 39),
        ]

    def test_multichar_operators(self):
        values = [v for _k, v in kinds("a <= b << c == d && e")]
        assert "<=" in values and "<<" in values and "==" in values and "&&" in values

    def test_line_comment(self):
        assert kinds("1 // comment\n2") == [("int", 1), ("int", 2)]

    def test_block_comment_spanning_lines(self):
        toks = tokenize("1 /* a\nb */ 2")
        assert [(t.kind, t.value) for t in toks[:-1]] == [("int", 1), ("int", 2)]
        assert toks[1].line == 2

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1 and toks[0].column == 1
        assert toks[1].line == 2 and toks[1].column == 3


class TestErrors:
    def test_unterminated_block_comment(self):
        with pytest.raises(ClaySyntaxError):
            tokenize("/* never ends")

    def test_unterminated_char(self):
        with pytest.raises(ClaySyntaxError):
            tokenize("'a")

    def test_unknown_escape(self):
        with pytest.raises(ClaySyntaxError):
            tokenize("'\\q'")

    def test_unexpected_character(self):
        with pytest.raises(ClaySyntaxError):
            tokenize("fn main() { $ }")

    def test_malformed_hex(self):
        with pytest.raises(ClaySyntaxError):
            tokenize("0x")
