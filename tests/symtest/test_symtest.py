"""Symbolic test library and runner tests (the Fig. 7 API)."""

import pytest

from repro.chef.options import ChefConfig
from repro.errors import ReproError
from repro.symtest import SymbolicTest, SymbolicTestRunner
from repro.symtest.coverage import count_loc, coverage_percent, merge_coverage
from repro.interpreters.minilua.language import quote_minilua
from repro.interpreters.minipy.language import quote_minipy
from repro.symtest.library import SimpleSymbolicTest, _quote_minipy

from tests.conftest import requires_clay


class ArgparseStyleTest(SymbolicTest):
    """Mirrors the paper's Fig. 7 test structure."""

    def setUp(self):
        self.package = "argparse-mini"

    def runTest(self):
        self.getString("arg1_name", "\x00\x00\x00")
        self.getString("arg1", "\x00\x00\x00")
        self.emit("print(len(arg1_name) + len(arg1))")


class TestSymbolicTestApi:
    def test_driver_generation(self):
        test = ArgparseStyleTest()
        driver = test.build_driver()
        assert 'arg1_name = sym_string("\\x00\\x00\\x00")' in driver
        assert "print(" in driver
        assert [spec.name for spec in test.inputs] == ["arg1_name", "arg1"]

    def test_get_int_generates_sym_int(self):
        test = SimpleSymbolicTest([("int", "n", 4, 0, 9)], "print(n)")
        assert 'n = sym_int(4, 0, 9)' in test.build_driver()

    def test_duplicate_input_rejected(self):
        class Bad(SymbolicTest):
            def runTest(self):
                self.getString("a", "x")
                self.getString("a", "y")

        with pytest.raises(ReproError):
            Bad().build_driver()

    def test_invalid_identifier_rejected(self):
        class Bad(SymbolicTest):
            def runTest(self):
                self.getString("not an ident", "x")

        with pytest.raises(ReproError):
            Bad().build_driver()

    def test_empty_test_rejected(self):
        class Empty(SymbolicTest):
            def runTest(self):
                pass

        with pytest.raises(ReproError):
            Empty().build_driver()

    def test_quoting_non_printable(self):
        assert _quote_minipy("\x00a\"\\") == '"\\x00a\\"\\\\"'
        assert _quote_minipy is quote_minipy  # codegen routes through the language

    def test_minilua_driver_quotes_through_guest_language(self):
        # Regression: getString used to quote every language with the
        # MiniPy quoter; the driver now asks GuestLanguage.quote_literal.
        seed = 'a"b\\c\x00'
        test = SimpleSymbolicTest([("str", "s", seed)], "print(s)", language="minilua")
        driver = test.build_driver()
        assert f"s = sym_string({quote_minilua(seed)})" in driver

    def test_minilua_quoted_string_round_trips(self):
        # Quotes and backslashes in MiniLua seeds must survive the
        # frontend lexer byte-for-byte.
        from repro.interpreters.minilua.frontend import tokenize_lua

        for seed in ['a"b', "back\\slash", '\\"mix\\\\"', "\x00\x7f\xff"]:
            tokens = tokenize_lua(f"s = sym_string({quote_minilua(seed)})\n")
            assert [t.value for t in tokens if t.kind == "str"] == [seed]

    def test_unknown_language_rejected(self):
        test = SimpleSymbolicTest([("str", "s", "x")], "print(s)", language="ruby")
        with pytest.raises(ReproError):
            SymbolicTestRunner("", test)

    def test_unknown_input_kind_rejected(self):
        test = SimpleSymbolicTest([("float", "f", 1.0)], "print(1)")
        with pytest.raises(ReproError):
            test.build_driver()


_PACKAGE = """
def is_vowel(c):
    return c in "aeiou"
"""


@requires_clay
class TestRunner:
    def _runner(self, budget=5.0):
        test = SimpleSymbolicTest(
            [("str", "letter", "\x00")],
            "if is_vowel(letter):\n    print(1)\nelse:\n    print(0)",
        )
        config = ChefConfig(strategy="cupa-path", seed=0, time_budget=budget)
        return SymbolicTestRunner(_PACKAGE, test, config)

    def test_symbolic_mode_finds_both_outcomes(self):
        runner = self._runner()
        result = runner.run_symbolic()
        outputs = {tuple(c.output) for c in result.hl_test_cases}
        assert (1, 1) in outputs  # a vowel
        assert (1, 0) in outputs  # not a vowel

    def test_run_symbolic_twice_reuses_compiled_engine(self):
        # Re-running builds a fresh session over the *same* engine —
        # no source recompilation — and finds the same outcome set.
        runner = self._runner()
        first = runner.run_symbolic()
        engine = runner.engine
        second = runner.run_symbolic()
        assert runner.engine is engine
        assert {tuple(c.output) for c in first.hl_test_cases} == {
            tuple(c.output) for c in second.hl_test_cases
        }

    def test_replay_matches_symbolic_output(self):
        runner = self._runner()
        result = runner.run_symbolic()
        for case in result.hl_test_cases:
            replayed = runner.replay_case(case)
            assert replayed.output == case.output
            assert replayed.exception_name is None

    def test_replay_suite(self):
        runner = self._runner()
        result = runner.run_symbolic()
        replays = runner.replay_suite(result)
        assert len(replays) == len(result.hl_test_cases)

    def test_line_coverage_in_unit_range(self):
        runner = self._runner()
        result = runner.run_symbolic()
        cov = runner.line_coverage(result)
        assert 0.0 < cov <= 1.0


class TestCoverageHelpers:
    def test_percent(self):
        assert coverage_percent({1, 2}, 4) == 50.0
        assert coverage_percent(set(), 0) == 0.0

    def test_merge(self):
        assert merge_coverage([{1}, {2}, {1, 3}]) == {1, 2, 3}

    def test_count_loc_skips_comments_and_blanks(self):
        assert count_loc("a = 1\n\n# c\nb = 2\n", comment_prefix="#") == 2
        assert count_loc("-- c\nx = 1\n", comment_prefix="--") == 1

    def test_count_loc_prefix_is_required(self):
        # The prefix must come from the GuestLanguage protocol; a silent
        # "#" default used to leak through at call sites.
        with pytest.raises(TypeError):
            count_loc("x = 1\n")
