"""Unit tests for the obs metrics registry primitives."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_property,
    merge_snapshots,
    split_prefixed,
)


class TestPrimitives:
    def test_counter_inc(self):
        counter = Counter("solver.queries")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set(self):
        gauge = Gauge("cache.entries")
        gauge.set(17)
        assert gauge.value == 17

    def test_histogram_observe_and_snapshot(self):
        hist = Histogram("span.solver.check")
        for value in (0.5, 2.0, 1.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(3.5)
        assert snap["min"] == pytest.approx(0.5)
        assert snap["max"] == pytest.approx(2.0)

    def test_histogram_slowest_capture_is_capped_and_sorted(self):
        hist = Histogram("span.solver.check", keep_slowest=3)
        for i in range(10):
            hist.observe(float(i), label=f"query-{i}")
        slowest = hist.snapshot()["slowest"]
        assert len(slowest) == 3
        assert [label for _v, label in slowest] == ["query-9", "query-8", "query-7"]


class TestRegistry:
    def test_create_or_return_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_name_collision_across_types_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_flat_and_detached(self):
        registry = MetricsRegistry()
        registry.counter("solver.queries").inc(3)
        registry.gauge("cache.entries").set(2)
        registry.histogram("span.check").observe(0.25)
        snap = registry.snapshot()
        assert snap["solver.queries"] == 3
        assert snap["cache.entries"] == 2
        assert snap["span.check"]["count"] == 1
        registry.counter("solver.queries").inc()
        assert snap["solver.queries"] == 3  # snapshot is a copy

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.gauge("g").set(9)
        registry.histogram("h").observe(9.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap["c"] == 0
        assert snap["g"] == 0
        assert snap["h"]["count"] == 0


class TestSnapshotAlgebra:
    def test_merge_adds_numbers_and_folds_histograms(self):
        merged = merge_snapshots(
            [
                {"solver.queries": 3, "span.check": {"count": 2, "sum": 1.0, "min": 0.25, "max": 0.75, "slowest": [[0.75, "a"]]}},
                {"solver.queries": 4, "span.check": {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0, "slowest": [[2.0, "b"]]}},
            ]
        )
        assert merged["solver.queries"] == 7
        assert merged["span.check"]["count"] == 3
        assert merged["span.check"]["sum"] == pytest.approx(3.0)
        assert merged["span.check"]["min"] == pytest.approx(0.25)
        assert merged["span.check"]["max"] == pytest.approx(2.0)
        assert merged["span.check"]["slowest"][0][0] == pytest.approx(2.0)

    def test_merge_of_disjoint_keys_unions(self):
        merged = merge_snapshots([{"a": 1}, {"b": 2}])
        assert merged == {"a": 1, "b": 2}

    def test_split_prefixed_strips_prefix(self):
        snap = {"solver.queries": 5, "cache.hits": 2, "engine.forks": 1}
        assert split_prefixed(snap, "solver") == {"queries": 5}
        assert split_prefixed(snap, "cache") == {"hits": 2}


class TestCounterProperty:
    def test_property_views_read_and_write_the_registry(self):
        class Stats:
            def __init__(self, registry):
                self._counters = {"queries": registry.counter("solver.queries")}

        Stats.queries = counter_property("queries")
        registry = MetricsRegistry()
        stats = Stats(registry)
        stats.queries += 3
        # Reads are plain ints, so before/after comparisons don't alias.
        before = stats.queries
        stats.queries += 1
        assert before == 3
        assert stats.queries == 4
        assert registry.snapshot()["solver.queries"] == 4
