"""Span tracer and exporter tests: no-op discipline, schema, round-trip."""

from __future__ import annotations

import json

from repro.obs.export import (
    chrome_trace,
    summary_table,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.telemetry import NULL_SPAN, Telemetry


class TestSpanDiscipline:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        telemetry = Telemetry(enabled=False)
        span = telemetry.span("solver.check", atoms=3)
        assert span is NULL_SPAN
        with span as inner:
            inner.set(status="sat")  # must be a silent no-op
        assert telemetry.events == []
        assert "span.solver.check" not in telemetry.registry.snapshot()

    def test_enabled_span_records_event_and_histogram(self):
        telemetry = Telemetry(enabled=True, lane="main")
        with telemetry.span("solver.check", atoms=3) as span:
            span.set(status="sat")
        (event,) = telemetry.events
        assert event["name"] == "solver.check"
        assert event["ph"] == "X"
        assert event["lane"] == "main"
        assert event["dur"] >= 0.0
        assert event["args"] == {"atoms": 3, "status": "sat"}
        hist = telemetry.registry.snapshot()["span.solver.check"]
        assert hist["count"] == 1
        assert hist["slowest"][0][1] == "atoms=3, status=sat"

    def test_child_shares_log_and_registry_under_new_lane(self):
        telemetry = Telemetry(enabled=True, lane="main")
        child = telemetry.child("coordinator")
        with child.span("parallel.ship"):
            pass
        assert child.registry is telemetry.registry
        (event,) = telemetry.events  # same event list
        assert event["lane"] == "coordinator"

    def test_drain_and_extend_round_trip(self):
        worker = Telemetry(enabled=True, lane="worker-1")
        with worker.span("snapshot.decode"):
            pass
        shipped = worker.drain_events()
        assert worker.events == []
        coordinator = Telemetry(enabled=True)
        coordinator.extend_events(shipped)
        assert [e["lane"] for e in coordinator.events] == ["worker-1"]


def _traced_context() -> Telemetry:
    telemetry = Telemetry(enabled=True, lane="main")
    with telemetry.span("solver.check", atoms=2):
        pass
    worker = Telemetry(enabled=True, lane="worker-7")
    with worker.span("engine.run_path", sid=1):
        pass
    telemetry.extend_events(worker.drain_events())
    telemetry.registry.counter("solver.queries").inc(5)
    return telemetry


class TestChromeTraceExport:
    def test_schema_and_lane_metadata(self):
        telemetry = _traced_context()
        document = chrome_trace(telemetry.events, metrics=telemetry.metrics())
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        # Every event carries the chrome-trace required keys.
        for event in events:
            assert {"name", "ph", "pid", "tid", "ts"} <= set(event)
        # One thread_name metadata event per lane, distinct tids.
        names = {
            event["args"]["name"]: event["tid"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert set(names) == {"main", "worker-7"}
        assert len(set(names.values())) == 2
        # X events are rebased to the earliest timestamp, in microseconds.
        xs = [event for event in events if event["ph"] == "X"]
        assert len(xs) == 2
        assert min(event["ts"] for event in xs) == 0
        assert all(event["dur"] >= 0 for event in xs)
        assert document["otherData"]["metrics"]["solver.queries"] == 5

    def test_write_is_valid_json(self, tmp_path):
        telemetry = _traced_context()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, telemetry)
        document = json.loads(path.read_text())
        assert document["traceEvents"]

    def test_jsonl_round_trips_every_event(self, tmp_path):
        telemetry = _traced_context()
        path = tmp_path / "events.jsonl"
        write_events_jsonl(path, telemetry)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(telemetry.events)
        assert {line["name"] for line in lines} == {"solver.check", "engine.run_path"}


class TestSummaryTable:
    def test_summary_lists_metrics_and_spans(self):
        telemetry = _traced_context()
        text = summary_table(telemetry)
        assert "solver.queries" in text
        assert "span.solver.check" in text
        assert "slowest" in text
