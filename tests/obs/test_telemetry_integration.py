"""Engine-wide telemetry integration: one registry, every worker count.

The claims under test are the PR's acceptance criteria:

- tracing does not perturb exploration: the path-event multiset of a
  traced run equals the untraced one, at workers 1 and 2;
- per-worker metric aggregation equals the serial totals on an
  exhaustive run (solver queries, sat/unsat verdicts, engine paths);
- parallel traces carry distinct coordinator and worker lanes with the
  per-phase spans (snapshot codec, merge, solver);
- ``Session.metrics()`` agrees with the ``RunResult`` stat dicts — the
  dicts are prefix views of the same registry, not parallel bookkeeping.
"""

from __future__ import annotations

from collections import Counter as Multiset

import pytest

from repro.api.events import MetricsUpdated, PathCompleted, RunFinished
from repro.api.session import SymbolicSession
from repro.bench.workloads import branchy_source
from repro.chef.options import ChefConfig
from repro.clay import compile_program
from repro.obs.telemetry import Telemetry

_BYTES = 4  # 16 feasible paths: exhaustive in well under a second


def _path_multiset(events):
    return Multiset(
        (e.case.status, tuple(sorted((k, tuple(v)) for k, v in e.case.inputs.items())))
        for e in events
        if isinstance(e, PathCompleted)
    )


def _run_session(workers: int, trace: bool):
    compiled = compile_program(branchy_source(_BYTES))
    config = ChefConfig(time_budget=60.0, workers=workers, trace=trace)
    session = SymbolicSession.from_program(compiled.program, config)
    events = list(session.events())
    return session, events


class TestTracedDeterminism:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_tracing_does_not_change_the_path_multiset(self, workers):
        _plain_session, plain_events = _run_session(workers, trace=False)
        _traced_session, traced_events = _run_session(workers, trace=True)
        # MetricsUpdated is progress telemetry (timing-dependent count);
        # determinism is judged on the path events only.
        assert _path_multiset(traced_events) == _path_multiset(plain_events)
        assert len(_path_multiset(traced_events)) == 1 << _BYTES

    def test_metrics_updated_events_are_emitted_and_final_one_precedes_finish(self):
        _session, events = _run_session(1, trace=False)
        kinds = [type(e) for e in events]
        assert MetricsUpdated in kinds
        assert kinds[-1] is RunFinished
        assert kinds[-2] is MetricsUpdated
        final = [e for e in events if isinstance(e, MetricsUpdated)][-1]
        assert final.metrics.get("solver.queries", 0) > 0


class TestParallelAggregation:
    def test_worker_aggregation_equals_serial_totals(self):
        serial_session, _ = _run_session(1, trace=False)
        parallel_session, _ = _run_session(2, trace=False)
        serial = serial_session.result
        parallel = parallel_session.result
        for key in ("queries", "sat", "unsat"):
            assert parallel.solver_stats[key] == serial.solver_stats[key], key
        assert (
            parallel.engine_stats["paths_completed"]
            == serial.engine_stats["paths_completed"]
        )
        # Same totals through the metrics surface: one registry per side.
        sm, pm = serial_session.metrics(), parallel_session.metrics()
        assert pm["solver.queries"] == sm["solver.queries"]
        assert pm["engine.paths_completed"] == sm["engine.paths_completed"]

    def test_parallel_trace_has_coordinator_and_worker_lanes_with_phase_spans(self):
        session, _ = _run_session(2, trace=True)
        events = session.telemetry.events
        lanes = {event["lane"] for event in events}
        assert "coordinator" in lanes
        worker_lanes = {lane for lane in lanes if lane.startswith("worker-")}
        assert worker_lanes, lanes
        spans_by_lane = {
            lane: {e["name"] for e in events if e["lane"] == lane} for lane in lanes
        }
        assert {"parallel.ship", "parallel.merge"} <= spans_by_lane["coordinator"]
        worker_spans = set().union(*(spans_by_lane[lane] for lane in worker_lanes))
        assert {
            "snapshot.decode",
            "snapshot.encode",
            "worker.merge_delta",
            "solver.check",
            "engine.run_path",
        } <= worker_spans


class TestSessionMetricsSurface:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_session_metrics_match_run_result_stats(self, workers):
        session, _ = _run_session(workers, trace=False)
        result = session.result
        metrics = session.metrics()
        assert metrics["solver.queries"] == result.solver_stats["queries"]
        assert metrics["solver.sat"] == result.solver_stats["sat"]
        assert metrics["cache.hits"] == result.solver_stats["cache_hits"]
        assert metrics["engine.forks"] == result.engine_stats["forks"]

    def test_disabled_trace_still_counts_metrics(self):
        session, _ = _run_session(1, trace=False)
        assert session.telemetry.events == []
        assert session.metrics()["solver.queries"] > 0


class TestStandaloneTelemetryContexts:
    def test_contexts_are_isolated(self):
        a, b = Telemetry(), Telemetry()
        a.registry.counter("solver.queries").inc()
        assert b.registry.snapshot() == {}
