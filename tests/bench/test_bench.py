"""Bench harness, effort counting and reporting unit tests."""

from repro.bench.effort import effort_table
from repro.bench.harness import (
    PAPER_CONFIGS,
    BenchSettings,
    PackageRun,
    aggregate,
    run_package,
)
from repro.bench.reporting import (
    fig8_rows,
    fig10_series,
    fig11_rows,
    fig12_rows,
    render_table,
)
from repro.chef.options import InterpreterBuildOptions
from repro.targets import target_by_name

from tests.conftest import requires_clay


class TestHarness:
    def test_paper_configs_complete(self):
        assert set(PAPER_CONFIGS) == {
            "CUPA + Optimizations", "Optimizations Only", "CUPA Only", "Baseline",
        }
        strategy, options = PAPER_CONFIGS["Baseline"]
        assert strategy == "random"
        assert options == InterpreterBuildOptions.vanilla()

    @requires_clay
    def test_run_package_summary(self):
        target = target_by_name("unicodecsv")
        run = run_package(
            target, "cupa-path", InterpreterBuildOptions.full(),
            budget=1.0, seed=0, config_name="cfg",
        )
        assert run.package == "unicodecsv"
        assert run.hl_paths >= 1
        assert run.ll_paths >= run.hl_paths
        assert 0.0 <= run.coverage <= 1.0
        assert run.timeline

    def test_aggregate_means(self):
        runs = [
            PackageRun("p", "minipy", "c", 0, hl_paths=2, ll_paths=4, coverage=0.5),
            PackageRun("p", "minipy", "c", 1, hl_paths=4, ll_paths=8, coverage=0.7),
        ]
        cell = aggregate(runs, "p", "c")
        assert cell["hl"] == 3.0
        assert abs(cell["coverage"] - 0.6) < 1e-9

    def test_settings_env_defaults(self):
        settings = BenchSettings()
        assert settings.budget > 0
        assert settings.seeds >= 1


@requires_clay
class TestEffort:
    def test_rows_shape(self):
        rows = {r.language: r for r in effort_table()}
        assert rows["Python"].core_loc > 0
        assert rows["Python"].hlpc_loc > 0
        assert rows["Python"].optimization_loc > rows["Python"].hlpc_loc
        assert rows["Lua"].native_loc >= 0
        assert rows["Python"].instrumented_fraction(rows["Python"].hlpc_loc) < 5.0


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # fixed width

    def test_fig8_rows_relative_to_baseline(self):
        runs = [
            PackageRun("p", "minipy", "Baseline", 0, hl_paths=2, ll_paths=2, coverage=0),
            PackageRun("p", "minipy", "CUPA + Optimizations", 0, hl_paths=8, ll_paths=8, coverage=0),
        ]
        rows = fig8_rows(runs, ["p"], ["CUPA + Optimizations", "Baseline"])
        assert "4.00x" in rows[0][1]

    def test_fig10_series_buckets(self):
        runs = [
            PackageRun(
                "p", "minipy", "Baseline", 0, hl_paths=2, ll_paths=4, coverage=0,
                duration=1.0, timeline=[(0.1, 1, 2), (0.9, 2, 4)],
            )
        ]
        series = fig10_series(runs, "minipy", ["Baseline"], buckets=2)
        assert series["Baseline"][0] == 0.5
        assert series["Baseline"][1] == 0.5

    def test_fig11_rows_percentages(self):
        rows = fig11_rows({"p": {0: 1.0, 1: 2.0, 2: 3.0, 3: 4.0}}, {})
        assert rows[0][1].strip() == "25.0%"
        assert rows[0][4].strip() == "100.0%"

    def test_fig12_rows(self):
        rows = fig12_rows({1: {0: 100.0, 1: 10.0}}, {0: "a", 1: "b"})
        assert rows[0][0] == 1
        assert "100.0x" in rows[0][1]
