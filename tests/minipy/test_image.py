"""Program-image serialisation tests."""

import pytest

from repro.errors import InterpreterError
from repro.interpreters.minipy.compiler import compile_source
from repro.interpreters.minipy.image import IMAGE_BASE, ImageBuilder, build_image


class TestImageBuilder:
    def test_const_encoding(self):
        builder = ImageBuilder()
        addr = builder.encode_const(42)
        assert builder.words[addr] == 1 and builder.words[addr + 1] == 42
        addr = builder.encode_const("hi")
        assert builder.words[addr] == 4
        assert builder.words[addr + 1] == 2
        assert builder.words[addr + 2] == ord("h")

    def test_bool_and_int_not_conflated(self):
        builder = ImageBuilder()
        a = builder.encode_const(True)
        b = builder.encode_const(1)
        assert a != b
        assert builder.words[a] == 2 and builder.words[b] == 1

    def test_const_deduplication(self):
        builder = ImageBuilder()
        assert builder.encode_const("s") == builder.encode_const("s")

    def test_unsupported_const_rejected(self):
        builder = ImageBuilder()
        with pytest.raises(InterpreterError):
            builder.encode_const(3.14)


class TestBuildImage:
    def test_header_layout(self):
        module = compile_source("x = 1\nprint(x)")
        image = build_image(module)
        assert image[IMAGE_BASE] == len(module.codes)
        assert image[IMAGE_BASE + 2] == len(module.global_names)
        assert image[IMAGE_BASE + 5] == module.main_code

    def test_code_objects_reachable(self):
        module = compile_source("def f(a):\n    return a\nprint(f(1))")
        image = build_image(module)
        table = image[IMAGE_BASE + 1]
        for index in range(len(module.codes)):
            code_ptr = image[table + index]
            assert image[code_ptr] == index  # code_id
            assert image[code_ptr + 1] == module.codes[index].argcount

    def test_instruction_words(self):
        module = compile_source("x = 7")
        image = build_image(module)
        table = image[IMAGE_BASE + 1]
        code_ptr = image[table + 0]
        n_instrs = image[code_ptr + 3]
        instrs_ptr = image[code_ptr + 4]
        pairs = [
            (image[instrs_ptr + 2 * i], image[instrs_ptr + 2 * i + 1])
            for i in range(n_instrs)
        ]
        assert pairs == module.codes[0].instrs

    def test_global_inits_serialised(self):
        module = compile_source("print(1)")
        image = build_image(module)
        assert image[IMAGE_BASE + 4] == len(module.global_inits)
