"""MiniPy host VM semantics battery."""

import pytest

from repro.interpreters.minipy.compiler import compile_source
from repro.interpreters.minipy.hostvm import HostVM


def run(source, inputs=None):
    vm = HostVM(compile_source(source), symbolic_inputs=inputs)
    return vm.run()


def out_of(source, inputs=None):
    result = run(source, inputs)
    assert result.exception is None, result.exception
    return result.output


def exc_of(source):
    result = run(source)
    assert result.exception is not None
    return result.exception.name


class TestValuesAndOperators:
    def test_arithmetic(self):
        assert out_of("print(7 + 3 * 2 - 1)") == [1, 12]
        assert out_of("print(7 // 2)\nprint(7 % 3)") == [1, 3, 1, 1]

    def test_negative_floor_division(self):
        assert out_of("print(-7 // 2)") == [1, -4]

    def test_string_concat_and_compare(self):
        assert out_of('print("ab" + "cd")')[2:] == [ord(c) for c in "abcd"]
        assert out_of('print("x" == "x")\nprint("x" != "y")') == [2, 1, 2, 1]

    def test_bool_coerces_in_arithmetic(self):
        assert out_of("print(True + 1)") == [1, 2]

    def test_cross_type_equality_is_false(self):
        assert out_of('print("1" == 1)') == [2, 0]

    def test_none_equality(self):
        assert out_of("print(None == None)") == [2, 1]

    def test_chained_methods(self):
        assert out_of('print("  AbC  ".strip().lower())')[2:] == [ord(c) for c in "abc"]

    def test_in_operator(self):
        assert out_of('print("ell" in "hello")') == [2, 1]
        assert out_of("print(3 in [1, 2, 3])") == [2, 1]
        assert out_of('d = {"k": 1}\nprint("k" in d)\nprint("x" not in d)') == [2, 1, 2, 1]

    def test_ordering_on_strings_raises(self):
        assert exc_of('print("a" < "b")') == "TypeError"


class TestControlFlow:
    def test_elif_ladder(self):
        src = """
def f(n):
    if n < 0:
        return 1
    elif n == 0:
        return 2
    else:
        return 3
print(f(-5))
print(f(0))
print(f(5))
"""
        assert out_of(src) == [1, 1, 1, 2, 1, 3]

    def test_while_break_continue(self):
        src = """
total = 0
n = 0
while n < 10:
    n += 1
    if n % 2 == 0:
        continue
    if n > 7:
        break
    total += n
print(total)
"""
        assert out_of(src) == [1, 16]  # 1+3+5+7

    def test_for_over_string_list_range_dict(self):
        src = """
acc = []
for c in "ab":
    acc.append(c)
for x in [1, 2]:
    acc.append(x)
for i in range(2):
    acc.append(i)
for k in {"z": 1, "a": 2}:
    acc.append(k)
print(len(acc))
"""
        assert out_of(src) == [1, 8]

    def test_break_in_for_pops_iterator(self):
        src = """
found = 0
for x in [1, 2, 3]:
    if x == 2:
        found = x
        break
print(found)
"""
        assert out_of(src) == [1, 2]

    def test_dict_iteration_order_is_insertion(self):
        src = """
d = {}
d["b"] = 1
d["a"] = 2
d["c"] = 3
out = []
for k in d.keys():
    out.append(k)
print("".join(out))
"""
        assert out_of(src)[2:] == [ord(c) for c in "bac"]


class TestExceptions:
    def test_raise_and_catch(self):
        src = """
try:
    raise ValueError("nope")
except ValueError as e:
    print(1)
"""
        assert out_of(src) == [1, 1]

    def test_catch_by_base_exception(self):
        src = """
try:
    raise CustomThing("x")
except Exception:
    print(1)
"""
        assert out_of(src) == [1, 1]

    def test_uncaught_propagates(self):
        assert exc_of('raise RuntimeError("boom")') == "RuntimeError"

    def test_mismatched_handler_rethrows(self):
        src = """
try:
    raise KeyError("k")
except ValueError:
    print(1)
"""
        assert exc_of(src) == "KeyError"

    def test_nested_try(self):
        src = """
try:
    try:
        raise ValueError("inner")
    except KeyError:
        print(0)
except ValueError:
    print(1)
"""
        assert out_of(src) == [1, 1]

    def test_builtin_errors_catchable(self):
        src = """
try:
    x = [1][5]
except IndexError:
    print(1)
try:
    y = {}["missing"]
except KeyError:
    print(2)
try:
    z = 1 // 0
except ZeroDivisionError:
    print(3)
"""
        assert out_of(src) == [1, 1, 1, 2, 1, 3]

    def test_assert_raises_assertionerror(self):
        assert exc_of("assert 1 == 2") == "AssertionError"

    def test_exception_in_function_unwinds(self):
        src = """
def inner():
    raise ValueError("deep")
def outer():
    inner()
    return 1
try:
    outer()
except ValueError:
    print(1)
"""
        assert out_of(src) == [1, 1]


class TestBuiltinsAndMethods:
    def test_int_parsing(self):
        assert out_of('print(int("  42 "))\nprint(int("-7"))') == [1, 42, 1, -7]
        assert exc_of('int("4x2")') == "ValueError"

    def test_str_of_values(self):
        assert out_of("print(str(-12))")[2:] == [ord(c) for c in "-12"]
        assert out_of("print(str(True))")[2:] == [ord(c) for c in "True"]

    def test_ord_chr(self):
        assert out_of('print(ord("A"))\nprint(chr(66))') == [1, 65, 4, 1, 66]

    def test_find_variants(self):
        assert out_of('print("hello".find("ll"))') == [1, 2]
        assert out_of('print("hello".find("zz"))') == [1, -1]
        assert out_of('print("hello".find(""))') == [1, 0]

    def test_split_and_join(self):
        assert out_of('print(len("a,,b".split(",")))') == [1, 3]
        assert out_of('print("-".join(["a", "b"]))')[2:] == [ord(c) for c in "a-b"]

    def test_replace(self):
        assert out_of('print("aaa".replace("a", "bb"))')[2:] == [ord(c) for c in "bbbbbb"]

    def test_startswith_endswith(self):
        assert out_of('print("hello".startswith("he"))') == [2, 1]
        assert out_of('print("hello".endswith("lo"))') == [2, 1]

    def test_isdigit_isalpha(self):
        assert out_of('print("123".isdigit())\nprint("".isdigit())\nprint("ab".isalpha())') == [2, 1, 2, 0, 2, 1]

    def test_slices(self):
        assert out_of('print("hello"[1:3])')[2:] == [ord(c) for c in "el"]
        assert out_of('print("hello"[:2])')[2:] == [ord(c) for c in "he"]
        assert out_of('print("hello"[-2:])')[2:] == [ord(c) for c in "lo"]
        assert out_of('print(len([1,2,3][1:]))') == [1, 2]

    def test_negative_index(self):
        assert out_of('print("abc"[-1])')[2:] == [ord("c")]

    def test_list_append_pop(self):
        assert out_of("l = [1]\nl.append(2)\nprint(l.pop())\nprint(len(l))") == [1, 2, 1, 1]

    def test_dict_get(self):
        assert out_of('d = {"a": 1}\nprint(d.get("a"))\nprint(d.get("b", 9))') == [1, 1, 1, 9]

    def test_min_max_abs(self):
        assert out_of("print(min(3, 5))\nprint(max(3, 5))\nprint(abs(-3))") == [1, 3, 1, 5, 1, 3]

    def test_re_match(self):
        assert out_of('print(re_match("ab*c", "abbbc"))') == [2, 1]
        assert out_of('print(re_match("a.c", "axd"))') == [2, 0]

    def test_function_arity_error(self):
        assert exc_of("def f(a):\n    return a\nf(1, 2)") == "TypeError"

    def test_undefined_global_raises(self):
        assert exc_of("print(undefined_thing)") == "RuntimeError"


class TestSymbolicReplay:
    def test_sym_string_uses_recorded_input(self):
        result = run('s = sym_string("xx")\nprint(s)', inputs=["ab"])
        assert result.output[2:] == [ord("a"), ord("b")]

    def test_sym_string_word_list_input(self):
        result = run('s = sym_string("xx")\nprint(s)', inputs=[[104, 105]])
        assert result.output[2:] == [ord("h"), ord("i")]

    def test_sym_int_from_word_list(self):
        result = run("n = sym_int(0, 0, 9)\nprint(n)", inputs=[[7]])
        assert result.output == [1, 7]

    def test_seed_used_when_inputs_exhausted(self):
        result = run('s = sym_string("zz")\nprint(s)')
        assert result.output[2:] == [ord("z"), ord("z")]

    def test_call_function_helper(self):
        vm = HostVM(compile_source("def double(x):\n    return x * 2"))
        vm.run()
        assert vm.call_function("double", [21]) == 42
