"""Differential tests: the Clay interpreter on the LVM must agree with
the host reference VM on concrete programs (the reproduction's guarantee
that replay is faithful)."""

import pytest

from repro.chef.options import ChefConfig, InterpreterBuildOptions
from repro.interpreters.minipy.engine import MiniPyEngine

from tests.conftest import requires_clay

pytestmark = requires_clay

_PROGRAMS = {
    "arith": """
print(2 + 3 * 4)
print(-7 // 2)
print(17 % 5)
print(2 * 3 == 6)
""",
    "strings": """
s = "Hello, World"
print(s.find("World"))
print(s.lower())
print(s[0:5] + "!")
print(s.split(", ")[1])
print(s.replace("l", "L"))
print("x".join(["1", "2"]))
""",
    "collections": """
l = [3, 1]
l.append(2)
print(l.pop())
d = {"a": 1}
d["b"] = 2
print(d["a"] + d["b"])
print(len(d.keys()))
for k in d:
    print(k)
""",
    "control": """
total = 0
for i in range(1, 6):
    if i == 3:
        continue
    total += i
print(total)
n = 0
while n < 100:
    n += 7
print(n)
""",
    "functions": """
def gcd(a, b):
    while b != 0:
        t = a % b
        a = b
        b = t
    return a
print(gcd(48, 18))
def apply_twice(x):
    return x + x
print(apply_twice(21))
""",
    "exceptions": """
def risky(n):
    if n == 0:
        raise ValueError("zero")
    if n == 1:
        raise CustomError("one")
    return n
for i in range(3):
    try:
        print(risky(i))
    except ValueError:
        print(100)
    except CustomError as e:
        print(200)
""",
    "conversions": """
print(int("42") + int("-3"))
print(str(1000))
print(ord("Z"))
print(chr(97))
print(int(True))
""",
    "regex_native": """
print(re_match("he.*o", "hello"))
print(re_match("a*b", "aaab"))
print(re_match("a*b", "aaac"))
""",
    "truthiness": """
if "":
    print(1)
else:
    print(0)
if [0]:
    print(1)
if {}:
    print(1)
else:
    print(0)
if None:
    print(1)
else:
    print(0)
""",
}


@pytest.mark.parametrize("name", sorted(_PROGRAMS))
@pytest.mark.parametrize("build", ["vanilla", "full"])
def test_guest_matches_host(name, build):
    options = (
        InterpreterBuildOptions.full()
        if build == "full"
        else InterpreterBuildOptions.vanilla()
    )
    engine = MiniPyEngine(
        _PROGRAMS[name],
        ChefConfig(time_budget=30.0, interpreter_options=options),
    )
    result = engine.run()
    assert len(result.suite.cases) == 1
    case = result.suite.cases[0]
    assert case.status == "halted", (case.status, case.output)
    host = engine.replay(case)
    assert host.exception is None, host.exception
    assert case.output == host.output
    assert case.exception_type is None


def test_uncaught_exception_agrees():
    source = 'x = [1, 2]\nprint(x[9])'
    engine = MiniPyEngine(source, ChefConfig(time_budget=30.0))
    result = engine.run()
    case = result.suite.cases[0]
    host = engine.replay(case)
    assert case.exception_type is not None
    assert host.exception is not None
    assert case.exception_type == host.exception.type_id
    assert engine.exception_name(case.exception_type) == "IndexError"
