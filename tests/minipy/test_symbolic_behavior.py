"""Integration tests of the paper's core phenomena on MiniPy (§2.3, §4.2).

These pin down the *mechanism* claims: low-level vs high-level path
counts for string operations, the effect of each interpreter build, and
exception-path discovery.
"""

import pytest

from repro.chef.options import ChefConfig, InterpreterBuildOptions
from repro.interpreters.minipy.engine import MiniPyEngine

from tests.conftest import requires_clay

pytestmark = requires_clay

_FIND_PROGRAM = '''
email = sym_string("\\x00\\x00\\x00\\x00\\x00")
pos = email.find("@")
if pos < 3:
    print(0)
else:
    print(1)
'''


def _run(source, options, strategy="cupa-path", budget=6.0, seed=0):
    engine = MiniPyEngine(
        source,
        ChefConfig(
            strategy=strategy, seed=seed, time_budget=budget,
            interpreter_options=options,
        ),
    )
    return engine, engine.run()


class TestFigure2And3:
    def test_two_high_level_paths_for_find(self):
        """validateEmail has exactly two high-level paths (Fig. 2)."""
        _eng, result = _run(_FIND_PROGRAM, InterpreterBuildOptions.full())
        assert result.hl_paths == 2
        outputs = {tuple(c.output) for c in result.hl_test_cases}
        assert outputs == {(1, 0), (1, 1)}

    def test_optimized_build_collapses_low_level_paths(self):
        """Branch-free find: one low-level path per high-level path."""
        _eng, optimized = _run(_FIND_PROGRAM, InterpreterBuildOptions.full())
        _eng, vanilla = _run(_FIND_PROGRAM, InterpreterBuildOptions.vanilla())
        assert optimized.ll_paths == 2
        # Vanilla find forks per character inside a single HLPC (Fig. 3).
        assert vanilla.ll_paths > optimized.ll_paths
        assert vanilla.hl_paths == 2

    def test_generated_email_actually_contains_at(self):
        engine, result = _run(_FIND_PROGRAM, InterpreterBuildOptions.full())
        accepted = [c for c in result.hl_test_cases if c.output == [1, 1]]
        assert accepted
        assert "@" in accepted[0].input_string("b0")
        assert accepted[0].input_string("b0").find("@") >= 3


class TestInterpreterBuilds:
    def test_symbolic_dict_key_explodes_without_hash_neutralization(self):
        """A symbolic int key makes the bucket index symbolic (§4.2)."""
        source = '''
d = {}
d[3] = 30
k = sym_int(0, 0, 7)
d[k] = 1
print(len(d))
'''
        _eng, vanilla = _run(
            source, InterpreterBuildOptions(symbolic_pointer_avoidance=True)
        )
        _eng, neutral = _run(
            source,
            InterpreterBuildOptions(
                symbolic_pointer_avoidance=True, hash_neutralization=True
            ),
        )
        # With a neutralised hash every key lands in bucket 0: fewer
        # low-level paths than the bucket-enumerating vanilla hash.
        assert neutral.ll_paths < vanilla.ll_paths

    def test_interning_makes_boxing_fork(self):
        """Vanilla small-int interning turns int boxing into a symbolic
        table lookup; the optimized build boxes without forking."""
        source = '''
n = sym_int(0, 0, 200)
m = n + 1
print(1)
'''
        _eng, vanilla = _run(source, InterpreterBuildOptions.vanilla())
        _eng, optimized = _run(
            source, InterpreterBuildOptions(symbolic_pointer_avoidance=True)
        )
        assert optimized.ll_paths <= vanilla.ll_paths
        assert optimized.ll_paths == 1

    def test_all_builds_agree_on_hl_semantics(self):
        """Build options must never change the observable language."""
        source = '''
s = sym_string("ab")
if s.startswith("x"):
    print(1)
else:
    print(0)
'''
        outputs = []
        for level in range(4):
            _eng, result = _run(
                source, InterpreterBuildOptions.cumulative(level), budget=4.0
            )
            outputs.append({tuple(c.output) for c in result.hl_test_cases})
        assert all(o == {(1, 0), (1, 1)} for o in outputs), outputs


class TestExceptionPaths:
    def test_exception_and_normal_paths_both_found(self):
        source = '''
data = sym_string("\\x00\\x00")
value = int(data)
print(value)
'''
        engine, result = _run(source, InterpreterBuildOptions.full())
        names = {
            engine.exception_name(t) for t in result.suite.exceptions()
        }
        assert "ValueError" in names  # non-digit input
        clean = [c for c in result.hl_test_cases if c.exception_type is None]
        assert clean, "a digit-only input must be synthesised"
        digits = clean[0].input_string("b0")
        assert digits.strip().lstrip("-").isdigit()

    def test_caught_exceptions_do_not_escape(self):
        source = '''
data = sym_string("\\x00")
try:
    v = int(data)
    print(1)
except ValueError:
    print(0)
'''
        _eng, result = _run(source, InterpreterBuildOptions.full())
        assert not result.suite.exceptions()
        outputs = {tuple(c.output) for c in result.hl_test_cases}
        assert (1, 0) in outputs and (1, 1) in outputs


class TestNativeExtension:
    def test_symbolic_execution_reaches_into_native_code(self):
        """§6.1: the regex-lite module is 'native' Clay code below the
        HLPC level; Chef still synthesises matching inputs through it."""
        source = '''
s = sym_string("\\x00\\x00\\x00")
if re_match("a.c", s):
    print(1)
else:
    print(0)
'''
        _eng, result = _run(source, InterpreterBuildOptions.full(), budget=8.0)
        matching = [c for c in result.hl_test_cases if c.output == [1, 1]]
        assert matching
        text = matching[0].input_string("b0")
        assert text[0] == "a" and text[2] == "c"
