"""MiniPy frontend/compiler unit tests."""

import pytest

from repro.errors import MiniLangCompileError, MiniLangSyntaxError
from repro.interpreters.minipy.bytecode import FIRST_CUSTOM_EXCEPTION, Op
from repro.interpreters.minipy.compiler import compile_source
from repro.interpreters.minipy.frontend import parse_source, tokenize


class TestLexer:
    def test_indent_dedent(self):
        toks = tokenize("if a:\n    b = 1\nc = 2\n")
        kinds = [t.kind for t in toks]
        assert "indent" in kinds and "dedent" in kinds

    def test_implicit_continuation_in_brackets(self):
        toks = tokenize("x = [1,\n     2]\n")
        kinds = [t.kind for t in toks]
        assert kinds.count("newline") == 1

    def test_string_escapes(self):
        toks = tokenize(r's = "a\n\t\x41"')
        values = [t.value for t in toks if t.kind == "str"]
        assert values == ["a\n\tA"]

    def test_adjacent_strings_concatenate_in_parser(self):
        module = parse_source('s = "ab" "cd"\n')
        assert module.body[0].value.value == "abcd"

    def test_tab_indentation_rejected(self):
        with pytest.raises(MiniLangSyntaxError):
            tokenize("if a:\n\tb = 1\n")

    def test_inconsistent_dedent_rejected(self):
        with pytest.raises(MiniLangSyntaxError):
            tokenize("if a:\n    b = 1\n  c = 2\n")


class TestCompiler:
    def test_locals_vs_globals(self):
        module = compile_source("""
g = 1
def f(a):
    local_var = a + g
    return local_var
""")
        func = module.code_by_name("f")
        assert func.argcount == 1
        assert "local_var" in func.varnames
        assert "g" in module.global_names

    def test_builtins_preloaded(self):
        module = compile_source("print(len([1]))")
        kinds = {module.global_inits[s][0] for s in module.global_inits}
        assert "builtin" in kinds

    def test_custom_exception_ids_assigned(self):
        module = compile_source('raise WeirdError("x")')
        assert module.exception_ids["WeirdError"] >= FIRST_CUSTOM_EXCEPTION
        assert module.exception_name(module.exception_ids["WeirdError"]) == "WeirdError"

    def test_builtin_exception_ids_stable(self):
        module = compile_source('raise ValueError("x")')
        assert module.exception_ids["ValueError"] == 2

    def test_jump_targets_in_range(self):
        module = compile_source("""
def f(x):
    while x > 0:
        if x == 5:
            break
        x -= 1
    return x
""")
        for code in module.codes:
            n = len(code.instrs)
            for op, arg in code.instrs:
                if op in (Op.JUMP, Op.POP_JUMP_IF_FALSE, Op.POP_JUMP_IF_TRUE,
                          Op.FOR_ITER, Op.SETUP_EXCEPT):
                    assert 0 <= arg <= n

    def test_coverable_lines_recorded(self):
        module = compile_source("x = 1\n\n# comment\ny = 2\n")
        assert module.coverable_lines == [1, 4]

    def test_const_pool_deduplicates(self):
        module = compile_source('a = "s"\nb = "s"\nc = 1\nd = 1')
        main = module.codes[0]
        assert main.consts.count("s") == 1
        assert main.consts.count(1) == 1

    def test_bool_and_int_consts_distinct(self):
        module = compile_source("a = True\nb = 1")
        main = module.codes[0]
        assert True in main.consts and 1 in main.consts
        assert len([c for c in main.consts if c == 1]) == 2  # True and 1

    def test_disassemble(self):
        module = compile_source("x = 1")
        assert "LOAD_CONST" in module.codes[0].disassemble()


class TestCompileErrors:
    def test_nested_def_rejected(self):
        with pytest.raises(MiniLangCompileError):
            compile_source("def f():\n    def g():\n        pass\n")

    def test_return_at_module_level_rejected(self):
        with pytest.raises(MiniLangCompileError):
            compile_source("return 1")

    def test_break_outside_loop(self):
        with pytest.raises(MiniLangCompileError):
            compile_source("break")

    def test_unknown_method(self):
        with pytest.raises(MiniLangCompileError):
            compile_source('"s".frobnicate()')

    def test_duplicate_parameter(self):
        with pytest.raises(MiniLangCompileError):
            compile_source("def f(a, a):\n    pass\n")

    def test_bad_assignment_target(self):
        with pytest.raises(MiniLangSyntaxError):
            compile_source("f() = 3")

    def test_try_without_except(self):
        with pytest.raises(MiniLangSyntaxError):
            compile_source("try:\n    pass\n")

    def test_augmented_subscript_rejected(self):
        with pytest.raises(MiniLangSyntaxError):
            compile_source("d[0] += 1")
