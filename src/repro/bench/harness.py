"""Experiment runner shared by all benchmarks.

The four configurations of §6.3 are reproduced verbatim:

- **Baseline**          random state selection, unmodified interpreter
- **CUPA Only**         CUPA selection, unmodified interpreter
- **Optimizations Only** random selection, optimized interpreter
- **CUPA + Optimizations** both (the "aggregate")

Budgets are wall-clock seconds per run, scaled down from the paper's 30
minutes; set ``REPRO_BENCH_BUDGET`` / ``REPRO_BENCH_SEEDS`` /
``REPRO_BENCH_FULL`` to trade time for fidelity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chef.options import ChefConfig, InterpreterBuildOptions
from repro.symtest import SymbolicTestRunner
from repro.targets import TargetPackage

#: name -> (strategy for Fig. 8, interpreter options)
PAPER_CONFIGS: Dict[str, Tuple[str, InterpreterBuildOptions]] = {
    "CUPA + Optimizations": ("cupa-path", InterpreterBuildOptions.full()),
    "Optimizations Only": ("random", InterpreterBuildOptions.full()),
    "CUPA Only": ("cupa-path", InterpreterBuildOptions.vanilla()),
    "Baseline": ("random", InterpreterBuildOptions.vanilla()),
}


@dataclass
class BenchSettings:
    """Environment-tunable benchmark knobs."""

    budget: float = float(os.environ.get("REPRO_BENCH_BUDGET", "1.5"))
    seeds: int = int(os.environ.get("REPRO_BENCH_SEEDS", "1"))
    full: bool = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    path_instr_budget: int = int(os.environ.get("REPRO_BENCH_PATH_BUDGET", "60000"))


@dataclass
class PackageRun:
    """Summary of one (package, config, seed) run."""

    package: str
    language: str
    config: str
    seed: int
    hl_paths: int
    ll_paths: int
    coverage: float            # 0..1 over coverable lines
    exception_names: List[str] = field(default_factory=list)
    undocumented: List[str] = field(default_factory=list)
    hangs: int = 0
    crashes: int = 0
    duration: float = 0.0
    timeline: List[Tuple[float, int, int]] = field(default_factory=list)
    #: backend counters (queries, incremental_hits, component_cache_hits,
    #: atoms_sliced, search_steps, ...) for solver-regression tracking.
    solver_stats: Dict[str, int] = field(default_factory=dict)


def run_package(
    package: TargetPackage,
    strategy: str,
    options: InterpreterBuildOptions,
    budget: float,
    seed: int,
    config_name: str = "",
    path_instr_budget: int = 60_000,
    measure_coverage: bool = True,
) -> PackageRun:
    """Run one symbolic test under one configuration and summarise it."""
    # Resolve the package's guest language through the plugin registry
    # up front: a typo'd / unregistered language fails here with the
    # full list of known languages instead of deep inside the runner.
    language = package.guest_language()
    config = ChefConfig(
        strategy=strategy,
        seed=seed,
        time_budget=budget,
        interpreter_options=options,
        path_instr_budget=path_instr_budget,
    )
    runner = SymbolicTestRunner(package.source, package.symbolic_test(), config)
    result = runner.run_symbolic()

    exception_names: List[str] = []
    undocumented: List[str] = []
    for type_id in sorted(result.suite.exceptions()):
        name = runner.engine.exception_name(type_id)
        exception_names.append(name)
        if not package.is_documented(name):
            undocumented.append(name)

    coverage = runner.line_coverage(result) if measure_coverage else 0.0
    return PackageRun(
        package=package.name,
        language=language.name,
        config=config_name or strategy,
        seed=seed,
        hl_paths=result.hl_paths,
        ll_paths=result.ll_paths,
        coverage=coverage,
        exception_names=exception_names,
        undocumented=undocumented,
        hangs=len(result.suite.hangs()),
        crashes=len(result.suite.crashes()),
        duration=result.duration,
        timeline=list(result.timeline),
        solver_stats=dict(result.solver_stats),
    )


def run_matrix(
    packages: List[TargetPackage],
    configs: Dict[str, Tuple[str, InterpreterBuildOptions]],
    settings: Optional[BenchSettings] = None,
    strategy_override: Optional[str] = None,
) -> List[PackageRun]:
    """Run every (package, config, seed) combination.

    ``strategy_override`` forces a strategy for *CUPA* configs (Fig. 9
    uses coverage-optimized CUPA where Fig. 8 uses path-optimized).
    """
    settings = settings or BenchSettings()
    runs: List[PackageRun] = []
    for package in packages:
        for config_name, (strategy, options) in configs.items():
            actual = strategy
            if strategy_override and strategy != "random":
                actual = strategy_override
            for seed in range(settings.seeds):
                runs.append(
                    run_package(
                        package,
                        actual,
                        options,
                        settings.budget,
                        seed,
                        config_name=config_name,
                        path_instr_budget=settings.path_instr_budget,
                    )
                )
    return runs


def mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


#: solver counters benchmarks report (incremental-solving visibility).
SOLVER_STAT_KEYS = (
    "queries",
    "search_steps",
    "incremental_hits",
    "component_cache_hits",
    "atoms_sliced",
    "cex_reuses",
)


def sum_solver_stats(runs: List[PackageRun], keys=SOLVER_STAT_KEYS) -> Dict[str, int]:
    """Total solver counters over a set of runs (regressions show here)."""
    totals: Dict[str, int] = {k: 0 for k in keys}
    for run in runs:
        for key in keys:
            totals[key] += int(run.solver_stats.get(key, 0))
    return totals


def aggregate(runs: List[PackageRun], package: str, config: str) -> Dict[str, float]:
    """Mean metrics over seeds for one (package, config) cell."""
    cell = [r for r in runs if r.package == package and r.config == config]
    return {
        "hl": mean([float(r.hl_paths) for r in cell]),
        "ll": mean([float(r.ll_paths) for r in cell]),
        "coverage": mean([r.coverage for r in cell]),
        "hangs": mean([float(r.hangs) for r in cell]),
    }
