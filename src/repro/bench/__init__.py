"""Benchmark harness regenerating every table and figure of the paper."""

from repro.bench.harness import (
    PAPER_CONFIGS,
    BenchSettings,
    PackageRun,
    run_package,
    run_matrix,
)
from repro.bench.effort import effort_table
from repro.bench import reporting

__all__ = [
    "BenchSettings",
    "PAPER_CONFIGS",
    "PackageRun",
    "effort_table",
    "reporting",
    "run_matrix",
    "run_package",
]
