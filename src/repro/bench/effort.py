"""Table 2: porting-effort accounting from the Clay sources.

The Clay interpreter sources carry ``//! chef:hlpc``, ``//! chef:opt`` and
``//! chef:native`` markers on the lines added for Chef; this module
counts them, mirroring how the paper separates HLPC instrumentation,
symbolic-execution optimizations and native extensions from the
interpreter core.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List

from repro.interpreters.minipy.engine import MINIPY_CLAY_FILES, _CLAY_DIR
from repro.interpreters.minilua.engine import MINILUA_CLAY_FILES


@dataclass
class EffortRow:
    """One interpreter's Table 2 column."""

    language: str
    core_loc: int
    hlpc_loc: int
    optimization_loc: int
    native_loc: int
    test_library_loc: int

    def instrumented_fraction(self, loc: int) -> float:
        return 100.0 * loc / self.core_loc if self.core_loc else 0.0


def _count_file(path: pathlib.Path) -> Dict[str, int]:
    counts = {"core": 0, "hlpc": 0, "opt": 0, "native": 0}
    for line in path.read_text().split("\n"):
        stripped = line.strip()
        if not stripped or stripped.startswith("//") and "//!" not in stripped:
            continue
        if "//! chef:hlpc" in line:
            counts["hlpc"] += 1
        elif "//! chef:opt" in line:
            counts["opt"] += 1
        elif "//! chef:native" in line:
            counts["native"] += 1
        elif stripped:
            counts["core"] += 1
    return counts


def _count_files(files) -> Dict[str, int]:
    totals = {"core": 0, "hlpc": 0, "opt": 0, "native": 0}
    for name in files:
        counts = _count_file(_CLAY_DIR / name)
        for key, value in counts.items():
            totals[key] += value
    return totals


def _symtest_loc() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent / "symtest"
    total = 0
    for path in root.glob("*.py"):
        for line in path.read_text().split("\n"):
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                total += 1
    return total


def effort_table() -> List[EffortRow]:
    """Table 2 rows for the two interpreters."""
    rows = []
    for language, files in (
        ("Python", MINIPY_CLAY_FILES),
        ("Lua", MINILUA_CLAY_FILES),
    ):
        counts = _count_files(files)
        rows.append(
            EffortRow(
                language=language,
                core_loc=counts["core"],
                hlpc_loc=counts["hlpc"],
                optimization_loc=counts["opt"],
                native_loc=counts["native"],
                test_library_loc=_symtest_loc(),
            )
        )
    return rows
