"""Shared Clay guest generators for benchmarks and tests.

The parallel determinism tests and the speedup benchmark must measure the
*same* workload — CI asserts path-set equality on what the benchmark
times — so the generators live here once instead of being copy-pasted
into each file.
"""

from __future__ import annotations


def branchy_source(n: int) -> str:
    """One independent branch per byte: ``2**n`` feasible paths.

    Each byte is its own constraint component, which is what lets the
    model-cache subset/superset reuse (and its cross-worker merging)
    shine on this workload.
    """
    lines = [
        "const BUF = 700;",
        "fn main() {",
        f"    make_symbolic(BUF, {n}, 0, 255);",
        "    var acc = 0;",
    ]
    for i in range(n):
        lines.append(f"    var c{i} = load(BUF + {i});")
        lines.append(f"    if (c{i} == {ord('a') + i}) {{ acc = acc + {1 << i}; }}")
    lines.append("    out(acc);")
    lines.append("    end_symbolic();")
    lines.append("}")
    return "\n".join(lines)


def traced_source(n: int) -> str:
    """Branchy guest that also reports HLPCs through log_pc (Chef mode)."""
    lines = [
        "const BUF = 700;",
        "fn main() {",
        f"    make_symbolic(BUF, {n}, 0, 255);",
        "    log_pc(100, 1);",
        "    var acc = 0;",
    ]
    for i in range(n):
        lines.append(f"    var c{i} = load(BUF + {i});")
        lines.append(
            f"    if (c{i} == {ord('a') + i}) {{ log_pc({200 + i}, 2); "
            f"acc = acc + {1 << i}; }} else {{ log_pc({300 + i}, 2); }}"
        )
    lines.append("    log_pc(400, 3);")
    lines.append("    out(acc);")
    lines.append("    end_symbolic();")
    lines.append("}")
    return "\n".join(lines)


def deep_traced_source(n: int, prelude: int = 64) -> str:
    """Traced branchy guest with a long pre-branch HLPC prelude.

    Real interpreters execute a long stretch of high-level instructions
    (startup, program load, dispatch warm-up) before the first symbolic
    branch; every path's trace carries that prefix.  This models it with
    ``prelude`` extra ``log_pc`` reports up front — the workload where
    O(path-depth) full-trace replay per pending state is visibly worse
    than O(since-restore-suffix) grafting, since the prefix is shared by
    all ``2**n`` paths but replayed per state by the naive scheme.
    """
    lines = [
        "const BUF = 700;",
        "fn main() {",
        f"    make_symbolic(BUF, {n}, 0, 255);",
    ]
    for i in range(prelude):
        lines.append(f"    log_pc({1000 + i}, 1);")
    lines.append("    var acc = 0;")
    for i in range(n):
        lines.append(f"    var c{i} = load(BUF + {i});")
        lines.append(
            f"    if (c{i} == {ord('a') + i}) {{ log_pc({200 + i}, 2); "
            f"acc = acc + {1 << i}; }} else {{ log_pc({300 + i}, 2); }}"
        )
    lines.append("    log_pc(400, 3);")
    lines.append("    out(acc);")
    lines.append("    end_symbolic();")
    lines.append("}")
    return "\n".join(lines)


__all__ = ["branchy_source", "deep_traced_source", "traced_source"]
