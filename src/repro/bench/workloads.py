"""Shared Clay guest generators for benchmarks and tests.

The parallel determinism tests and the speedup benchmark must measure the
*same* workload — CI asserts path-set equality on what the benchmark
times — so the generators live here once instead of being copy-pasted
into each file.
"""

from __future__ import annotations


def branchy_source(n: int) -> str:
    """One independent branch per byte: ``2**n`` feasible paths.

    Each byte is its own constraint component, which is what lets the
    model-cache subset/superset reuse (and its cross-worker merging)
    shine on this workload.
    """
    lines = [
        "const BUF = 700;",
        "fn main() {",
        f"    make_symbolic(BUF, {n}, 0, 255);",
        "    var acc = 0;",
    ]
    for i in range(n):
        lines.append(f"    var c{i} = load(BUF + {i});")
        lines.append(f"    if (c{i} == {ord('a') + i}) {{ acc = acc + {1 << i}; }}")
    lines.append("    out(acc);")
    lines.append("    end_symbolic();")
    lines.append("}")
    return "\n".join(lines)


def traced_source(n: int) -> str:
    """Branchy guest that also reports HLPCs through log_pc (Chef mode)."""
    lines = [
        "const BUF = 700;",
        "fn main() {",
        f"    make_symbolic(BUF, {n}, 0, 255);",
        "    log_pc(100, 1);",
        "    var acc = 0;",
    ]
    for i in range(n):
        lines.append(f"    var c{i} = load(BUF + {i});")
        lines.append(
            f"    if (c{i} == {ord('a') + i}) {{ log_pc({200 + i}, 2); "
            f"acc = acc + {1 << i}; }} else {{ log_pc({300 + i}, 2); }}"
        )
    lines.append("    log_pc(400, 3);")
    lines.append("    out(acc);")
    lines.append("    end_symbolic();")
    lines.append("}")
    return "\n".join(lines)


__all__ = ["branchy_source", "traced_source"]
