"""Paper-shaped text rendering of benchmark results."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import SOLVER_STAT_KEYS, PackageRun, aggregate, sum_solver_stats


def render_table(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    """Plain fixed-width table."""
    cells = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def fig8_rows(runs: List[PackageRun], packages: List[str], configs: List[str]) -> List[List[object]]:
    """Path-count ratios relative to Baseline (the paper plots P/P_base)."""
    rows = []
    for package in packages:
        base = max(aggregate(runs, package, "Baseline")["hl"], 1e-9)
        row: List[object] = [package]
        for config in configs:
            value = aggregate(runs, package, config)["hl"]
            row.append(f"{value / base:8.2f}x")
        row.append(f"{base:8.1f}")
        rows.append(row)
    return rows


def fig9_rows(runs: List[PackageRun], packages: List[str], configs: List[str]) -> List[List[object]]:
    rows = []
    for package in packages:
        row: List[object] = [package]
        for config in configs:
            value = aggregate(runs, package, config)["coverage"]
            row.append(f"{100.0 * value:6.1f}%")
        rows.append(row)
    return rows


def fig10_series(
    runs: List[PackageRun], language: str, configs: List[str], buckets: int = 6
) -> Dict[str, List[float]]:
    """HL/LL path ratio over time, averaged across packages (per config).

    Time is normalised to the run budget and split into ``buckets``
    intervals, mirroring the paper's per-minute averages.
    """
    series: Dict[str, List[float]] = {}
    for config in configs:
        sums = [0.0] * buckets
        counts = [0] * buckets
        for run in runs:
            if run.language != language or run.config != config:
                continue
            duration = max(run.duration, 1e-9)
            for t, hl, ll in run.timeline:
                index = min(int(buckets * t / duration), buckets - 1)
                if ll > 0:
                    sums[index] += hl / ll
                    counts[index] += 1
        series[config] = [
            (sums[i] / counts[i] if counts[i] else 0.0) for i in range(buckets)
        ]
    return series


def fig11_rows(
    per_build_paths: Dict[str, Dict[int, float]], build_labels: Dict[int, str]
) -> List[List[object]]:
    """Paths per cumulative build, relative to the full build (=100%)."""
    rows = []
    for package, by_level in per_build_paths.items():
        full = max(by_level.get(3, 0.0), 1e-9)
        row: List[object] = [package]
        for level in range(4):
            row.append(f"{100.0 * by_level.get(level, 0.0) / full:7.1f}%")
        rows.append(row)
    return rows


def solver_stats_rows(
    runs: List[PackageRun], keys: Sequence[str] = SOLVER_STAT_KEYS
) -> List[List[object]]:
    """Per-config totals of the incremental-solving counters.

    One row per configuration appearing in ``runs`` (plus a Total row),
    making solver-time regressions — more search steps, less reuse —
    visible in every benchmark report.
    """
    configs: List[str] = []
    for run in runs:
        if run.config not in configs:
            configs.append(run.config)
    rows: List[List[object]] = []
    for config in configs:
        totals = sum_solver_stats([r for r in runs if r.config == config], keys)
        rows.append([config] + [totals[k] for k in keys])
    if len(configs) > 1:
        totals = sum_solver_stats(runs, keys)
        rows.append(["Total"] + [totals[k] for k in keys])
    return rows


def fig12_rows(
    overheads: Dict[int, Dict[int, float]], build_labels: Dict[int, str]
) -> List[List[object]]:
    """Chef/NICE per-path-time overhead per frame count and build level."""
    rows = []
    for frames in sorted(overheads):
        row: List[object] = [frames]
        for level in sorted(build_labels):
            value = overheads[frames].get(level)
            row.append(f"{value:9.1f}x" if value is not None else "      n/a")
        rows.append(row)
    return rows
