"""Machine-readable perf trajectory: ``BENCH_pr4.json`` at the repo root.

Benchmarks call :func:`update_bench_json` with a section name and a
payload; the file accumulates sections across benchmark runs
(read-modify-write), so one pytest invocation of the benchmark suite
leaves a single JSON document tracking solver and parallel-exploration
counters per PR.  The schema is documented in ``docs/architecture.md``.

Set ``REPRO_BENCH_JSON`` to redirect the output — scaled-down smoke
runs (CI, tight local budgets) should point it somewhere scratch so
they don't clobber the committed full-workload numbers.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

SCHEMA = "repro-bench/pr4"

#: Repo root (this file lives at src/repro/bench/perfjson.py).
_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, os.pardir)
)

DEFAULT_PATH = os.path.join(_REPO_ROOT, "BENCH_pr4.json")


def update_bench_json(section: str, payload: Dict, path: Optional[str] = None) -> str:
    """Merge ``payload`` under ``section`` in the bench JSON; returns path.

    Unknown or corrupt existing content is replaced rather than crashing
    the benchmark that reports into it.
    """
    target = path or os.environ.get("REPRO_BENCH_JSON") or DEFAULT_PATH
    document: Dict = {}
    try:
        with open(target, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
            document = existing
    except (OSError, ValueError):
        pass
    document["schema"] = SCHEMA
    document["cpu_count"] = os.cpu_count()
    sections = document.setdefault("sections", {})
    sections[section] = payload
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


__all__ = ["DEFAULT_PATH", "SCHEMA", "update_bench_json"]
