"""Machine-readable perf trajectory: ``BENCH_pr10.json`` at the repo root.

Benchmarks call :func:`update_bench_json` with a section name and a
payload; the file accumulates sections across benchmark runs
(read-modify-write), so one pytest invocation of the benchmark suite
leaves a single JSON document tracking solver and parallel-exploration
counters per PR.  The schema is documented in ``docs/architecture.md``.

The envelope carries a ``meta`` block (:func:`run_metadata`: git sha,
python version, UTC timestamp, host core count) so a committed number
can always be traced back to the tree and machine that produced it.

Parallel wall-clock ratios go through :func:`speedup_summary`, which
reports ``wall_time_s`` per worker count and labels each ratio —
sub-1× is ``"overhead-bound"``, not a "0.12× speedup": on hosts whose
cores can't actually run the workers concurrently, the measurement is
IPC + snapshot-codec overhead, and calling it a speedup misled every
reader of the pr4-era files.  :func:`phase_totals` turns the span
histograms of a traced run into a per-phase time breakdown (ship /
merge / classify / worker compute), so the bench file says *where* a
wall-clock number went, not just what it was.

Set ``REPRO_BENCH_JSON`` to redirect the output — scaled-down smoke
runs (CI, tight local budgets) should point it somewhere scratch so
they don't clobber the committed full-workload numbers.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Dict, Optional

SCHEMA = "repro-bench/pr10"

#: Repo root (this file lives at src/repro/bench/perfjson.py).
_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, os.pardir)
)

DEFAULT_PATH = os.path.join(_REPO_ROOT, "BENCH_pr10.json")


def run_metadata() -> Dict:
    """Provenance of a bench run: git sha, python, timestamp, cores."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "git_sha": sha,
        "python": platform.python_version(),
        "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count(),
    }


def speedup_summary(serial_wall_s: float, parallel_wall_s: Dict[int, float]) -> Dict:
    """Honest wall-clock comparison across worker counts.

    ``parallel_wall_s`` maps worker count → wall seconds.  Each entry
    reports the serial/parallel ratio and a label: ``"speedup"`` above
    1×, ``"overhead-bound"`` at or below — a sharded run that loses to
    the serial loop is dominated by snapshot/IPC cost, and should be
    read next to ``cpu_count`` (fewer cores than workers can't show a
    real speedup at all).
    """
    cpu_count = os.cpu_count() or 1
    runs = []
    for workers in sorted(parallel_wall_s):
        wall = parallel_wall_s[workers]
        ratio = serial_wall_s / wall if wall else 0.0
        runs.append(
            {
                "workers": workers,
                "wall_time_s": round(wall, 4),
                "ratio_vs_serial": round(ratio, 3),
                "label": "speedup" if ratio > 1.0 else "overhead-bound",
                "cores_limited": cpu_count < workers,
            }
        )
    return {
        "serial_wall_time_s": round(serial_wall_s, 4),
        "cpu_count": cpu_count,
        "runs": runs,
    }


def phase_totals(metrics: Dict) -> Dict:
    """Per-phase time breakdown from a merged metrics snapshot.

    Span histograms land in the registry as ``span.<name>`` dicts with
    ``count``/``sum``; this flattens them to ``{name: {count,
    total_s}}`` so the bench JSON can report where the wall-clock of a
    traced run actually went (snapshot shipping vs merge vs
    classification vs in-worker compute).  Pass the coordinator-side
    snapshot and the merged worker snapshot separately — their lanes
    overlap in time, so their totals must not be added together.
    """
    out: Dict = {}
    for name, value in metrics.items():
        if name.startswith("span.") and isinstance(value, dict):
            out[name[len("span."):]] = {
                "count": value.get("count", 0),
                "total_s": round(value.get("sum", 0.0), 4),
            }
    return out


def update_bench_json(section: str, payload: Dict, path: Optional[str] = None) -> str:
    """Merge ``payload`` under ``section`` in the bench JSON; returns path.

    Unknown or corrupt existing content is replaced rather than crashing
    the benchmark that reports into it.  ``meta`` is restamped on every
    write, so it describes the latest run that touched the file.
    """
    target = path or os.environ.get("REPRO_BENCH_JSON") or DEFAULT_PATH
    document: Dict = {}
    try:
        with open(target, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
            document = existing
    except (OSError, ValueError):
        pass
    document["schema"] = SCHEMA
    document["meta"] = run_metadata()
    document.pop("cpu_count", None)  # pr4 field, now inside meta
    sections = document.setdefault("sections", {})
    sections[section] = payload
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


__all__ = [
    "DEFAULT_PATH",
    "SCHEMA",
    "phase_totals",
    "run_metadata",
    "speedup_summary",
    "update_bench_json",
]
