"""MiniLua engine facade (mirrors the MiniPy one)."""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.chef.engine import Chef, RunResult
from repro.chef.options import ChefConfig
from repro.chef.testcase import TestCase, TestSuite
from repro.interpreters.minilua.bytecode import LUA_ERROR_NAMES, LuaModule
from repro.interpreters.minilua.compiler import compile_lua
from repro.interpreters.minilua.hostvm import LuaHostVM, LuaRunResult
from repro.interpreters.minipy.engine import compiled_interpreter
from repro.interpreters.minipy.image import build_image
from repro.lowlevel.program import Program
from repro.solver.backend import SolverBackend

#: translation units of the Lua interpreter (shared runtime + Lua loop).
MINILUA_CLAY_FILES = (
    "rt_core.clay",
    "rt_string.clay",
    "rt_list.clay",
    "rt_dict.clay",
    "minilua_interp.clay",
)


class _LuaImageModule:
    """Adapter giving LuaModule the field names build_image expects."""

    def __init__(self, module: LuaModule):
        self.codes = module.codes
        self.main_code = module.main_code
        self.global_names = module.global_names
        self.global_inits = module.global_inits


class MiniLuaEngine:
    """A Chef-generated symbolic execution engine for MiniLua."""

    def __init__(
        self,
        source: str,
        config: Optional[ChefConfig] = None,
        solver: Optional[SolverBackend] = None,
    ):
        self.source = source
        self.config = config if config is not None else ChefConfig()
        self.solver = solver
        self.module: LuaModule = compile_lua(source)
        self._clay = compiled_interpreter(MINILUA_CLAY_FILES)

    def build_program(self) -> Program:
        program = Program(entry="main")
        for name in self._clay.program.functions:
            program.add_function(self._clay.program.functions[name])
        program.static_data = dict(self._clay.program.static_data)
        program.data_end = self._clay.program.data_end
        program.static_data.update(build_image(_LuaImageModule(self.module)))
        for name, value in self.config.interpreter_options.as_flag_words().items():
            program.static_data[self._clay.symbols[name]] = value
        program.finalize()
        return program

    def make_chef(self) -> Chef:
        return Chef(self.build_program(), self.config, solver=self.solver)

    def run(self) -> RunResult:
        return self.make_chef().run()

    @staticmethod
    def ordered_inputs(case: TestCase) -> List[List[int]]:
        keys = sorted(case.inputs, key=lambda k: int(k[1:]))
        return [case.inputs[k] for k in keys]

    def replay(self, case: TestCase) -> LuaRunResult:
        vm = LuaHostVM(self.module, symbolic_inputs=self.ordered_inputs(case))
        return vm.run()

    def coverage(self, suite: TestSuite, replay_all: bool = False) -> Tuple[Set[int], int]:
        covered: Set[int] = set()
        cases = suite.cases if replay_all else suite.high_level_tests()
        for case in cases:
            result = self.replay(case)
            covered |= result.covered_lines
        coverable = set(self.module.coverable_lines)
        return covered & coverable, len(coverable)

    def exception_name(self, type_id: int) -> str:
        return LUA_ERROR_NAMES.get(type_id, f"<lua-error:{type_id}>")
