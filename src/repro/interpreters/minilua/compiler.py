"""MiniLua source → bytecode compiler."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import MiniLangCompileError
from repro.interpreters.minilua import frontend as F
from repro.interpreters.minilua.bytecode import (
    LBin,
    LOp,
    LUn,
    LUA_BUILTINS,
    LuaCode,
    LuaModule,
)

_BIN_IDS = {
    "+": LBin.ADD, "-": LBin.SUB, "*": LBin.MUL, "/": LBin.DIV,
    "%": LBin.MOD, "==": LBin.EQ, "~=": LBin.NE, "<": LBin.LT,
    "<=": LBin.LE, ">": LBin.GT, ">=": LBin.GE, "..": LBin.CONCAT,
}


class _LCtx:
    def __init__(self, code: LuaCode, local_names: Dict[str, int]):
        self.code = code
        self.locals = local_names
        self.loops: List[List] = []  # [break_fixups]

    def emit(self, op: int, arg: int = 0, line: int = 0) -> int:
        self.code.instrs.append((op, arg))
        self.code.lines.append(line)
        return len(self.code.instrs) - 1

    def here(self) -> int:
        return len(self.code.instrs)

    def patch(self, index: int, target: int) -> None:
        op, _ = self.code.instrs[index]
        self.code.instrs[index] = (op, target)

    def const(self, value) -> int:
        for index, existing in enumerate(self.code.consts):
            if type(existing) is type(value) and existing == value:
                return index
        self.code.consts.append(value)
        return len(self.code.consts) - 1

    def local_slot(self, name: str) -> int:
        slot = self.locals.get(name)
        if slot is None:
            slot = len(self.locals)
            self.locals[name] = slot
        return slot


class LuaCompiler:
    def __init__(self):
        self.codes: List[LuaCode] = []
        self.global_names: Dict[str, int] = {}
        self.global_inits: Dict[int, tuple] = {}

    def compile(self, source: str) -> LuaModule:
        chunk = F.parse_lua(source)
        main = LuaCode(code_id=0, name="<chunk>", argcount=0, nlocals=0)
        self.codes.append(main)
        ctx = _LCtx(main, {})
        self._block(ctx, chunk.body)
        ctx.emit(LOp.LOAD_CONST, ctx.const(None))
        ctx.emit(LOp.RETURN)
        main.nlocals = len(ctx.locals)
        main.varnames = list(ctx.locals)
        coverable = sorted(
            {line for code in self.codes for line in code.lines if line > 0}
        )
        return LuaModule(
            codes=self.codes,
            main_code=0,
            global_names=dict(self.global_names),
            global_inits=dict(self.global_inits),
            coverable_lines=coverable,
            source=source,
        )

    def _global_slot(self, name: str) -> int:
        slot = self.global_names.get(name)
        if slot is None:
            slot = len(self.global_names)
            self.global_names[name] = slot
            if name in LUA_BUILTINS:
                self.global_inits[slot] = ("builtin", LUA_BUILTINS[name])
        return slot

    # -- statements ---------------------------------------------------------------

    def _block(self, ctx: _LCtx, stmts: List[F.LNode]) -> None:
        for stmt in stmts:
            self._stmt(ctx, stmt)

    def _stmt(self, ctx: _LCtx, stmt: F.LNode) -> None:
        line = stmt.line
        if isinstance(stmt, F.LFunc):
            self._funcdef(ctx, stmt)
            return
        if isinstance(stmt, F.LLocal):
            if stmt.value is None:
                ctx.emit(LOp.LOAD_CONST, ctx.const(None), line)
            else:
                self._expr(ctx, stmt.value)
            ctx.emit(LOp.STORE_LOCAL, ctx.local_slot(stmt.name), line)
            return
        if isinstance(stmt, F.LAssign):
            target = stmt.target
            if isinstance(target, F.LName):
                self._expr(ctx, stmt.value)
                if target.ident in ctx.locals:
                    ctx.emit(LOp.STORE_LOCAL, ctx.locals[target.ident], line)
                else:
                    ctx.emit(LOp.STORE_GLOBAL, self._global_slot(target.ident), line)
            else:
                assert isinstance(target, F.LIndex)
                self._expr(ctx, stmt.value)
                self._expr(ctx, target.obj)
                self._expr(ctx, target.key)
                ctx.emit(LOp.SETTABLE, 0, line)
            return
        if isinstance(stmt, F.LExprStmt):
            self._expr(ctx, stmt.expr)
            ctx.emit(LOp.POP, 0, line)
            return
        if isinstance(stmt, F.LIf):
            self._expr(ctx, stmt.cond)
            jump_false = ctx.emit(LOp.POP_JUMP_IF_FALSE, 0, line)
            self._block(ctx, stmt.body)
            if stmt.orelse:
                jump_end = ctx.emit(LOp.JUMP, 0, line)
                ctx.patch(jump_false, ctx.here())
                self._block(ctx, stmt.orelse)
                ctx.patch(jump_end, ctx.here())
            else:
                ctx.patch(jump_false, ctx.here())
            return
        if isinstance(stmt, F.LWhile):
            head = ctx.here()
            self._expr(ctx, stmt.cond)
            jump_end = ctx.emit(LOp.POP_JUMP_IF_FALSE, 0, line)
            ctx.loops.append([])
            self._block(ctx, stmt.body)
            breaks = ctx.loops.pop()
            ctx.emit(LOp.JUMP, head, line)
            end = ctx.here()
            ctx.patch(jump_end, end)
            for fixup in breaks:
                ctx.patch(fixup, end)
            return
        if isinstance(stmt, F.LForNum):
            # for i = a, b do body end  ==>  i = a; while i <= b do ... i += 1 end
            var_slot = ctx.local_slot(stmt.var)
            limit_slot = ctx.local_slot(f"(limit:{id(stmt)})")
            self._expr(ctx, stmt.start)
            ctx.emit(LOp.STORE_LOCAL, var_slot, line)
            self._expr(ctx, stmt.stop)
            ctx.emit(LOp.STORE_LOCAL, limit_slot, line)
            head = ctx.here()
            ctx.emit(LOp.LOAD_LOCAL, var_slot, line)
            ctx.emit(LOp.LOAD_LOCAL, limit_slot, line)
            ctx.emit(LOp.BINARY, LBin.LE, line)
            jump_end = ctx.emit(LOp.POP_JUMP_IF_FALSE, 0, line)
            ctx.loops.append([])
            self._block(ctx, stmt.body)
            breaks = ctx.loops.pop()
            ctx.emit(LOp.LOAD_LOCAL, var_slot, line)
            ctx.emit(LOp.LOAD_CONST, ctx.const(1), line)
            ctx.emit(LOp.BINARY, LBin.ADD, line)
            ctx.emit(LOp.STORE_LOCAL, var_slot, line)
            ctx.emit(LOp.JUMP, head, line)
            end = ctx.here()
            ctx.patch(jump_end, end)
            for fixup in breaks:
                ctx.patch(fixup, end)
            return
        if isinstance(stmt, F.LReturn):
            if stmt.value is None:
                ctx.emit(LOp.LOAD_CONST, ctx.const(None), line)
            else:
                self._expr(ctx, stmt.value)
            ctx.emit(LOp.RETURN, 0, line)
            return
        if isinstance(stmt, F.LBreak):
            if not ctx.loops:
                raise MiniLangCompileError(f"line {line}: break outside loop")
            ctx.loops[-1].append(ctx.emit(LOp.JUMP, 0, line))
            return
        raise MiniLangCompileError(f"unsupported statement {stmt!r}")

    def _funcdef(self, ctx: _LCtx, stmt: F.LFunc) -> None:
        code = LuaCode(
            code_id=len(self.codes),
            name=stmt.name,
            argcount=len(stmt.params),
            nlocals=0,
        )
        self.codes.append(code)
        inner_locals = {p: i for i, p in enumerate(stmt.params)}
        inner = _LCtx(code, inner_locals)
        self._block(inner, stmt.body)
        inner.emit(LOp.LOAD_CONST, inner.const(None), stmt.line)
        inner.emit(LOp.RETURN, 0, stmt.line)
        code.nlocals = len(inner_locals)
        code.varnames = list(inner_locals)
        ctx.emit(LOp.MAKE_FUNCTION, code.code_id, stmt.line)
        ctx.emit(LOp.STORE_GLOBAL, self._global_slot(stmt.name), stmt.line)

    # -- expressions -----------------------------------------------------------------

    def _expr(self, ctx: _LCtx, expr: F.LNode) -> None:
        line = expr.line
        if isinstance(expr, F.LNum):
            ctx.emit(LOp.LOAD_CONST, ctx.const(expr.value), line)
            return
        if isinstance(expr, F.LStr):
            ctx.emit(LOp.LOAD_CONST, ctx.const(expr.value), line)
            return
        if isinstance(expr, F.LBool):
            ctx.emit(LOp.LOAD_CONST, ctx.const(expr.value), line)
            return
        if isinstance(expr, F.LNil):
            ctx.emit(LOp.LOAD_CONST, ctx.const(None), line)
            return
        if isinstance(expr, F.LName):
            if expr.ident in ctx.locals:
                ctx.emit(LOp.LOAD_LOCAL, ctx.locals[expr.ident], line)
            else:
                ctx.emit(LOp.LOAD_GLOBAL, self._global_slot(expr.ident), line)
            return
        if isinstance(expr, F.LIndex):
            dotted = self._dotted_builtin(expr)
            if dotted is not None:
                ctx.emit(LOp.LOAD_GLOBAL, self._global_slot(dotted), line)
                return
            self._expr(ctx, expr.obj)
            self._expr(ctx, expr.key)
            ctx.emit(LOp.GETTABLE, 0, line)
            return
        if isinstance(expr, F.LCall):
            self._expr(ctx, expr.func)
            for arg in expr.args:
                self._expr(ctx, arg)
            ctx.emit(LOp.CALL, len(expr.args), line)
            return
        if isinstance(expr, F.LTable):
            for item in expr.items:
                self._expr(ctx, item)
            ctx.emit(LOp.NEWTABLE, len(expr.items), line)
            return
        if isinstance(expr, F.LBinary):
            self._expr(ctx, expr.left)
            self._expr(ctx, expr.right)
            ctx.emit(LOp.BINARY, _BIN_IDS[expr.op], line)
            return
        if isinstance(expr, F.LLogical):
            # Boolean-valued short circuit (documented deviation from Lua's
            # value-returning and/or).
            self._expr(ctx, expr.left)
            if expr.op == "and":
                j1 = ctx.emit(LOp.POP_JUMP_IF_FALSE, 0, line)
                self._expr(ctx, expr.right)
                j2 = ctx.emit(LOp.POP_JUMP_IF_FALSE, 0, line)
                ctx.emit(LOp.LOAD_CONST, ctx.const(True), line)
                j3 = ctx.emit(LOp.JUMP, 0, line)
                ctx.patch(j1, ctx.here())
                ctx.patch(j2, ctx.here())
                ctx.emit(LOp.LOAD_CONST, ctx.const(False), line)
                ctx.patch(j3, ctx.here())
            else:
                j1 = ctx.emit(LOp.POP_JUMP_IF_TRUE, 0, line)
                self._expr(ctx, expr.right)
                j2 = ctx.emit(LOp.POP_JUMP_IF_TRUE, 0, line)
                ctx.emit(LOp.LOAD_CONST, ctx.const(False), line)
                j3 = ctx.emit(LOp.JUMP, 0, line)
                ctx.patch(j1, ctx.here())
                ctx.patch(j2, ctx.here())
                ctx.emit(LOp.LOAD_CONST, ctx.const(True), line)
                ctx.patch(j3, ctx.here())
            return
        if isinstance(expr, F.LUnary):
            self._expr(ctx, expr.operand)
            if expr.op == "-":
                ctx.emit(LOp.UNARY, LUn.NEG, line)
            elif expr.op == "not":
                ctx.emit(LOp.UNARY, LUn.NOT, line)
            else:
                ctx.emit(LOp.UNARY, LUn.LEN, line)
            return
        raise MiniLangCompileError(f"unsupported expression {expr!r}")

    @staticmethod
    def _dotted_builtin(expr: F.LIndex) -> Optional[str]:
        if (
            isinstance(expr.obj, F.LName)
            and expr.obj.ident in ("string", "table")
            and isinstance(expr.key, F.LStr)
        ):
            dotted = f"{expr.obj.ident}.{expr.key.value}"
            if dotted in LUA_BUILTINS:
                return dotted
        return None


def compile_lua(source: str) -> LuaModule:
    return LuaCompiler().compile(source)
