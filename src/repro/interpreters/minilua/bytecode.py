"""MiniLua bytecode (stack machine, two words per instruction)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class LOp:
    NOP = 0
    LOAD_CONST = 1
    LOAD_LOCAL = 2
    STORE_LOCAL = 3
    LOAD_GLOBAL = 4
    STORE_GLOBAL = 5
    BINARY = 6
    UNARY = 7
    JUMP = 8
    POP_JUMP_IF_FALSE = 9
    POP_JUMP_IF_TRUE = 10
    CALL = 11
    RETURN = 12
    NEWTABLE = 13
    GETTABLE = 15
    SETTABLE = 16
    POP = 25
    MAKE_FUNCTION = 27

    NAMES = {
        value: name
        for name, value in vars().items()
        if isinstance(value, int) and not name.startswith("_")
    }


class LBin:
    ADD = 0
    SUB = 1
    MUL = 2
    DIV = 3
    MOD = 4
    EQ = 5
    NE = 6
    LT = 7
    LE = 8
    GT = 9
    GE = 10
    CONCAT = 11


class LUn:
    NEG = 0
    NOT = 1
    LEN = 2


#: builtins preloaded in global slots.  Dotted names are the Lua stdlib
#: modules (resolved at compile time, as the registry tables would be).
LUA_BUILTINS: Dict[str, int] = {
    "print": 1,
    "tostring": 2,
    "tonumber": 3,
    "error": 4,
    "sym_string": 5,
    "sym_int": 6,
    "string.sub": 10,
    "string.find": 11,
    "string.byte": 12,
    "string.char": 13,
    "string.len": 14,
    "string.lower": 15,
    "string.upper": 16,
    "table.insert": 20,
}

#: runtime error codes (MiniLua has no catchable exceptions; an error
#: unwinds to the top and is reported as an event).
LUA_ERROR_USER = 50
LUA_ERROR_TYPE = 51
LUA_ERROR_ARITH = 52

LUA_ERROR_NAMES = {
    LUA_ERROR_USER: "error",
    LUA_ERROR_TYPE: "type error",
    LUA_ERROR_ARITH: "arithmetic error",
}


@dataclass
class LuaCode:
    code_id: int
    name: str
    argcount: int
    nlocals: int
    instrs: List[Tuple[int, int]] = field(default_factory=list)
    consts: List[object] = field(default_factory=list)
    lines: List[int] = field(default_factory=list)
    varnames: List[str] = field(default_factory=list)

    def disassemble(self) -> str:
        out = [f"luacode {self.code_id} <{self.name}>"]
        for index, (op, arg) in enumerate(self.instrs):
            out.append(f"  {index:4d}: {LOp.NAMES.get(op, op)} {arg}")
        return "\n".join(out)


@dataclass
class LuaModule:
    codes: List[LuaCode]
    main_code: int
    global_names: Dict[str, int]
    global_inits: Dict[int, Tuple[str, int]]
    coverable_lines: List[int] = field(default_factory=list)
    source: str = ""
