"""MiniLua lexer and parser (Lua-subset grammar)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional

from repro.errors import MiniLangSyntaxError

LUA_KEYWORDS = {
    "function", "local", "if", "then", "elseif", "else", "end", "while",
    "do", "for", "return", "break", "nil", "true", "false", "and", "or",
    "not", "in", "repeat", "until",
}

_OPS = [
    "==", "~=", "<=", ">=", "..", "+", "-", "*", "/", "%", "#",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ".", ":", ";",
]

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"', "'": "'"}


class LTok(NamedTuple):
    kind: str  # name, kw, num, str, op, eof
    value: object
    line: int


def tokenize_lua(source: str) -> List[LTok]:
    tokens: List[LTok] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(LTok("num", int(source[i:j]), line))
            i = j
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            chars: List[str] = []
            while j < n and source[j] != quote:
                if source[j] == "\\":
                    if j + 1 >= n:
                        raise MiniLangSyntaxError("bad escape", line)
                    esc = source[j + 1]
                    if esc == "x":
                        chars.append(chr(int(source[j + 2 : j + 4], 16)))
                        j += 4
                        continue
                    chars.append(_ESCAPES.get(esc, esc))
                    j += 2
                    continue
                chars.append(source[j])
                j += 1
            if j >= n:
                raise MiniLangSyntaxError("unterminated string", line)
            tokens.append(LTok("str", "".join(chars), line))
            i = j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            tokens.append(LTok("kw" if word in LUA_KEYWORDS else "name", word, line))
            i = j
            continue
        matched = None
        for op in _OPS:
            if source.startswith(op, i):
                matched = op
                break
        if matched is None:
            raise MiniLangSyntaxError(f"unexpected character {ch!r}", line)
        tokens.append(LTok("op", matched, line))
        i += len(matched)
    tokens.append(LTok("eof", None, line))
    return tokens


# -- AST --------------------------------------------------------------------------

@dataclass
class LNode:
    line: int = 0


@dataclass
class LNum(LNode):
    value: int = 0


@dataclass
class LStr(LNode):
    value: str = ""


@dataclass
class LBool(LNode):
    value: bool = False


@dataclass
class LNil(LNode):
    pass


@dataclass
class LName(LNode):
    ident: str = ""


@dataclass
class LIndex(LNode):
    obj: Optional[LNode] = None
    key: Optional[LNode] = None


@dataclass
class LCall(LNode):
    func: Optional[LNode] = None
    args: List[LNode] = field(default_factory=list)


@dataclass
class LTable(LNode):
    items: List[LNode] = field(default_factory=list)


@dataclass
class LBinary(LNode):
    op: str = ""
    left: Optional[LNode] = None
    right: Optional[LNode] = None


@dataclass
class LLogical(LNode):
    op: str = ""
    left: Optional[LNode] = None
    right: Optional[LNode] = None


@dataclass
class LUnary(LNode):
    op: str = ""
    operand: Optional[LNode] = None


@dataclass
class LLocal(LNode):
    name: str = ""
    value: Optional[LNode] = None


@dataclass
class LAssign(LNode):
    target: Optional[LNode] = None
    value: Optional[LNode] = None


@dataclass
class LExprStmt(LNode):
    expr: Optional[LNode] = None


@dataclass
class LIf(LNode):
    cond: Optional[LNode] = None
    body: List[LNode] = field(default_factory=list)
    orelse: List[LNode] = field(default_factory=list)


@dataclass
class LWhile(LNode):
    cond: Optional[LNode] = None
    body: List[LNode] = field(default_factory=list)


@dataclass
class LForNum(LNode):
    var: str = ""
    start: Optional[LNode] = None
    stop: Optional[LNode] = None
    body: List[LNode] = field(default_factory=list)


@dataclass
class LReturn(LNode):
    value: Optional[LNode] = None


@dataclass
class LBreak(LNode):
    pass


@dataclass
class LFunc(LNode):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[LNode] = field(default_factory=list)


@dataclass
class LChunk(LNode):
    body: List[LNode] = field(default_factory=list)


# -- parser ------------------------------------------------------------------------

_CMP = {"==", "~=", "<", "<=", ">", ">="}
_BLOCK_ENDERS = ("end", "else", "elseif", "until")


class LuaParser:
    def __init__(self, tokens: List[LTok]):
        self.tokens = tokens
        self.pos = 0

    @property
    def cur(self) -> LTok:
        return self.tokens[self.pos]

    def error(self, message: str) -> MiniLangSyntaxError:
        return MiniLangSyntaxError(f"{message} (got {self.cur.value!r})", self.cur.line)

    def advance(self) -> LTok:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, value=None) -> bool:
        return self.cur.kind == kind and (value is None or self.cur.value == value)

    def accept(self, kind: str, value=None) -> bool:
        if self.check(kind, value):
            self.advance()
            return True
        return False

    def expect(self, kind: str, value=None) -> LTok:
        if not self.check(kind, value):
            raise self.error(f"expected {value or kind!r}")
        return self.advance()

    def parse_chunk(self) -> LChunk:
        body = self.parse_block(("<eof>",))
        if not self.check("eof"):
            raise self.error("trailing input")
        return LChunk(line=1, body=body)

    def parse_block(self, enders) -> List[LNode]:
        body: List[LNode] = []
        while True:
            if self.check("eof"):
                if "<eof>" in enders:
                    return body
                raise self.error("unexpected end of input")
            if self.cur.kind == "kw" and self.cur.value in enders:
                return body
            body.append(self.parse_stmt())

    # -- statements ------------------------------------------------------------------

    def parse_stmt(self) -> LNode:
        tok = self.cur
        self.accept("op", ";")
        if self.check("kw", "function"):
            return self.parse_function()
        if self.check("kw", "local"):
            self.advance()
            name = self.expect("name").value
            value = None
            if self.accept("op", "="):
                value = self.parse_expr()
            return LLocal(line=tok.line, name=name, value=value)
        if self.check("kw", "if"):
            return self.parse_if()
        if self.check("kw", "while"):
            self.advance()
            cond = self.parse_expr()
            self.expect("kw", "do")
            body = self.parse_block(("end",))
            self.expect("kw", "end")
            return LWhile(line=tok.line, cond=cond, body=body)
        if self.check("kw", "for"):
            self.advance()
            var = self.expect("name").value
            self.expect("op", "=")
            start = self.parse_expr()
            self.expect("op", ",")
            stop = self.parse_expr()
            self.expect("kw", "do")
            body = self.parse_block(("end",))
            self.expect("kw", "end")
            return LForNum(line=tok.line, var=var, start=start, stop=stop, body=body)
        if self.check("kw", "return"):
            self.advance()
            value = None
            if not self.check("eof") and not (
                self.cur.kind == "kw" and self.cur.value in _BLOCK_ENDERS
            ):
                value = self.parse_expr()
            return LReturn(line=tok.line, value=value)
        if self.check("kw", "break"):
            self.advance()
            return LBreak(line=tok.line)
        expr = self.parse_expr()
        if self.accept("op", "="):
            if not isinstance(expr, (LName, LIndex)):
                raise self.error("invalid assignment target")
            value = self.parse_expr()
            return LAssign(line=tok.line, target=expr, value=value)
        if not isinstance(expr, LCall):
            raise self.error("expression statement must be a call")
        return LExprStmt(line=tok.line, expr=expr)

    def parse_function(self) -> LFunc:
        tok = self.expect("kw", "function")
        name = self.expect("name").value
        self.expect("op", "(")
        params: List[str] = []
        if not self.check("op", ")"):
            params.append(self.expect("name").value)
            while self.accept("op", ","):
                params.append(self.expect("name").value)
        self.expect("op", ")")
        body = self.parse_block(("end",))
        self.expect("kw", "end")
        return LFunc(line=tok.line, name=name, params=params, body=body)

    def parse_if(self) -> LIf:
        tok = self.advance()  # if / elseif
        cond = self.parse_expr()
        self.expect("kw", "then")
        body = self.parse_block(("end", "else", "elseif"))
        orelse: List[LNode] = []
        if self.check("kw", "elseif"):
            orelse = [self.parse_if()]
            return LIf(line=tok.line, cond=cond, body=body, orelse=orelse)
        if self.accept("kw", "else"):
            orelse = self.parse_block(("end",))
        self.expect("kw", "end")
        return LIf(line=tok.line, cond=cond, body=body, orelse=orelse)

    # -- expressions ----------------------------------------------------------------------

    def parse_expr(self) -> LNode:
        return self.parse_or()

    def parse_or(self) -> LNode:
        left = self.parse_and()
        while self.check("kw", "or"):
            tok = self.advance()
            left = LLogical(line=tok.line, op="or", left=left, right=self.parse_and())
        return left

    def parse_and(self) -> LNode:
        left = self.parse_not()
        while self.check("kw", "and"):
            tok = self.advance()
            left = LLogical(line=tok.line, op="and", left=left, right=self.parse_not())
        return left

    def parse_not(self) -> LNode:
        if self.check("kw", "not"):
            tok = self.advance()
            return LUnary(line=tok.line, op="not", operand=self.parse_not())
        return self.parse_cmp()

    def parse_cmp(self) -> LNode:
        left = self.parse_concat()
        while self.cur.kind == "op" and self.cur.value in _CMP:
            tok = self.advance()
            left = LBinary(line=tok.line, op=tok.value, left=left, right=self.parse_concat())
        return left

    def parse_concat(self) -> LNode:
        left = self.parse_add()
        if self.check("op", ".."):
            tok = self.advance()
            # right-associative
            right = self.parse_concat()
            return LBinary(line=tok.line, op="..", left=left, right=right)
        return left

    def parse_add(self) -> LNode:
        left = self.parse_mul()
        while self.cur.kind == "op" and self.cur.value in ("+", "-"):
            tok = self.advance()
            left = LBinary(line=tok.line, op=tok.value, left=left, right=self.parse_mul())
        return left

    def parse_mul(self) -> LNode:
        left = self.parse_unary()
        while self.cur.kind == "op" and self.cur.value in ("*", "/", "%"):
            tok = self.advance()
            left = LBinary(line=tok.line, op=tok.value, left=left, right=self.parse_unary())
        return left

    def parse_unary(self) -> LNode:
        if self.check("op", "-"):
            tok = self.advance()
            return LUnary(line=tok.line, op="-", operand=self.parse_unary())
        if self.check("op", "#"):
            tok = self.advance()
            return LUnary(line=tok.line, op="#", operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> LNode:
        expr = self.parse_atom()
        while True:
            if self.check("op", "("):
                tok = self.advance()
                args: List[LNode] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                expr = LCall(line=tok.line, func=expr, args=args)
            elif self.check("op", "["):
                tok = self.advance()
                key = self.parse_expr()
                self.expect("op", "]")
                expr = LIndex(line=tok.line, obj=expr, key=key)
            elif self.check("op", "."):
                tok = self.advance()
                name = self.expect("name").value
                expr = LIndex(line=tok.line, obj=expr, key=LStr(line=tok.line, value=name))
            else:
                return expr

    def parse_atom(self) -> LNode:
        tok = self.cur
        if tok.kind == "num":
            self.advance()
            return LNum(line=tok.line, value=tok.value)
        if tok.kind == "str":
            self.advance()
            return LStr(line=tok.line, value=tok.value)
        if self.accept("kw", "true"):
            return LBool(line=tok.line, value=True)
        if self.accept("kw", "false"):
            return LBool(line=tok.line, value=False)
        if self.accept("kw", "nil"):
            return LNil(line=tok.line)
        if tok.kind == "name":
            self.advance()
            return LName(line=tok.line, ident=tok.value)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        if self.accept("op", "{"):
            items: List[LNode] = []
            if not self.check("op", "}"):
                items.append(self.parse_expr())
                while self.accept("op", ","):
                    if self.check("op", "}"):
                        break
                    items.append(self.parse_expr())
            self.expect("op", "}")
            return LTable(line=tok.line, items=items)
        raise self.error("expected expression")


def parse_lua(source: str) -> LChunk:
    return LuaParser(tokenize_lua(source)).parse_chunk()
