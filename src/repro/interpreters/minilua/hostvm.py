"""Host reference VM for MiniLua bytecode (the vanilla Lua stand-in).

Semantics deliberately mirror the Clay interpreter; note two documented
deviations from real Lua, shared by both implementations: numbers are
integers (as in the paper's Lua build), and ``and``/``or`` produce
booleans rather than operand values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import HostVMError
from repro.interpreters.minilua.bytecode import (
    LBin,
    LOp,
    LUn,
    LUA_ERROR_ARITH,
    LUA_ERROR_TYPE,
    LUA_ERROR_USER,
    LuaCode,
    LuaModule,
)


class LuaError(Exception):
    def __init__(self, code: int, message: str = ""):
        super().__init__(f"lua error {code}: {message}")
        self.code = code
        #: alias so Lua errors share the MiniPy exception interface.
        self.type_id = code
        self.message = message


@dataclass
class LuaFunc:
    code_id: int


@dataclass
class LuaBuiltin:
    builtin_id: int


@dataclass
class LuaRunResult:
    output: List[int] = field(default_factory=list)
    error: Optional[LuaError] = None
    covered_lines: Set[int] = field(default_factory=set)
    hl_instrs: int = 0
    hit_budget: bool = False

    # Interface parity with the MiniPy host result (used by the runner).
    @property
    def exception(self):
        return self.error


class _Budget(Exception):
    pass


class LuaHostVM:
    """Executes a :class:`LuaModule` with concrete inputs."""

    def __init__(
        self,
        module: LuaModule,
        symbolic_inputs: Optional[Sequence[object]] = None,
        instr_budget: int = 2_000_000,
    ):
        self.module = module
        self.globals: List[object] = [None] * max(len(module.global_names), 1)
        self._inputs = list(symbolic_inputs or [])
        self._next_input = 0
        self.result = LuaRunResult()
        self._budget = instr_budget
        for slot, (kind, value) in module.global_inits.items():
            if kind == "builtin":
                self.globals[slot] = LuaBuiltin(value)

    def run(self) -> LuaRunResult:
        main = self.module.codes[self.module.main_code]
        try:
            self._eval(main, [None] * max(main.nlocals, 1))
        except LuaError as err:
            self.result.error = err
        except _Budget:
            self.result.hit_budget = True
        return self.result

    def call_function(self, name: str, args: List[object]):
        slot = self.module.global_names.get(name)
        if slot is None:
            raise HostVMError(f"no global {name!r}")
        func = self.globals[slot]
        if not isinstance(func, LuaFunc):
            raise HostVMError(f"{name!r} is not a Lua function")
        return self._call(func, args)

    # -- semantics ---------------------------------------------------------------

    @staticmethod
    def _truth(v) -> bool:
        return not (v is None or v is False)

    def _call(self, func, args: List[object]):
        if isinstance(func, LuaFunc):
            code = self.module.codes[func.code_id]
            frame = list(args[: code.argcount])
            frame += [None] * (max(code.nlocals, 1) - len(frame))
            return self._eval(code, frame)
        if isinstance(func, LuaBuiltin):
            return self._builtin(func.builtin_id, args)
        raise LuaError(LUA_ERROR_TYPE, "attempt to call a non-function value")

    def _eval(self, code: LuaCode, frame: List[object]):
        stack: List[object] = []
        instrs = code.instrs
        lines = code.lines
        consts = code.consts
        ip = 0
        while True:
            if self.result.hl_instrs >= self._budget:
                raise _Budget()
            self.result.hl_instrs += 1
            op, arg = instrs[ip]
            if lines[ip] > 0:
                self.result.covered_lines.add(lines[ip])
            ip += 1
            if op == LOp.LOAD_CONST:
                stack.append(consts[arg])
            elif op == LOp.LOAD_LOCAL:
                stack.append(frame[arg])
            elif op == LOp.STORE_LOCAL:
                frame[arg] = stack.pop()
            elif op == LOp.LOAD_GLOBAL:
                stack.append(self.globals[arg])
            elif op == LOp.STORE_GLOBAL:
                self.globals[arg] = stack.pop()
            elif op == LOp.BINARY:
                right = stack.pop()
                left = stack.pop()
                stack.append(self._binary(arg, left, right))
            elif op == LOp.UNARY:
                value = stack.pop()
                if arg == LUn.NEG:
                    if not isinstance(value, int) or isinstance(value, bool):
                        raise LuaError(LUA_ERROR_ARITH, "unary minus on non-number")
                    stack.append(-value)
                elif arg == LUn.NOT:
                    stack.append(not self._truth(value))
                else:
                    stack.append(self._length(value))
            elif op == LOp.JUMP:
                ip = arg
            elif op == LOp.POP_JUMP_IF_FALSE:
                if not self._truth(stack.pop()):
                    ip = arg
            elif op == LOp.POP_JUMP_IF_TRUE:
                if self._truth(stack.pop()):
                    ip = arg
            elif op == LOp.CALL:
                args = stack[len(stack) - arg:]
                del stack[len(stack) - arg:]
                func = stack.pop()
                stack.append(self._call(func, args))
            elif op == LOp.RETURN:
                return stack.pop()
            elif op == LOp.NEWTABLE:
                items = stack[len(stack) - arg:]
                del stack[len(stack) - arg:]
                table: Dict = {}
                for index, item in enumerate(items):
                    if item is not None:
                        table[index + 1] = item
                stack.append(table)
            elif op == LOp.GETTABLE:
                key = stack.pop()
                table = stack.pop()
                if not isinstance(table, dict):
                    raise LuaError(LUA_ERROR_TYPE, "attempt to index a non-table")
                stack.append(table.get(self._table_key(key)))
            elif op == LOp.SETTABLE:
                key = stack.pop()
                table = stack.pop()
                value = stack.pop()
                if not isinstance(table, dict):
                    raise LuaError(LUA_ERROR_TYPE, "attempt to index a non-table")
                if key is None:
                    raise LuaError(LUA_ERROR_TYPE, "table index is nil")
                if value is None:
                    table.pop(self._table_key(key), None)
                else:
                    table[self._table_key(key)] = value
            elif op == LOp.POP:
                stack.pop()
            elif op == LOp.MAKE_FUNCTION:
                stack.append(LuaFunc(arg))
            elif op == LOp.NOP:
                pass
            else:
                raise HostVMError(f"unknown lua opcode {op}")

    @staticmethod
    def _table_key(key):
        if isinstance(key, bool):
            return ("bool", key)
        return key

    def _binary(self, op: int, left, right):
        if op == LBin.CONCAT:
            return self._coerce_str(left) + self._coerce_str(right)
        if op == LBin.EQ:
            return self._value_eq(left, right)
        if op == LBin.NE:
            return not self._value_eq(left, right)
        if op in (LBin.LT, LBin.LE, LBin.GT, LBin.GE):
            if not self._is_num(left) or not self._is_num(right):
                raise LuaError(LUA_ERROR_TYPE, "ordered comparison on non-numbers")
            a, b = int(left), int(right)
            return {LBin.LT: a < b, LBin.LE: a <= b, LBin.GT: a > b, LBin.GE: a >= b}[op]
        if not self._is_num(left) or not self._is_num(right):
            raise LuaError(LUA_ERROR_ARITH, "arithmetic on non-number")
        a, b = int(left), int(right)
        if op == LBin.ADD:
            return a + b
        if op == LBin.SUB:
            return a - b
        if op == LBin.MUL:
            return a * b
        if b == 0:
            raise LuaError(LUA_ERROR_ARITH, "division by zero")
        return a // b if op == LBin.DIV else a % b

    @staticmethod
    def _is_num(v) -> bool:
        return isinstance(v, int) and not isinstance(v, bool)

    @staticmethod
    def _value_eq(left, right) -> bool:
        if isinstance(left, (int, bool)) and isinstance(right, (int, bool)):
            return int(left) == int(right)
        if isinstance(left, str) and isinstance(right, str):
            return left == right
        if left is None and right is None:
            return True
        if isinstance(left, dict) or isinstance(right, dict):
            return left is right
        return False

    def _length(self, v):
        if isinstance(v, str):
            return len(v)
        if isinstance(v, dict):
            n = 0
            while (n + 1) in v:
                n += 1
            return n
        raise LuaError(LUA_ERROR_TYPE, "length of non-string/table")

    def _coerce_str(self, v) -> str:
        if isinstance(v, str):
            return v
        if isinstance(v, bool):
            return "true" if v else "false"
        if isinstance(v, int):
            return str(v)
        raise LuaError(LUA_ERROR_TYPE, "cannot concatenate this value")

    # -- builtins -------------------------------------------------------------------

    def _builtin(self, bid: int, args: List[object]):
        a0 = args[0] if len(args) > 0 else None
        a1 = args[1] if len(args) > 1 else None
        a2 = args[2] if len(args) > 2 else None
        if bid == 1:  # print
            self._emit(a0)
            return None
        if bid == 2:  # tostring
            if a0 is None:
                return "nil"
            return self._coerce_str(a0)
        if bid == 3:  # tonumber
            if self._is_num(a0):
                return a0
            if isinstance(a0, str):
                text = a0.strip()
                neg = text.startswith("-")
                if neg:
                    text = text[1:]
                if text and all("0" <= c <= "9" for c in text):
                    return -int(text) if neg else int(text)
            return None
        if bid == 4:  # error
            message = a0 if isinstance(a0, str) else ""
            raise LuaError(LUA_ERROR_USER, message)
        if bid == 5:  # sym_string (replay: next input)
            if not isinstance(a0, str):
                raise LuaError(LUA_ERROR_TYPE, "sym_string needs a string seed")
            return self._next_symbolic(a0)
        if bid == 6:  # sym_int
            if not self._is_num(a0):
                raise LuaError(LUA_ERROR_TYPE, "sym_int needs an integer seed")
            return self._next_symbolic(a0)
        if bid == 10:  # string.sub(s, i, j)
            if not isinstance(a0, str) or not self._is_num(a1):
                raise LuaError(LUA_ERROR_TYPE, "string.sub(s, i, j)")
            return _lua_sub(a0, a1, a2 if self._is_num(a2) else len(a0))
        if bid == 11:  # string.find(s, sub) -> 1-based or nil (plain)
            if not isinstance(a0, str) or not isinstance(a1, str):
                raise LuaError(LUA_ERROR_TYPE, "string.find(s, sub)")
            found = a0.find(a1)
            return None if found < 0 else found + 1
        if bid == 12:  # string.byte(s, i)
            if not isinstance(a0, str):
                raise LuaError(LUA_ERROR_TYPE, "string.byte(s, i)")
            index = a1 if self._is_num(a1) else 1
            if not 1 <= index <= len(a0):
                return None
            return ord(a0[index - 1])
        if bid == 13:  # string.char(n)
            if not self._is_num(a0) or not 0 <= a0 < 256:
                raise LuaError(LUA_ERROR_TYPE, "string.char(n)")
            return chr(a0)
        if bid == 14:  # string.len
            if not isinstance(a0, str):
                raise LuaError(LUA_ERROR_TYPE, "string.len(s)")
            return len(a0)
        if bid == 15:  # string.lower
            if not isinstance(a0, str):
                raise LuaError(LUA_ERROR_TYPE, "string.lower(s)")
            return "".join(chr(ord(c) + 32) if "A" <= c <= "Z" else c for c in a0)
        if bid == 16:  # string.upper
            if not isinstance(a0, str):
                raise LuaError(LUA_ERROR_TYPE, "string.upper(s)")
            return "".join(chr(ord(c) - 32) if "a" <= c <= "z" else c for c in a0)
        if bid == 20:  # table.insert(t, v)
            if not isinstance(a0, dict):
                raise LuaError(LUA_ERROR_TYPE, "table.insert(t, v)")
            a0[self._length(a0) + 1] = a1
            return None
        raise LuaError(LUA_ERROR_TYPE, f"unknown builtin {bid}")

    def _next_symbolic(self, seed):
        if self._next_input < len(self._inputs):
            value = self._inputs[self._next_input]
            self._next_input += 1
            if isinstance(seed, str):
                if isinstance(value, str):
                    return value
                return "".join(chr(v & 0xFF) for v in value)
            if isinstance(value, (list, tuple)):
                return int(value[0]) if value else seed
            return int(value)
        return seed

    def _emit(self, value) -> None:
        out = self.result.output
        if isinstance(value, bool):
            out.extend([2, int(value)])
        elif isinstance(value, int):
            out.extend([1, value])
        elif isinstance(value, str):
            out.append(4)
            out.append(len(value))
            out.extend(ord(c) for c in value)
        elif value is None:
            out.append(3)
        elif isinstance(value, dict):
            out.extend([6, len(value)])
        else:
            out.extend([9, 0])


def _lua_sub(s: str, i: int, j: int) -> str:
    n = len(s)
    if i < 0:
        i = max(n + i + 1, 1)
    elif i == 0:
        i = 1
    if j < 0:
        j = n + j + 1
    elif j > n:
        j = n
    if i > j:
        return ""
    return s[i - 1 : j]
