"""MiniLua's :class:`~repro.api.language.GuestLanguage` registration."""

from __future__ import annotations

from repro.api.language import GuestLanguage, escape_double_quoted, register_language

#: Render ``text`` as a MiniLua string literal.  The MiniLua lexer
#: accepts ``\\``, ``\"`` and ``\xNN`` escapes in double-quoted
#: strings, so quotes, backslashes and non-printable bytes round-trip.
quote_minilua = escape_double_quoted


def _engine_factory(source: str, config=None, solver=None):
    from repro.interpreters.minilua.engine import MiniLuaEngine

    return MiniLuaEngine(source, config, solver=solver)


def _host_vm_factory(module, symbolic_inputs):
    from repro.interpreters.minilua.hostvm import LuaHostVM

    return LuaHostVM(module, symbolic_inputs=symbolic_inputs)


MINILUA = register_language(
    GuestLanguage(
        name="minilua",
        comment_prefix="--",
        engine_factory=_engine_factory,
        quote_literal=quote_minilua,
        host_vm_factory=_host_vm_factory,
        description="Lua-subset guest (the paper's Lua case study, §5.2)",
    )
)
