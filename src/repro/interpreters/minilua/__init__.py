"""MiniLua: the Lua-subset language used to reproduce the paper's Lua
case study (§5.2).

As in the paper's port, the interpreter is configured for *integer*
numbers, string interning can be disabled, and the interpreter core is
much smaller than the Python one (Table 2)."""

from repro.interpreters.minilua.bytecode import LuaCode, LuaModule, LOp
from repro.interpreters.minilua.compiler import compile_lua
from repro.interpreters.minilua.hostvm import LuaHostVM
from repro.interpreters.minilua.engine import MiniLuaEngine

__all__ = [
    "LOp",
    "LuaCode",
    "LuaHostVM",
    "LuaModule",
    "MiniLuaEngine",
    "compile_lua",
]
