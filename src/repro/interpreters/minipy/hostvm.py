"""Host reference VM for MiniPy bytecode.

This is the stand-in for the *vanilla* CPython used in the paper for test
replay and line-coverage measurement (§6.1).  Its semantics deliberately
mirror the Clay interpreter instruction by instruction; differential tests
execute both on the same inputs and compare observable output.

Values map to native Python values (int, bool, str, None, list, dict) plus
small wrapper objects for functions, exception types/instances, method
references and iterators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import HostVMError
from repro.interpreters.minipy.bytecode import (
    BinOp,
    CodeObject,
    CompiledModule,
    Op,
    UnOp,
)

_WHITESPACE = " \t\n\r"


class MiniPyException(Exception):
    """An in-language exception travelling through the host VM."""

    def __init__(self, type_id: int, message: str = "", name: str = ""):
        super().__init__(f"{name or type_id}: {message}")
        self.type_id = type_id
        self.message = message
        self.name = name


@dataclass
class ExcType:
    type_id: int


@dataclass
class ExcValue:
    type_id: int
    message: str = ""


@dataclass
class FuncValue:
    code_id: int


@dataclass
class BuiltinValue:
    builtin_id: int


@dataclass
class MethodRef:
    obj: object
    method_id: int


@dataclass
class RangeValue:
    start: int
    stop: int


class _Iter:
    __slots__ = ("kind", "obj", "index")

    def __init__(self, kind: str, obj):
        self.kind = kind
        self.obj = obj
        self.index = 0


@dataclass
class HostRunResult:
    """Observable outcome of one host execution."""

    output: List[int] = field(default_factory=list)
    exception: Optional[MiniPyException] = None
    covered_lines: Set[int] = field(default_factory=set)
    hl_instrs: int = 0
    hit_budget: bool = False


class HostVM:
    """Executes a :class:`CompiledModule` with concrete inputs."""

    def __init__(
        self,
        module: CompiledModule,
        symbolic_inputs: Optional[Sequence[object]] = None,
        instr_budget: int = 2_000_000,
    ):
        self.module = module
        self.globals: List[object] = [None] * max(len(module.global_names), 1)
        self._global_set: Set[int] = set()
        self._inputs = list(symbolic_inputs or [])
        self._next_input = 0
        self.result = HostRunResult()
        self._budget = instr_budget
        self._exc_names = {v: k for k, v in module.exception_ids.items()}
        for slot, (kind, value) in module.global_inits.items():
            if kind == "builtin":
                self.globals[slot] = BuiltinValue(value)
            elif kind == "exctype":
                self.globals[slot] = ExcType(value)
            self._global_set.add(slot)

    # -- public --------------------------------------------------------------

    def run(self) -> HostRunResult:
        """Execute the module body; capture an uncaught exception if any."""
        main = self.module.codes[self.module.main_code]
        try:
            self._eval(main, self.globals, module_level=True)
        except MiniPyException as exc:
            self.result.exception = exc
        except _BudgetExceeded:
            self.result.hit_budget = True
        return self.result

    def call_function(self, name: str, args: List[object]) -> object:
        """Call a module-level function directly (used by unit tests)."""
        slot = self.module.global_names.get(name)
        if slot is None:
            raise HostVMError(f"no global named {name!r}")
        func = self.globals[slot]
        if not isinstance(func, FuncValue):
            raise HostVMError(f"{name!r} is not a function")
        return self._call(func, args)

    # -- helpers ----------------------------------------------------------------

    def _raise(self, name: str, message: str = "") -> None:
        type_id = self.module.exception_ids.get(name, 1)
        raise MiniPyException(type_id, message, name)

    def _exc_name(self, type_id: int) -> str:
        return self._exc_names.get(type_id, f"<exc:{type_id}>")

    def _call(self, func, args: List[object]):
        if isinstance(func, FuncValue):
            code = self.module.codes[func.code_id]
            if len(args) != code.argcount:
                self._raise(
                    "TypeError",
                    f"{code.name}() takes {code.argcount} args, got {len(args)}",
                )
            frame_locals: List[object] = [None] * max(code.nlocals, 1)
            frame_locals[: len(args)] = args
            return self._eval(code, frame_locals)
        if isinstance(func, BuiltinValue):
            return self._call_builtin(func.builtin_id, args)
        if isinstance(func, ExcType):
            message = ""
            if args:
                if not isinstance(args[0], str):
                    message = self._to_str(args[0])
                else:
                    message = args[0]
            return ExcValue(func.type_id, message)
        self._raise("TypeError", "object is not callable")

    # -- the interpreter loop ----------------------------------------------------

    def _eval(self, code: CodeObject, frame_locals: List[object], module_level=False):
        stack: List[object] = []
        blocks: List[Tuple[int, int]] = []  # (handler_ip, stack_depth)
        instrs = code.instrs
        lines = code.lines
        consts = code.consts
        ip = 0
        while True:
            if self.result.hl_instrs >= self._budget:
                raise _BudgetExceeded()
            self.result.hl_instrs += 1
            op, arg = instrs[ip]
            if lines[ip] > 0:
                self.result.covered_lines.add(lines[ip])
            ip += 1
            try:
                if op == Op.LOAD_CONST:
                    stack.append(consts[arg])
                elif op == Op.LOAD_LOCAL:
                    stack.append(frame_locals[arg])
                elif op == Op.STORE_LOCAL:
                    frame_locals[arg] = stack.pop()
                elif op == Op.LOAD_GLOBAL:
                    if arg not in self._global_set and not module_level:
                        self._raise("RuntimeError", "name is not defined")
                    if module_level and arg not in self._global_set:
                        self._raise("RuntimeError", "name is not defined")
                    stack.append(self.globals[arg])
                elif op == Op.STORE_GLOBAL:
                    self.globals[arg] = stack.pop()
                    self._global_set.add(arg)
                elif op == Op.BINARY:
                    right = stack.pop()
                    left = stack.pop()
                    stack.append(self._binary(arg, left, right))
                elif op == Op.UNARY:
                    value = stack.pop()
                    if arg == UnOp.NEG:
                        if not isinstance(value, (int, bool)):
                            self._raise("TypeError", "bad operand for unary -")
                        stack.append(-int(value))
                    else:
                        stack.append(not self._truth(value))
                elif op == Op.JUMP:
                    ip = arg
                elif op == Op.POP_JUMP_IF_FALSE:
                    if not self._truth(stack.pop()):
                        ip = arg
                elif op == Op.POP_JUMP_IF_TRUE:
                    if self._truth(stack.pop()):
                        ip = arg
                elif op == Op.CALL_FUNCTION:
                    args = stack[len(stack) - arg:]
                    del stack[len(stack) - arg:]
                    func = stack.pop()
                    stack.append(self._call(func, args))
                elif op == Op.RETURN_VALUE:
                    return stack.pop()
                elif op == Op.BUILD_LIST:
                    items = stack[len(stack) - arg:]
                    del stack[len(stack) - arg:]
                    stack.append(list(items))
                elif op == Op.BUILD_DICT:
                    pairs = stack[len(stack) - 2 * arg:]
                    del stack[len(stack) - 2 * arg:]
                    d: Dict = {}
                    for k in range(arg):
                        d[self._dict_key(pairs[2 * k])] = pairs[2 * k + 1]
                    stack.append(d)
                elif op == Op.BINARY_SUBSCR:
                    index = stack.pop()
                    obj = stack.pop()
                    stack.append(self._subscr(obj, index))
                elif op == Op.STORE_SUBSCR:
                    index = stack.pop()
                    obj = stack.pop()
                    value = stack.pop()
                    self._store_subscr(obj, index, value)
                elif op == Op.LOAD_METHOD:
                    obj = stack.pop()
                    stack.append(MethodRef(obj, arg))
                elif op == Op.CALL_METHOD:
                    args = stack[len(stack) - arg:]
                    del stack[len(stack) - arg:]
                    ref = stack.pop()
                    assert isinstance(ref, MethodRef)
                    stack.append(self._call_method(ref.obj, ref.method_id, args))
                elif op == Op.RAISE:
                    exc = stack.pop()
                    if isinstance(exc, ExcValue):
                        raise MiniPyException(
                            exc.type_id, exc.message, self._exc_name(exc.type_id)
                        )
                    self._raise("TypeError", "can only raise exception instances")
                elif op == Op.SETUP_EXCEPT:
                    blocks.append((arg, len(stack)))
                elif op == Op.POP_BLOCK:
                    blocks.pop()
                elif op == Op.GET_ITER:
                    stack.append(self._get_iter(stack.pop()))
                elif op == Op.FOR_ITER:
                    iterator = stack[-1]
                    assert isinstance(iterator, _Iter)
                    nxt = self._iter_next(iterator)
                    if nxt is _EXHAUSTED:
                        stack.pop()
                        ip = arg
                    else:
                        stack.append(nxt)
                elif op == Op.DUP:
                    stack.append(stack[-1])
                elif op == Op.POP:
                    stack.pop()
                elif op == Op.SLICE:
                    hi = stack.pop() if arg & 2 else None
                    lo = stack.pop() if arg & 1 else None
                    obj = stack.pop()
                    stack.append(self._slice(obj, lo, hi))
                elif op == Op.MAKE_FUNCTION:
                    stack.append(FuncValue(arg))
                elif op == Op.LOAD_EXCTYPE:
                    stack.append(ExcType(arg))
                elif op == Op.EXC_MATCH:
                    exc_type = stack.pop()
                    exc = stack.pop()
                    assert isinstance(exc_type, ExcType)
                    assert isinstance(exc, ExcValue)
                    stack.append(
                        exc_type.type_id == 1 or exc.type_id == exc_type.type_id
                    )
                elif op == Op.NOP:
                    pass
                else:
                    raise HostVMError(f"unknown opcode {op}")
            except MiniPyException as exc:
                if not blocks:
                    raise
                handler_ip, depth = blocks.pop()
                del stack[depth:]
                stack.append(ExcValue(exc.type_id, exc.message))
                ip = handler_ip

    # -- semantics shared with the Clay interpreter -----------------------------------

    @staticmethod
    def _truth(value) -> bool:
        if value is None or value is False:
            return False
        if value is True:
            return True
        if isinstance(value, int):
            return value != 0
        if isinstance(value, (str, list, dict)):
            return len(value) > 0
        return True

    def _dict_key(self, key):
        if isinstance(key, (bool, int, str)):
            return key
        self._raise("TypeError", "unhashable dict key")

    def _binary(self, op: int, left, right):
        if op == BinOp.ADD:
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            return self._arith(op, left, right)
        if op in (BinOp.SUB, BinOp.MUL, BinOp.FLOORDIV, BinOp.MOD):
            return self._arith(op, left, right)
        if op == BinOp.EQ:
            return self._value_eq(left, right)
        if op == BinOp.NE:
            return not self._value_eq(left, right)
        if op in (BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE):
            if not isinstance(left, (int, bool)) or not isinstance(right, (int, bool)):
                self._raise("TypeError", "ordered comparison needs integers")
            a, b = int(left), int(right)
            if op == BinOp.LT:
                return a < b
            if op == BinOp.LE:
                return a <= b
            if op == BinOp.GT:
                return a > b
            return a >= b
        if op in (BinOp.IN, BinOp.NOT_IN):
            result = self._contains(left, right)
            return result if op == BinOp.IN else not result
        raise HostVMError(f"unknown binary op {op}")

    def _arith(self, op: int, left, right) -> int:
        if not isinstance(left, (int, bool)) or not isinstance(right, (int, bool)):
            self._raise("TypeError", "arithmetic needs integers")
        a, b = int(left), int(right)
        if op == BinOp.ADD:
            return a + b
        if op == BinOp.SUB:
            return a - b
        if op == BinOp.MUL:
            return a * b
        if b == 0:
            self._raise("ZeroDivisionError", "division by zero")
        return a // b if op == BinOp.FLOORDIV else a % b

    def _value_eq(self, left, right) -> bool:
        if isinstance(left, (int, bool)) and isinstance(right, (int, bool)):
            return int(left) == int(right)
        if isinstance(left, str) and isinstance(right, str):
            return left == right
        if left is None and right is None:
            return True
        if isinstance(left, (list, dict)) or isinstance(right, (list, dict)):
            return left is right
        return False

    def _contains(self, needle, haystack) -> bool:
        if isinstance(haystack, str):
            if not isinstance(needle, str):
                self._raise("TypeError", "'in <string>' needs a string")
            return needle in haystack
        if isinstance(haystack, list):
            return any(self._value_eq(needle, item) for item in haystack)
        if isinstance(haystack, dict):
            return self._dict_key(needle) in haystack
        self._raise("TypeError", "argument is not iterable")

    def _subscr(self, obj, index):
        if isinstance(obj, str):
            index = self._index_int(index)
            if index < 0:
                index += len(obj)
            if not 0 <= index < len(obj):
                self._raise("IndexError", "string index out of range")
            return obj[index]
        if isinstance(obj, list):
            index = self._index_int(index)
            if index < 0:
                index += len(obj)
            if not 0 <= index < len(obj):
                self._raise("IndexError", "list index out of range")
            return obj[index]
        if isinstance(obj, dict):
            key = self._dict_key(index)
            if key not in obj:
                self._raise("KeyError", str(index))
            return obj[key]
        self._raise("TypeError", "object is not subscriptable")

    def _store_subscr(self, obj, index, value) -> None:
        if isinstance(obj, list):
            index = self._index_int(index)
            if index < 0:
                index += len(obj)
            if not 0 <= index < len(obj):
                self._raise("IndexError", "list assignment out of range")
            obj[index] = value
            return
        if isinstance(obj, dict):
            obj[self._dict_key(index)] = value
            return
        self._raise("TypeError", "object does not support item assignment")

    def _index_int(self, index) -> int:
        if isinstance(index, bool):
            return int(index)
        if not isinstance(index, int):
            self._raise("TypeError", "indices must be integers")
        return index

    def _slice(self, obj, lo, hi):
        if not isinstance(obj, (str, list)):
            self._raise("TypeError", "object is not sliceable")
        length = len(obj)
        lo = 0 if lo is None else self._index_int(lo)
        hi = length if hi is None else self._index_int(hi)
        if lo < 0:
            lo += length
        if hi < 0:
            hi += length
        lo = min(max(lo, 0), length)
        hi = min(max(hi, 0), length)
        if lo > hi:
            hi = lo
        return obj[lo:hi]

    def _get_iter(self, obj) -> _Iter:
        if isinstance(obj, list):
            return _Iter("list", obj)
        if isinstance(obj, str):
            return _Iter("str", obj)
        if isinstance(obj, RangeValue):
            return _Iter("range", obj)
        if isinstance(obj, dict):
            return _Iter("list", list(obj.keys()))
        self._raise("TypeError", "object is not iterable")

    def _iter_next(self, iterator: _Iter):
        if iterator.kind in ("list", "str"):
            if iterator.index >= len(iterator.obj):
                return _EXHAUSTED
            value = iterator.obj[iterator.index]
            iterator.index += 1
            return value
        value = iterator.obj.start + iterator.index
        if value >= iterator.obj.stop:
            return _EXHAUSTED
        iterator.index += 1
        return value

    # -- builtins -----------------------------------------------------------------------

    def _call_builtin(self, builtin_id: int, args: List[object]):
        if builtin_id == 1:  # len
            self._arity(args, 1, "len")
            if not isinstance(args[0], (str, list, dict)):
                self._raise("TypeError", "object has no len()")
            return len(args[0])
        if builtin_id == 2:  # ord
            self._arity(args, 1, "ord")
            if not isinstance(args[0], str) or len(args[0]) != 1:
                self._raise("TypeError", "ord() expects a 1-character string")
            return ord(args[0])
        if builtin_id == 3:  # chr
            self._arity(args, 1, "chr")
            value = self._index_int(args[0])
            if not 0 <= value < 1114112:
                self._raise("ValueError", "chr() out of range")
            return chr(value)
        if builtin_id == 4:  # str
            self._arity(args, 1, "str")
            return self._to_str(args[0])
        if builtin_id == 5:  # int
            self._arity(args, 1, "int")
            return self._to_int(args[0])
        if builtin_id == 6:  # range
            if len(args) == 1:
                return RangeValue(0, self._index_int(args[0]))
            if len(args) == 2:
                return RangeValue(self._index_int(args[0]), self._index_int(args[1]))
            self._raise("TypeError", "range() takes 1 or 2 arguments")
        if builtin_id == 7:  # print
            self._arity(args, 1, "print")
            self._emit(args[0])
            return None
        if builtin_id == 8:  # sym_string — replay: next recorded input
            self._arity(args, 1, "sym_string")
            if not isinstance(args[0], str):
                self._raise("TypeError", "sym_string() expects a string seed")
            return self._next_symbolic(args[0])
        if builtin_id == 9:  # sym_int(seed, lo, hi)
            if len(args) != 3:
                self._raise("TypeError", "sym_int() takes 3 arguments")
            return self._next_symbolic(self._index_int(args[0]))
        if builtin_id == 10:  # re_match (native extension)
            if len(args) != 2 or not isinstance(args[0], str) or not isinstance(args[1], str):
                self._raise("TypeError", "re_match(pattern, text)")
            return _re_match(args[0], args[1])
        if builtin_id == 11:  # abs
            self._arity(args, 1, "abs")
            return abs(self._index_int(args[0]))
        if builtin_id == 12:  # min
            self._arity(args, 2, "min")
            return min(self._index_int(args[0]), self._index_int(args[1]))
        if builtin_id == 13:  # max
            self._arity(args, 2, "max")
            return max(self._index_int(args[0]), self._index_int(args[1]))
        self._raise("TypeError", f"unknown builtin {builtin_id}")

    def _next_symbolic(self, seed):
        if self._next_input < len(self._inputs):
            value = self._inputs[self._next_input]
            self._next_input += 1
            if isinstance(seed, str):
                if isinstance(value, str):
                    return value
                return "".join(chr(v & 0xFF) for v in value)
            if isinstance(value, (list, tuple)):
                return int(value[0]) if value else seed
            return int(value)
        return seed

    def _arity(self, args, n: int, name: str) -> None:
        if len(args) != n:
            self._raise("TypeError", f"{name}() takes {n} argument(s)")

    def _to_str(self, value) -> str:
        if isinstance(value, bool):
            return "True" if value else "False"
        if isinstance(value, int):
            return str(value)
        if isinstance(value, str):
            return value
        if value is None:
            return "None"
        self._raise("TypeError", "unsupported str() argument")

    def _to_int(self, value) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, str):
            text = value.strip()
            negative = text.startswith("-")
            if negative:
                text = text[1:]
            if not text or not all(c.isdigit() for c in text):
                self._raise("ValueError", f"invalid literal for int(): {value!r}")
            return -int(text) if negative else int(text)
        self._raise("TypeError", "unsupported int() argument")

    def _emit(self, value) -> None:
        """Encode a printed value as output words (same scheme as Clay)."""
        out = self.result.output
        if isinstance(value, bool):
            out.extend([2, int(value)])
        elif isinstance(value, int):
            out.extend([1, value])
        elif isinstance(value, str):
            out.append(4)
            out.append(len(value))
            out.extend(ord(c) for c in value)
        elif value is None:
            out.append(3)
        elif isinstance(value, list):
            out.extend([5, len(value)])
        elif isinstance(value, dict):
            out.extend([6, len(value)])
        else:
            out.extend([9, 0])

    # -- methods -------------------------------------------------------------------------

    def _call_method(self, obj, method_id: int, args: List[object]):
        if method_id < 20:
            if not isinstance(obj, str):
                self._raise("TypeError", "string method on non-string")
            return self._str_method(obj, method_id, args)
        if method_id < 30:
            if not isinstance(obj, list):
                self._raise("TypeError", "list method on non-list")
            if method_id == 20:
                self._arity(args, 1, "append")
                obj.append(args[0])
                return None
            if method_id == 21:
                if args:
                    self._raise("TypeError", "pop() takes no arguments")
                if not obj:
                    self._raise("IndexError", "pop from empty list")
                return obj.pop()
        if method_id < 40:
            if not isinstance(obj, dict):
                self._raise("TypeError", "dict method on non-dict")
            if method_id == 30:
                if len(args) not in (1, 2):
                    self._raise("TypeError", "get() takes 1 or 2 arguments")
                default = args[1] if len(args) == 2 else None
                return obj.get(self._dict_key(args[0]), default)
            if method_id == 31:
                return list(obj.keys())
            if method_id == 32:
                return list(obj.values())
        self._raise("TypeError", f"unknown method {method_id}")

    def _str_method(self, obj: str, method_id: int, args: List[object]):
        def str_arg(i: int) -> str:
            if i >= len(args) or not isinstance(args[i], str):
                self._raise("TypeError", "expected a string argument")
            return args[i]

        if method_id == 1:  # find
            return obj.find(str_arg(0))
        if method_id == 2:  # startswith
            return obj.startswith(str_arg(0))
        if method_id == 3:  # endswith
            return obj.endswith(str_arg(0))
        if method_id == 4:  # strip
            if args:
                self._raise("TypeError", "strip() takes no arguments")
            return obj.strip(_WHITESPACE)
        if method_id == 5:  # split
            sep = str_arg(0)
            if sep == "":
                self._raise("ValueError", "empty separator")
            return obj.split(sep)
        if method_id == 6:
            return _ascii_lower(obj)
        if method_id == 7:
            return _ascii_upper(obj)
        if method_id == 8:  # isdigit
            return len(obj) > 0 and all("0" <= c <= "9" for c in obj)
        if method_id == 9:  # isalpha
            return len(obj) > 0 and all(
                "a" <= c <= "z" or "A" <= c <= "Z" for c in obj
            )
        if method_id == 10:  # join
            if len(args) != 1 or not isinstance(args[0], list):
                self._raise("TypeError", "join() expects a list")
            for item in args[0]:
                if not isinstance(item, str):
                    self._raise("TypeError", "join() expects strings")
            return obj.join(args[0])
        if method_id == 11:  # replace
            old = str_arg(0)
            new = str_arg(1)
            if old == "":
                return obj
            return obj.replace(old, new)
        self._raise("TypeError", f"unknown string method {method_id}")


def _ascii_lower(text: str) -> str:
    return "".join(
        chr(ord(c) + 32) if "A" <= c <= "Z" else c for c in text
    )


def _ascii_upper(text: str) -> str:
    return "".join(
        chr(ord(c) - 32) if "a" <= c <= "z" else c for c in text
    )


def _re_match(pattern: str, text: str) -> bool:
    """Regex-lite matcher: literals, '.', and postfix '*' (full match).

    The Clay interpreter carries the same matcher as a native extension
    module; both implementations must agree.
    """
    return _re_match_here(pattern, 0, text, 0)


def _re_match_here(pattern: str, pi: int, text: str, ti: int) -> bool:
    if pi == len(pattern):
        return ti == len(text)
    if pi + 1 < len(pattern) and pattern[pi + 1] == "*":
        if _re_match_here(pattern, pi + 2, text, ti):
            return True
        while ti < len(text) and (pattern[pi] == "." or text[ti] == pattern[pi]):
            ti += 1
            if _re_match_here(pattern, pi + 2, text, ti):
                return True
        return False
    if ti < len(text) and (pattern[pi] == "." or text[ti] == pattern[pi]):
        return _re_match_here(pattern, pi + 1, text, ti + 1)
    return False


class _BudgetExceeded(Exception):
    pass


_EXHAUSTED = object()
