"""Program-image builder: serialises compiled MiniPy bytecode into the
word memory the Clay interpreter reads at IMAGE_BASE.

Layout (all word-addressed; must match minipy_interp.clay):

    header  [n_codes, code_table_ptr, n_globals, init_table_ptr,
             n_inits, main_code_index]
    code    [code_id, argcount, nlocals, n_instrs, instrs_ptr,
             nconsts, consts_ptr]
    consts  runtime value layouts (int/bool/none/str), shared by identity
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import InterpreterError
from repro.interpreters.minipy.bytecode import CodeObject, CompiledModule

#: must equal IMAGE_BASE in rt_core.clay.
IMAGE_BASE = 1048576

_HEADER_WORDS = 16


class ImageBuilder:
    """Sequential word allocator over the image region."""

    def __init__(self, base: int = IMAGE_BASE):
        self.base = base
        self.words: Dict[int, int] = {}
        self.cursor = base + _HEADER_WORDS
        self._const_cache: Dict[Tuple, int] = {}

    def emit(self, values: List[int]) -> int:
        addr = self.cursor
        for offset, value in enumerate(values):
            self.words[addr + offset] = value
        self.cursor += len(values)
        return addr

    def encode_const(self, value) -> int:
        key: Tuple
        if isinstance(value, bool):
            key = ("bool", value)
            encoded = [2, int(value)]
        elif isinstance(value, int):
            key = ("int", value)
            encoded = [1, value]
        elif value is None:
            key = ("none",)
            encoded = [3]
        elif isinstance(value, str):
            key = ("str", value)
            encoded = [4, len(value)] + [ord(c) for c in value]
        else:
            raise InterpreterError(f"unsupported constant {value!r}")
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        addr = self.emit(encoded)
        self._const_cache[key] = addr
        return addr

    def encode_code(self, code: CodeObject) -> int:
        instr_words: List[int] = []
        for op, arg in code.instrs:
            instr_words.append(op)
            instr_words.append(arg)
        instrs_ptr = self.emit(instr_words)
        const_ptrs = [self.encode_const(c) for c in code.consts]
        consts_ptr = self.emit(const_ptrs or [0])
        return self.emit(
            [
                code.code_id,
                code.argcount,
                code.nlocals,
                len(code.instrs),
                instrs_ptr,
                len(code.consts),
                consts_ptr,
            ]
        )


def build_image(module: CompiledModule, base: int = IMAGE_BASE) -> Dict[int, int]:
    """Serialise ``module`` into a word map ready to merge into static data."""
    builder = ImageBuilder(base)
    code_ptrs = [builder.encode_code(code) for code in module.codes]
    code_table_ptr = builder.emit(code_ptrs)

    init_entries: List[int] = []
    for slot, (kind, value) in sorted(module.global_inits.items()):
        if kind == "builtin":
            value_ptr = builder.emit([8, value])
        elif kind == "exctype":
            value_ptr = builder.emit([9, value])
        else:
            raise InterpreterError(f"unknown global init kind {kind!r}")
        init_entries.extend([slot, value_ptr])
    init_table_ptr = builder.emit(init_entries or [0])

    header = [
        len(module.codes),
        code_table_ptr,
        max(len(module.global_names), 1),
        init_table_ptr,
        len(module.global_inits),
        module.main_code,
    ]
    for offset, value in enumerate(header):
        builder.words[base + offset] = value
    return builder.words
