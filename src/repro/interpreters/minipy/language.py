"""MiniPy's :class:`~repro.api.language.GuestLanguage` registration.

This module (and its MiniLua sibling) is the only place the name
"minipy" may be special-cased; every other consumer goes through
``repro.api.get_language``.
"""

from __future__ import annotations

from repro.api.language import GuestLanguage, escape_double_quoted, register_language

#: Render ``text`` as a MiniPy string literal: printable ASCII passes
#: through; quotes/backslashes are escaped; everything else becomes
#: ``\xNN`` (the frontend lexer's escape set).
quote_minipy = escape_double_quoted


def _engine_factory(source: str, config=None, solver=None):
    from repro.interpreters.minipy.engine import MiniPyEngine

    return MiniPyEngine(source, config, solver=solver)


def _host_vm_factory(module, symbolic_inputs):
    from repro.interpreters.minipy.hostvm import HostVM

    return HostVM(module, symbolic_inputs=symbolic_inputs)


MINIPY = register_language(
    GuestLanguage(
        name="minipy",
        comment_prefix="#",
        engine_factory=_engine_factory,
        quote_literal=quote_minipy,
        host_vm_factory=_host_vm_factory,
        description="Python-subset guest (the paper's CPython case study, §5.1)",
    )
)
