"""MiniPy bytecode: opcodes, code objects, and shared tables.

Instruction encoding is two words — (opcode, arg) — exactly what the
Clay interpreter reads from the program image.  The HLPC reported through
``log_pc`` is ``code_id * 2**16 + instruction_offset``, mirroring the
paper's "block address + offset" construction for CPython.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Op:
    """MiniPy opcodes (values are shared with the Clay interpreter)."""

    NOP = 0
    LOAD_CONST = 1
    LOAD_LOCAL = 2
    STORE_LOCAL = 3
    LOAD_GLOBAL = 4
    STORE_GLOBAL = 5
    BINARY = 6
    UNARY = 7
    JUMP = 8
    POP_JUMP_IF_FALSE = 9
    POP_JUMP_IF_TRUE = 10
    CALL_FUNCTION = 11
    RETURN_VALUE = 12
    BUILD_LIST = 13
    BUILD_DICT = 14
    BINARY_SUBSCR = 15
    STORE_SUBSCR = 16
    LOAD_METHOD = 17
    CALL_METHOD = 18
    RAISE = 19
    SETUP_EXCEPT = 20
    POP_BLOCK = 21
    GET_ITER = 22
    FOR_ITER = 23
    DUP = 24
    POP = 25
    SLICE = 26
    MAKE_FUNCTION = 27
    LOAD_EXCTYPE = 28
    EXC_MATCH = 29

    NAMES = {
        value: name
        for name, value in vars().items()
        if isinstance(value, int) and not name.startswith("_")
    }


class BinOp:
    """Arg values of the BINARY opcode."""

    ADD = 0
    SUB = 1
    MUL = 2
    FLOORDIV = 3
    MOD = 4
    EQ = 5
    NE = 6
    LT = 7
    LE = 8
    GT = 9
    GE = 10
    IN = 11
    NOT_IN = 12

    NAMES = {
        0: "+", 1: "-", 2: "*", 3: "//", 4: "%", 5: "==", 6: "!=",
        7: "<", 8: "<=", 9: ">", 10: ">=", 11: "in", 12: "not in",
    }


class UnOp:
    NEG = 0
    NOT = 1


#: builtin function ids (global slots preloaded by the loader).
BUILTINS: Dict[str, int] = {
    "len": 1,
    "ord": 2,
    "chr": 3,
    "str": 4,
    "int": 5,
    "range": 6,
    "print": 7,
    "sym_string": 8,
    "sym_int": 9,
    "re_match": 10,   # native extension module (regex-lite, in Clay)
    "abs": 11,
    "min": 12,
    "max": 13,
}

#: method name ids used by LOAD_METHOD.
METHODS: Dict[str, int] = {
    # string methods
    "find": 1,
    "startswith": 2,
    "endswith": 3,
    "strip": 4,
    "split": 5,
    "lower": 6,
    "upper": 7,
    "isdigit": 8,
    "isalpha": 9,
    "join": 10,
    "replace": 11,
    # list methods
    "append": 20,
    "pop": 21,
    # dict methods
    "get": 30,
    "keys": 31,
    "values": 32,
}

#: builtin exception type ids (custom exceptions are assigned from 100).
BUILTIN_EXCEPTIONS: Dict[str, int] = {
    "Exception": 1,
    "ValueError": 2,
    "TypeError": 3,
    "KeyError": 4,
    "IndexError": 5,
    "AssertionError": 6,
    "ZeroDivisionError": 7,
    "RuntimeError": 8,
    "StopIteration": 9,
}

FIRST_CUSTOM_EXCEPTION = 100


@dataclass
class CodeObject:
    """One compiled block: the module body or a function body."""

    code_id: int
    name: str
    argcount: int
    nlocals: int
    #: flat (opcode, arg) pairs.
    instrs: List[Tuple[int, int]] = field(default_factory=list)
    #: constant pool: ints, strs, True/False/None.
    consts: List[object] = field(default_factory=list)
    #: source line of each instruction (coverage + diagnostics).
    lines: List[int] = field(default_factory=list)
    #: local variable names, index order (diagnostics).
    varnames: List[str] = field(default_factory=list)

    def disassemble(self) -> str:
        out = [f"code {self.code_id} <{self.name}> args={self.argcount} locals={self.nlocals}"]
        for index, (op, arg) in enumerate(self.instrs):
            name = Op.NAMES.get(op, str(op))
            out.append(f"  {index:4d}: {name} {arg}")
        return "\n".join(out)


@dataclass
class CompiledModule:
    """A fully compiled MiniPy program (module body + functions)."""

    codes: List[CodeObject]
    main_code: int
    #: global name -> slot.
    global_names: Dict[str, int]
    #: global slots to preload: slot -> ("builtin", id) | ("exctype", id) | ("func", code_id)
    global_inits: Dict[int, Tuple[str, int]]
    #: exception name -> type id (builtins + customs).
    exception_ids: Dict[str, int]
    #: source lines that hold executable code (coverable LOC).
    coverable_lines: List[int] = field(default_factory=list)
    source: str = ""

    def code_by_name(self, name: str) -> Optional[CodeObject]:
        for code in self.codes:
            if code.name == name:
                return code
        return None

    def exception_name(self, type_id: int) -> str:
        for name, known in self.exception_ids.items():
            if known == type_id:
                return name
        return f"<exc:{type_id}>"
