"""MiniPy source → bytecode compiler (the host-side toolchain).

The paper keeps the target language's own compiler: CPython compiles
source to bytecode outside the symbolic VM, and only the interpreter loop
runs symbolically.  This module is the analogue for MiniPy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import MiniLangCompileError
from repro.interpreters.minipy import frontend as F
from repro.interpreters.minipy.bytecode import (
    BUILTIN_EXCEPTIONS,
    BUILTINS,
    BinOp,
    CodeObject,
    CompiledModule,
    FIRST_CUSTOM_EXCEPTION,
    METHODS,
    Op,
    UnOp,
)

_BINOP_IDS = {
    "+": BinOp.ADD, "-": BinOp.SUB, "*": BinOp.MUL, "//": BinOp.FLOORDIV,
    "%": BinOp.MOD, "==": BinOp.EQ, "!=": BinOp.NE, "<": BinOp.LT,
    "<=": BinOp.LE, ">": BinOp.GT, ">=": BinOp.GE, "in": BinOp.IN,
    "not in": BinOp.NOT_IN,
}


class _Ctx:
    """Per-code-object compilation context."""

    def __init__(self, code: CodeObject, local_names: Optional[Dict[str, int]]):
        self.code = code
        self.locals = local_names  # None for the module body
        self.loops: List[tuple] = []  # (kind, head_label_fixups, break_fixups)

    def emit(self, op: int, arg: int = 0, line: int = 0) -> int:
        self.code.instrs.append((op, arg))
        self.code.lines.append(line)
        return len(self.code.instrs) - 1

    def here(self) -> int:
        return len(self.code.instrs)

    def patch(self, index: int, target: int) -> None:
        op, _ = self.code.instrs[index]
        self.code.instrs[index] = (op, target)

    def const(self, value) -> int:
        for index, existing in enumerate(self.code.consts):
            if type(existing) is type(value) and existing == value:
                return index
        self.code.consts.append(value)
        return len(self.code.consts) - 1


class Compiler:
    """Compiles one MiniPy module (package sources + test driver)."""

    def __init__(self):
        self.codes: List[CodeObject] = []
        self.global_names: Dict[str, int] = {}
        self.global_inits: Dict[int, tuple] = {}
        self.exception_ids: Dict[str, int] = dict(BUILTIN_EXCEPTIONS)
        self._next_custom_exc = FIRST_CUSTOM_EXCEPTION
        self._func_codes: Dict[str, int] = {}

    # -- public ----------------------------------------------------------------

    def compile(self, source: str) -> CompiledModule:
        module = F.parse_source(source)
        main = CodeObject(code_id=0, name="<module>", argcount=0, nlocals=0)
        self.codes.append(main)
        ctx = _Ctx(main, local_names=None)
        self._compile_block(ctx, module.body)
        ctx.emit(Op.LOAD_CONST, ctx.const(None))
        ctx.emit(Op.RETURN_VALUE)
        coverable = sorted(
            {line for code in self.codes for line in code.lines if line > 0}
        )
        return CompiledModule(
            codes=self.codes,
            main_code=0,
            global_names=dict(self.global_names),
            global_inits=dict(self.global_inits),
            exception_ids=dict(self.exception_ids),
            coverable_lines=coverable,
            source=source,
        )

    # -- name handling ------------------------------------------------------------

    def _global_slot(self, name: str) -> int:
        slot = self.global_names.get(name)
        if slot is None:
            slot = len(self.global_names)
            self.global_names[name] = slot
            if name in BUILTINS:
                self.global_inits[slot] = ("builtin", BUILTINS[name])
            elif name in self.exception_ids:
                self.global_inits[slot] = ("exctype", self.exception_ids[name])
        return slot

    def _exception_id(self, name: str) -> int:
        known = self.exception_ids.get(name)
        if known is not None:
            return known
        exc_id = self._next_custom_exc
        self._next_custom_exc += 1
        self.exception_ids[name] = exc_id
        return exc_id

    @staticmethod
    def _collect_locals(params: List[str], body: List[F.Node]) -> Dict[str, int]:
        names: Dict[str, int] = {}
        for param in params:
            if param in names:
                raise MiniLangCompileError(f"duplicate parameter {param!r}")
            names[param] = len(names)

        def note(name: str) -> None:
            if name not in names:
                names[name] = len(names)

        def walk(stmts: List[F.Node]) -> None:
            for stmt in stmts:
                if isinstance(stmt, F.AssignStmt) and isinstance(stmt.target, F.NameExpr):
                    note(stmt.target.ident)
                elif isinstance(stmt, F.AugAssignStmt):
                    note(stmt.target.ident)
                elif isinstance(stmt, F.ForStmt):
                    note(stmt.var)
                    walk(stmt.body)
                elif isinstance(stmt, F.IfStmt):
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, F.WhileStmt):
                    walk(stmt.body)
                elif isinstance(stmt, F.TryStmt):
                    walk(stmt.body)
                    for handler in stmt.handlers:
                        if handler.alias:
                            note(handler.alias)
                        walk(handler.body)
                elif isinstance(stmt, F.FuncDef):
                    raise MiniLangCompileError(
                        f"nested function {stmt.name!r} is not supported"
                    )

        walk(body)
        return names

    # -- statements -----------------------------------------------------------------

    def _compile_block(self, ctx: _Ctx, stmts: List[F.Node]) -> None:
        for stmt in stmts:
            self._compile_stmt(ctx, stmt)

    def _compile_stmt(self, ctx: _Ctx, stmt: F.Node) -> None:
        line = stmt.line
        if isinstance(stmt, F.FuncDef):
            self._compile_funcdef(ctx, stmt)
            return
        if isinstance(stmt, F.AssignStmt):
            if isinstance(stmt.target, F.NameExpr):
                self._compile_expr(ctx, stmt.value)
                self._emit_store_name(ctx, stmt.target.ident, line)
            else:
                target = stmt.target
                assert isinstance(target, F.SubscriptExpr)
                self._compile_expr(ctx, stmt.value)
                self._compile_expr(ctx, target.obj)
                self._compile_expr(ctx, target.index)
                ctx.emit(Op.STORE_SUBSCR, 0, line)
            return
        if isinstance(stmt, F.AugAssignStmt):
            self._compile_name_load(ctx, stmt.target.ident, line)
            self._compile_expr(ctx, stmt.value)
            ctx.emit(Op.BINARY, _BINOP_IDS[stmt.op], line)
            self._emit_store_name(ctx, stmt.target.ident, line)
            return
        if isinstance(stmt, F.ExprStmtN):
            self._compile_expr(ctx, stmt.expr)
            ctx.emit(Op.POP, 0, line)
            return
        if isinstance(stmt, F.IfStmt):
            self._compile_expr(ctx, stmt.cond)
            jump_false = ctx.emit(Op.POP_JUMP_IF_FALSE, 0, line)
            self._compile_block(ctx, stmt.body)
            if stmt.orelse:
                jump_end = ctx.emit(Op.JUMP, 0, line)
                ctx.patch(jump_false, ctx.here())
                self._compile_block(ctx, stmt.orelse)
                ctx.patch(jump_end, ctx.here())
            else:
                ctx.patch(jump_false, ctx.here())
            return
        if isinstance(stmt, F.WhileStmt):
            head = ctx.here()
            self._compile_expr(ctx, stmt.cond)
            jump_end = ctx.emit(Op.POP_JUMP_IF_FALSE, 0, line)
            ctx.loops.append(["while", head, []])
            self._compile_block(ctx, stmt.body)
            _kind, _head, breaks = ctx.loops.pop()
            ctx.emit(Op.JUMP, head, line)
            end = ctx.here()
            ctx.patch(jump_end, end)
            for fixup in breaks:
                ctx.patch(fixup, end)
            return
        if isinstance(stmt, F.ForStmt):
            self._compile_expr(ctx, stmt.iterable)
            ctx.emit(Op.GET_ITER, 0, line)
            head = ctx.here()
            for_iter = ctx.emit(Op.FOR_ITER, 0, line)
            self._emit_store_name(ctx, stmt.var, line)
            ctx.loops.append(["for", head, []])
            self._compile_block(ctx, stmt.body)
            _kind, _head, breaks = ctx.loops.pop()
            ctx.emit(Op.JUMP, head, line)
            pop_out = ctx.here()
            ctx.emit(Op.POP, 0, line)  # break target: discard the iterator
            end = ctx.here()
            ctx.patch(for_iter, end)
            for fixup in breaks:
                ctx.patch(fixup, pop_out)
            return
        if isinstance(stmt, F.BreakStmt):
            if not ctx.loops:
                raise MiniLangCompileError(f"line {line}: 'break' outside loop")
            fixup = ctx.emit(Op.JUMP, 0, line)
            ctx.loops[-1][2].append(fixup)
            return
        if isinstance(stmt, F.ContinueStmt):
            if not ctx.loops:
                raise MiniLangCompileError(f"line {line}: 'continue' outside loop")
            ctx.emit(Op.JUMP, ctx.loops[-1][1], line)
            return
        if isinstance(stmt, F.PassStmt):
            ctx.emit(Op.NOP, 0, line)
            return
        if isinstance(stmt, F.ReturnStmt):
            if ctx.locals is None:
                raise MiniLangCompileError(f"line {line}: 'return' outside function")
            if stmt.value is None:
                ctx.emit(Op.LOAD_CONST, ctx.const(None), line)
            else:
                self._compile_expr(ctx, stmt.value)
            ctx.emit(Op.RETURN_VALUE, 0, line)
            return
        if isinstance(stmt, F.RaiseStmt):
            exc_id = self._exception_id(stmt.exc_name)
            ctx.emit(Op.LOAD_EXCTYPE, exc_id, line)
            nargs = 0
            if stmt.message is not None:
                self._compile_expr(ctx, stmt.message)
                nargs = 1
            ctx.emit(Op.CALL_FUNCTION, nargs, line)
            ctx.emit(Op.RAISE, 0, line)
            return
        if isinstance(stmt, F.AssertStmt):
            self._compile_expr(ctx, stmt.cond)
            jump_ok = ctx.emit(Op.POP_JUMP_IF_TRUE, 0, line)
            exc_id = self._exception_id("AssertionError")
            ctx.emit(Op.LOAD_EXCTYPE, exc_id, line)
            ctx.emit(Op.CALL_FUNCTION, 0, line)
            ctx.emit(Op.RAISE, 0, line)
            ctx.patch(jump_ok, ctx.here())
            return
        if isinstance(stmt, F.TryStmt):
            self._compile_try(ctx, stmt)
            return
        raise MiniLangCompileError(f"unsupported statement {stmt!r}")

    def _compile_funcdef(self, ctx: _Ctx, stmt: F.FuncDef) -> None:
        if ctx.locals is not None:
            raise MiniLangCompileError(
                f"line {stmt.line}: nested function {stmt.name!r} not supported"
            )
        local_names = self._collect_locals(stmt.params, stmt.body)
        code = CodeObject(
            code_id=len(self.codes),
            name=stmt.name,
            argcount=len(stmt.params),
            nlocals=len(local_names),
            varnames=list(local_names),
        )
        self.codes.append(code)
        self._func_codes[stmt.name] = code.code_id
        inner = _Ctx(code, local_names=dict(local_names))
        self._compile_block(inner, stmt.body)
        inner.emit(Op.LOAD_CONST, inner.const(None), stmt.line)
        inner.emit(Op.RETURN_VALUE, 0, stmt.line)
        ctx.emit(Op.MAKE_FUNCTION, code.code_id, stmt.line)
        self._emit_store_name(ctx, stmt.name, stmt.line)

    def _compile_try(self, ctx: _Ctx, stmt: F.TryStmt) -> None:
        line = stmt.line
        setup = ctx.emit(Op.SETUP_EXCEPT, 0, line)
        self._compile_block(ctx, stmt.body)
        ctx.emit(Op.POP_BLOCK, 0, line)
        jump_end = ctx.emit(Op.JUMP, 0, line)
        handler_start = ctx.here()
        ctx.patch(setup, handler_start)
        end_fixups = [jump_end]
        # Handler entry: the exception object is on the stack.
        for clause in stmt.handlers:
            next_fixup = None
            if clause.exc_name is not None:
                exc_id = self._exception_id(clause.exc_name)
                ctx.emit(Op.DUP, 0, clause.line)
                ctx.emit(Op.LOAD_EXCTYPE, exc_id, clause.line)
                ctx.emit(Op.EXC_MATCH, 0, clause.line)
                next_fixup = ctx.emit(Op.POP_JUMP_IF_FALSE, 0, clause.line)
            if clause.alias is not None:
                self._emit_store_name(ctx, clause.alias, clause.line)
            else:
                ctx.emit(Op.POP, 0, clause.line)
            self._compile_block(ctx, clause.body)
            end_fixups.append(ctx.emit(Op.JUMP, 0, clause.line))
            if next_fixup is not None:
                ctx.patch(next_fixup, ctx.here())
        # No clause matched: re-raise (exception object still on the stack).
        ctx.emit(Op.RAISE, 0, line)
        end = ctx.here()
        for fixup in end_fixups:
            ctx.patch(fixup, end)

    # -- expressions -------------------------------------------------------------------

    def _emit_store_name(self, ctx: _Ctx, name: str, line: int) -> None:
        if ctx.locals is not None and name in ctx.locals:
            ctx.emit(Op.STORE_LOCAL, ctx.locals[name], line)
        else:
            ctx.emit(Op.STORE_GLOBAL, self._global_slot(name), line)

    def _compile_name_load(self, ctx: _Ctx, name: str, line: int) -> None:
        if ctx.locals is not None and name in ctx.locals:
            ctx.emit(Op.LOAD_LOCAL, ctx.locals[name], line)
        else:
            ctx.emit(Op.LOAD_GLOBAL, self._global_slot(name), line)

    def _compile_expr(self, ctx: _Ctx, expr: F.Node) -> None:
        line = expr.line
        if isinstance(expr, F.NumLit):
            ctx.emit(Op.LOAD_CONST, ctx.const(expr.value), line)
            return
        if isinstance(expr, F.StrLit):
            ctx.emit(Op.LOAD_CONST, ctx.const(expr.value), line)
            return
        if isinstance(expr, F.BoolLit):
            ctx.emit(Op.LOAD_CONST, ctx.const(expr.value), line)
            return
        if isinstance(expr, F.NoneLit):
            ctx.emit(Op.LOAD_CONST, ctx.const(None), line)
            return
        if isinstance(expr, F.NameExpr):
            self._compile_name_load(ctx, expr.ident, line)
            return
        if isinstance(expr, F.ListExpr):
            for item in expr.items:
                self._compile_expr(ctx, item)
            ctx.emit(Op.BUILD_LIST, len(expr.items), line)
            return
        if isinstance(expr, F.DictExpr):
            for key, value in zip(expr.keys, expr.values):
                self._compile_expr(ctx, key)
                self._compile_expr(ctx, value)
            ctx.emit(Op.BUILD_DICT, len(expr.keys), line)
            return
        if isinstance(expr, F.BinExprN):
            self._compile_expr(ctx, expr.left)
            self._compile_expr(ctx, expr.right)
            ctx.emit(Op.BINARY, _BINOP_IDS[expr.op], line)
            return
        if isinstance(expr, F.BoolExprN):
            # Boolean-valued short-circuit (documented deviation: the result
            # is always True/False, not the last operand).
            self._compile_expr(ctx, expr.left)
            if expr.op == "and":
                jump_short = ctx.emit(Op.POP_JUMP_IF_FALSE, 0, line)
                self._compile_expr(ctx, expr.right)
                jump_short2 = ctx.emit(Op.POP_JUMP_IF_FALSE, 0, line)
                ctx.emit(Op.LOAD_CONST, ctx.const(True), line)
                jump_end = ctx.emit(Op.JUMP, 0, line)
                ctx.patch(jump_short, ctx.here())
                ctx.patch(jump_short2, ctx.here())
                ctx.emit(Op.LOAD_CONST, ctx.const(False), line)
                ctx.patch(jump_end, ctx.here())
            else:
                jump_short = ctx.emit(Op.POP_JUMP_IF_TRUE, 0, line)
                self._compile_expr(ctx, expr.right)
                jump_short2 = ctx.emit(Op.POP_JUMP_IF_TRUE, 0, line)
                ctx.emit(Op.LOAD_CONST, ctx.const(False), line)
                jump_end = ctx.emit(Op.JUMP, 0, line)
                ctx.patch(jump_short, ctx.here())
                ctx.patch(jump_short2, ctx.here())
                ctx.emit(Op.LOAD_CONST, ctx.const(True), line)
                ctx.patch(jump_end, ctx.here())
            return
        if isinstance(expr, F.UnaryExprN):
            self._compile_expr(ctx, expr.operand)
            ctx.emit(Op.UNARY, UnOp.NEG if expr.op == "-" else UnOp.NOT, line)
            return
        if isinstance(expr, F.CallExpr):
            func = expr.func
            if isinstance(func, F.NameExpr) and func.ident in self.exception_ids and (
                ctx.locals is None or func.ident not in ctx.locals
            ) and func.ident not in self.global_names:
                # Calling an exception type builds an instance.
                ctx.emit(Op.LOAD_EXCTYPE, self.exception_ids[func.ident], line)
            else:
                self._compile_expr(ctx, func)
            for arg in expr.args:
                self._compile_expr(ctx, arg)
            ctx.emit(Op.CALL_FUNCTION, len(expr.args), line)
            return
        if isinstance(expr, F.MethodCall):
            method_id = METHODS.get(expr.method)
            if method_id is None:
                raise MiniLangCompileError(
                    f"line {line}: unsupported method {expr.method!r}"
                )
            self._compile_expr(ctx, expr.obj)
            ctx.emit(Op.LOAD_METHOD, method_id, line)
            for arg in expr.args:
                self._compile_expr(ctx, arg)
            ctx.emit(Op.CALL_METHOD, len(expr.args), line)
            return
        if isinstance(expr, F.SubscriptExpr):
            self._compile_expr(ctx, expr.obj)
            self._compile_expr(ctx, expr.index)
            ctx.emit(Op.BINARY_SUBSCR, 0, line)
            return
        if isinstance(expr, F.SliceExpr):
            self._compile_expr(ctx, expr.obj)
            mask = 0
            if expr.lo is not None:
                self._compile_expr(ctx, expr.lo)
                mask |= 1
            if expr.hi is not None:
                self._compile_expr(ctx, expr.hi)
                mask |= 2
            ctx.emit(Op.SLICE, mask, line)
            return
        raise MiniLangCompileError(f"unsupported expression {expr!r}")


def compile_source(source: str) -> CompiledModule:
    """Compile a MiniPy module (library sources + test driver)."""
    return Compiler().compile(source)
