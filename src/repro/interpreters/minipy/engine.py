"""MiniPy engine facade: source → symbolic execution → replayable tests.

Usage::

    engine = MiniPyEngine(source, ChefConfig(strategy="cupa-path"))
    result = engine.run()
    for case in result.hl_test_cases:
        replayed = engine.replay(case)
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Set, Tuple

from repro.chef.engine import Chef, RunResult
from repro.chef.options import ChefConfig
from repro.chef.testcase import TestCase, TestSuite
from repro.clay import compile_program
from repro.clay.codegen import CompiledClay
from repro.interpreters.minipy.bytecode import CompiledModule
from repro.interpreters.minipy.compiler import compile_source
from repro.interpreters.minipy.hostvm import HostRunResult, HostVM
from repro.interpreters.minipy.image import build_image
from repro.lowlevel.program import Program
from repro.solver.backend import SolverBackend

_CLAY_DIR = pathlib.Path(__file__).resolve().parent.parent / "clay_src"

#: concatenation order of the interpreter's Clay translation units.
MINIPY_CLAY_FILES = (
    "rt_core.clay",
    "rt_string.clay",
    "rt_list.clay",
    "rt_dict.clay",
    "minipy_interp.clay",
)

_interp_cache: Dict[Tuple[str, ...], CompiledClay] = {}


def clay_source(files=MINIPY_CLAY_FILES) -> str:
    """Concatenated Clay source of the interpreter (for effort counting)."""
    return "\n".join((_CLAY_DIR / name).read_text() for name in files)


def compiled_interpreter(files=MINIPY_CLAY_FILES) -> CompiledClay:
    """Compile (and cache) the Clay interpreter."""
    key = tuple(files)
    cached = _interp_cache.get(key)
    if cached is None:
        cached = compile_program(clay_source(files))
        _interp_cache[key] = cached
    return cached


class MiniPyEngine:
    """A Chef-generated symbolic execution engine for MiniPy."""

    def __init__(
        self,
        source: str,
        config: Optional[ChefConfig] = None,
        solver: Optional[SolverBackend] = None,
    ):
        self.source = source
        self.config = config if config is not None else ChefConfig()
        self.solver = solver
        self.module: CompiledModule = compile_source(source)
        self._clay = compiled_interpreter()

    # -- build ---------------------------------------------------------------

    def build_program(self) -> Program:
        """Fresh LIR program: interpreter + program image + build flags."""
        program = Program(entry="main")
        for name in self._clay.program.functions:
            program.add_function(self._clay.program.functions[name])
        program.static_data = dict(self._clay.program.static_data)
        program.data_end = self._clay.program.data_end
        program.static_data.update(build_image(self.module))
        flags = self.config.interpreter_options.as_flag_words()
        for name, value in flags.items():
            program.static_data[self._clay.symbols[name]] = value
        program.finalize()
        return program

    # -- symbolic execution ------------------------------------------------------

    def make_chef(self) -> Chef:
        return Chef(self.build_program(), self.config, solver=self.solver)

    def run(self) -> RunResult:
        return self.make_chef().run()

    # -- replay & coverage ----------------------------------------------------------

    @staticmethod
    def ordered_inputs(case: TestCase) -> List[List[int]]:
        """Symbolic buffers in creation order (b0, b1, ...)."""
        keys = sorted(case.inputs, key=lambda k: int(k[1:]))
        return [case.inputs[k] for k in keys]

    def replay(self, case: TestCase) -> HostRunResult:
        """Re-execute a generated test in the vanilla host VM (§6.1)."""
        vm = HostVM(self.module, symbolic_inputs=self.ordered_inputs(case))
        return vm.run()

    def coverage(self, suite: TestSuite, replay_all: bool = False) -> Tuple[Set[int], int]:
        """Replay tests and report (covered lines, coverable line count)."""
        covered: Set[int] = set()
        cases = suite.cases if replay_all else suite.high_level_tests()
        for case in cases:
            result = self.replay(case)
            covered |= result.covered_lines
        coverable = set(self.module.coverable_lines)
        return covered & coverable, len(coverable)

    def exception_name(self, type_id: int) -> str:
        return self.module.exception_name(type_id)
