"""MiniPy: the Python-subset language used to reproduce the paper's
CPython case study (§5.1)."""

from repro.interpreters.minipy.bytecode import CodeObject, CompiledModule, Op
from repro.interpreters.minipy.compiler import compile_source
from repro.interpreters.minipy.hostvm import HostVM, MiniPyException
from repro.interpreters.minipy.engine import MiniPyEngine

__all__ = [
    "MiniPyEngine",
    "CodeObject",
    "CompiledModule",
    "HostVM",
    "MiniPyException",
    "Op",
    "compile_source",
]
