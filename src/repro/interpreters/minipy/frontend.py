"""MiniPy lexer and parser (indentation-based, Python-subset grammar)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional

from repro.errors import MiniLangSyntaxError

KEYWORDS = {
    "def", "if", "elif", "else", "while", "for", "in", "break", "continue",
    "return", "raise", "try", "except", "as", "pass", "and", "or", "not",
    "True", "False", "None", "assert", "del",
}

_OPS = [
    "**", "//", "==", "!=", "<=", ">=", "+=", "-=", "*=",
    "+", "-", "*", "%", "<", ">", "=", "(", ")", "[", "]",
    "{", "}", ",", ":", ".",
]

_STR_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"',
}


class Tok(NamedTuple):
    kind: str   # name, kw, num, str, op, newline, indent, dedent, eof
    value: object
    line: int


def tokenize(source: str) -> List[Tok]:
    """Lex MiniPy source, producing INDENT/DEDENT tokens."""
    tokens: List[Tok] = []
    indents = [0]
    lines = source.split("\n")
    paren_depth = 0
    for line_no, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if paren_depth == 0:
            if not stripped or stripped.startswith("#"):
                continue
            leading = raw[: len(raw) - len(raw.lstrip())]
            if "\t" in leading:
                raise MiniLangSyntaxError("tabs are not allowed in indentation", line_no)
            indent = len(leading)
            if indent > indents[-1]:
                indents.append(indent)
                tokens.append(Tok("indent", indent, line_no))
            while indent < indents[-1]:
                indents.pop()
                tokens.append(Tok("dedent", indent, line_no))
            if indent != indents[-1]:
                raise MiniLangSyntaxError("inconsistent dedent", line_no)
        i = 0
        text = raw
        n = len(text)
        while i < n:
            ch = text[i]
            if ch in " \t":
                i += 1
                continue
            if ch == "#":
                break
            if ch in "([{":
                paren_depth += 1
                tokens.append(Tok("op", ch, line_no))
                i += 1
                continue
            if ch in ")]}":
                paren_depth = max(paren_depth - 1, 0)
                tokens.append(Tok("op", ch, line_no))
                i += 1
                continue
            if ch.isdigit():
                j = i
                if text.startswith("0x", i) or text.startswith("0X", i):
                    j = i + 2
                    while j < n and text[j] in "0123456789abcdefABCDEF":
                        j += 1
                    tokens.append(Tok("num", int(text[i:j], 16), line_no))
                else:
                    while j < n and text[j].isdigit():
                        j += 1
                    tokens.append(Tok("num", int(text[i:j]), line_no))
                i = j
                continue
            if ch in "'\"":
                value, i = _lex_string(text, i, line_no)
                tokens.append(Tok("str", value, line_no))
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                word = text[i:j]
                tokens.append(Tok("kw" if word in KEYWORDS else "name", word, line_no))
                i = j
                continue
            matched = None
            for op in _OPS:
                if text.startswith(op, i):
                    matched = op
                    break
            if matched is None:
                raise MiniLangSyntaxError(f"unexpected character {ch!r}", line_no)
            tokens.append(Tok("op", matched, line_no))
            i += len(matched)
        if paren_depth == 0 and tokens and tokens[-1].kind not in ("newline", "indent", "dedent"):
            tokens.append(Tok("newline", None, line_no))
    last_line = len(lines)
    while len(indents) > 1:
        indents.pop()
        tokens.append(Tok("dedent", indents[-1], last_line))
    tokens.append(Tok("eof", None, last_line))
    return tokens


def _lex_string(text: str, start: int, line_no: int):
    quote = text[start]
    i = start + 1
    chars: List[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\":
            if i + 1 >= n:
                raise MiniLangSyntaxError("unterminated string escape", line_no)
            esc = text[i + 1]
            if esc == "x":
                if i + 3 >= n:
                    raise MiniLangSyntaxError("bad \\x escape", line_no)
                chars.append(chr(int(text[i + 2 : i + 4], 16)))
                i += 4
                continue
            chars.append(_STR_ESCAPES.get(esc, esc))
            i += 2
            continue
        if ch == quote:
            return "".join(chars), i + 1
        chars.append(ch)
        i += 1
    raise MiniLangSyntaxError("unterminated string literal", line_no)


# -- AST ----------------------------------------------------------------------

@dataclass
class Node:
    line: int = 0


@dataclass
class NumLit(Node):
    value: int = 0


@dataclass
class StrLit(Node):
    value: str = ""


@dataclass
class BoolLit(Node):
    value: bool = False


@dataclass
class NoneLit(Node):
    pass


@dataclass
class NameExpr(Node):
    ident: str = ""


@dataclass
class ListExpr(Node):
    items: List[Node] = field(default_factory=list)


@dataclass
class DictExpr(Node):
    keys: List[Node] = field(default_factory=list)
    values: List[Node] = field(default_factory=list)


@dataclass
class BinExprN(Node):
    op: str = ""
    left: Optional[Node] = None
    right: Optional[Node] = None


@dataclass
class BoolExprN(Node):
    op: str = ""  # "and" | "or"
    left: Optional[Node] = None
    right: Optional[Node] = None


@dataclass
class UnaryExprN(Node):
    op: str = ""  # "-" | "not"
    operand: Optional[Node] = None


@dataclass
class CallExpr(Node):
    func: Optional[Node] = None
    args: List[Node] = field(default_factory=list)


@dataclass
class MethodCall(Node):
    obj: Optional[Node] = None
    method: str = ""
    args: List[Node] = field(default_factory=list)


@dataclass
class SubscriptExpr(Node):
    obj: Optional[Node] = None
    index: Optional[Node] = None


@dataclass
class SliceExpr(Node):
    obj: Optional[Node] = None
    lo: Optional[Node] = None
    hi: Optional[Node] = None


@dataclass
class AssignStmt(Node):
    target: Optional[Node] = None  # NameExpr or SubscriptExpr
    value: Optional[Node] = None


@dataclass
class AugAssignStmt(Node):
    target: Optional[Node] = None  # NameExpr only
    op: str = ""
    value: Optional[Node] = None


@dataclass
class ExprStmtN(Node):
    expr: Optional[Node] = None


@dataclass
class IfStmt(Node):
    cond: Optional[Node] = None
    body: List[Node] = field(default_factory=list)
    orelse: List[Node] = field(default_factory=list)


@dataclass
class WhileStmt(Node):
    cond: Optional[Node] = None
    body: List[Node] = field(default_factory=list)


@dataclass
class ForStmt(Node):
    var: str = ""
    iterable: Optional[Node] = None
    body: List[Node] = field(default_factory=list)


@dataclass
class BreakStmt(Node):
    pass


@dataclass
class ContinueStmt(Node):
    pass


@dataclass
class PassStmt(Node):
    pass


@dataclass
class ReturnStmt(Node):
    value: Optional[Node] = None


@dataclass
class RaiseStmt(Node):
    exc_name: str = ""
    message: Optional[Node] = None


@dataclass
class AssertStmt(Node):
    cond: Optional[Node] = None


@dataclass
class ExceptClause(Node):
    exc_name: Optional[str] = None  # None = bare except
    alias: Optional[str] = None
    body: List[Node] = field(default_factory=list)


@dataclass
class TryStmt(Node):
    body: List[Node] = field(default_factory=list)
    handlers: List[ExceptClause] = field(default_factory=list)


@dataclass
class FuncDef(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)


@dataclass
class ModuleNode(Node):
    body: List[Node] = field(default_factory=list)


# -- parser ----------------------------------------------------------------------

_COMPARE_OPS = {"==", "!=", "<", "<=", ">", ">="}


class Parser:
    def __init__(self, tokens: List[Tok]):
        self.tokens = tokens
        self.pos = 0

    @property
    def cur(self) -> Tok:
        return self.tokens[self.pos]

    def error(self, message: str) -> MiniLangSyntaxError:
        return MiniLangSyntaxError(f"{message} (got {self.cur.value!r})", self.cur.line)

    def advance(self) -> Tok:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, value=None) -> bool:
        return self.cur.kind == kind and (value is None or self.cur.value == value)

    def accept(self, kind: str, value=None) -> bool:
        if self.check(kind, value):
            self.advance()
            return True
        return False

    def expect(self, kind: str, value=None) -> Tok:
        if not self.check(kind, value):
            raise self.error(f"expected {value or kind!r}")
        return self.advance()

    # -- blocks ---------------------------------------------------------------

    def parse_module(self) -> ModuleNode:
        body: List[Node] = []
        while not self.check("eof"):
            body.append(self.parse_stmt())
        return ModuleNode(line=1, body=body)

    def parse_block(self) -> List[Node]:
        self.expect("op", ":")
        self.expect("newline")
        self.expect("indent")
        body: List[Node] = []
        while not self.check("dedent") and not self.check("eof"):
            body.append(self.parse_stmt())
        self.accept("dedent")
        return body

    # -- statements ---------------------------------------------------------------

    def parse_stmt(self) -> Node:
        tok = self.cur
        if self.check("kw", "def"):
            return self.parse_def()
        if self.check("kw", "if"):
            return self.parse_if()
        if self.check("kw", "while"):
            self.advance()
            cond = self.parse_expr()
            body = self.parse_block()
            return WhileStmt(line=tok.line, cond=cond, body=body)
        if self.check("kw", "for"):
            self.advance()
            var = self.expect("name").value
            self.expect("kw", "in")
            iterable = self.parse_expr()
            body = self.parse_block()
            return ForStmt(line=tok.line, var=var, iterable=iterable, body=body)
        if self.check("kw", "try"):
            return self.parse_try()
        simple = self.parse_simple_stmt()
        self.expect("newline")
        return simple

    def parse_def(self) -> FuncDef:
        tok = self.expect("kw", "def")
        name = self.expect("name").value
        self.expect("op", "(")
        params: List[str] = []
        if not self.check("op", ")"):
            params.append(self.expect("name").value)
            while self.accept("op", ","):
                params.append(self.expect("name").value)
        self.expect("op", ")")
        body = self.parse_block()
        return FuncDef(line=tok.line, name=name, params=params, body=body)

    def parse_if(self) -> IfStmt:
        tok = self.advance()  # 'if' or 'elif'
        cond = self.parse_expr()
        body = self.parse_block()
        orelse: List[Node] = []
        if self.check("kw", "elif"):
            orelse = [self.parse_if()]
        elif self.accept("kw", "else"):
            orelse = self.parse_block()
        return IfStmt(line=tok.line, cond=cond, body=body, orelse=orelse)

    def parse_try(self) -> TryStmt:
        tok = self.expect("kw", "try")
        body = self.parse_block()
        handlers: List[ExceptClause] = []
        while self.check("kw", "except"):
            etok = self.advance()
            exc_name = None
            alias = None
            if self.check("name"):
                exc_name = self.advance().value
                if self.accept("kw", "as"):
                    alias = self.expect("name").value
            hbody = self.parse_block()
            handlers.append(
                ExceptClause(line=etok.line, exc_name=exc_name, alias=alias, body=hbody)
            )
        if not handlers:
            raise MiniLangSyntaxError("try without except", tok.line)
        return TryStmt(line=tok.line, body=body, handlers=handlers)

    def parse_simple_stmt(self) -> Node:
        tok = self.cur
        if self.check("kw", "break"):
            self.advance()
            return BreakStmt(line=tok.line)
        if self.check("kw", "continue"):
            self.advance()
            return ContinueStmt(line=tok.line)
        if self.check("kw", "pass"):
            self.advance()
            return PassStmt(line=tok.line)
        if self.check("kw", "return"):
            self.advance()
            value = None
            if not self.check("newline"):
                value = self.parse_expr()
            return ReturnStmt(line=tok.line, value=value)
        if self.check("kw", "raise"):
            self.advance()
            exc_name = self.expect("name").value
            message = None
            if self.accept("op", "("):
                if not self.check("op", ")"):
                    message = self.parse_expr()
                self.expect("op", ")")
            return RaiseStmt(line=tok.line, exc_name=exc_name, message=message)
        if self.check("kw", "assert"):
            self.advance()
            cond = self.parse_expr()
            if self.accept("op", ","):
                self.parse_expr()  # message evaluated but ignored
            return AssertStmt(line=tok.line, cond=cond)
        expr = self.parse_expr()
        if self.cur.kind == "op" and self.cur.value in ("+=", "-=", "*="):
            op_tok = self.advance()
            if not isinstance(expr, NameExpr):
                raise MiniLangSyntaxError(
                    "augmented assignment target must be a name", tok.line
                )
            value = self.parse_expr()
            return AugAssignStmt(
                line=tok.line, target=expr, op=op_tok.value[0], value=value
            )
        if self.accept("op", "="):
            if not isinstance(expr, (NameExpr, SubscriptExpr)):
                raise MiniLangSyntaxError("invalid assignment target", tok.line)
            value = self.parse_expr()
            return AssignStmt(line=tok.line, target=expr, value=value)
        return ExprStmtN(line=tok.line, expr=expr)

    # -- expressions ----------------------------------------------------------------

    def parse_expr(self) -> Node:
        return self.parse_or()

    def parse_or(self) -> Node:
        left = self.parse_and()
        while self.check("kw", "or"):
            tok = self.advance()
            right = self.parse_and()
            left = BoolExprN(line=tok.line, op="or", left=left, right=right)
        return left

    def parse_and(self) -> Node:
        left = self.parse_not()
        while self.check("kw", "and"):
            tok = self.advance()
            right = self.parse_not()
            left = BoolExprN(line=tok.line, op="and", left=left, right=right)
        return left

    def parse_not(self) -> Node:
        if self.check("kw", "not"):
            tok = self.advance()
            return UnaryExprN(line=tok.line, op="not", operand=self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Node:
        left = self.parse_additive()
        while True:
            if self.cur.kind == "op" and self.cur.value in _COMPARE_OPS:
                tok = self.advance()
                right = self.parse_additive()
                left = BinExprN(line=tok.line, op=tok.value, left=left, right=right)
            elif self.check("kw", "in"):
                tok = self.advance()
                right = self.parse_additive()
                left = BinExprN(line=tok.line, op="in", left=left, right=right)
            elif self.check("kw", "not"):
                # "not in"
                tok = self.advance()
                self.expect("kw", "in")
                right = self.parse_additive()
                left = BinExprN(line=tok.line, op="not in", left=left, right=right)
            else:
                return left

    def parse_additive(self) -> Node:
        left = self.parse_multiplicative()
        while self.cur.kind == "op" and self.cur.value in ("+", "-"):
            tok = self.advance()
            right = self.parse_multiplicative()
            left = BinExprN(line=tok.line, op=tok.value, left=left, right=right)
        return left

    def parse_multiplicative(self) -> Node:
        left = self.parse_unary()
        while self.cur.kind == "op" and self.cur.value in ("*", "//", "%"):
            tok = self.advance()
            right = self.parse_unary()
            left = BinExprN(line=tok.line, op=tok.value, left=left, right=right)
        return left

    def parse_unary(self) -> Node:
        if self.check("op", "-"):
            tok = self.advance()
            return UnaryExprN(line=tok.line, op="-", operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Node:
        expr = self.parse_atom()
        while True:
            if self.check("op", "("):
                tok = self.advance()
                args = self.parse_args()
                expr = CallExpr(line=tok.line, func=expr, args=args)
            elif self.check("op", "."):
                tok = self.advance()
                method = self.expect("name").value
                self.expect("op", "(")
                args = self.parse_args()
                expr = MethodCall(line=tok.line, obj=expr, method=method, args=args)
            elif self.check("op", "["):
                tok = self.advance()
                expr = self.parse_subscript_or_slice(expr, tok)
            else:
                return expr

    def parse_args(self) -> List[Node]:
        args: List[Node] = []
        if not self.check("op", ")"):
            args.append(self.parse_expr())
            while self.accept("op", ","):
                args.append(self.parse_expr())
        self.expect("op", ")")
        return args

    def parse_subscript_or_slice(self, obj: Node, tok: Tok) -> Node:
        lo = None
        hi = None
        if not self.check("op", ":"):
            lo = self.parse_expr()
        if self.accept("op", ":"):
            if not self.check("op", "]"):
                hi = self.parse_expr()
            self.expect("op", "]")
            return SliceExpr(line=tok.line, obj=obj, lo=lo, hi=hi)
        self.expect("op", "]")
        return SubscriptExpr(line=tok.line, obj=obj, index=lo)

    def parse_atom(self) -> Node:
        tok = self.cur
        if tok.kind == "num":
            self.advance()
            return NumLit(line=tok.line, value=tok.value)
        if tok.kind == "str":
            self.advance()
            value = tok.value
            # adjacent string literal concatenation
            while self.cur.kind == "str":
                value += self.advance().value
            return StrLit(line=tok.line, value=value)
        if self.check("kw", "True"):
            self.advance()
            return BoolLit(line=tok.line, value=True)
        if self.check("kw", "False"):
            self.advance()
            return BoolLit(line=tok.line, value=False)
        if self.check("kw", "None"):
            self.advance()
            return NoneLit(line=tok.line)
        if tok.kind == "name":
            self.advance()
            return NameExpr(line=tok.line, ident=tok.value)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        if self.accept("op", "["):
            items: List[Node] = []
            if not self.check("op", "]"):
                items.append(self.parse_expr())
                while self.accept("op", ","):
                    if self.check("op", "]"):
                        break
                    items.append(self.parse_expr())
            self.expect("op", "]")
            return ListExpr(line=tok.line, items=items)
        if self.accept("op", "{"):
            keys: List[Node] = []
            values: List[Node] = []
            if not self.check("op", "}"):
                keys.append(self.parse_expr())
                self.expect("op", ":")
                values.append(self.parse_expr())
                while self.accept("op", ","):
                    if self.check("op", "}"):
                        break
                    keys.append(self.parse_expr())
                    self.expect("op", ":")
                    values.append(self.parse_expr())
            self.expect("op", "}")
            return DictExpr(line=tok.line, keys=keys, values=values)
        raise self.error("expected expression")


def parse_source(source: str) -> ModuleNode:
    return Parser(tokenize(source)).parse_module()
