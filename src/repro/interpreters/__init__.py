"""Interpreters prepared for Chef: MiniPy and MiniLua.

Each language ships four pieces, mirroring the paper's case studies (§5):

- a host compiler from source text to bytecode (the paper relies on
  CPython/Lua's own compilers; only the *interpreter loop* runs inside the
  symbolic VM),
- an interpreter written in Clay that executes that bytecode on the LVM,
  instrumented with ``log_pc`` and the §4.2 optimizations,
- a host reference VM used for test replay and line-coverage measurement
  (the paper replays tests in a vanilla interpreter),
- an engine facade that wires image loading, build options and Chef.
"""

from __future__ import annotations

import pathlib

#: Where the Clay translation units of the guest interpreters live.
CLAY_SRC_DIR = pathlib.Path(__file__).resolve().parent / "clay_src"


def clay_sources_available() -> bool:
    """True when the Clay interpreter sources are present in the tree.

    The seed snapshot is missing ``clay_src/`` entirely (see ROADMAP
    open items), which makes every end-to-end Chef run impossible; test
    and benchmark modules that need a guest interpreter use this to skip
    with an explicit reason instead of failing on a FileNotFoundError.
    """
    return (CLAY_SRC_DIR / "rt_core.clay").is_file()
