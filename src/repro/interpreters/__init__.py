"""Interpreters prepared for Chef: MiniPy and MiniLua.

Each language ships four pieces, mirroring the paper's case studies (§5):

- a host compiler from source text to bytecode (the paper relies on
  CPython/Lua's own compilers; only the *interpreter loop* runs inside the
  symbolic VM),
- an interpreter written in Clay that executes that bytecode on the LVM,
  instrumented with ``log_pc`` and the §4.2 optimizations,
- a host reference VM used for test replay and line-coverage measurement
  (the paper replays tests in a vanilla interpreter),
- an engine facade that wires image loading, build options and Chef.
"""
