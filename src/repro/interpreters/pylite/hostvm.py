"""CPython-replay host VM for PyLite (the §6.6 differential oracle).

MiniPy replays tests in a hand-written host interpreter; PyLite gets the
real thing: the source is ``exec``'d under vanilla CPython with a
restricted global environment, the symbolic intrinsics replaced by
input-buffer readers, and ``print``/``chr`` replaced by wrappers that
pin down the documented PyLite semantics (observable output is word
lists; characters are bytes).  A ``sys.settrace`` line tracer collects
covered lines and enforces the instruction budget.

Because the LVM run and this replay consume the *same* recorded input
buffers in the same declaration order, any divergence in observable
output or uncaught-exception type is a real semantic bug in the
frontend/runtime — that equivalence is what the differential tests
assert for every generated test case.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.frontend.tac import EXC_IDS

_FILENAME = "<pylite>"


class PyLiteHostException(Exception):
    """An uncaught guest exception observed during replay."""

    def __init__(self, type_id: int, message: str = "", name: str = ""):
        super().__init__(f"{name or type_id}: {message}")
        self.type_id = type_id
        self.message = message
        self.name = name


class _BudgetExceeded(BaseException):
    """Raised by the tracer; BaseException so guest code cannot catch it."""


@dataclass
class HostRunResult:
    """Observable outcome of one replay (mirrors the MiniPy host shape)."""

    output: List[int] = field(default_factory=list)
    exception: Optional[PyLiteHostException] = None
    covered_lines: Set[int] = field(default_factory=set)
    hl_instrs: int = 0
    hit_budget: bool = False


def _exception_id(exc: BaseException) -> int:
    for klass in type(exc).__mro__:
        type_id = EXC_IDS.get(klass.__name__)
        if type_id is not None:
            return type_id
    return EXC_IDS["Exception"]


class PyLiteHostVM:
    """Executes PyLite source concretely under CPython."""

    def __init__(
        self,
        source: str,
        symbolic_inputs: Optional[Sequence[List[int]]] = None,
        instr_budget: int = 2_000_000,
    ):
        self.source = source
        self._inputs = [list(buf) for buf in symbolic_inputs or []]
        self._next_input = 0
        self._budget = instr_budget
        self.result = HostRunResult()

    # -- intrinsic / builtin replacements -------------------------------------

    def _next_buffer(self) -> Optional[List[int]]:
        if self._next_input < len(self._inputs):
            buf = self._inputs[self._next_input]
            self._next_input += 1
            return buf
        return None

    def _sym_string(self, seed):
        if not isinstance(seed, str):
            raise TypeError("sym_string() seed must be a string")
        buf = self._next_buffer()
        if buf is None:
            return seed  # seed path: no recorded inputs left
        return "".join(chr(c & 0xFF) for c in buf)

    def _sym_int(self, seed, lo=0, hi=255):
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise TypeError("sym_int() seed must be an integer")
        buf = self._next_buffer()
        if buf is None:
            return min(max(seed, lo), hi)
        return buf[0]

    def _make_symbolic(self, value):
        if isinstance(value, str):
            return self._sym_string(value)
        if isinstance(value, bool):
            raise TypeError("make_symbolic() takes an int or a string")
        if isinstance(value, int):
            buf = self._next_buffer()
            return value if buf is None else buf[0]
        raise TypeError("make_symbolic() takes an int or a string")

    def _print(self, value):
        out = self.result.output
        if isinstance(value, bool):
            out.extend([int(value), 10])
        elif isinstance(value, int):
            out.extend([value, 10])
        elif isinstance(value, str):
            out.extend([ord(c) for c in value])
            out.append(10)
        else:
            raise TypeError("print() takes an int or a string in PyLite")

    @staticmethod
    def _chr(value):
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError("chr() takes an integer")
        if not 0 <= value <= 255:
            raise ValueError("PyLite chr() argument must be in 0..255")
        return chr(value)

    # -- execution ------------------------------------------------------------

    def _tracer(self, frame, event, arg):
        if frame.f_code.co_filename != _FILENAME:
            return None
        if event == "line":
            self.result.covered_lines.add(frame.f_lineno)
            self.result.hl_instrs += 1
            if self.result.hl_instrs > self._budget:
                raise _BudgetExceeded
        return self._tracer

    def run(self) -> HostRunResult:
        env = {
            "__builtins__": {
                "len": len,
                "ord": ord,
                "range": range,
                "AssertionError": AssertionError,
                "ValueError": ValueError,
                "TypeError": TypeError,
                "KeyError": KeyError,
                "IndexError": IndexError,
                "ZeroDivisionError": ZeroDivisionError,
                "RuntimeError": RuntimeError,
                "NameError": NameError,
                "Exception": Exception,
                "StopIteration": StopIteration,
            },
            "chr": self._chr,
            "print": self._print,
            "sym_string": self._sym_string,
            "sym_int": self._sym_int,
            "make_symbolic": self._make_symbolic,
        }
        code = compile(self.source, _FILENAME, "exec")
        old_trace = sys.gettrace()
        sys.settrace(self._tracer)
        try:
            exec(code, env)  # noqa: S102 - the replay oracle by design
        except _BudgetExceeded:
            self.result.hit_budget = True
        except Exception as exc:  # uncaught guest exception
            self.result.exception = PyLiteHostException(
                _exception_id(exc), str(exc), type(exc).__name__
            )
        finally:
            sys.settrace(old_trace)
        return self.result


__all__ = ["HostRunResult", "PyLiteHostException", "PyLiteHostVM"]
