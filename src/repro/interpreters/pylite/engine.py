"""PyLite engine facade: source → symbolic execution → replayable tests.

Mirrors the MiniPy facade so ``Session``/symtest/service drive it through
the same :class:`~repro.api.language.GuestLanguage` protocol — but the
program under test is compiled straight to LVM bytecode by
:mod:`repro.frontend`, so there is no Clay interpreter in the loop and
runs work end-to-end out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.chef.engine import Chef, RunResult
from repro.chef.options import ChefConfig
from repro.chef.testcase import TestCase, TestSuite
from repro.frontend import CompiledPyLite, compile_pylite
from repro.frontend.tac import EXC_NAMES
from repro.interpreters.pylite.hostvm import HostRunResult, PyLiteHostVM
from repro.lowlevel.program import Program
from repro.solver.backend import SolverBackend


@dataclass
class DifferentialReport:
    """Outcome of one LVM-vs-CPython replay comparison (§6.6)."""

    case_id: int
    matches: bool
    detail: str = ""


class PyLiteEngine:
    """A symbolic execution engine for PyLite, built on the frontend."""

    def __init__(
        self,
        source: str,
        config: Optional[ChefConfig] = None,
        solver: Optional[SolverBackend] = None,
    ):
        self.source = source
        self.config = config if config is not None else ChefConfig()
        self.solver = solver
        self.compiled: CompiledPyLite = compile_pylite(source)

    # -- build ---------------------------------------------------------------

    def build_program(self) -> Program:
        """Fresh LVM program (Chef mutates Programs; one per run)."""
        return self.compiled.build_program()

    # -- symbolic execution ---------------------------------------------------

    def make_chef(self) -> Chef:
        return Chef(self.build_program(), self.config, solver=self.solver)

    def run(self) -> RunResult:
        return self.make_chef().run()

    # -- replay & coverage ----------------------------------------------------

    @staticmethod
    def ordered_inputs(case: TestCase) -> List[List[int]]:
        """Symbolic buffers in creation order (b0, b1, ...)."""
        keys = sorted(case.inputs, key=lambda k: int(k[1:]))
        return [case.inputs[k] for k in keys]

    def replay(self, case: TestCase) -> HostRunResult:
        """Re-execute a generated test under vanilla CPython (§6.1)."""
        vm = PyLiteHostVM(self.source, symbolic_inputs=self.ordered_inputs(case))
        return vm.run()

    def coverage(self, suite: TestSuite, replay_all: bool = False) -> Tuple[Set[int], int]:
        """Replay tests and report (covered lines, coverable line count)."""
        covered: Set[int] = set()
        cases = suite.cases if replay_all else suite.high_level_tests()
        for case in cases:
            result = self.replay(case)
            covered |= result.covered_lines
        coverable = set(self.compiled.coverable_lines)
        return covered & coverable, len(coverable)

    def exception_name(self, type_id: int) -> str:
        return EXC_NAMES.get(type_id, f"<exc:{type_id}>")

    # -- differential check ---------------------------------------------------

    def differential_check(self, case: TestCase) -> DifferentialReport:
        """Replay ``case`` concretely and compare observable behaviour.

        Hang cases (path budget exhausted mid-run) are vacuously accepted:
        the LVM output is a prefix cut at an arbitrary instruction, so
        there is nothing meaningful to compare.
        """
        if case.hang:
            return DifferentialReport(case.test_id, True, "hang: skipped")
        host = self.replay(case)
        host_exc = host.exception.type_id if host.exception else None
        if host.hit_budget:
            return DifferentialReport(
                case.test_id, False, "replay exceeded the host budget"
            )
        if list(host.output) != list(case.output):
            return DifferentialReport(
                case.test_id, False,
                f"output mismatch: lvm={case.output!r} host={host.output!r}",
            )
        if host_exc != case.exception_type:
            return DifferentialReport(
                case.test_id, False,
                f"exception mismatch: lvm={case.exception_type!r} "
                f"host={host_exc!r}",
            )
        return DifferentialReport(case.test_id, True)

    def differential_sweep(self, suite: TestSuite) -> List[DifferentialReport]:
        """One report per case; the pack tests assert all(r.matches)."""
        return [self.differential_check(case) for case in suite.cases]


__all__ = ["DifferentialReport", "PyLiteEngine"]
