"""PyLite's :class:`~repro.api.language.GuestLanguage` registration.

This module is the only place the name "pylite" may be special-cased;
every other consumer goes through ``repro.api.get_language``.  One
``register_language`` call is what lights up Session, symtest, parallel
exploration, checkpointing, the service daemon and the bench harness for
PyLite source — the registry promise from PR 5.
"""

from __future__ import annotations

from repro.api.language import GuestLanguage, escape_double_quoted, register_language

#: PyLite string literals are double-quoted byte strings with the same
#: escape discipline as MiniPy (printable ASCII, ``\xNN`` otherwise).
quote_pylite = escape_double_quoted


def _engine_factory(source: str, config=None, solver=None):
    from repro.interpreters.pylite.engine import PyLiteEngine

    return PyLiteEngine(source, config, solver=solver)


def _host_vm_factory(source, symbolic_inputs):
    from repro.interpreters.pylite.hostvm import PyLiteHostVM

    return PyLiteHostVM(source, symbolic_inputs=symbolic_inputs)


PYLITE = register_language(
    GuestLanguage(
        name="pylite",
        comment_prefix="#",
        engine_factory=_engine_factory,
        quote_literal=quote_pylite,
        host_vm_factory=_host_vm_factory,
        description=(
            "Python subset lowered ast → TAC → CFG straight onto the LVM "
            "(no interpreter in the loop)"
        ),
    )
)
