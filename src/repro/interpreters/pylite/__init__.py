"""PyLite: a restricted-but-real Python subset compiled by repro.frontend.

Unlike MiniPy/MiniLua — interpreters compiled from Clay that *interpret*
guest bytecode on the LVM — PyLite source is lowered straight to LVM
bytecode (ast → TAC → CFG → LIR), so it runs end-to-end without the
missing Clay sources.  Importing :mod:`.language` registers it.
"""
