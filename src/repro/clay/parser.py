"""Recursive-descent parser for Clay (C expression precedence)."""

from __future__ import annotations

from typing import List

from repro.clay import ast
from repro.clay.lexer import Token, tokenize
from repro.errors import ClaySyntaxError

_BINARY_LEVELS = [
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_OP_NAMES = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def error(self, message: str) -> ClaySyntaxError:
        tok = self.current
        return ClaySyntaxError(message + f" (got {tok.value!r})", tok.line, tok.column)

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, value=None) -> bool:
        tok = self.current
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind: str, value=None) -> bool:
        if self.check(kind, value):
            self.advance()
            return True
        return False

    def expect(self, kind: str, value=None) -> Token:
        if not self.check(kind, value):
            want = value if value is not None else kind
            raise self.error(f"expected {want!r}")
        return self.advance()

    # -- top level ----------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        items: List[ast.Node] = []
        while not self.check("eof"):
            if self.check("kw", "const"):
                items.append(self.parse_const())
            elif self.check("kw", "global"):
                items.append(self.parse_global())
            elif self.check("kw", "fn"):
                items.append(self.parse_fn())
            else:
                raise self.error("expected 'fn', 'global' or 'const'")
        return ast.Module(items=items)

    def parse_const(self) -> ast.ConstDecl:
        tok = self.expect("kw", "const")
        name = self.expect("ident").value
        self.expect("op", "=")
        value = self.parse_expr()
        self.expect("op", ";")
        return ast.ConstDecl(line=tok.line, name=name, value=value)

    def parse_global(self) -> ast.GlobalDecl:
        tok = self.expect("kw", "global")
        name = self.expect("ident").value
        size = 1
        value = None
        if self.accept("op", "["):
            size_tok = self.expect("int")
            size = size_tok.value
            self.expect("op", "]")
        elif self.accept("op", "="):
            value = self.parse_expr()
        self.expect("op", ";")
        return ast.GlobalDecl(line=tok.line, name=name, value=value, size=size)

    def parse_fn(self) -> ast.FnDecl:
        tok = self.expect("kw", "fn")
        name = self.expect("ident").value
        self.expect("op", "(")
        params: List[str] = []
        if not self.check("op", ")"):
            params.append(self.expect("ident").value)
            while self.accept("op", ","):
                params.append(self.expect("ident").value)
        self.expect("op", ")")
        body = self.parse_block()
        return ast.FnDecl(line=tok.line, name=name, params=params, body=body)

    # -- statements -------------------------------------------------------------------

    def parse_block(self) -> List[ast.Node]:
        self.expect("op", "{")
        stmts: List[ast.Node] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise self.error("unterminated block")
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return stmts

    def parse_stmt(self) -> ast.Node:
        tok = self.current
        if self.check("kw", "var"):
            self.advance()
            name = self.expect("ident").value
            self.expect("op", "=")
            value = self.parse_expr()
            self.expect("op", ";")
            return ast.VarDecl(line=tok.line, name=name, value=value)
        if self.check("kw", "if"):
            return self.parse_if()
        if self.check("kw", "while"):
            self.advance()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            body = self.parse_block()
            return ast.While(line=tok.line, cond=cond, body=body)
        if self.check("kw", "break"):
            self.advance()
            self.expect("op", ";")
            return ast.Break(line=tok.line)
        if self.check("kw", "continue"):
            self.advance()
            self.expect("op", ";")
            return ast.Continue(line=tok.line)
        if self.check("kw", "return"):
            self.advance()
            value = None
            if not self.check("op", ";"):
                value = self.parse_expr()
            self.expect("op", ";")
            return ast.Return(line=tok.line, value=value)
        # Expression statement or assignment.
        expr = self.parse_expr()
        if self.accept("op", "="):
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise self.error("invalid assignment target")
            value = self.parse_expr()
            self.expect("op", ";")
            return ast.Assign(line=tok.line, target=expr, value=value)
        self.expect("op", ";")
        return ast.ExprStmt(line=tok.line, expr=expr)

    def parse_if(self) -> ast.If:
        tok = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: List[ast.Node] = []
        if self.accept("kw", "else"):
            if self.check("kw", "if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(line=tok.line, cond=cond, then_body=then_body, else_body=else_body)

    # -- expressions ----------------------------------------------------------------------

    def parse_expr(self) -> ast.Node:
        return self.parse_logical_or()

    def parse_logical_or(self) -> ast.Node:
        left = self.parse_logical_and()
        while self.check("op", "||"):
            tok = self.advance()
            right = self.parse_logical_and()
            left = ast.Logical(line=tok.line, op="||", left=left, right=right)
        return left

    def parse_logical_and(self) -> ast.Node:
        left = self.parse_binary(0)
        while self.check("op", "&&"):
            tok = self.advance()
            right = self.parse_binary(0)
            left = ast.Logical(line=tok.line, op="&&", left=left, right=right)
        return left

    def parse_binary(self, level: int) -> ast.Node:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.current.kind == "op" and self.current.value in ops:
            tok = self.advance()
            right = self.parse_binary(level + 1)
            left = ast.Binary(
                line=tok.line, op=_OP_NAMES[tok.value], left=left, right=right
            )
        return left

    def parse_unary(self) -> ast.Node:
        tok = self.current
        if self.check("op", "-"):
            self.advance()
            return ast.Unary(line=tok.line, op="neg", operand=self.parse_unary())
        if self.check("op", "!"):
            self.advance()
            return ast.Unary(line=tok.line, op="lnot", operand=self.parse_unary())
        if self.check("op", "~"):
            self.advance()
            return ast.Unary(line=tok.line, op="bnot", operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Node:
        expr = self.parse_primary()
        while self.check("op", "["):
            tok = self.advance()
            offset = self.parse_expr()
            self.expect("op", "]")
            expr = ast.Index(line=tok.line, base=expr, offset=offset)
        return expr

    def parse_primary(self) -> ast.Node:
        tok = self.current
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "ident":
            self.advance()
            if self.check("op", "("):
                self.advance()
                args: List[ast.Node] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                return ast.Call(line=tok.line, callee=tok.value, args=args)
            return ast.Name(line=tok.line, ident=tok.value)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise self.error("expected expression")


def parse(source: str) -> ast.Module:
    """Parse Clay source text into a module AST."""
    return _Parser(tokenize(source)).parse_module()
