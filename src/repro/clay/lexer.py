"""Tokenizer for the Clay language."""

from __future__ import annotations

from typing import List, NamedTuple

from repro.errors import ClaySyntaxError

KEYWORDS = {
    "fn", "var", "global", "const", "if", "else", "while",
    "break", "continue", "return",
}

#: multi-character operators, longest first.
_MULTI_OPS = ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||"]
_SINGLE_OPS = set("+-*/%&|^~!<>=(){}[],;")

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
}


class Token(NamedTuple):
    kind: str      # "int", "ident", "kw", "op", "eof"
    value: object  # int for "int", str otherwise
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    """Convert Clay source into a token list ending with an EOF token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> ClaySyntaxError:
        return ClaySyntaxError(message, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        start_col = col
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                if j == i + 2:
                    raise error("malformed hex literal")
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("int", value, line, start_col))
            col += j - i
            i = j
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n:
                    raise error("unterminated character literal")
                esc = source[j + 1]
                if esc not in _ESCAPES:
                    raise error(f"unknown escape \\{esc}")
                value = _ESCAPES[esc]
                j += 2
            elif j < n and source[j] != "'":
                value = ord(source[j])
                j += 1
            else:
                raise error("empty character literal")
            if j >= n or source[j] != "'":
                raise error("unterminated character literal")
            tokens.append(Token("int", value, line, start_col))
            col += j + 1 - i
            i = j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, start_col))
            col += j - i
            i = j
            continue
        matched = None
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                matched = op
                break
        if matched:
            tokens.append(Token("op", matched, line, start_col))
            i += len(matched)
            col += len(matched)
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token("op", ch, line, start_col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, col))
    return tokens
