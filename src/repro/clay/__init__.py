"""Clay: a small C-like systems language compiled to LIR.

The paper's interpreters are C programs compiled to x86 and executed by
S2E.  Here, interpreters are Clay programs compiled to LIR and executed by
the LVM engine.  Clay is deliberately minimal — word-sized values, explicit
memory via ``load``/``store`` and indexing sugar, functions, ``if``/
``while`` — because everything an interpreter needs (tagged values, heaps,
hash tables, string buffers) is built *in* Clay, so its internal branches
are visible to the low-level engine exactly as compiled C is to S2E.
"""

from repro.clay.lexer import Token, tokenize
from repro.clay.parser import parse
from repro.clay.codegen import compile_program, CompiledClay

__all__ = ["CompiledClay", "Token", "compile_program", "parse", "tokenize"]
