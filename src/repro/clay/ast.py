"""Abstract syntax tree for Clay."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    line: int = 0


# -- expressions -------------------------------------------------------------

@dataclass
class IntLit(Node):
    value: int = 0


@dataclass
class Name(Node):
    ident: str = ""


@dataclass
class Unary(Node):
    op: str = ""
    operand: Optional[Node] = None


@dataclass
class Binary(Node):
    op: str = ""
    left: Optional[Node] = None
    right: Optional[Node] = None


@dataclass
class Logical(Node):
    """Short-circuit && / || (compiled to branches, like C)."""

    op: str = ""
    left: Optional[Node] = None
    right: Optional[Node] = None


@dataclass
class Call(Node):
    callee: str = ""
    args: List[Node] = field(default_factory=list)


@dataclass
class Index(Node):
    """``base[offset]`` — sugar for load(base + offset)."""

    base: Optional[Node] = None
    offset: Optional[Node] = None


# -- statements ---------------------------------------------------------------

@dataclass
class VarDecl(Node):
    name: str = ""
    value: Optional[Node] = None


@dataclass
class Assign(Node):
    target: Optional[Node] = None  # Name or Index
    value: Optional[Node] = None


@dataclass
class If(Node):
    cond: Optional[Node] = None
    then_body: List[Node] = field(default_factory=list)
    else_body: List[Node] = field(default_factory=list)


@dataclass
class While(Node):
    cond: Optional[Node] = None
    body: List[Node] = field(default_factory=list)


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Return(Node):
    value: Optional[Node] = None


@dataclass
class ExprStmt(Node):
    expr: Optional[Node] = None


# -- top-level items ------------------------------------------------------------

@dataclass
class ConstDecl(Node):
    name: str = ""
    value: Optional[Node] = None


@dataclass
class GlobalDecl(Node):
    name: str = ""
    value: Optional[Node] = None  # constant initialiser
    size: int = 1                 # words reserved (global arrays)


@dataclass
class FnDecl(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)


@dataclass
class Module(Node):
    items: List[Node] = field(default_factory=list)
