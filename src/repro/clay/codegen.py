"""Clay → LIR code generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.clay import ast
from repro.errors import ClayCompileError
from repro.lowlevel import api
from repro.lowlevel.program import FunctionBuilder, Opcode, Program

#: first word address handed to globals (0 stays a distinguishable null).
GLOBALS_BASE = 16

#: Clay builtins that lower to guest-API hypercalls: name -> (api, min, max).
_HYPER_BUILTINS = {
    "log_pc": (api.LOG_PC, 2, 2),
    "start_symbolic": (api.START_SYMBOLIC, 0, 0),
    "end_symbolic": (api.END_SYMBOLIC, 0, 1),
    "make_symbolic": (api.MAKE_SYMBOLIC, 2, 4),
    "concretize": (api.CONCRETIZE, 1, 1),
    "upper_bound": (api.UPPER_BOUND, 1, 1),
    "is_symbolic": (api.IS_SYMBOLIC, 1, 1),
    "assume": (api.ASSUME, 1, 1),
    "out": (api.OUT, 1, 1),
    "event": (api.EVENT, 1, 3),
    "abort": (api.ABORT, 0, 1),
    "trace": (api.TRACE, 1, 1),
}

_RESERVED = set(_HYPER_BUILTINS) | {"load", "store"}


@dataclass
class CompiledClay:
    """Result of compiling Clay source: a finalized LIR program + symbols."""

    program: Program
    #: global variable/array name -> word address.
    symbols: Dict[str, int] = field(default_factory=dict)
    #: compile-time constants (after folding).
    consts: Dict[str, int] = field(default_factory=dict)
    #: first address past the static data segment.
    data_end: int = 0


class _FnContext:
    def __init__(self, builder: FunctionBuilder):
        self.builder = builder
        self.locals: Dict[str, int] = {}
        self.loop_stack: List[tuple] = []  # (continue_label, break_label)


class _Codegen:
    def __init__(self, module: ast.Module, entry: str):
        self.module = module
        self.entry = entry
        self.consts: Dict[str, int] = {}
        self.globals: Dict[str, int] = {}       # scalar globals -> address
        self.global_arrays: Dict[str, int] = {} # array globals -> base address
        self.signatures: Dict[str, int] = {}    # fn name -> arity
        self.program = Program(entry=entry)
        self._next_addr = GLOBALS_BASE

    # -- driving ---------------------------------------------------------------

    def run(self) -> CompiledClay:
        self._collect_items()
        if self.entry not in self.signatures:
            raise ClayCompileError(f"entry function {self.entry!r} is not defined")
        if self.signatures[self.entry] != 0:
            raise ClayCompileError(f"entry function {self.entry!r} must take no parameters")
        for item in self.module.items:
            if isinstance(item, ast.FnDecl):
                self._gen_function(item)
        self.program.data_end = max(self.program.data_end, self._next_addr)
        self.program.finalize()
        symbols = dict(self.globals)
        symbols.update(self.global_arrays)
        return CompiledClay(
            program=self.program,
            symbols=symbols,
            consts=dict(self.consts),
            data_end=self.program.data_end,
        )

    def _collect_items(self) -> None:
        for item in self.module.items:
            if isinstance(item, ast.ConstDecl):
                if item.name in self.consts:
                    raise ClayCompileError(f"duplicate const {item.name!r}")
                value = self._const_eval(item.value)
                if value is None:
                    raise ClayCompileError(
                        f"const {item.name!r} initialiser is not a constant "
                        f"expression (line {item.line})"
                    )
                self.consts[item.name] = value
            elif isinstance(item, ast.GlobalDecl):
                self._declare_global(item)
            elif isinstance(item, ast.FnDecl):
                if item.name in self.signatures:
                    raise ClayCompileError(f"duplicate function {item.name!r}")
                if item.name in _RESERVED:
                    raise ClayCompileError(
                        f"function name {item.name!r} shadows a builtin"
                    )
                self.signatures[item.name] = len(item.params)

    def _declare_global(self, item: ast.GlobalDecl) -> None:
        if item.name in self.globals or item.name in self.global_arrays:
            raise ClayCompileError(f"duplicate global {item.name!r}")
        if item.size < 1:
            raise ClayCompileError(f"global array {item.name!r} has size < 1")
        addr = self._next_addr
        self._next_addr += item.size
        if item.size == 1 and item.value is not None:
            value = self._const_eval(item.value)
            if value is None:
                raise ClayCompileError(
                    f"global {item.name!r} initialiser must be constant"
                )
            self.program.set_static(addr, [value])
            self.globals[item.name] = addr
        elif item.size == 1:
            self.program.set_static(addr, [0])
            self.globals[item.name] = addr
        else:
            self.program.set_static(addr, [0] * item.size)
            self.global_arrays[item.name] = addr

    # -- constant folding --------------------------------------------------------

    def _const_eval(self, node) -> Optional[int]:
        if node is None:
            return None
        if isinstance(node, ast.IntLit):
            return node.value
        if isinstance(node, ast.Name):
            return self.consts.get(node.ident)
        if isinstance(node, ast.Unary):
            inner = self._const_eval(node.operand)
            if inner is None:
                return None
            if node.op == "neg":
                return -inner
            if node.op == "lnot":
                return int(inner == 0)
            return ~inner
        if isinstance(node, ast.Binary):
            left = self._const_eval(node.left)
            right = self._const_eval(node.right)
            if left is None or right is None:
                return None
            from repro.lowlevel.expr import _apply_binop

            try:
                return _apply_binop(node.op, left, right)
            except (ZeroDivisionError, ValueError):
                raise ClayCompileError(
                    f"invalid constant expression at line {node.line}"
                )
        if isinstance(node, ast.Logical):
            left = self._const_eval(node.left)
            if left is None:
                return None
            if node.op == "&&" and left == 0:
                return 0
            if node.op == "||" and left != 0:
                return 1
            right = self._const_eval(node.right)
            if right is None:
                return None
            return int(right != 0)
        return None

    # -- functions ------------------------------------------------------------------

    def _gen_function(self, decl: ast.FnDecl) -> None:
        builder = FunctionBuilder(decl.name, len(decl.params))
        ctx = _FnContext(builder)
        for index, param in enumerate(decl.params):
            if param in ctx.locals:
                raise ClayCompileError(
                    f"duplicate parameter {param!r} in {decl.name!r}"
                )
            ctx.locals[param] = index
        self._gen_body(ctx, decl.body)
        builder.emit(Opcode.RET, a=None)
        self.program.add_function(builder.finish())

    def _gen_body(self, ctx: _FnContext, stmts: List[ast.Node]) -> None:
        for stmt in stmts:
            self._gen_stmt(ctx, stmt)

    # -- statements ---------------------------------------------------------------------

    def _gen_stmt(self, ctx: _FnContext, stmt: ast.Node) -> None:
        builder = ctx.builder
        builder.set_line(stmt.line)
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in ctx.locals:
                raise ClayCompileError(
                    f"variable {stmt.name!r} redeclared (line {stmt.line})"
                )
            reg = self._gen_expr(ctx, stmt.value)
            target = builder.new_reg()
            builder.emit(Opcode.MOVE, dst=target, a=reg)
            ctx.locals[stmt.name] = target
            return
        if isinstance(stmt, ast.Assign):
            self._gen_assign(ctx, stmt)
            return
        if isinstance(stmt, ast.If):
            self._gen_if(ctx, stmt)
            return
        if isinstance(stmt, ast.While):
            self._gen_while(ctx, stmt)
            return
        if isinstance(stmt, ast.Break):
            if not ctx.loop_stack:
                raise ClayCompileError(f"'break' outside loop (line {stmt.line})")
            builder.emit(Opcode.JMP, a=builder.label_ref(ctx.loop_stack[-1][1]))
            return
        if isinstance(stmt, ast.Continue):
            if not ctx.loop_stack:
                raise ClayCompileError(f"'continue' outside loop (line {stmt.line})")
            builder.emit(Opcode.JMP, a=builder.label_ref(ctx.loop_stack[-1][0]))
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                builder.emit(Opcode.RET, a=None)
            else:
                reg = self._gen_expr(ctx, stmt.value)
                builder.emit(Opcode.RET, a=reg)
            return
        if isinstance(stmt, ast.ExprStmt):
            self._gen_expr(ctx, stmt.expr)
            return
        raise ClayCompileError(f"unsupported statement {stmt!r}")

    def _gen_assign(self, ctx: _FnContext, stmt: ast.Assign) -> None:
        builder = ctx.builder
        target = stmt.target
        if isinstance(target, ast.Name):
            name = target.ident
            if name in ctx.locals:
                value = self._gen_expr(ctx, stmt.value)
                builder.emit(Opcode.MOVE, dst=ctx.locals[name], a=value)
                return
            if name in self.globals:
                value = self._gen_expr(ctx, stmt.value)
                addr = builder.const(self.globals[name])
                builder.emit(Opcode.STORE, a=addr, b=value)
                return
            if name in self.global_arrays:
                raise ClayCompileError(
                    f"cannot assign to array global {name!r} (line {stmt.line})"
                )
            raise ClayCompileError(
                f"assignment to undefined variable {name!r} (line {stmt.line})"
            )
        assert isinstance(target, ast.Index)
        base = self._gen_expr(ctx, target.base)
        offset = self._gen_expr(ctx, target.offset)
        addr = builder.new_reg()
        builder.emit(Opcode.BIN, dst=addr, a=base, b=offset, extra="add")
        value = self._gen_expr(ctx, stmt.value)
        builder.emit(Opcode.STORE, a=addr, b=value)

    def _gen_if(self, ctx: _FnContext, stmt: ast.If) -> None:
        builder = ctx.builder
        cond = self._gen_expr(ctx, stmt.cond)
        then_label = builder.new_label()
        else_label = builder.new_label()
        end_label = builder.new_label()
        builder.emit(
            Opcode.BR, a=cond,
            b=builder.label_ref(then_label), extra=builder.label_ref(else_label),
        )
        builder.place_label(then_label)
        self._gen_body(ctx, stmt.then_body)
        builder.emit(Opcode.JMP, a=builder.label_ref(end_label))
        builder.place_label(else_label)
        self._gen_body(ctx, stmt.else_body)
        builder.place_label(end_label)

    def _gen_while(self, ctx: _FnContext, stmt: ast.While) -> None:
        builder = ctx.builder
        head_label = builder.new_label()
        body_label = builder.new_label()
        end_label = builder.new_label()
        builder.place_label(head_label)
        cond = self._gen_expr(ctx, stmt.cond)
        builder.emit(
            Opcode.BR, a=cond,
            b=builder.label_ref(body_label), extra=builder.label_ref(end_label),
        )
        builder.place_label(body_label)
        ctx.loop_stack.append((head_label, end_label))
        self._gen_body(ctx, stmt.body)
        ctx.loop_stack.pop()
        builder.emit(Opcode.JMP, a=builder.label_ref(head_label))
        builder.place_label(end_label)

    # -- expressions ------------------------------------------------------------------------

    def _gen_expr(self, ctx: _FnContext, node: ast.Node) -> int:
        builder = ctx.builder
        folded = self._const_eval(node)
        if folded is not None:
            return builder.const(folded)
        if isinstance(node, ast.IntLit):
            return builder.const(node.value)
        if isinstance(node, ast.Name):
            return self._gen_name(ctx, node)
        if isinstance(node, ast.Unary):
            operand = self._gen_expr(ctx, node.operand)
            dst = builder.new_reg()
            builder.emit(Opcode.UN, dst=dst, a=operand, extra=node.op)
            return dst
        if isinstance(node, ast.Binary):
            left = self._gen_expr(ctx, node.left)
            right = self._gen_expr(ctx, node.right)
            dst = builder.new_reg()
            builder.emit(Opcode.BIN, dst=dst, a=left, b=right, extra=node.op)
            return dst
        if isinstance(node, ast.Logical):
            return self._gen_logical(ctx, node)
        if isinstance(node, ast.Index):
            base = self._gen_expr(ctx, node.base)
            offset = self._gen_expr(ctx, node.offset)
            addr = builder.new_reg()
            builder.emit(Opcode.BIN, dst=addr, a=base, b=offset, extra="add")
            dst = builder.new_reg()
            builder.emit(Opcode.LOAD, dst=dst, a=addr)
            return dst
        if isinstance(node, ast.Call):
            return self._gen_call(ctx, node)
        raise ClayCompileError(f"unsupported expression {node!r}")

    def _gen_name(self, ctx: _FnContext, node: ast.Name) -> int:
        builder = ctx.builder
        name = node.ident
        if name in ctx.locals:
            return ctx.locals[name]
        if name in self.globals:
            addr = builder.const(self.globals[name])
            dst = builder.new_reg()
            builder.emit(Opcode.LOAD, dst=dst, a=addr)
            return dst
        if name in self.global_arrays:
            return builder.const(self.global_arrays[name])
        raise ClayCompileError(f"undefined name {name!r} (line {node.line})")

    def _gen_logical(self, ctx: _FnContext, node: ast.Logical) -> int:
        # Short-circuit evaluation, compiled to branches like C.
        builder = ctx.builder
        result = builder.new_reg()
        eval_right = builder.new_label()
        set_true = builder.new_label()
        set_false = builder.new_label()
        end = builder.new_label()
        left = self._gen_expr(ctx, node.left)
        if node.op == "&&":
            builder.emit(
                Opcode.BR, a=left,
                b=builder.label_ref(eval_right), extra=builder.label_ref(set_false),
            )
        else:
            builder.emit(
                Opcode.BR, a=left,
                b=builder.label_ref(set_true), extra=builder.label_ref(eval_right),
            )
        builder.place_label(eval_right)
        right = self._gen_expr(ctx, node.right)
        builder.emit(
            Opcode.BR, a=right,
            b=builder.label_ref(set_true), extra=builder.label_ref(set_false),
        )
        builder.place_label(set_true)
        builder.emit(Opcode.CONST, dst=result, a=1)
        builder.emit(Opcode.JMP, a=builder.label_ref(end))
        builder.place_label(set_false)
        builder.emit(Opcode.CONST, dst=result, a=0)
        builder.place_label(end)
        return result

    def _gen_call(self, ctx: _FnContext, node: ast.Call) -> int:
        builder = ctx.builder
        name = node.callee
        if name == "load":
            if len(node.args) != 1:
                raise ClayCompileError(f"load() takes 1 argument (line {node.line})")
            addr = self._gen_expr(ctx, node.args[0])
            dst = builder.new_reg()
            builder.emit(Opcode.LOAD, dst=dst, a=addr)
            return dst
        if name == "store":
            if len(node.args) != 2:
                raise ClayCompileError(f"store() takes 2 arguments (line {node.line})")
            addr = self._gen_expr(ctx, node.args[0])
            value = self._gen_expr(ctx, node.args[1])
            builder.emit(Opcode.STORE, a=addr, b=value)
            return builder.const(0)
        if name in _HYPER_BUILTINS:
            hyper, lo, hi = _HYPER_BUILTINS[name]
            if not (lo <= len(node.args) <= hi):
                raise ClayCompileError(
                    f"{name}() takes {lo}..{hi} arguments, got {len(node.args)} "
                    f"(line {node.line})"
                )
            args = tuple(self._gen_expr(ctx, a) for a in node.args)
            dst = builder.new_reg()
            builder.emit(Opcode.HYPER, dst=dst, extra=hyper, args=args)
            return dst
        if name not in self.signatures:
            raise ClayCompileError(f"call to undefined function {name!r} (line {node.line})")
        if len(node.args) != self.signatures[name]:
            raise ClayCompileError(
                f"{name}() takes {self.signatures[name]} arguments, got "
                f"{len(node.args)} (line {node.line})"
            )
        args = tuple(self._gen_expr(ctx, a) for a in node.args)
        dst = builder.new_reg()
        builder.emit(Opcode.CALL, dst=dst, extra=name, args=args)
        return dst


def compile_program(source: str, entry: str = "main") -> CompiledClay:
    """Compile Clay source text to a finalized LIR program."""
    from repro.clay.parser import parse

    module = parse(source)
    return _Codegen(module, entry).run()
