"""Constraint solver for path conditions (the STP stand-in).

The solver decides satisfiability of path conditions over the finite-domain
symbolic input variables created by ``make_symbolic``.  It combines interval
propagation with backtracking search (:mod:`repro.solver.csp`), memoises
results (:mod:`repro.solver.cache`) and exposes an optimisation query used
by the ``upper_bound`` guest API call.
"""

from repro.solver.interval import Interval, interval_eval
from repro.solver.csp import CspSolver, SolverStats
from repro.solver.cache import SolverCache

__all__ = [
    "CspSolver",
    "Interval",
    "SolverCache",
    "SolverStats",
    "interval_eval",
]
