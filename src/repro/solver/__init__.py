"""Constraint solving for path conditions (the STP stand-in).

The layer is split along the seam a real SMT solver would drop into:

- :mod:`repro.solver.constraints` — :class:`ConstraintSet`, the
  immutable share-structure path-condition representation every engine
  layer passes around,
- :mod:`repro.solver.backend` — the :class:`SolverBackend` protocol
  (``check``/``max_value`` over constraint sets) all consumers target,
- :mod:`repro.solver.csp` — the built-in finite-domain backend
  (interval propagation + backtracking search),
- :mod:`repro.solver.cache` — the engine-wide component-sliced
  counterexample/model cache shared by default backends,
- :mod:`repro.solver.interval` — interval arithmetic used for domain
  propagation and the ``upper_bound`` guest API.
"""

from repro.solver.backend import CheckResult, SAT, SolverBackend, UNKNOWN, UNSAT
from repro.solver.cache import (
    ModelCache,
    SolverCache,
    global_model_cache,
    reset_global_model_cache,
)
from repro.solver.constraints import ConstraintSet
from repro.solver.csp import CspSolver, SolverStats, make_default_solver
from repro.solver.interval import Interval, interval_eval

__all__ = [
    "CheckResult",
    "ConstraintSet",
    "CspSolver",
    "Interval",
    "ModelCache",
    "SAT",
    "SolverBackend",
    "SolverCache",
    "SolverStats",
    "UNKNOWN",
    "UNSAT",
    "global_model_cache",
    "interval_eval",
    "make_default_solver",
    "reset_global_model_cache",
]
