"""Interval arithmetic used for domain propagation and search pruning.

Intervals are inclusive integer ranges ``[lo, hi]``; ``None`` bounds mean
unbounded.  The rules are deliberately conservative: an imprecise result is
only ever *wider* than the true range, so pruning stays sound.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.lowlevel.expr import BinExpr, Expr, Sym, UnExpr


class Interval:
    """Inclusive integer interval; ``None`` means unbounded on that side."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[int], hi: Optional[int]):
        self.lo = lo
        self.hi = hi

    @staticmethod
    def exact(v: int) -> "Interval":
        return Interval(v, v)

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def boolean() -> "Interval":
        return Interval(0, 1)

    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def is_exact(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, v: int) -> bool:
        if self.lo is not None and v < self.lo:
            return False
        if self.hi is not None and v > self.hi:
            return False
        return True

    def intersect(self, other: "Interval") -> "Interval":
        lo = self.lo if other.lo is None else (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None else min(self.hi, other.hi))
        return Interval(lo, hi)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Interval) and self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{'-inf' if self.lo is None else self.lo}, {'+inf' if self.hi is None else self.hi}]"


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


def _neg(a: Optional[int]) -> Optional[int]:
    return None if a is None else -a


def iv_add(x: Interval, y: Interval) -> Interval:
    return Interval(_add(x.lo, y.lo), _add(x.hi, y.hi))


def iv_neg(x: Interval) -> Interval:
    return Interval(_neg(x.hi), _neg(x.lo))


def iv_sub(x: Interval, y: Interval) -> Interval:
    return iv_add(x, iv_neg(y))


def iv_mul(x: Interval, y: Interval) -> Interval:
    corners = []
    for a in (x.lo, x.hi):
        for b in (y.lo, y.hi):
            if a is None or b is None:
                return Interval.top()
            corners.append(a * b)
    return Interval(min(corners), max(corners))


def iv_div(x: Interval, y: Interval) -> Interval:
    # Conservative floor division; only precise for a strictly positive or
    # strictly negative divisor interval.
    if y.lo is None or y.hi is None or y.contains(0):
        return Interval.top()
    corners = []
    for a in (x.lo, x.hi):
        for b in (y.lo, y.hi):
            if a is None:
                return Interval.top()
            corners.append(a // b)
    return Interval(min(corners), max(corners))


def iv_mod(x: Interval, y: Interval) -> Interval:
    # a % b for b > 0 lies in [0, b-1]; refine when x is already inside.
    if y.lo is not None and y.lo > 0 and y.hi is not None:
        if (
            x.lo is not None
            and x.hi is not None
            and x.lo >= 0
            and x.hi < y.lo
        ):
            return Interval(x.lo, x.hi)
        return Interval(0, y.hi - 1)
    return Interval.top()


def iv_cmp(op: str, x: Interval, y: Interval) -> Interval:
    """Comparison result as a 0/1 interval; exact when ranges are disjoint."""

    def lt_always() -> bool:
        return x.hi is not None and y.lo is not None and x.hi < y.lo

    def gt_always() -> bool:
        return x.lo is not None and y.hi is not None and x.lo > y.hi

    def le_always() -> bool:
        return x.hi is not None and y.lo is not None and x.hi <= y.lo

    def ge_always() -> bool:
        return x.lo is not None and y.hi is not None and x.lo >= y.hi

    both_exact = x.is_exact() and y.is_exact()
    if op == "eq":
        if both_exact:
            return Interval.exact(int(x.lo == y.lo))
        if lt_always() or gt_always():
            return Interval.exact(0)
    elif op == "ne":
        if both_exact:
            return Interval.exact(int(x.lo != y.lo))
        if lt_always() or gt_always():
            return Interval.exact(1)
    elif op == "lt":
        if lt_always():
            return Interval.exact(1)
        if ge_always():
            return Interval.exact(0)
    elif op == "le":
        if le_always():
            return Interval.exact(1)
        if gt_always():
            return Interval.exact(0)
    elif op == "gt":
        if gt_always():
            return Interval.exact(1)
        if le_always():
            return Interval.exact(0)
    elif op == "ge":
        if ge_always():
            return Interval.exact(1)
        if lt_always():
            return Interval.exact(0)
    return Interval.boolean()


def _nonneg_bits_bound(x: Interval, y: Interval, op: str) -> Interval:
    """Bounds for &, |, ^ when both operands are known non-negative."""
    if x.lo is None or y.lo is None or x.lo < 0 or y.lo < 0:
        return Interval.top()
    if x.hi is None or y.hi is None:
        if op == "and":
            hi = x.hi if y.hi is None else y.hi
            return Interval(0, hi)
        return Interval(0, None)
    if op == "and":
        return Interval(0, min(x.hi, y.hi))
    # or/xor: bounded by the next power of two above both highs.
    bound = 1
    while bound <= max(x.hi, y.hi):
        bound <<= 1
    return Interval(0, bound - 1)


def interval_eval(
    expr,
    domains: Dict[str, Tuple[int, int]],
    env: Optional[Dict[str, int]] = None,
    memo: Optional[dict] = None,
) -> Interval:
    """Interval of possible values of ``expr``.

    ``domains`` maps variable names to (lo, hi); ``env`` supplies exact
    values for already-assigned variables (search-time pruning).
    """
    if not isinstance(expr, Expr):
        return Interval.exact(expr)
    if memo is None:
        memo = {}
    key = id(expr)
    hit = memo.get(key)
    if hit is not None:
        return hit

    if isinstance(expr, Sym):
        if env is not None and expr.name in env:
            result = Interval.exact(env[expr.name])
        else:
            dom = domains.get(expr.name)
            result = Interval(dom[0], dom[1]) if dom else Interval(expr.lo, expr.hi)
    elif isinstance(expr, UnExpr):
        a = interval_eval(expr.a, domains, env, memo)
        if expr.op == "neg":
            result = iv_neg(a)
        elif expr.op == "lnot":
            if a.is_exact():
                result = Interval.exact(int(a.lo == 0))
            elif not a.contains(0):
                result = Interval.exact(0)
            else:
                result = Interval.boolean()
        else:  # bnot: ~x = -x - 1
            result = iv_sub(iv_neg(a), Interval.exact(1))
    else:
        assert isinstance(expr, BinExpr)
        a = interval_eval(expr.a, domains, env, memo)
        b = interval_eval(expr.b, domains, env, memo)
        op = expr.op
        if op == "add":
            result = iv_add(a, b)
        elif op == "sub":
            result = iv_sub(a, b)
        elif op == "mul":
            result = iv_mul(a, b)
        elif op == "div":
            result = iv_div(a, b)
        elif op == "mod":
            result = iv_mod(a, b)
        elif op in ("eq", "ne", "lt", "le", "gt", "ge"):
            result = iv_cmp(op, a, b)
        elif op == "land":
            if (a.is_exact() and a.lo == 0) or (b.is_exact() and b.lo == 0):
                result = Interval.exact(0)
            elif not a.contains(0) and not b.contains(0):
                result = Interval.exact(1)
            else:
                result = Interval.boolean()
        elif op == "lor":
            if (a.is_exact() and a.lo != 0) or (b.is_exact() and b.lo != 0):
                result = Interval.exact(1)
            elif a.is_exact() and b.is_exact():
                result = Interval.exact(int(bool(a.lo) or bool(b.lo)))
            elif not a.contains(0) or not b.contains(0):
                result = Interval.exact(1)
            else:
                result = Interval.boolean()
        elif op in ("and", "or", "xor"):
            if a.is_exact() and b.is_exact():
                from repro.lowlevel.expr import _apply_binop

                result = Interval.exact(_apply_binop(op, a.lo, b.lo))
            else:
                result = _nonneg_bits_bound(a, b, op)
        elif op == "shl":
            if b.is_exact() and b.lo >= 0:
                result = iv_mul(a, Interval.exact(1 << b.lo))
            else:
                result = Interval.top()
        elif op == "shr":
            if b.is_exact() and b.lo >= 0:
                result = iv_div(a, Interval.exact(1 << b.lo))
            else:
                result = Interval.top()
        else:  # pragma: no cover - guarded by BINOPS
            result = Interval.top()

    memo[key] = result
    return result
