"""Engine-wide counterexample/model cache with component-sliced keys.

The KLEE lineage caches solver results two ways; both are reproduced
here, but keyed on *independence components* rather than whole queries.
The solver splits each normalised query into connected components of the
atom/variable graph and consults the cache per component, so one cached
answer serves every future query that contains the same component —
which, with interned atoms and share-structure constraint sets, is most
of them.

Reuse rules (all sound):

- **exact**: the same atom set was answered before → same answer.
- **subset-UNSAT**: a cached UNSAT key that is a *subset* of the query
  is still contradictory inside the bigger query → UNSAT.
- **superset-SAT**: a cached model for a *superset* of the query
  satisfies every query atom (they are all in the superset) → SAT,
  reuse the model.

Keys are frozensets of interned-atom ids (structural identity is ``is``
for interned expressions).  One process-wide instance backs every
default solver, making the cache engine-wide: states, engines and runs
share it.  Anything that invalidates interned ids — the expression
intern table or the ``Sym`` registry being cleared — must reset it via
:func:`reset_global_model_cache` (the test suite does this between
tests).
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lowlevel.expr import Expr, fingerprint
from repro.obs.metrics import MetricsRegistry, counter_property

#: Sentinel stored (and returned) for unsatisfiable entries.
UNSAT = "unsat"

#: Reuse kinds reported by :meth:`ModelCache.lookup`.
HIT_EXACT = "exact"
HIT_SUBSET_UNSAT = "subset-unsat"
HIT_SUPERSET_SAT = "superset-sat"

#: Counter fields, registered as ``cache.<field>`` in the obs registry.
_COUNTER_FIELDS = (
    "hits",
    "subset_hits",
    "superset_hits",
    "misses",
    "stores",
    "merged_stores",
    "merged_hits",
    "cross_run_hits",
    "persistent_loaded",
    "corrupt_frames_skipped",
)


class ModelCache:
    """Memoises per-component verdicts and recent satisfying models.

    Counters live in a :class:`~repro.obs.metrics.MetricsRegistry`
    under ``cache.*`` names (pass ``registry`` to share an engine
    context's registry; the historical ``cache.hits``-style attributes
    remain as live views).
    """

    def __init__(
        self,
        max_entries: int = 8192,
        max_models: int = 64,
        scan_limit: int = 128,
        max_journal: int = 8192,
        registry: Optional[MetricsRegistry] = None,
    ):
        #: key → model dict or UNSAT, most recently used last.
        self._entries: "OrderedDict[FrozenSet[int], object]" = OrderedDict()
        self._recent_models: List[Dict[str, int]] = []
        self._max_entries = max_entries
        self._max_models = max_models
        self._scan_limit = scan_limit
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            field: self.registry.counter(f"cache.{field}") for field in _COUNTER_FIELDS
        }
        self._g_entries = self.registry.gauge("cache.entries")
        # -- cross-process delta protocol ----------------------------------
        #: append-only journal of portable entries: (fingerprint key,
        #: atom tuple, result).  Atoms re-intern on unpickle, so a journal
        #: slice shipped to another process re-keys itself there.
        self._journal: List[Tuple[FrozenSet[int], Tuple[Expr, ...], object]] = []
        self._journal_base = 0
        self._max_journal = max_journal
        #: fingerprint keys of live journaled/merged entries (dedup guard
        #: for re-broadcast entries); pruned on LRU eviction so a
        #: re-discovered verdict can be journaled again.
        self._known_fps: set = set()
        #: local key -> fingerprint key, for that eviction-time pruning.
        self._fp_of_key: Dict[FrozenSet[int], FrozenSet[int]] = {}
        #: local keys that arrived via merge(); hits on them are counted
        #: separately as cross-worker reuse.
        self._merged_keys: set = set()
        #: fingerprint keys whose entries came from a persistent store
        #: (another run, possibly another tenant); hits on them are
        #: counted separately as cross-run reuse.
        self._persistent_fps: Set[FrozenSet[int]] = set()
        #: serialises mutation against concurrent sessions: the engine-wide
        #: cache is shared by every tenant of a service daemon, and a bare
        #: ``popitem`` racing a ``store`` could raise mid-eviction.
        self._lock = threading.RLock()

    @staticmethod
    def key_for(atoms) -> FrozenSet[int]:
        """Cache key of an atom collection (interned-expression ids)."""
        return frozenset(id(a) for a in atoms if isinstance(a, Expr))

    def _count_reuse(self, matched_key: FrozenSet[int]) -> None:
        """Attribute a hit on ``matched_key`` to its provenance counters."""
        if matched_key in self._merged_keys:
            self.merged_hits += 1
        fp_key = self._fp_of_key.get(matched_key)
        if fp_key is not None and fp_key in self._persistent_fps:
            self.cross_run_hits += 1

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: FrozenSet[int]) -> Optional[Tuple[str, object]]:
        """Return ``(kind, result)`` or None on a miss.

        ``result`` is a model dict or :data:`UNSAT`; ``kind`` is one of
        the ``HIT_*`` constants.  Subset/superset scans are bounded to
        the most recently used entries.
        """
        if not key:
            return None
        with self._lock:
            entries = self._entries
            exact = entries.get(key)
            if exact is not None:
                entries.move_to_end(key)
                self.hits += 1
                self._count_reuse(key)
                return (HIT_EXACT, exact)
            scanned = 0
            for cached_key in reversed(entries):
                if scanned >= self._scan_limit:
                    break
                scanned += 1
                result = entries[cached_key]
                if result == UNSAT:
                    if cached_key <= key:
                        entries.move_to_end(cached_key)
                        self.subset_hits += 1
                        self._count_reuse(cached_key)
                        return (HIT_SUBSET_UNSAT, UNSAT)
                elif key <= cached_key:
                    entries.move_to_end(cached_key)
                    self.superset_hits += 1
                    self._count_reuse(cached_key)
                    return (HIT_SUPERSET_SAT, result)
            self.misses += 1
            return None

    # -- store ----------------------------------------------------------------

    def store(self, key: FrozenSet[int], result, atoms: Optional[Sequence] = None) -> None:
        """Record a verdict: a model dict or :data:`UNSAT`.

        When ``atoms`` (the expressions behind ``key``) are supplied and
        the key is new, the entry is also journaled in portable form so
        :meth:`export_delta` can ship it to other processes.
        """
        if not key:
            return
        with self._lock:
            is_new = key not in self._entries
            if not is_new:
                # A locally recomputed verdict replaces whatever was merged
                # in; its hits are local reuse, not cross-worker reuse.
                self._merged_keys.discard(key)
            self._entries[key] = result
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self._max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                fp_key = self._fp_of_key.pop(evicted_key, None)
                if fp_key is not None:
                    self._known_fps.discard(fp_key)
                self._merged_keys.discard(evicted_key)
            self._g_entries.value = len(self._entries)
            if is_new and atoms is not None:
                self._journal_entry(key, tuple(atoms), result)
            if isinstance(result, dict):
                self.remember_solution(result)

    def _journal_entry(self, key: FrozenSet[int], atoms: Tuple[Expr, ...], result) -> None:
        fp_key = frozenset(fingerprint(a) for a in atoms)
        if fp_key in self._known_fps:
            return
        self._known_fps.add(fp_key)
        self._fp_of_key[key] = fp_key
        payload = dict(result) if isinstance(result, dict) else result
        self._journal.append((fp_key, atoms, payload))
        overflow = len(self._journal) - self._max_journal
        if overflow > 0:
            # Roll the window; stale marks just export less (sound: a
            # missing delta entry only costs reuse, never correctness).
            del self._journal[:overflow]
            self._journal_base += overflow

    # -- cross-process delta protocol ------------------------------------------

    def journal_mark(self) -> int:
        """Opaque high-water mark for :meth:`export_delta`."""
        return self._journal_base + len(self._journal)

    def export_delta(self, mark: int = 0) -> List[Tuple[FrozenSet[int], Tuple[Expr, ...], object]]:
        """Portable entries journaled since ``mark`` (see journal_mark).

        The returned list pickles cleanly: atoms re-intern themselves on
        load, so the receiver re-keys each entry under its own interned
        ids via :meth:`merge`.
        """
        with self._lock:
            start = max(mark - self._journal_base, 0)
            return self._journal[start:]

    def merge(self, delta: Sequence[Tuple[FrozenSet[int], Tuple[Expr, ...], object]]) -> int:
        """Fold another process's exported delta into this cache.

        Entries already known (by fingerprint or by local key) are
        skipped; newly adopted entries are journaled onward, so a
        coordinator can re-broadcast worker deltas to the rest of the
        pool.  Returns the number of entries adopted.
        """
        adopted = 0
        with self._lock:
            for fp_key, atoms, result in delta:
                if fp_key in self._known_fps:
                    continue
                key = self.key_for(atoms)
                if not key or key in self._entries:
                    self._known_fps.add(fp_key)
                    if key:
                        self._fp_of_key.setdefault(key, fp_key)
                    continue
                self.store(key, dict(result) if isinstance(result, dict) else result,
                           atoms=atoms)
                self._merged_keys.add(key)
                self.merged_stores += 1
                adopted += 1
        return adopted

    def mark_persistent(self, fp_keys: Iterable[FrozenSet[int]]) -> None:
        """Tag fingerprint keys as loaded from a persistent store.

        Hits on entries whose fingerprints are tagged count as
        ``cross_run_hits`` — reuse carried over from a previous run
        (possibly another tenant's), as opposed to ``merged_hits``
        (cross-worker reuse inside one run).
        """
        with self._lock:
            self._persistent_fps.update(fp_keys)

    def remember_solution(self, solution: Dict[str, int]) -> None:
        """Keep a model for cross-query counterexample reuse."""
        self._recent_models.append(dict(solution))
        if len(self._recent_models) > self._max_models:
            self._recent_models.pop(0)

    def candidate_solutions(self) -> List[Dict[str, int]]:
        """Most-recent-first models for counterexample reuse."""
        return list(reversed(self._recent_models))

    # -- maintenance -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._recent_models.clear()
            for counter in self._counters.values():
                counter.value = 0
            self._g_entries.value = 0
            self._journal.clear()
            self._journal_base = 0
            self._known_fps.clear()
            self._fp_of_key.clear()
            self._merged_keys.clear()
            self._persistent_fps.clear()

    def stats_dict(self) -> Dict[str, int]:
        """Legacy counter-dict view of the ``cache.*`` registry metrics."""
        stats = {field: counter.value for field, counter in self._counters.items()}
        stats["entries"] = len(self._entries)
        return stats


for _field in _COUNTER_FIELDS:
    setattr(ModelCache, _field, counter_property(_field))
del _field


#: largest frame a store will attempt to read back — a length prefix
#: beyond this is a desynchronised (torn) stream, not a real frame.
_MAX_FRAME_BYTES = 1 << 31


class PersistentCacheStore:
    """Disk-backed journal of portable model-cache entries.

    Because cache entries travel as ``(fingerprint key, atom tuple,
    result)`` and both halves are process-independent — fingerprints are
    stable blake2b structural digests, atoms re-intern themselves on
    unpickle — the same journal format that crosses *process* boundaries
    (PR 4's ``export_delta``/``merge``) can cross *run* boundaries: dump
    the entries to disk, load and :meth:`ModelCache.merge` them next
    run, and subset-UNSAT/superset-SAT reuse carries over between runs
    and between tenants hitting similar targets.

    File format: a sequence of length-prefixed pickled **frames**, each
    ``(magic, meta, entries)`` — ``meta`` records the writer's
    provenance (pid and a per-handle sequence number, mirroring the
    in-memory journal's (pool epoch, pid) keying).  Appends are one
    frame each, so concurrent runs interleave whole frames; the length
    prefix makes each frame independently skippable: an unpicklable
    frame — e.g. atoms that re-declare a symbolic variable under a
    different domain (a colliding namespace from an unrelated program)
    — is dropped alone, and only a truncated tail from a crashed writer
    ends the scan early.

    Reuse stays sound under every failure mode here: a lost or skipped
    entry only costs a solver query, never an answer — which is why
    invalidation can be this permissive.
    """

    MAGIC = "repro-cache/1"

    def __init__(self, path, faults=None):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        #: fingerprints this handle has seen (loaded or appended) —
        #: appends are filtered against it so re-discovered entries do
        #: not bloat the file across sessions.
        self._seen_fps: Set[FrozenSet[int]] = set()
        self._seq = 0
        #: frames dropped by :meth:`load` (unpicklable, bad magic, or a
        #: truncated tail), cumulative over this handle's lifetime;
        #: :meth:`load_into` folds the per-load delta into the cache's
        #: ``cache.corrupt_frames_skipped`` counter so torn writes are
        #: visible in run metrics instead of silently shrinking reuse.
        self.corrupt_frames_skipped = 0
        #: optional :class:`~repro.faults.FaultInjector`; when set, every
        #: append may be torn (tail-truncated) per the fault plan.
        self._faults = faults

    def load(self) -> List[Tuple[FrozenSet[int], Tuple[Expr, ...], object]]:
        """Read every loadable frame; entries deduped by fingerprint."""
        entries: List = []
        with self._lock:
            try:
                fh = open(self.path, "rb")
            except OSError:
                return entries
            with fh:
                while True:
                    header = fh.read(8)
                    if not header:
                        break
                    if len(header) < 8:
                        # Torn mid-header: the tail frame is lost.
                        self.corrupt_frames_skipped += 1
                        break
                    length = int.from_bytes(header, "big")
                    if length > _MAX_FRAME_BYTES:
                        # A length this large means we are reading the
                        # middle of a frame (a tear desynchronised the
                        # stream) — nothing past here can be trusted.
                        self.corrupt_frames_skipped += 1
                        break
                    blob = fh.read(length)
                    if len(blob) < length:
                        # Truncated tail from a crashed (or torn) writer:
                        # the longest valid prefix is what loaded so far.
                        self.corrupt_frames_skipped += 1
                        break
                    try:
                        frame = pickle.loads(blob)
                    except Exception:
                        self.corrupt_frames_skipped += 1
                        continue  # bad frame: skip it, keep scanning
                    if (
                        not isinstance(frame, tuple)
                        or len(frame) != 3
                        or frame[0] != self.MAGIC
                    ):
                        self.corrupt_frames_skipped += 1
                        continue
                    for entry in frame[2]:
                        fp_key = entry[0]
                        if fp_key in self._seen_fps:
                            continue
                        self._seen_fps.add(fp_key)
                        entries.append(entry)
        return entries

    def load_into(self, cache: ModelCache) -> int:
        """Merge the store into ``cache`` and tag the entries persistent.

        Returns the number of entries adopted; ``cache.persistent_loaded``
        counts them and hits on them count as ``cache.cross_run_hits``.
        Frames the load had to drop are folded into the cache's
        ``cache.corrupt_frames_skipped`` counter.
        """
        skipped_before = self.corrupt_frames_skipped
        entries = self.load()
        adopted = cache.merge(entries)
        cache.mark_persistent(entry[0] for entry in entries)
        cache.persistent_loaded += adopted
        skipped = self.corrupt_frames_skipped - skipped_before
        if skipped:
            cache.corrupt_frames_skipped += skipped
        return adopted

    def append(self, entries: Sequence[Tuple[FrozenSet[int], Tuple[Expr, ...], object]]) -> int:
        """Append one frame of not-yet-stored entries; returns the count."""
        with self._lock:
            fresh = [e for e in entries if e[0] not in self._seen_fps]
            if not fresh:
                return 0
            self._seen_fps.update(e[0] for e in fresh)
            self._seq += 1
            meta = {"pid": os.getpid(), "seq": self._seq}
            blob = pickle.dumps(
                (self.MAGIC, meta, fresh), protocol=pickle.HIGHEST_PROTOCOL
            )
            # One write() per frame: concurrent appenders (two sessions
            # of the same target closing together) interleave whole
            # frames, never a header split from its blob.
            with open(self.path, "ab") as fh:
                fh.write(len(blob).to_bytes(8, "big") + blob)
            if self._faults is not None:
                self._faults.maybe_truncate(self.path)
        return len(fresh)

    def append_from(self, cache: ModelCache, mark: int = 0) -> int:
        """Append ``cache``'s journal entries since ``mark``."""
        return self.append(cache.export_delta(mark))

    def seen_fps(self) -> FrozenSet[FrozenSet[int]]:
        """Fingerprint keys this handle has loaded or appended so far."""
        with self._lock:
            return frozenset(self._seen_fps)


#: Import-compatible alias for the pre-refactor class name ONLY — the
#: method contract changed with the rewrite: ``lookup`` now returns a
#: ``(kind, result)`` tuple (was a bare model/UNSAT/None) and ``store``
#: ignores empty keys.  Code written against the seed-era SolverCache
#: API must be ported, not just re-pointed.
SolverCache = ModelCache

_GLOBAL_CACHE: Optional[ModelCache] = None


def global_model_cache() -> ModelCache:
    """The process-wide cache shared by default solver instances."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = ModelCache()
    return _GLOBAL_CACHE


def reset_global_model_cache() -> None:
    """Drop every cached verdict and model (tests call this between
    tests, because clearing the expression intern table recycles the
    ids the cache keys on)."""
    if _GLOBAL_CACHE is not None:
        _GLOBAL_CACHE.clear()


__all__ = [
    "HIT_EXACT",
    "HIT_SUBSET_UNSAT",
    "HIT_SUPERSET_SAT",
    "ModelCache",
    "PersistentCacheStore",
    "SolverCache",
    "UNSAT",
    "global_model_cache",
    "reset_global_model_cache",
]
