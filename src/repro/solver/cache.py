"""Engine-wide counterexample/model cache with component-sliced keys.

The KLEE lineage caches solver results two ways; both are reproduced
here, but keyed on *independence components* rather than whole queries.
The solver splits each normalised query into connected components of the
atom/variable graph and consults the cache per component, so one cached
answer serves every future query that contains the same component —
which, with interned atoms and share-structure constraint sets, is most
of them.

Reuse rules (all sound):

- **exact**: the same atom set was answered before → same answer.
- **subset-UNSAT**: a cached UNSAT key that is a *subset* of the query
  is still contradictory inside the bigger query → UNSAT.
- **superset-SAT**: a cached model for a *superset* of the query
  satisfies every query atom (they are all in the superset) → SAT,
  reuse the model.

Keys are frozensets of interned-atom ids (structural identity is ``is``
for interned expressions).  One process-wide instance backs every
default solver, making the cache engine-wide: states, engines and runs
share it.  Anything that invalidates interned ids — the expression
intern table or the ``Sym`` registry being cleared — must reset it via
:func:`reset_global_model_cache` (the test suite does this between
tests).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lowlevel.expr import Expr

#: Sentinel stored (and returned) for unsatisfiable entries.
UNSAT = "unsat"

#: Reuse kinds reported by :meth:`ModelCache.lookup`.
HIT_EXACT = "exact"
HIT_SUBSET_UNSAT = "subset-unsat"
HIT_SUPERSET_SAT = "superset-sat"


class ModelCache:
    """Memoises per-component verdicts and recent satisfying models."""

    def __init__(
        self,
        max_entries: int = 8192,
        max_models: int = 64,
        scan_limit: int = 128,
    ):
        #: key → model dict or UNSAT, most recently used last.
        self._entries: "OrderedDict[FrozenSet[int], object]" = OrderedDict()
        self._recent_models: List[Dict[str, int]] = []
        self._max_entries = max_entries
        self._max_models = max_models
        self._scan_limit = scan_limit
        self.hits = 0
        self.subset_hits = 0
        self.superset_hits = 0
        self.misses = 0
        self.stores = 0

    @staticmethod
    def key_for(atoms) -> FrozenSet[int]:
        """Cache key of an atom collection (interned-expression ids)."""
        return frozenset(id(a) for a in atoms if isinstance(a, Expr))

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: FrozenSet[int]) -> Optional[Tuple[str, object]]:
        """Return ``(kind, result)`` or None on a miss.

        ``result`` is a model dict or :data:`UNSAT`; ``kind`` is one of
        the ``HIT_*`` constants.  Subset/superset scans are bounded to
        the most recently used entries.
        """
        if not key:
            return None
        entries = self._entries
        exact = entries.get(key)
        if exact is not None:
            entries.move_to_end(key)
            self.hits += 1
            return (HIT_EXACT, exact)
        scanned = 0
        for cached_key in reversed(entries):
            if scanned >= self._scan_limit:
                break
            scanned += 1
            result = entries[cached_key]
            if result == UNSAT:
                if cached_key <= key:
                    entries.move_to_end(cached_key)
                    self.subset_hits += 1
                    return (HIT_SUBSET_UNSAT, UNSAT)
            elif key <= cached_key:
                entries.move_to_end(cached_key)
                self.superset_hits += 1
                return (HIT_SUPERSET_SAT, result)
        self.misses += 1
        return None

    # -- store ----------------------------------------------------------------

    def store(self, key: FrozenSet[int], result) -> None:
        """Record a verdict: a model dict or :data:`UNSAT`."""
        if not key:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        self.stores += 1
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
        if isinstance(result, dict):
            self.remember_solution(result)

    def remember_solution(self, solution: Dict[str, int]) -> None:
        """Keep a model for cross-query counterexample reuse."""
        self._recent_models.append(dict(solution))
        if len(self._recent_models) > self._max_models:
            self._recent_models.pop(0)

    def candidate_solutions(self) -> List[Dict[str, int]]:
        """Most-recent-first models for counterexample reuse."""
        return list(reversed(self._recent_models))

    # -- maintenance -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._recent_models.clear()
        self.hits = 0
        self.subset_hits = 0
        self.superset_hits = 0
        self.misses = 0
        self.stores = 0

    def stats_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "subset_hits": self.subset_hits,
            "superset_hits": self.superset_hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self._entries),
        }


#: Import-compatible alias for the pre-refactor class name ONLY — the
#: method contract changed with the rewrite: ``lookup`` now returns a
#: ``(kind, result)`` tuple (was a bare model/UNSAT/None) and ``store``
#: ignores empty keys.  Code written against the seed-era SolverCache
#: API must be ported, not just re-pointed.
SolverCache = ModelCache

_GLOBAL_CACHE: Optional[ModelCache] = None


def global_model_cache() -> ModelCache:
    """The process-wide cache shared by default solver instances."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = ModelCache()
    return _GLOBAL_CACHE


def reset_global_model_cache() -> None:
    """Drop every cached verdict and model (tests call this between
    tests, because clearing the expression intern table recycles the
    ids the cache keys on)."""
    if _GLOBAL_CACHE is not None:
        _GLOBAL_CACHE.clear()


__all__ = [
    "HIT_EXACT",
    "HIT_SUBSET_UNSAT",
    "HIT_SUPERSET_SAT",
    "ModelCache",
    "SolverCache",
    "UNSAT",
    "global_model_cache",
    "reset_global_model_cache",
]
