"""Query caching for the constraint solver.

Two classic optimisations from the KLEE lineage:

- a *query cache*: identical constraint sets (by interned expression
  identity) resolve to their previous answer,
- a *counterexample cache*: recent satisfying assignments are re-tested
  against new queries before any search, because consecutive path
  conditions usually differ by one constraint.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

UNSAT = "unsat"


class SolverCache:
    """Memoises query results keyed on the interned constraint set."""

    def __init__(self, max_solutions: int = 64):
        self._queries: Dict[FrozenSet[int], object] = {}
        self._recent_solutions: List[Dict[str, int]] = []
        self._max_solutions = max_solutions
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(constraints) -> FrozenSet[int]:
        return frozenset(id(c) for c in constraints)

    def lookup(self, key: FrozenSet[int]):
        """Return a cached result: a solution dict, UNSAT, or None (miss)."""
        result = self._queries.get(key)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: FrozenSet[int], result) -> None:
        self._queries[key] = result
        if isinstance(result, dict):
            self.remember_solution(result)

    def remember_solution(self, solution: Dict[str, int]) -> None:
        self._recent_solutions.append(dict(solution))
        if len(self._recent_solutions) > self._max_solutions:
            self._recent_solutions.pop(0)

    def candidate_solutions(self) -> List[Dict[str, int]]:
        """Most-recent-first candidates for counterexample reuse."""
        return list(reversed(self._recent_solutions))

    def clear(self) -> None:
        self._queries.clear()
        self._recent_solutions.clear()
        self.hits = 0
        self.misses = 0
