"""The pluggable solver-backend seam.

Every consumer of constraint solving in the engine — fork feasibility in
the low-level executor, test-case generation in Chef, the dedicated
NICE-style engine, the symbolic test runner — talks to a
:class:`SolverBackend` and hands it a
:class:`~repro.solver.constraints.ConstraintSet`.  The reproduction ships
one backend (the CSP solver in :mod:`repro.solver.csp`, the STP stand-in);
a real SMT solver drops in by implementing this interface, exactly the
library-style layering argued for by Soteria.

``check`` is total: it returns :data:`UNKNOWN` instead of raising when
the backend's resource budget runs out, so engine code can treat "too
hard" uniformly (the paper's completeness caveat, §3.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

from repro.solver.constraints import ConstraintSet

#: Verdicts of a satisfiability check.
SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one satisfiability check."""

    status: str  #: one of SAT / UNSAT / UNKNOWN
    model: Optional[Dict[str, int]] = None  #: satisfying assignment when SAT

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status == UNKNOWN


class SolverBackend(ABC):
    """Interface every constraint-solver backend implements.

    Implementations expose a ``stats`` attribute with an ``as_dict()``
    method (counters reported by benchmarks) and may expose a ``cache``
    attribute for engine-wide model caching.

    Observability contract (optional but recommended): keep the stats
    counters in a :class:`~repro.obs.metrics.MetricsRegistry` exposed
    as ``stats.registry`` under ``solver.*`` names, and accept a
    ``telemetry`` context (:class:`~repro.obs.telemetry.Telemetry`) to
    record ``solver.check`` / ``solver.max_value`` spans.  The
    low-level engine adopts ``stats.registry`` (and the cache's) into
    its telemetry context when present, which is what makes the
    backend's numbers show up in ``Session.metrics()`` and the trace
    exports; a backend without a registry still works — its counters
    are just invisible to the metrics surface.  See the default
    :class:`~repro.solver.csp.CspSolver` and the "Observability"
    section of ``docs/architecture.md``.
    """

    @abstractmethod
    def check(
        self,
        constraints: ConstraintSet,
        hint: Optional[Dict[str, int]] = None,
        budget: Optional[int] = None,
    ) -> CheckResult:
        """Decide satisfiability of ``constraints``.

        ``hint`` is a partial assignment worth trying first (the parent
        state's concrete inputs); ``budget`` overrides the backend-wide
        effort bound for this query.  Never raises on exhausted budgets —
        returns :data:`UNKNOWN`.
        """

    @abstractmethod
    def max_value(
        self,
        expr,
        constraints: ConstraintSet,
        cap: int = 1 << 20,
        hint: Optional[Dict[str, int]] = None,
    ) -> Optional[int]:
        """Maximum of ``expr`` over satisfying assignments, clamped to
        ``cap``; None when ``constraints`` is unsatisfiable."""

    def satisfiable(
        self,
        constraints: ConstraintSet,
        hint: Optional[Dict[str, int]] = None,
    ) -> bool:
        """True iff ``check`` returns SAT (UNKNOWN counts as not shown)."""
        return self.check(constraints, hint=hint).is_sat


__all__ = ["CheckResult", "SAT", "SolverBackend", "UNKNOWN", "UNSAT"]
