"""Incremental, share-structure path-condition sets.

A :class:`ConstraintSet` is an immutable chain of path-condition atoms:
``child = parent.append(atom)`` shares the whole parent chain, so the N
states alive during exploration hold O(N) atoms total instead of O(N^2)
copied lists.  This is the engine-side half of incremental solving (the
classic per-state constraint sets surveyed by Baldoni et al.): the solver
sees *which atoms are new* relative to an ancestor that is already known
to be satisfiable and only re-solves what those atoms touch.

Each set memoizes, per node and computed lazily:

- the free-variable *name index* (union of the parent's index and the
  last atom's variables),
- the partition of its atoms into independence *components* (connected
  components of the atom/variable graph — atoms in different components
  can be solved separately),
- a *known model*: an assignment recorded by whoever proved or observed
  this exact set satisfiable (the concolic executor knows its concrete
  assignment satisfies every atom it appends; the solver records the
  models it finds).

The known-model contract: ``note_model(m)`` asserts that ``m``, completed
with ``var.lo`` for any variable missing from it, satisfies **every**
atom in this set.  Solvers use it two ways: re-check just the appended
suffix atoms against the nearest ancestor model before any search, and
adopt the ancestor model wholesale for components the suffix does not
touch (independence slicing).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.lowlevel.expr import Expr, flatten_values, rebuild_values

Atom = object  #: an Expr, or a concrete int (trivially true/false)


class ConstraintSet:
    """One immutable node in a share-structure chain of atoms."""

    __slots__ = ("parent", "atom", "_length", "_free", "_model", "_unsat", "_components")

    _EMPTY: Optional["ConstraintSet"] = None

    def __init__(self, parent: Optional["ConstraintSet"], atom: Optional[Atom]):
        self.parent = parent
        self.atom = atom
        self._length = (parent._length + 1) if parent is not None else 0
        self._free: Optional[FrozenSet[str]] = None
        self._model: Optional[Dict[str, int]] = None
        self._unsat = False
        self._components: Optional[List[Tuple[FrozenSet[str], Tuple[Atom, ...]]]] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def empty(cls) -> "ConstraintSet":
        """The shared empty set (root of every chain)."""
        if cls._EMPTY is None:
            cls._EMPTY = cls(None, None)
            cls._EMPTY._free = frozenset()
        return cls._EMPTY

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "ConstraintSet":
        """Build a fresh chain from an iterable of atoms."""
        if isinstance(atoms, ConstraintSet):
            return atoms
        node = cls.empty()
        for atom in atoms:
            node = node.append(atom)
        return node

    def append(self, atom: Atom) -> "ConstraintSet":
        """Return a new set extending this one by ``atom`` (shared tail)."""
        return ConstraintSet(self, atom)

    def extend(self, atoms: Iterable[Atom]) -> "ConstraintSet":
        node = self
        for atom in atoms:
            node = node.append(atom)
        return node

    # -- basic views ---------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms())

    def atoms(self) -> List[Atom]:
        """All atoms, oldest first."""
        out: List[Atom] = []
        node = self
        while node._length:
            out.append(node.atom)
            node = node.parent
        out.reverse()
        return out

    def key(self) -> Tuple[int, ...]:
        """Stable identity key (interned-atom ids, oldest first)."""
        return tuple(id(a) if isinstance(a, Expr) else hash(("c", a)) for a in self.atoms())

    # -- portable snapshots ---------------------------------------------------

    def __reduce__(self):
        """Pickle as (prefix atoms, nearest known model, suffix atoms).

        The chain is flattened so unpickling is iterative (no recursion
        over parent links) and the nearest ancestor known-model — the
        thing that makes sibling queries cheap — survives the trip.
        All atoms are flattened through one shared
        :func:`~repro.lowlevel.expr.flatten_values` call, so expression
        structure shared between atoms (the common case: each loop
        iteration's atom builds on the previous accumulator) is encoded
        once instead of once per atom.  Atoms re-intern on load, so a
        restored set keys into the receiving process's caches exactly
        like a native one.
        """
        model, prefix, suffix = self.split_at_model()
        instrs, refs = flatten_values(prefix + suffix)
        return (
            _restore_chain,
            (
                instrs,
                refs[: len(prefix)],
                None if model is None else dict(model),
                refs[len(prefix):],
            ),
        )

    def __repr__(self) -> str:
        return f"ConstraintSet(|atoms|={self._length}, model={'yes' if self._model is not None else 'no'})"

    # -- memoized free-variable index ----------------------------------------

    @property
    def free_names(self) -> FrozenSet[str]:
        """Names of all symbolic variables occurring in the set (memoized)."""
        free = self._free
        if free is None:
            base = self.parent.free_names
            if isinstance(self.atom, Expr):
                free = base | frozenset(v.name for v in self.atom.free_vars())
            else:
                free = base
            self._free = free
        return free

    def domains(self) -> Dict[str, Tuple[int, int]]:
        """Variable name → inclusive (lo, hi) domain over the set's atoms."""
        out: Dict[str, Tuple[int, int]] = {}
        for atom in self.atoms():
            if isinstance(atom, Expr):
                for var in atom.free_vars():
                    out.setdefault(var.name, (var.lo, var.hi))
        return out

    # -- independence partitioning -------------------------------------------

    def components(self) -> List[Tuple[FrozenSet[str], Tuple[Atom, ...]]]:
        """Partition atoms into connected components of shared variables.

        Returns ``[(names, atoms), ...]`` sorted smallest-first; atoms with
        no free variables (concrete residues) are grouped under the empty
        name set.  Memoized per node.
        """
        comps = self._components
        if comps is None:
            parent: Dict[str, str] = {}

            def find(x: str) -> str:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            atom_list = self.atoms()
            atom_names: List[List[str]] = []
            for atom in atom_list:
                if isinstance(atom, Expr):
                    names = sorted(v.name for v in atom.free_vars())
                else:
                    names = []
                atom_names.append(names)
                for n in names:
                    parent.setdefault(n, n)
                for other in names[1:]:
                    ra, rb = find(names[0]), find(other)
                    if ra != rb:
                        parent[rb] = ra

            grouped: Dict[Optional[str], List[Atom]] = {}
            members: Dict[Optional[str], set] = {}
            for atom, names in zip(atom_list, atom_names):
                root = find(names[0]) if names else None
                grouped.setdefault(root, []).append(atom)
                members.setdefault(root, set()).update(names)
            comps = sorted(
                (
                    (frozenset(names), tuple(atoms))
                    for names, atoms in (
                        (members[root], grouped[root]) for root in grouped
                    )
                ),
                key=lambda item: (len(item[0]), sorted(item[0])),
            )
            self._components = comps
        return comps

    # -- known models ---------------------------------------------------------

    def note_model(self, model: Dict[str, int]) -> None:
        """Record an assignment known to satisfy every atom in this set.

        Contract: ``model`` completed with ``var.lo`` for missing variables
        satisfies all atoms.  The dict is stored by reference; callers may
        later *add* keys (the concolic executor lazily fills in fresh
        variables) but must never change the value of an existing key.
        """
        self._model = model

    @property
    def model(self) -> Optional[Dict[str, int]]:
        """The known satisfying assignment, if any."""
        return self._model

    def note_unsat(self) -> None:
        """Record that this exact set was proven unsatisfiable."""
        self._unsat = True

    @property
    def known_unsat(self) -> bool:
        return self._unsat

    def split_at_model(self) -> Tuple[Optional[Dict[str, int]], List[Atom], List[Atom]]:
        """Split at the nearest ancestor carrying a known model.

        Returns ``(model, prefix_atoms, suffix_atoms)``: ``prefix_atoms``
        are the atoms of the model-bearing ancestor (satisfied by the
        model, per the contract), ``suffix_atoms`` everything appended
        since.  With no model anywhere, returns ``(None, [], all_atoms)``.
        """
        suffix: List[Atom] = []
        node = self
        while node._length:
            if node._model is not None:
                suffix.reverse()
                return node._model, node.atoms(), suffix
            suffix.append(node.atom)
            node = node.parent
        suffix.reverse()
        return None, [], suffix


def _restore_chain(instrs, prefix_refs, model, suffix_refs) -> ConstraintSet:
    """Rebuild a pickled chain; see :meth:`ConstraintSet.__reduce__`."""
    values = rebuild_values(instrs)
    node = ConstraintSet.from_atoms(values[r] for r in prefix_refs)
    if model is not None:
        node.note_model(model)
    return node.extend(values[r] for r in suffix_refs)


__all__ = ["ConstraintSet"]
