"""Backtracking CSP solver with interval propagation.

This is the reproduction's constraint solver (the paper uses STP through
S2E).  Path-condition atoms are integer expressions over finite-domain
input variables; the solver decides satisfiability by:

1. normalising atoms to comparisons,
2. splitting the query into independent connected components,
3. tightening per-variable domains from single-variable affine atoms,
4. depth-first search with concrete checks and interval pruning.

Search effort is budgeted in deterministic *steps*; exceeding the budget
raises :class:`~repro.errors.SolverTimeout`, which the engine treats as a
discarded state (the paper's completeness caveat, §3.1).  Hash-function
constraints remain genuinely hard here, exactly as they are for STP —
this preserves the motivation for the paper's hash-neutralisation
optimisation (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SolverTimeout
from repro.lowlevel.expr import (
    BinExpr,
    COMPARISONS,
    Expr,
    Sym,
    UnExpr,
    evaluate,
    mk_binop,
    negate_condition,
)
from repro.solver.cache import UNSAT, SolverCache
from repro.solver.interval import Interval, interval_eval

#: Default search budget (value-assignment attempts per query).
DEFAULT_BUDGET = 12_000

#: Cap used by max_value when nothing bounds the expression.
DEFAULT_MAX_CAP = 1 << 20


@dataclass
class SolverStats:
    """Counters accumulated across queries (reported by benchmarks)."""

    queries: int = 0
    sat: int = 0
    unsat: int = 0
    timeouts: int = 0
    search_steps: int = 0
    cex_reuses: int = 0
    max_value_queries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _Component:
    names: List[str] = field(default_factory=list)
    constraints: List[Expr] = field(default_factory=list)


def _is_boolean_valued(expr, memo: dict) -> bool:
    """True when ``expr`` can only evaluate to 0 or 1."""
    if not isinstance(expr, Expr):
        return expr in (0, 1)
    key = id(expr)
    hit = memo.get(key)
    if hit is not None:
        return hit
    if isinstance(expr, Sym):
        result = expr.lo >= 0 and expr.hi <= 1
    elif isinstance(expr, UnExpr):
        result = expr.op == "lnot"
    else:
        assert isinstance(expr, BinExpr)
        if expr.op in COMPARISONS or expr.op in ("land", "lor"):
            result = True
        elif expr.op in ("and", "or", "xor"):
            memo[key] = False  # guard against (impossible) cycles
            result = _is_boolean_valued(expr.a, memo) and _is_boolean_valued(expr.b, memo)
        else:
            result = False
    memo[key] = result
    return result


def _normalise(constraints: Sequence) -> Optional[List[Expr]]:
    """Return comparison-shaped atoms, or None if trivially UNSAT.

    Conjunctions are decomposed: branch-free guest code (fast-path-
    eliminated string comparison) produces conditions like
    ``(c0==97)&(c1==98)&... == 1``; splitting them into per-character
    atoms lets interval propagation solve them without search.
    """
    atoms: List[Expr] = []
    seen = set()
    bool_memo: dict = {}
    work = list(constraints)
    while work:
        c = work.pop()
        if not isinstance(c, Expr):
            if c == 0:
                return None
            continue
        if isinstance(c, UnExpr) and c.op == "lnot":
            c = mk_binop("eq", c.a, 0)
        elif not (isinstance(c, BinExpr) and (c.op in COMPARISONS or c.op in ("land", "lor"))):
            c = mk_binop("ne", c, 0)
        if not isinstance(c, Expr):
            if c == 0:
                return None
            continue
        # Decompose truthy conjunctions and falsy disjunctions.  Operands
        # are pushed back raw (or properly negated); the loop's own
        # normalisation turns them into comparison atoms.
        if isinstance(c, BinExpr):
            if c.op == "land":
                work.append(c.a)
                work.append(c.b)
                continue
            if (
                c.op == "ne"
                and not isinstance(c.b, Expr)
                and c.b == 0
                and isinstance(c.a, BinExpr)
                and c.a.op == "and"
                and _is_boolean_valued(c.a.a, bool_memo)
                and _is_boolean_valued(c.a.b, bool_memo)
            ):
                work.append(c.a.a)
                work.append(c.a.b)
                continue
            if (
                c.op == "eq"
                and not isinstance(c.b, Expr)
                and c.b == 0
                and isinstance(c.a, BinExpr)
            ):
                inner = c.a
                if inner.op == "lor" or (
                    inner.op == "or"
                    and _is_boolean_valued(inner.a, bool_memo)
                    and _is_boolean_valued(inner.b, bool_memo)
                ):
                    work.append(negate_condition(inner.a))
                    work.append(negate_condition(inner.b))
                    continue
            # eq(X, 1) for boolean X is the same as asserting X.
            if (
                c.op == "eq"
                and not isinstance(c.b, Expr)
                and c.b == 1
                and isinstance(c.a, BinExpr)
                and c.a.op in ("and", "land")
                and _is_boolean_valued(c.a, bool_memo)
            ):
                work.append(c.a)
                continue
        if id(c) in seen:
            continue
        seen.add(id(c))
        atoms.append(c)
    return atoms


def _affine_of_single_var(expr) -> Optional[Tuple[str, int, int]]:
    """Decompose ``expr`` as ``mul*var + add`` (mul > 0), if possible."""
    if isinstance(expr, Sym):
        return (expr.name, 1, 0)
    if isinstance(expr, BinExpr):
        if expr.op == "add" and not isinstance(expr.b, Expr):
            inner = _affine_of_single_var(expr.a)
            if inner:
                name, mul, add = inner
                return (name, mul, add + expr.b)
        if expr.op == "sub" and not isinstance(expr.b, Expr):
            inner = _affine_of_single_var(expr.a)
            if inner:
                name, mul, add = inner
                return (name, mul, add - expr.b)
        if expr.op == "mul" and not isinstance(expr.b, Expr) and expr.b > 0:
            inner = _affine_of_single_var(expr.a)
            if inner:
                name, mul, add = inner
                return (name, mul * expr.b, add * expr.b)
    return None


def _bound_from_atom(atom: Expr) -> Optional[Tuple[str, Interval, bool]]:
    """Derive a domain restriction from a single-variable comparison.

    Returns (name, interval, is_disequality).  For ``ne`` atoms the interval
    is the *excluded* single point.
    """
    if not (isinstance(atom, BinExpr) and atom.op in COMPARISONS):
        return None
    if isinstance(atom.b, Expr):
        return None
    affine = _affine_of_single_var(atom.a)
    if affine is None:
        return None
    name, mul, add = affine
    c = atom.b - add
    op = atom.op
    if op == "eq":
        if c % mul != 0:
            return (name, Interval(1, 0), False)  # empty: impossible
        return (name, Interval.exact(c // mul), False)
    if op == "ne":
        if c % mul != 0:
            return None  # always satisfied; no restriction
        return (name, Interval.exact(c // mul), True)
    if op == "le":
        return (name, Interval(None, c // mul), False)
    if op == "lt":
        return (name, Interval(None, (c - 1) // mul), False)
    if op == "ge":
        return (name, Interval(-(-c // mul), None), False)
    if op == "gt":
        return (name, Interval(-(-(c + 1) // mul), None), False)
    return None


class CspSolver:
    """Finite-domain solver over symbolic input variables."""

    def __init__(
        self,
        budget: int = DEFAULT_BUDGET,
        cache: Optional[SolverCache] = None,
    ):
        self.budget = budget
        self.cache = cache if cache is not None else SolverCache()
        self.stats = SolverStats()

    # -- public API ---------------------------------------------------------

    def solve(
        self,
        constraints: Sequence,
        hint: Optional[Dict[str, int]] = None,
        budget: Optional[int] = None,
    ) -> Optional[Dict[str, int]]:
        """Return a satisfying assignment, or None if UNSAT.

        Raises :class:`SolverTimeout` when the search budget is exhausted.
        The assignment covers every variable occurring in the constraints.
        ``budget`` overrides the solver-wide step budget for this query.
        """
        self.stats.queries += 1
        atoms = _normalise(constraints)
        if atoms is None:
            self.stats.unsat += 1
            return None
        if not atoms:
            self.stats.sat += 1
            return dict(hint) if hint else {}

        key = SolverCache.key_for(atoms)
        cached = self.cache.lookup(key)
        if cached is not None:
            if cached is UNSAT:
                self.stats.unsat += 1
                return None
            self.stats.sat += 1
            return dict(cached)

        domains = self._initial_domains(atoms)

        # Counterexample reuse: try recent solutions before searching.
        reuse = self._try_recent_solutions(atoms, domains, hint)
        if reuse is not None:
            self.stats.sat += 1
            self.stats.cex_reuses += 1
            self.cache.store(key, reuse)
            return dict(reuse)

        try:
            solution = self._solve_components(
                atoms, domains, hint, budget if budget is not None else self.budget
            )
        except SolverTimeout:
            self.stats.timeouts += 1
            raise
        if solution is None:
            self.stats.unsat += 1
            self.cache.store(key, UNSAT)
            return None
        self.stats.sat += 1
        self.cache.store(key, solution)
        return dict(solution)

    def satisfiable(self, constraints: Sequence, hint: Optional[Dict[str, int]] = None) -> bool:
        return self.solve(constraints, hint=hint) is not None

    def max_value(
        self,
        expr,
        constraints: Sequence,
        cap: int = DEFAULT_MAX_CAP,
        hint: Optional[Dict[str, int]] = None,
    ) -> Optional[int]:
        """Maximum of ``expr`` over satisfying assignments (upper_bound API).

        Returns None when the constraints are unsatisfiable.  The result is
        clamped to ``cap`` so unconstrained expressions stay finite.
        """
        self.stats.max_value_queries += 1
        if not isinstance(expr, Expr):
            return expr if self.satisfiable(constraints, hint=hint) else None
        base = self.solve(constraints, hint=hint)
        if base is None:
            return None
        domains = self._initial_domains(_normalise(constraints) or [])
        for var in expr.free_vars():
            domains.setdefault(var.name, (var.lo, var.hi))
        bound = interval_eval(expr, {n: d for n, d in domains.items()})
        hi = cap if bound.hi is None else min(bound.hi, cap)
        lo = evaluate(expr, self._complete(base, expr))
        lo = min(lo, hi)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            probe = list(constraints) + [mk_binop("ge", expr, mid)]
            try:
                sol = self.solve(probe, hint=base)
            except SolverTimeout:
                # Be conservative: fall back to the best known value.
                return lo
            if sol is None:
                hi = mid - 1
            else:
                lo = max(mid, min(hi, evaluate(expr, self._complete(sol, expr))))
        return lo

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _complete(solution: Dict[str, int], expr: Expr) -> Dict[str, int]:
        env = dict(solution)
        for var in expr.free_vars():
            env.setdefault(var.name, var.lo)
        return env

    @staticmethod
    def _initial_domains(atoms: Sequence[Expr]) -> Dict[str, Tuple[int, int]]:
        domains: Dict[str, Tuple[int, int]] = {}
        for atom in atoms:
            for var in atom.free_vars():
                domains.setdefault(var.name, (var.lo, var.hi))
        return domains

    def _try_recent_solutions(
        self,
        atoms: List[Expr],
        domains: Dict[str, Tuple[int, int]],
        hint: Optional[Dict[str, int]],
    ) -> Optional[Dict[str, int]]:
        candidates = []
        if hint:
            candidates.append(hint)
        candidates.extend(self.cache.candidate_solutions()[:8])
        for candidate in candidates:
            env = {}
            ok = True
            for name, (lo, hi) in domains.items():
                v = candidate.get(name, lo)
                if not (lo <= v <= hi):
                    ok = False
                    break
                env[name] = v
            if not ok:
                continue
            if all(evaluate(a, env) for a in atoms):
                return env
        return None

    def _solve_components(
        self,
        atoms: List[Expr],
        domains: Dict[str, Tuple[int, int]],
        hint: Optional[Dict[str, int]],
        budget: int,
    ) -> Optional[Dict[str, int]]:
        components = self._split_components(atoms, domains)
        solution: Dict[str, int] = {}
        steps_used = 0
        for comp in components:
            comp_domains = {n: domains[n] for n in comp.names}
            result, used = self._search_component(
                comp, comp_domains, hint or {}, budget - steps_used
            )
            steps_used += used
            self.stats.search_steps += used
            if result is None:
                return None
            solution.update(result)
        return solution

    @staticmethod
    def _split_components(atoms: List[Expr], domains) -> List[_Component]:
        parent: Dict[str, str] = {n: n for n in domains}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        atom_vars: List[List[str]] = []
        for atom in atoms:
            names = sorted(v.name for v in atom.free_vars())
            atom_vars.append(names)
            for other in names[1:]:
                ra, rb = find(names[0]), find(other)
                if ra != rb:
                    parent[rb] = ra

        groups: Dict[str, _Component] = {}
        for name in domains:
            root = find(name)
            groups.setdefault(root, _Component()).names.append(name)
        for atom, names in zip(atoms, atom_vars):
            if not names:
                continue
            groups[find(names[0])].constraints.append(atom)
        ordered = sorted(groups.values(), key=lambda c: (len(c.names), c.names))
        for comp in ordered:
            comp.names.sort()
        return ordered

    def _search_component(
        self,
        comp: _Component,
        domains: Dict[str, Tuple[int, int]],
        hint: Dict[str, int],
        budget: int,
    ) -> Tuple[Optional[Dict[str, int]], int]:
        if budget <= 0:
            raise SolverTimeout("solver budget exhausted before search")

        # Propagate single-variable bounds to a fixpoint (bounded passes).
        work = dict(domains)
        for _ in range(4):
            changed = False
            for atom in comp.constraints:
                restriction = _bound_from_atom(atom)
                if restriction is None:
                    continue
                name, interval, is_ne = restriction
                lo, hi = work[name]
                if is_ne:
                    # Exclude a single point only when it is an endpoint.
                    if interval.lo == lo == hi:
                        return None, 0
                    if interval.lo == lo:
                        lo += 1
                        changed = True
                    elif interval.lo == hi:
                        hi -= 1
                        changed = True
                else:
                    cur = Interval(lo, hi).intersect(interval)
                    if cur.is_empty():
                        return None, 0
                    new_lo = lo if cur.lo is None else cur.lo
                    new_hi = hi if cur.hi is None else cur.hi
                    if (new_lo, new_hi) != (lo, hi):
                        lo, hi = new_lo, new_hi
                        changed = True
                work[name] = (lo, hi)
            if not changed:
                break

        order = sorted(comp.names, key=lambda n: (work[n][1] - work[n][0], n))
        var_atoms: Dict[str, List[Expr]] = {n: [] for n in order}
        completes_at: Dict[str, List[Expr]] = {n: [] for n in order}
        position = {n: i for i, n in enumerate(order)}
        for atom in comp.constraints:
            names = [v.name for v in atom.free_vars()]
            last = max(names, key=lambda n: position[n])
            completes_at[last].append(atom)
            for n in names:
                if n != last:
                    var_atoms[n].append(atom)

        env: Dict[str, int] = {}
        steps = 0

        def candidates(name: str):
            lo, hi = work[name]
            tried = set()
            for v in (hint.get(name), lo, hi):
                if v is not None and lo <= v <= hi and v not in tried:
                    tried.add(v)
                    yield v
            for v in range(lo, hi + 1):
                if v not in tried:
                    yield v

        def search(idx: int) -> bool:
            nonlocal steps
            if idx == len(order):
                return True
            name = order[idx]
            for value in candidates(name):
                steps += 1
                if steps > budget:
                    raise SolverTimeout(
                        f"solver budget exhausted ({budget} steps)"
                    )
                env[name] = value
                ok = True
                for atom in completes_at[name]:
                    if not evaluate(atom, env):
                        ok = False
                        break
                if ok:
                    for atom in var_atoms[name]:
                        iv = interval_eval(atom, work, env, {})
                        if iv.is_exact() and iv.lo == 0:
                            ok = False
                            break
                if ok and search(idx + 1):
                    return True
                del env[name]
            return False

        try:
            if search(0):
                return dict(env), steps
        except SolverTimeout:
            self.stats.search_steps += steps
            raise
        return None, steps


def make_default_solver(budget: int = DEFAULT_BUDGET) -> CspSolver:
    """Factory used by the engine; one shared cache per solver instance."""
    return CspSolver(budget=budget)


__all__ = ["CspSolver", "SolverStats", "make_default_solver", "DEFAULT_BUDGET"]


