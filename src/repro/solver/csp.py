"""Backtracking CSP solver with interval propagation.

This is the reproduction's constraint solver (the paper uses STP through
S2E), implementing the :class:`~repro.solver.backend.SolverBackend`
protocol over :class:`~repro.solver.constraints.ConstraintSet` inputs.
Path-condition atoms are integer expressions over finite-domain input
variables; the solver decides satisfiability by:

1. reusing the constraint set's known-model chain — a query whose atoms
   extend an already-satisfied ancestor set first re-checks only the new
   atoms against the ancestor's model (the incremental fast path),
2. normalising atoms to comparisons,
3. splitting the query into independent connected components, adopting
   the ancestor model wholesale for components no new atom touches
   (independence slicing) and consulting the engine-wide
   :class:`~repro.solver.cache.ModelCache` per component,
4. tightening per-variable domains from single-variable affine atoms,
5. depth-first search with concrete checks and interval pruning.

Search effort is budgeted in deterministic *steps*; exceeding the budget
raises :class:`~repro.errors.SolverTimeout` from :meth:`CspSolver.solve`
(and surfaces as :data:`~repro.solver.backend.UNKNOWN` from
:meth:`CspSolver.check`), which the engine treats as a discarded state
(the paper's completeness caveat, §3.1).  Hash-function constraints
remain genuinely hard here, exactly as they are for STP — this preserves
the motivation for the paper's hash-neutralisation optimisation (§4.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SolverDeadline, SolverTimeout
from repro.obs.metrics import MetricsRegistry, counter_property
from repro.obs.telemetry import Telemetry
from repro.lowlevel.expr import (
    BinExpr,
    COMPARISONS,
    Expr,
    Sym,
    UnExpr,
    evaluate,
    mk_binop,
    negate_condition,
)
from repro.solver.backend import CheckResult, SAT, SolverBackend, UNKNOWN, UNSAT
from repro.solver.cache import (
    ModelCache,
    UNSAT as UNSAT_ENTRY,
    global_model_cache,
)
from repro.solver.constraints import ConstraintSet
from repro.solver.interval import Interval, interval_eval

#: Default search budget (value-assignment attempts per query).
DEFAULT_BUDGET = 12_000

#: Cap used by max_value when nothing bounds the expression.
DEFAULT_MAX_CAP = 1 << 20

Constraints = Union[ConstraintSet, Sequence]


#: Counter fields, registered as ``solver.<field>`` in the obs registry.
#: ``incremental_hits`` counts queries answered (fully or partly) from a
#: known ancestor model; ``component_cache_hits`` counts components
#: resolved from the engine-wide model cache; ``atoms_sliced`` counts
#: atoms never (re)solved because independence slicing adopted the
#: ancestor model for their whole component.
_STAT_FIELDS = (
    "queries",
    "sat",
    "unsat",
    "timeouts",
    "deadline_unknowns",
    "search_steps",
    "cex_reuses",
    "max_value_queries",
    "incremental_hits",
    "component_cache_hits",
    "atoms_sliced",
)

#: How many search steps run between wall-clock deadline checks — the
#: deadline is a degradation bound, not a precise timer, and checking
#: ``time.monotonic()`` per step would dominate small searches.
_DEADLINE_STRIDE = 128


class SolverStats:
    """Counters accumulated across queries (reported by benchmarks).

    A live attribute view over ``solver.*`` counters in an obs
    :class:`~repro.obs.metrics.MetricsRegistry` — the same store that
    backs ``Session.metrics()`` and the bench JSON, so there is exactly
    one set of numbers.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            field: self.registry.counter(f"solver.{field}") for field in _STAT_FIELDS
        }

    def as_dict(self) -> Dict[str, int]:
        return {field: counter.value for field, counter in self._counters.items()}


for _field in _STAT_FIELDS:
    setattr(SolverStats, _field, counter_property(_field))
del _field


@dataclass
class _Component:
    names: List[str] = field(default_factory=list)
    constraints: List[Expr] = field(default_factory=list)


def _is_boolean_valued(expr, memo: dict) -> bool:
    """True when ``expr`` can only evaluate to 0 or 1."""
    if not isinstance(expr, Expr):
        return expr in (0, 1)
    key = id(expr)
    hit = memo.get(key)
    if hit is not None:
        return hit
    if isinstance(expr, Sym):
        result = expr.lo >= 0 and expr.hi <= 1
    elif isinstance(expr, UnExpr):
        result = expr.op == "lnot"
    else:
        assert isinstance(expr, BinExpr)
        if expr.op in COMPARISONS or expr.op in ("land", "lor"):
            result = True
        elif expr.op in ("and", "or", "xor"):
            memo[key] = False  # guard against (impossible) cycles
            result = _is_boolean_valued(expr.a, memo) and _is_boolean_valued(expr.b, memo)
        else:
            result = False
    memo[key] = result
    return result


def _normalise(constraints: Sequence) -> Optional[List[Expr]]:
    """Return comparison-shaped atoms, or None if trivially UNSAT.

    Conjunctions are decomposed: branch-free guest code (fast-path-
    eliminated string comparison) produces conditions like
    ``(c0==97)&(c1==98)&... == 1``; splitting them into per-character
    atoms lets interval propagation solve them without search.
    """
    atoms: List[Expr] = []
    seen = set()
    bool_memo: dict = {}
    work = list(constraints)
    while work:
        c = work.pop()
        if not isinstance(c, Expr):
            if c == 0:
                return None
            continue
        if isinstance(c, UnExpr) and c.op == "lnot":
            c = mk_binop("eq", c.a, 0)
        elif not (isinstance(c, BinExpr) and (c.op in COMPARISONS or c.op in ("land", "lor"))):
            c = mk_binop("ne", c, 0)
        if not isinstance(c, Expr):
            if c == 0:
                return None
            continue
        # Decompose truthy conjunctions and falsy disjunctions.  Operands
        # are pushed back raw (or properly negated); the loop's own
        # normalisation turns them into comparison atoms.
        if isinstance(c, BinExpr):
            if c.op == "land":
                work.append(c.a)
                work.append(c.b)
                continue
            if (
                c.op == "ne"
                and not isinstance(c.b, Expr)
                and c.b == 0
                and isinstance(c.a, BinExpr)
                and c.a.op == "and"
                and _is_boolean_valued(c.a.a, bool_memo)
                and _is_boolean_valued(c.a.b, bool_memo)
            ):
                work.append(c.a.a)
                work.append(c.a.b)
                continue
            if (
                c.op == "eq"
                and not isinstance(c.b, Expr)
                and c.b == 0
                and isinstance(c.a, BinExpr)
            ):
                inner = c.a
                if inner.op == "lor" or (
                    inner.op == "or"
                    and _is_boolean_valued(inner.a, bool_memo)
                    and _is_boolean_valued(inner.b, bool_memo)
                ):
                    work.append(negate_condition(inner.a))
                    work.append(negate_condition(inner.b))
                    continue
            # eq(X, 1) for boolean X is the same as asserting X.
            if (
                c.op == "eq"
                and not isinstance(c.b, Expr)
                and c.b == 1
                and isinstance(c.a, BinExpr)
                and c.a.op in ("and", "land")
                and _is_boolean_valued(c.a, bool_memo)
            ):
                work.append(c.a)
                continue
        if id(c) in seen:
            continue
        seen.add(id(c))
        atoms.append(c)
    return atoms


def _affine_of_single_var(expr) -> Optional[Tuple[str, int, int]]:
    """Decompose ``expr`` as ``mul*var + add`` (mul > 0), if possible."""
    if isinstance(expr, Sym):
        return (expr.name, 1, 0)
    if isinstance(expr, BinExpr):
        if expr.op == "add" and not isinstance(expr.b, Expr):
            inner = _affine_of_single_var(expr.a)
            if inner:
                name, mul, add = inner
                return (name, mul, add + expr.b)
        if expr.op == "sub" and not isinstance(expr.b, Expr):
            inner = _affine_of_single_var(expr.a)
            if inner:
                name, mul, add = inner
                return (name, mul, add - expr.b)
        if expr.op == "mul" and not isinstance(expr.b, Expr) and expr.b > 0:
            inner = _affine_of_single_var(expr.a)
            if inner:
                name, mul, add = inner
                return (name, mul * expr.b, add * expr.b)
    return None


def _bound_from_atom(atom: Expr) -> Optional[Tuple[str, Interval, bool]]:
    """Derive a domain restriction from a single-variable comparison.

    Returns (name, interval, is_disequality).  For ``ne`` atoms the interval
    is the *excluded* single point.
    """
    if not (isinstance(atom, BinExpr) and atom.op in COMPARISONS):
        return None
    if isinstance(atom.b, Expr):
        return None
    affine = _affine_of_single_var(atom.a)
    if affine is None:
        return None
    name, mul, add = affine
    c = atom.b - add
    op = atom.op
    if op == "eq":
        if c % mul != 0:
            return (name, Interval(1, 0), False)  # empty: impossible
        return (name, Interval.exact(c // mul), False)
    if op == "ne":
        if c % mul != 0:
            return None  # always satisfied; no restriction
        return (name, Interval.exact(c // mul), True)
    if op == "le":
        return (name, Interval(None, c // mul), False)
    if op == "lt":
        return (name, Interval(None, (c - 1) // mul), False)
    if op == "ge":
        return (name, Interval(-(-c // mul), None), False)
    if op == "gt":
        return (name, Interval(-(-(c + 1) // mul), None), False)
    return None


def _holds(atom, env: Dict[str, int], memo: dict) -> bool:
    """True when ``atom`` is satisfied (nonzero) under ``env``."""
    if not isinstance(atom, Expr):
        return atom != 0
    return evaluate(atom, env, memo) != 0


class CspSolver(SolverBackend):
    """Finite-domain solver over symbolic input variables.

    By default every instance shares the process-wide
    :func:`~repro.solver.cache.global_model_cache`, so component verdicts
    flow between engines; pass an explicit ``cache`` to isolate one.
    ``incremental=False`` reproduces the seed's solve-from-scratch
    behaviour: no known-model reads, no chain annotation, no ancestor
    fast path, no independence slicing (used for A/B measurement and
    regression tests; the component cache is disabled separately by
    passing an empty-bounded ``ModelCache``).
    """

    def __init__(
        self,
        budget: int = DEFAULT_BUDGET,
        cache: Optional[ModelCache] = None,
        incremental: bool = True,
        telemetry: Optional[Telemetry] = None,
        deadline_s: Optional[float] = None,
        faults=None,
    ):
        self.budget = budget
        self.cache = cache if cache is not None else global_model_cache()
        self.incremental = incremental
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.stats = SolverStats(self.telemetry.registry)
        #: per-query wall-clock deadline (seconds; None = unbounded).
        #: Expiry surfaces as UNKNOWN from :meth:`check` and a
        #: :class:`~repro.errors.SolverDeadline` from :meth:`solve`,
        #: counted under ``solver.deadline_unknowns`` — the graceful-
        #: degradation bound that keeps a wedged query from stalling a
        #: whole session.
        self.deadline_s = deadline_s
        #: optional :class:`~repro.faults.FaultInjector` — chaos-test
        #: hook that can stall or fail queries; None costs one check.
        self._faults = faults
        self._deadline_at: Optional[float] = None

    # -- SolverBackend protocol ---------------------------------------------

    def check(
        self,
        constraints: Constraints,
        hint: Optional[Dict[str, int]] = None,
        budget: Optional[int] = None,
    ) -> CheckResult:
        """Decide satisfiability; UNKNOWN when the budget runs out."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._check_impl(constraints, hint, budget)
        cs = self._as_set(constraints)
        with telemetry.span("solver.check", atoms=len(cs)) as span:
            result = self._check_impl(cs, hint, budget)
            span.set(status=result.status)
        return result

    def _check_impl(
        self,
        constraints: Constraints,
        hint: Optional[Dict[str, int]],
        budget: Optional[int],
    ) -> CheckResult:
        try:
            model = self._solve_set(self._as_set(constraints), hint, budget)
        except SolverDeadline:
            self.stats.deadline_unknowns += 1
            return CheckResult(UNKNOWN)
        except SolverTimeout:
            self.stats.timeouts += 1
            return CheckResult(UNKNOWN)
        if model is None:
            return CheckResult(UNSAT)
        return CheckResult(SAT, model)

    def solve(
        self,
        constraints: Constraints,
        hint: Optional[Dict[str, int]] = None,
        budget: Optional[int] = None,
    ) -> Optional[Dict[str, int]]:
        """Return a satisfying assignment, or None if UNSAT.

        Raises :class:`SolverTimeout` when the search budget is exhausted.
        The assignment covers every variable occurring in the constraints.
        ``budget`` overrides the solver-wide step budget for this query.
        """
        try:
            return self._solve_set(self._as_set(constraints), hint, budget)
        except SolverDeadline:
            self.stats.deadline_unknowns += 1
            raise
        except SolverTimeout:
            self.stats.timeouts += 1
            raise

    def satisfiable(
        self, constraints: Constraints, hint: Optional[Dict[str, int]] = None
    ) -> bool:
        return self.solve(constraints, hint=hint) is not None

    def max_value(
        self,
        expr,
        constraints: Constraints,
        cap: int = DEFAULT_MAX_CAP,
        hint: Optional[Dict[str, int]] = None,
    ) -> Optional[int]:
        """Maximum of ``expr`` over satisfying assignments (upper_bound API).

        Returns None when the constraints are unsatisfiable.  The result is
        clamped to ``cap`` so unconstrained expressions stay finite.
        """
        telemetry = self.telemetry
        if telemetry.enabled:
            with telemetry.span("solver.max_value", cap=cap) as span:
                result = self._max_value_impl(expr, constraints, cap, hint)
                span.set(result=result)
            return result
        return self._max_value_impl(expr, constraints, cap, hint)

    def _max_value_impl(
        self,
        expr,
        constraints: Constraints,
        cap: int,
        hint: Optional[Dict[str, int]],
    ) -> Optional[int]:
        self.stats.max_value_queries += 1
        cs = self._as_set(constraints)
        if not isinstance(expr, Expr):
            return expr if self.satisfiable(cs, hint=hint) else None
        base = self.solve(cs, hint=hint)
        if base is None:
            return None
        domains = self._initial_domains(_normalise(cs.atoms()) or [])
        for var in expr.free_vars():
            domains.setdefault(var.name, (var.lo, var.hi))
        bound = interval_eval(expr, {n: d for n, d in domains.items()})
        hi = cap if bound.hi is None else min(bound.hi, cap)
        lo = evaluate(expr, self._complete(base, expr))
        lo = min(lo, hi)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            probe = cs.append(mk_binop("ge", expr, mid))
            try:
                sol = self.solve(probe, hint=base)
            except SolverTimeout:
                # Be conservative: fall back to the best known value.
                return lo
            if sol is None:
                hi = mid - 1
            else:
                lo = max(mid, min(hi, evaluate(expr, self._complete(sol, expr))))
        return lo

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _as_set(constraints: Constraints) -> ConstraintSet:
        if isinstance(constraints, ConstraintSet):
            return constraints
        return ConstraintSet.from_atoms(constraints)

    def _solve_set(
        self,
        cs: ConstraintSet,
        hint: Optional[Dict[str, int]],
        budget: Optional[int],
    ) -> Optional[Dict[str, int]]:
        stats = self.stats
        stats.queries += 1
        # Arm the per-query wall-clock deadline before any injected
        # stall, so a wedged query degrades to UNKNOWN instead of
        # costing its full stall repeatedly deeper in the search.
        self._deadline_at = (
            time.monotonic() + self.deadline_s
            if self.deadline_s is not None
            else None
        )
        if self._faults is not None:
            self._faults.on_solver_query()  # may stall or raise SolverTimeout
            self._check_deadline()
        if self.incremental:
            if cs.known_unsat:
                stats.unsat += 1
                stats.incremental_hits += 1
                return None
            known = cs.model
            if known is not None:
                stats.sat += 1
                stats.incremental_hits += 1
                return self._complete_over_domains(known, cs.domains())
            ancestor_model, prefix_raw, suffix_raw = cs.split_at_model()
        else:
            ancestor_model, prefix_raw, suffix_raw = None, [], cs.atoms()
        prefix = _normalise(prefix_raw)
        suffix = _normalise(suffix_raw)
        if prefix is None or suffix is None:
            stats.unsat += 1
            if self.incremental:
                cs.note_unsat()
            return None
        prefix_ids = {id(a) for a in prefix}
        suffix = [a for a in suffix if id(a) not in prefix_ids]
        atoms = prefix + suffix
        if not atoms:
            stats.sat += 1
            return dict(hint) if hint else {}
        domains = self._initial_domains(atoms)

        # Incremental fast path: the ancestor model satisfies every prefix
        # atom by contract; re-check just the appended atoms against it
        # before any component work or search.
        if ancestor_model is not None and suffix:
            env = self._complete_over_domains(ancestor_model, domains)
            memo: dict = {}
            if all(_holds(a, env, memo) for a in suffix):
                stats.sat += 1
                stats.incremental_hits += 1
                cs.note_model(env)
                self.cache.remember_solution(env)
                return dict(env)

        components = self._split_components(atoms, domains)
        suffix_ids = {id(a) for a in suffix}
        merged_hint: Dict[str, int] = dict(ancestor_model) if ancestor_model else {}
        if hint:
            merged_hint.update(hint)
        step_budget = budget if budget is not None else self.budget

        solution: Dict[str, int] = {}
        steps_used = 0
        sliced = False
        unsat = False
        # First pass — independence slicing: a component no new atom
        # touches is made only of prefix atoms, all satisfied by the
        # ancestor model; adopt its values without solving anything.
        # Runs before any search so the slicing benefit is realised even
        # when a touched component later proves the query UNSAT.
        pending: List[_Component] = []
        for comp in components:
            if (
                ancestor_model is not None
                and comp.constraints
                and not any(id(a) in suffix_ids for a in comp.constraints)
            ):
                adopted = self._adopt_model(
                    ancestor_model, {n: domains[n] for n in comp.names}
                )
                if adopted is not None:
                    solution.update(adopted)
                    stats.atoms_sliced += len(comp.constraints)
                    sliced = True
                    continue
            pending.append(comp)
        for comp in pending:
            comp_domains = {n: domains[n] for n in comp.names}
            key = ModelCache.key_for(comp.constraints)
            cached = self.cache.lookup(key) if comp.constraints else None
            if cached is not None:
                _kind, result = cached
                if result == UNSAT_ENTRY:
                    stats.component_cache_hits += 1
                    unsat = True
                    break
                adopted = self._adopt_model(result, comp_domains)
                if adopted is not None:
                    stats.component_cache_hits += 1
                    solution.update(adopted)
                    continue
            # Counterexample reuse: try recent solutions before searching.
            reuse = self._try_recent_solutions(
                list(comp.constraints), comp_domains, merged_hint
            )
            if reuse is not None:
                stats.cex_reuses += 1
                self.cache.store(key, dict(reuse), atoms=comp.constraints)
                solution.update(reuse)
                continue
            result, used = self._search_component(
                comp, comp_domains, merged_hint, step_budget - steps_used
            )
            steps_used += used
            stats.search_steps += used
            if result is None:
                self.cache.store(key, UNSAT_ENTRY, atoms=comp.constraints)
                unsat = True
                break
            self.cache.store(key, dict(result), atoms=comp.constraints)
            solution.update(result)

        if sliced:
            stats.incremental_hits += 1
        if unsat:
            stats.unsat += 1
            if self.incremental:
                cs.note_unsat()
            return None
        stats.sat += 1
        if self.incremental:
            cs.note_model(dict(solution))
        self.cache.remember_solution(solution)
        return dict(solution)

    def _check_deadline(self) -> None:
        if (
            self._deadline_at is not None
            and time.monotonic() > self._deadline_at
        ):
            raise SolverDeadline(
                f"solver deadline ({self.deadline_s}s) exceeded"
            )

    @staticmethod
    def _complete_over_domains(
        model: Dict[str, int], domains: Dict[str, Tuple[int, int]]
    ) -> Dict[str, int]:
        """Model completed with ``lo`` defaults, restricted to ``domains``.

        Matches the note_model contract: missing variables take their
        domain minimum, out-of-domain values (impossible for contract-
        respecting callers) fall back to it too, keeping results sound.
        """
        env: Dict[str, int] = {}
        for name, (lo, hi) in domains.items():
            v = model.get(name, lo)
            env[name] = v if lo <= v <= hi else lo
        return env

    @staticmethod
    def _adopt_model(
        model: Dict[str, int], comp_domains: Dict[str, Tuple[int, int]]
    ) -> Optional[Dict[str, int]]:
        """Component-restricted view of ``model`` (lo for missing vars)."""
        adopted: Dict[str, int] = {}
        for name, (lo, hi) in comp_domains.items():
            v = model.get(name, lo)
            if not lo <= v <= hi:
                return None
            adopted[name] = v
        return adopted

    @staticmethod
    def _complete(solution: Dict[str, int], expr: Expr) -> Dict[str, int]:
        env = dict(solution)
        for var in expr.free_vars():
            env.setdefault(var.name, var.lo)
        return env

    @staticmethod
    def _initial_domains(atoms: Sequence[Expr]) -> Dict[str, Tuple[int, int]]:
        domains: Dict[str, Tuple[int, int]] = {}
        for atom in atoms:
            for var in atom.free_vars():
                domains.setdefault(var.name, (var.lo, var.hi))
        return domains

    def _try_recent_solutions(
        self,
        atoms: List[Expr],
        domains: Dict[str, Tuple[int, int]],
        hint: Optional[Dict[str, int]],
    ) -> Optional[Dict[str, int]]:
        candidates = []
        if hint:
            candidates.append(hint)
        candidates.extend(self.cache.candidate_solutions()[:8])
        for candidate in candidates:
            env = {}
            ok = True
            for name, (lo, hi) in domains.items():
                v = candidate.get(name, lo)
                if not (lo <= v <= hi):
                    ok = False
                    break
                env[name] = v
            if not ok:
                continue
            if all(evaluate(a, env) for a in atoms):
                return env
        return None

    @staticmethod
    def _split_components(atoms: List[Expr], domains) -> List[_Component]:
        parent: Dict[str, str] = {n: n for n in domains}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        atom_vars: List[List[str]] = []
        for atom in atoms:
            names = sorted(v.name for v in atom.free_vars())
            atom_vars.append(names)
            for other in names[1:]:
                ra, rb = find(names[0]), find(other)
                if ra != rb:
                    parent[rb] = ra

        groups: Dict[str, _Component] = {}
        for name in domains:
            root = find(name)
            groups.setdefault(root, _Component()).names.append(name)
        for atom, names in zip(atoms, atom_vars):
            if not names:
                continue
            groups[find(names[0])].constraints.append(atom)
        ordered = sorted(groups.values(), key=lambda c: (len(c.names), c.names))
        for comp in ordered:
            comp.names.sort()
        return ordered

    def _search_component(
        self,
        comp: _Component,
        domains: Dict[str, Tuple[int, int]],
        hint: Dict[str, int],
        budget: int,
    ) -> Tuple[Optional[Dict[str, int]], int]:
        if budget <= 0:
            raise SolverTimeout("solver budget exhausted before search")

        # Propagate single-variable bounds to a fixpoint (bounded passes).
        work = dict(domains)
        for _ in range(4):
            changed = False
            for atom in comp.constraints:
                restriction = _bound_from_atom(atom)
                if restriction is None:
                    continue
                name, interval, is_ne = restriction
                lo, hi = work[name]
                if is_ne:
                    # Exclude a single point only when it is an endpoint.
                    if interval.lo == lo == hi:
                        return None, 0
                    if interval.lo == lo:
                        lo += 1
                        changed = True
                    elif interval.lo == hi:
                        hi -= 1
                        changed = True
                else:
                    cur = Interval(lo, hi).intersect(interval)
                    if cur.is_empty():
                        return None, 0
                    new_lo = lo if cur.lo is None else cur.lo
                    new_hi = hi if cur.hi is None else cur.hi
                    if (new_lo, new_hi) != (lo, hi):
                        lo, hi = new_lo, new_hi
                        changed = True
                work[name] = (lo, hi)
            if not changed:
                break

        order = sorted(comp.names, key=lambda n: (work[n][1] - work[n][0], n))
        var_atoms: Dict[str, List[Expr]] = {n: [] for n in order}
        completes_at: Dict[str, List[Expr]] = {n: [] for n in order}
        position = {n: i for i, n in enumerate(order)}
        for atom in comp.constraints:
            names = [v.name for v in atom.free_vars()]
            last = max(names, key=lambda n: position[n])
            completes_at[last].append(atom)
            for n in names:
                if n != last:
                    var_atoms[n].append(atom)

        env: Dict[str, int] = {}
        steps = 0
        deadline_at = self._deadline_at

        def candidates(name: str):
            lo, hi = work[name]
            tried = set()
            for v in (hint.get(name), lo, hi):
                if v is not None and lo <= v <= hi and v not in tried:
                    tried.add(v)
                    yield v
            for v in range(lo, hi + 1):
                if v not in tried:
                    yield v

        def search(idx: int) -> bool:
            nonlocal steps
            if idx == len(order):
                return True
            name = order[idx]
            for value in candidates(name):
                steps += 1
                if steps > budget:
                    raise SolverTimeout(
                        f"solver budget exhausted ({budget} steps)"
                    )
                if (
                    deadline_at is not None
                    and steps % _DEADLINE_STRIDE == 0
                    and time.monotonic() > deadline_at
                ):
                    raise SolverDeadline(
                        f"solver deadline ({self.deadline_s}s) exceeded "
                        f"after {steps} steps"
                    )
                env[name] = value
                ok = True
                for atom in completes_at[name]:
                    if not evaluate(atom, env):
                        ok = False
                        break
                if ok:
                    for atom in var_atoms[name]:
                        iv = interval_eval(atom, work, env, {})
                        if iv.is_exact() and iv.lo == 0:
                            ok = False
                            break
                if ok and search(idx + 1):
                    return True
                del env[name]
            return False

        try:
            if search(0):
                return dict(env), steps
        except SolverTimeout:
            self.stats.search_steps += steps
            raise
        return None, steps


def make_default_solver(
    budget: int = DEFAULT_BUDGET,
    telemetry: Optional[Telemetry] = None,
    deadline_s: Optional[float] = None,
    faults=None,
) -> CspSolver:
    """Factory used by the engine; backed by the engine-wide model cache.

    ``telemetry`` shares the caller's observability context (registry +
    tracer) so solver counters land in the engine's one registry.
    ``deadline_s`` bounds each query's wall clock (graceful degradation
    to UNKNOWN); ``faults`` is the chaos-test injector, None in
    production.
    """
    return CspSolver(
        budget=budget, telemetry=telemetry, deadline_s=deadline_s, faults=faults
    )


__all__ = [
    "CspSolver",
    "SolverStats",
    "make_default_solver",
    "DEFAULT_BUDGET",
    "DEFAULT_MAX_CAP",
]
