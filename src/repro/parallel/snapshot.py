"""Portable state snapshots: ship execution states between processes.

A :class:`StateSnapshot` is everything a worker needs to resume a state
except the (immutable, shipped-once) :class:`~repro.lowlevel.program.Program`:
frames by function *name*, memory as a compact delta against the
program's static data, the path condition split KLEE-style into
(prefix atoms, nearest known model, suffix atoms), and the concolic
assignment/seed bookkeeping.  ``restore_state`` rebuilds a live
:class:`~repro.lowlevel.executor.State` against the receiving process's
copy of the program.

Snapshots are encoded in *batches*: :func:`snapshot_states` flattens the
expressions of a whole chunk of states — register values, memory deltas
**and path-condition atoms** — through one shared
:func:`~repro.lowlevel.expr.flatten_values` call.  Sibling states share
their constraint-set prefix by construction (share-structure chains), so
the batch encodes each shared atom once instead of once per state; on
the receiving side a :class:`SnapshotDecoder` rebuilds the shared table
once per chunk and rebuilds shared constraint prefixes into shared
chain nodes, restoring the sibling structure a serial run would have.

High-level trace bookkeeping rides in ``meta``: ``hl_suffix`` is the
(hlpc, opcode) stream *since this state was last restored* (not since
boot), and ``tree_node`` is the coordinator-stamped high-level tree node
of the restore point — together they are what makes pending
classification O(suffix) instead of O(path-depth).

:func:`path_record_of` condenses a terminated state into the
coordinator-facing :class:`~repro.parallel.coordinator.PathRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lowlevel.cow import CowMap
from repro.lowlevel.expr import (
    Expr,
    fingerprint,
    flatten_values,
    rebuild_values_cached,
)
from repro.lowlevel.machine import Frame, MachineState, Status
from repro.lowlevel.program import Program
from repro.solver.constraints import ConstraintSet


@dataclass
class StateSnapshot:
    """Picklable image of one execution state (program shipped separately)."""

    frames: Tuple[Tuple[str, int, Tuple, Optional[int]], ...]
    mem_changed: Dict
    mem_deleted: Tuple
    status: str
    halt_code: Optional[int]
    output: Tuple
    #: path condition, split at the nearest known model: prefix atoms
    #: (satisfied by ``pc_model``), the model, and the atoms appended
    #: since.  Entries are ints or ``("x", i)`` markers into the shared
    #: expression table.
    pc_prefix: Tuple
    pc_model: Optional[Dict[str, int]]
    pc_suffix: Tuple
    assignment: Optional[Dict[str, int]]
    seed_assignment: Dict[str, int]
    pending: bool
    fork_ll_pc: Optional[int]
    fork_group: Optional[Tuple]
    fork_index: int
    depth: int
    instr_count: int
    hl_instr_count: int
    events: Tuple[Tuple[int, int, int], ...]
    sym_buffers: Tuple[Tuple[str, int, int, int, int], ...]
    meta: Dict
    #: shared flat encoding of every Expr in frames/mem_changed/path
    #: condition (one :func:`flatten_values` call per *batch*, so
    #: subgraphs shared between values and between sibling states are
    #: emitted once); values reference it as ``("x", i)`` markers.
    #: Sibling snapshots from one batch share these tuples by reference.
    expr_instrs: Tuple = ()
    expr_refs: Tuple = ()


def snapshot_states(states) -> List[StateSnapshot]:
    """Encode a batch of states into snapshots sharing one expression table.

    ``CowMap`` layer chains are flattened to a single delta against the
    program's static data; every expression in the batch — register
    values, memory deltas and path-condition atoms — goes through one
    shared :func:`flatten_values` call, so structure shared between
    values *and between sibling states* (common constraint-set prefixes,
    loop-accumulator spines) is emitted once for the whole batch.
    """
    exprs: list = []
    indexes: Dict[int, int] = {}

    def encode(v):
        if not isinstance(v, Expr):
            return v
        idx = indexes.get(id(v))
        if idx is None:
            idx = indexes[id(v)] = len(exprs)
            exprs.append(v)
        return ("x", idx)

    prepared = []
    for state in states:
        machine = state.machine
        changed, deleted = machine.memory.delta_against(machine.program.static_data)
        frames = tuple(
            (f.func.name, f.pc, tuple(encode(r) for r in f.regs), f.ret_dst)
            for f in machine.frames
        )
        changed = {key: encode(value) for key, value in changed.items()}
        model, prefix, suffix = state.path_condition.split_at_model()
        prepared.append(
            (
                state,
                frames,
                changed,
                deleted,
                tuple(encode(a) for a in prefix),
                None if model is None else dict(model),
                tuple(encode(a) for a in suffix),
            )
        )
    instrs, refs = flatten_values(exprs)
    return [
        StateSnapshot(
            frames=frames,
            mem_changed=changed,
            mem_deleted=deleted,
            status=state.machine.status,
            halt_code=state.machine.halt_code,
            output=tuple(state.machine.output),
            pc_prefix=pc_prefix,
            pc_model=pc_model,
            pc_suffix=pc_suffix,
            assignment=None if state.assignment is None else dict(state.assignment),
            seed_assignment=dict(state.seed_assignment),
            pending=state.pending,
            fork_ll_pc=state.fork_ll_pc,
            fork_group=state.fork_group,
            fork_index=state.fork_index,
            depth=state.depth,
            instr_count=state.instr_count,
            hl_instr_count=state.hl_instr_count,
            events=tuple((e.kind, e.a, e.b) for e in state.events),
            sym_buffers=tuple(state.sym_buffers),
            meta=_portable_meta(state.meta),
            expr_instrs=instrs,
            expr_refs=refs,
        )
        for state, frames, changed, deleted, pc_prefix, pc_model, pc_suffix in prepared
    ]


def snapshot_state(state) -> StateSnapshot:
    """Encode one state (a batch of one); see :func:`snapshot_states`."""
    return snapshot_states([state])[0]


def boot_snapshot(program: Program) -> StateSnapshot:
    """Snapshot of a freshly booted (never executed) state."""
    entry = program.get_function(program.entry)
    return StateSnapshot(
        frames=((entry.name, 0, (0,) * entry.n_regs, None),),
        mem_changed={},
        mem_deleted=(),
        status=Status.RUNNING,
        halt_code=None,
        output=(),
        pc_prefix=(),
        pc_model=None,
        pc_suffix=(),
        assignment={},
        seed_assignment={},
        pending=False,
        fork_ll_pc=None,
        fork_group=None,
        fork_index=0,
        depth=0,
        instr_count=0,
        hl_instr_count=0,
        events=(),
        sym_buffers=(),
        meta={},
    )


class SnapshotDecoder:
    """Per-chunk decode context: shared tables rebuild once, not per state.

    ``values`` memoizes :func:`rebuild_values_cached` per shared
    instruction table; ``prefixes`` memoizes restored constraint-set
    *prefix chains* keyed by (encoded atoms, model items), so sibling
    states restored in one chunk share the same prefix node — the same
    structure they had in the sending process, which keeps
    ``note_model`` reuse flowing between siblings worker-side.
    """

    __slots__ = ("values", "prefixes")

    def __init__(self):
        self.values: Dict[int, list] = {}
        self.prefixes: Dict[Tuple, ConstraintSet] = {}


def restore_state(snap: StateSnapshot, program: Program, sid: int, *, decoder: Optional[SnapshotDecoder] = None):
    """Rebuild a live :class:`State` from a snapshot in this process.

    Pass one :class:`SnapshotDecoder` across the states of a batch to
    rebuild their shared expression table (and shared constraint-set
    prefixes) once instead of once per state.
    """
    from repro.lowlevel.executor import PathEvent, State

    values = rebuild_values_cached(
        snap.expr_instrs, decoder.values if decoder is not None else None
    )
    refs = snap.expr_refs

    def decode(v):
        if type(v) is tuple and len(v) == 2 and v[0] == "x":
            return values[refs[v[1]]]
        return v

    machine = MachineState.__new__(MachineState)
    machine.program = program
    machine.frames = []
    for name, pc, regs, ret_dst in snap.frames:
        frame = Frame.__new__(Frame)
        frame.func = program.get_function(name)
        frame.pc = pc
        frame.regs = [decode(r) for r in regs]
        frame.ret_dst = ret_dst
        machine.frames.append(frame)
    machine.memory = CowMap.from_base_and_delta(
        program.static_data,
        {key: decode(value) for key, value in snap.mem_changed.items()},
        snap.mem_deleted,
    )
    machine.status = snap.status
    machine.halt_code = snap.halt_code
    machine.output = list(snap.output)

    state = State(sid, machine)
    state.path_condition = _restore_constraints(snap, decode, decoder)
    state.assignment = None if snap.assignment is None else dict(snap.assignment)
    state.seed_assignment = dict(snap.seed_assignment)
    state.pending = snap.pending
    state.fork_ll_pc = snap.fork_ll_pc
    state.fork_group = snap.fork_group
    state.fork_index = snap.fork_index
    state.depth = snap.depth
    state.instr_count = snap.instr_count
    state.hl_instr_count = snap.hl_instr_count
    state.events = [PathEvent(kind=k, a=a, b=b) for k, a, b in snap.events]
    state.sym_buffers = list(snap.sym_buffers)
    meta = dict(snap.meta)
    if "hl_suffix" in meta or "tree_node" in meta:
        # High-level tracing is on: this restore point becomes the new
        # suffix anchor.  The record/classification consumers need the
        # anchor's tree node and the (hlpc, opcode) just before the
        # suffix starts (for the first CFG edge of the new segment).
        meta["hl_suffix"] = []
        meta["start_node"] = meta.get("tree_node", 0)
        meta["suffix_prev"] = (meta.get("static_hlpc"), meta.get("hl_opcode"))
    state.meta = meta
    return state


def _restore_constraints(snap: StateSnapshot, decode, decoder: Optional[SnapshotDecoder]) -> ConstraintSet:
    """Rebuild the path condition; prefix chains shared across a batch."""
    if decoder is not None and snap.pc_prefix:
        key = (
            snap.pc_prefix,
            None
            if snap.pc_model is None
            else tuple(sorted(snap.pc_model.items())),
        )
        prefix = decoder.prefixes.get(key)
        if prefix is None:
            prefix = ConstraintSet.from_atoms(decode(a) for a in snap.pc_prefix)
            if snap.pc_model is not None:
                prefix.note_model(dict(snap.pc_model))
            decoder.prefixes[key] = prefix
    else:
        prefix = ConstraintSet.from_atoms(decode(a) for a in snap.pc_prefix)
        if snap.pc_model is not None and snap.pc_prefix:
            prefix.note_model(dict(snap.pc_model))
    return prefix.extend(decode(a) for a in snap.pc_suffix)


def _portable_meta(meta: Dict) -> Dict:
    """Copy the scratch meta dict, materialising the HLPC suffix."""
    out = dict(meta)
    suffix = out.get("hl_suffix")
    if suffix is not None:
        out["hl_suffix"] = tuple(suffix)
    # Restore-time bookkeeping of *this* process — recomputed by the
    # receiver; meaningless (start_node/suffix_prev) or coordinator-local
    # (dyn_node) across the wire.
    out.pop("dyn_node", None)
    out.pop("start_node", None)
    out.pop("suffix_prev", None)
    return out


def path_record_of(state):
    """Condense a terminated state into a :class:`PathRecord`."""
    from repro.parallel.coordinator import PathRecord

    meta = state.meta
    start_hlpc, start_opcode = meta.get("suffix_prev", (None, None))
    return PathRecord(
        status=state.machine.status,
        halt_code=state.machine.halt_code,
        fault_message=state.fault_message,
        inputs=tuple(
            (name, tuple(values)) for name, values in sorted(state.input_values().items())
        ),
        output=tuple(state.machine.output),
        events=tuple((e.kind, e.a, e.b) for e in state.events),
        instr_count=state.instr_count,
        hl_instr_count=state.hl_instr_count,
        depth=state.depth,
        path_key=tuple(
            fingerprint(a) for a in state.path_condition.atoms() if isinstance(a, Expr)
        ),
        start_node=meta.get("start_node", 0),
        start_hlpc=start_hlpc,
        start_opcode=start_opcode,
        hl_suffix=tuple(meta.get("hl_suffix", ())),
        hl_sig=meta.get("hl_sig", 0),
        path_constraints=state.path_condition,
    )
