"""Portable state snapshots: ship execution states between processes.

A :class:`StateSnapshot` is everything a worker needs to resume a state
except the (immutable, shipped-once) :class:`~repro.lowlevel.program.Program`:
frames by function *name*, memory as a compact delta against the
program's static data, the path condition as a flattened
:class:`~repro.solver.constraints.ConstraintSet` (atoms re-intern on
unpickle, the nearest known model rides along), and the concolic
assignment/seed bookkeeping.  ``restore_state`` rebuilds a live
:class:`~repro.lowlevel.executor.State` against the receiving process's
copy of the program.

:func:`path_record_of` condenses a terminated state into the
coordinator-facing :class:`~repro.parallel.coordinator.PathRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.lowlevel.cow import CowMap
from repro.lowlevel.expr import Expr, fingerprint, flatten_values, rebuild_values
from repro.lowlevel.machine import Frame, MachineState, Status
from repro.lowlevel.program import Program
from repro.solver.constraints import ConstraintSet


@dataclass
class StateSnapshot:
    """Picklable image of one execution state (program shipped separately)."""

    frames: Tuple[Tuple[str, int, Tuple, Optional[int]], ...]
    mem_changed: Dict
    mem_deleted: Tuple
    status: str
    halt_code: Optional[int]
    output: Tuple
    path_condition: ConstraintSet
    assignment: Optional[Dict[str, int]]
    seed_assignment: Dict[str, int]
    pending: bool
    fork_ll_pc: Optional[int]
    fork_group: Optional[Tuple]
    fork_index: int
    depth: int
    instr_count: int
    hl_instr_count: int
    events: Tuple[Tuple[int, int, int], ...]
    sym_buffers: Tuple[Tuple[str, int, int, int, int], ...]
    meta: Dict
    #: shared flat encoding of every Expr in frames/mem_changed (one
    #: :func:`flatten_values` call, so subgraphs shared between values —
    #: e.g. a loop accumulator spine stored into successive cells — are
    #: emitted once); values reference it as ``("x", i)`` markers.
    expr_instrs: Tuple = ()
    expr_refs: Tuple = ()


def snapshot_state(state) -> StateSnapshot:
    """Encode ``state`` as a portable snapshot.

    ``CowMap`` layer chains are flattened to a single delta against the
    program's static data; expression values in registers/memory are
    encoded through one shared :func:`flatten_values` call (subgraphs
    shared between values are emitted once) and re-intern on restore.
    """
    machine = state.machine
    changed, deleted = machine.memory.delta_against(machine.program.static_data)

    exprs: list = []
    indexes: Dict[int, int] = {}

    def encode(v):
        if not isinstance(v, Expr):
            return v
        idx = indexes.get(id(v))
        if idx is None:
            idx = indexes[id(v)] = len(exprs)
            exprs.append(v)
        return ("x", idx)

    frames = tuple(
        (f.func.name, f.pc, tuple(encode(r) for r in f.regs), f.ret_dst)
        for f in machine.frames
    )
    changed = {key: encode(value) for key, value in changed.items()}
    instrs, refs = flatten_values(exprs)
    return StateSnapshot(
        frames=frames,
        mem_changed=changed,
        mem_deleted=deleted,
        status=machine.status,
        halt_code=machine.halt_code,
        output=tuple(machine.output),
        path_condition=state.path_condition,
        assignment=None if state.assignment is None else dict(state.assignment),
        seed_assignment=dict(state.seed_assignment),
        pending=state.pending,
        fork_ll_pc=state.fork_ll_pc,
        fork_group=state.fork_group,
        fork_index=state.fork_index,
        depth=state.depth,
        instr_count=state.instr_count,
        hl_instr_count=state.hl_instr_count,
        events=tuple((e.kind, e.a, e.b) for e in state.events),
        sym_buffers=tuple(state.sym_buffers),
        meta=_portable_meta(state.meta),
        expr_instrs=instrs,
        expr_refs=refs,
    )


def boot_snapshot(program: Program) -> StateSnapshot:
    """Snapshot of a freshly booted (never executed) state."""
    entry = program.get_function(program.entry)
    return StateSnapshot(
        frames=((entry.name, 0, (0,) * entry.n_regs, None),),
        mem_changed={},
        mem_deleted=(),
        status=Status.RUNNING,
        halt_code=None,
        output=(),
        path_condition=ConstraintSet.empty(),
        assignment={},
        seed_assignment={},
        pending=False,
        fork_ll_pc=None,
        fork_group=None,
        fork_index=0,
        depth=0,
        instr_count=0,
        hl_instr_count=0,
        events=(),
        sym_buffers=(),
        meta={},
    )


def restore_state(snap: StateSnapshot, program: Program, sid: int):
    """Rebuild a live :class:`State` from a snapshot in this process."""
    from repro.lowlevel.executor import PathEvent, State

    values = rebuild_values(snap.expr_instrs)

    def decode(v):
        if type(v) is tuple and len(v) == 2 and v[0] == "x":
            return values[snap.expr_refs[v[1]]]
        return v

    machine = MachineState.__new__(MachineState)
    machine.program = program
    machine.frames = []
    for name, pc, regs, ret_dst in snap.frames:
        frame = Frame.__new__(Frame)
        frame.func = program.get_function(name)
        frame.pc = pc
        frame.regs = [decode(r) for r in regs]
        frame.ret_dst = ret_dst
        machine.frames.append(frame)
    machine.memory = CowMap.from_base_and_delta(
        program.static_data,
        {key: decode(value) for key, value in snap.mem_changed.items()},
        snap.mem_deleted,
    )
    machine.status = snap.status
    machine.halt_code = snap.halt_code
    machine.output = list(snap.output)

    state = State(sid, machine)
    state.path_condition = snap.path_condition
    state.assignment = None if snap.assignment is None else dict(snap.assignment)
    state.seed_assignment = dict(snap.seed_assignment)
    state.pending = snap.pending
    state.fork_ll_pc = snap.fork_ll_pc
    state.fork_group = snap.fork_group
    state.fork_index = snap.fork_index
    state.depth = snap.depth
    state.instr_count = snap.instr_count
    state.hl_instr_count = snap.hl_instr_count
    state.events = [PathEvent(kind=k, a=a, b=b) for k, a, b in snap.events]
    state.sym_buffers = list(snap.sym_buffers)
    state.meta = dict(snap.meta)
    if "hl_trace" in state.meta:
        state.meta["hl_trace"] = list(state.meta["hl_trace"])
    return state


def _portable_meta(meta: Dict) -> Dict:
    """Copy the scratch meta dict, materialising the HLPC trace."""
    out = dict(meta)
    trace = out.get("hl_trace")
    if trace is not None:
        out["hl_trace"] = tuple(trace)
    # Coordinator-local bookkeeping that is meaningless across processes.
    out.pop("dyn_node", None)
    return out


def path_record_of(state):
    """Condense a terminated state into a :class:`PathRecord`."""
    from repro.parallel.coordinator import PathRecord

    return PathRecord(
        status=state.machine.status,
        halt_code=state.machine.halt_code,
        fault_message=state.fault_message,
        inputs=tuple(
            (name, tuple(values)) for name, values in sorted(state.input_values().items())
        ),
        output=tuple(state.machine.output),
        events=tuple((e.kind, e.a, e.b) for e in state.events),
        instr_count=state.instr_count,
        hl_instr_count=state.hl_instr_count,
        depth=state.depth,
        path_key=tuple(
            fingerprint(a) for a in state.path_condition.atoms() if isinstance(a, Expr)
        ),
        hl_trace=tuple(state.meta.get("hl_trace", ())),
        path_constraints=state.path_condition,
    )
