"""Coordinator half of parallel exploration.

:class:`ParallelExplorer` drives a persistent :class:`WorkerPool`
(acquired from the process-wide shared registry, or passed in by a
bench harness) and a master :class:`ModelCache`.  Each round it pops a
batch from the frontier, splits it into **more chunks than workers**
(``steal_factor``) feeding one shared task queue — workers steal the
next chunk as they drain their current one, so a single deep path no
longer serializes the round — and merges the results **in chunk
order**: the merged record stream, the frontier contents and the master
cache are a deterministic function of the frontier sequence,
independent of which worker ran which chunk.  Worker-discovered cache
entries are folded into the master cache and re-broadcast inside the
next round's chunk tasks, which is what carries subset-UNSAT /
superset-SAT reuse across process boundaries.

The pool outlives the explorer, and since the service daemon landed the
lease is **round-scoped**: ``start()`` acquires the pool just long
enough to configure it (a small spec broadcast; the Program image ships
only the first time the pool sees its content hash), and every round
re-acquires it FIFO — so concurrent explorers in one process interleave
rounds round-robin over one warm pool instead of spawning private
pools.  If another session configured the pool in between, the next
round detects it (``pool.active_run_id``) and re-broadcasts its own
spec under its original run id: worker engines were rebuilt, so the
explorer folds its cumulative per-worker metric slices into a base
accumulator, drops its journal high-water marks (the full cache delta
re-ships — sound, the entries dedup by fingerprint), and continues.

Crash handling is **lost-chunk recovery**, not round abort: a dead
worker raises :class:`~repro.parallel.pool.WorkerCrashError` carrying
the chunk results the pool had already collected; those are folded
exactly once (keyed by the dead pool's epoch, *before* the replacement
pool reconfigures, so ``merged_metrics`` never double-counts a slice),
and only the chunks still outstanding are requeued on the replacement
pool — as singleton per-state work items, so a state that keeps
killing workers can only take down the chunk it is alone in.  States
that crash ``quarantine_threshold`` workers are quarantined (surfaced
through ``on_quarantine`` and the ``recovery.quarantined_states``
counter) instead of killing the run; ``recovery.worker_crashes`` and
``recovery.requeued_chunks`` count the rest of the story.  Results are
reassembled per *original* chunk in original chunk order before
``on_merge`` fires, so the merged record stream — and therefore the
session's path-event multiset — is identical to an uninjected run.
Caller-owned pools still fail through to the caller.

High-water marks and metric slices are keyed by **(pool epoch, pid)**,
never bare pid: pids are recycled by the OS, and a replacement pool
after a :class:`WorkerCrashError` can reuse a dead worker's pid — a
bare-pid journal mark would then claim the new worker already holds
entries it has never seen and silently skip deltas.

With ``cache_store`` set, the master cache is seeded from a
:class:`~repro.solver.cache.PersistentCacheStore` on ``start()`` (the
loaded entries ride the normal delta broadcasts to the workers, tagged
so hits count as ``cache.cross_run_hits``) and newly discovered entries
are appended back on ``close()`` — subset-UNSAT/superset-SAT reuse then
carries across runs and across tenants hitting similar targets.

Observability: the explorer takes the engine's
:class:`~repro.obs.telemetry.Telemetry` context and records its
ship/merge spans on a ``coordinator`` lane of the same event log; each
:class:`WorkerResult` carries the worker's cumulative metrics-registry
snapshot and its trace-event slice, so the Chrome-trace export shows
one swimlane per worker process next to the coordinator's.  Metric
aggregation keeps only the *latest* snapshot per worker pid (snapshots
are cumulative, and the shared FIFO task queue means one pid's chunk
results arrive in chronological order) and merges them on demand; the
legacy ``engine_stats`` / ``solver_stats`` / ``cache_stats`` dicts are
prefix-split views of the one merged snapshot.

For exhaustive runs the set of explored paths is identical to a serial
run: feasibility verdicts do not depend on cache content, only the
order of discovery does.  One caveat on *witness inputs*: when a branch
atom admits several models and the parent's inherited model does not
already satisfy it, the concrete model a state ends up with can come
from a component-cache hit — and worker-local cache contents depend on
which chunks a worker process happened to steal.  The path *structure*
(`path_key`, status) is always scheduling-independent; input-level
identity additionally holds when suffix atoms are either satisfied by
inherited models or uniquely determined (as in the CI workloads, which
assert full `PathRecord.identity()` equality).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lowlevel.executor import ExecutorConfig
from repro.lowlevel.program import Program
from repro.obs.metrics import merge_snapshots, split_prefixed
from repro.obs.telemetry import Telemetry
from repro.parallel.pool import (
    WorkerCrashError,
    WorkerPool,
    acquire_pool,
    release_pool,
)
from repro.parallel.snapshot import StateSnapshot, boot_snapshot
from repro.parallel.worker import WorkerResult
from repro.solver.cache import ModelCache, PersistentCacheStore
from repro.solver.constraints import ConstraintSet
from repro.solver.csp import DEFAULT_BUDGET

#: legacy stat-dict name → metric-name prefix in the merged snapshot.
_STAT_PREFIXES = {
    "engine_stats": "engine",
    "solver_stats": "solver",
    "cache_stats": "cache",
}


@dataclass(frozen=True)
class _WorkerSlice:
    """The slice of a :class:`WorkerResult` kept for stat aggregation.

    Retaining the whole result would pin the last round's path records,
    pending snapshots and cache delta for as long as the explorer lives.
    ``metrics`` is the worker's *cumulative* registry snapshot.
    """

    metrics: Dict
    states_created: int


def warn_if_custom_backend(solver) -> None:
    """Warn when a non-default solver backend meets ``workers > 1``.

    Workers rebuild a fresh :class:`~repro.solver.csp.CspSolver` each;
    only the budget of a custom backend survives the trip.
    """
    from repro.solver.csp import CspSolver

    if type(solver) is not CspSolver:
        import warnings

        warnings.warn(
            "parallel exploration rebuilds a CspSolver in each worker "
            f"process; the custom {type(solver).__name__} backend "
            "is not shipped (only its budget is)",
            RuntimeWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class PathRecord:
    """One terminated exploration path, condensed for the coordinator.

    ``identity()`` is the cross-run comparison key: the concrete inputs,
    the terminal status and the observable output.  ``path_key`` is the
    stable structural fingerprint sequence of the path condition —
    process-independent within one run (workers share a namespace).

    The high-level trace travels as a **suffix**: ``hl_suffix`` covers
    only the transitions executed since the state was last restored
    from a snapshot, anchored at coordinator tree node ``start_node``
    (with ``start_hlpc``/``start_opcode`` the location just before the
    suffix, for the first CFG edge).  ``hl_sig`` is the whole-path
    signature, maintained incrementally worker-side — identical to the
    serial engine's.
    """

    status: str
    halt_code: Optional[int]
    fault_message: Optional[str]
    inputs: Tuple[Tuple[str, Tuple[int, ...]], ...]
    output: Tuple
    events: Tuple[Tuple[int, int, int], ...]
    instr_count: int
    hl_instr_count: int
    depth: int
    path_key: Tuple[int, ...]
    start_node: int = 0
    start_hlpc: Optional[int] = None
    start_opcode: Optional[int] = None
    hl_suffix: Tuple[Tuple[int, int], ...] = ()
    hl_sig: int = 0
    path_constraints: Optional[ConstraintSet] = None

    def identity(self) -> Tuple:
        return (self.inputs, self.status, self.output)


def path_set(records) -> FrozenSet[Tuple]:
    """Comparison set over a record collection (order-insensitive)."""
    return frozenset(r.identity() for r in records)


@dataclass
class ExploreResult:
    """Outcome of one (serial or parallel) frontier exploration."""

    records: List[PathRecord] = field(default_factory=list)
    engine_stats: Dict[str, int] = field(default_factory=dict)
    solver_stats: Dict[str, int] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    coordinator_cache: Dict[str, int] = field(default_factory=dict)
    #: merged dotted-name metrics snapshot across all workers (the
    #: ``*_stats`` dicts above are prefix-split views of this).
    metrics: Dict = field(default_factory=dict)
    workers: int = 1
    batches: int = 0
    states_run: int = 0
    pending_left: int = 0
    wall_time: float = 0.0

    def path_set(self) -> FrozenSet[Tuple]:
        return path_set(self.records)


class ParallelExplorer:
    """Shards frontier exploration across a persistent worker pool."""

    def __init__(
        self,
        program: Program,
        workers: int = 2,
        config: Optional[ExecutorConfig] = None,
        solver_budget: int = DEFAULT_BUDGET,
        namespace: Optional[str] = None,
        batch_size: int = 8,
        trace_hlpc: bool = False,
        telemetry: Optional[Telemetry] = None,
        pool: Optional[WorkerPool] = None,
        steal_factor: int = 4,
        cache_store: Optional[str] = None,
        solver_deadline_s: Optional[float] = None,
        fault_plan=None,
        quarantine_threshold: int = 3,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pool is not None and pool.workers != workers:
            raise ValueError(
                f"pool has {pool.workers} workers, explorer wants {workers}"
            )
        if not program.finalized:
            program.finalize()
        self.program = program
        self.workers = workers
        self.exec_config = config if config is not None else ExecutorConfig()
        self.solver_budget = solver_budget
        if namespace is None:
            from repro.lowlevel.executor import fresh_namespace

            namespace = fresh_namespace("p")
        self.namespace = namespace
        self.batch_size = batch_size
        #: rounds are split into ``workers * steal_factor`` chunks so a
        #: worker that drains its chunk steals the next from the shared
        #: queue instead of idling behind one deep path.
        self.steal_factor = max(1, steal_factor)
        self.trace_hlpc = trace_hlpc
        if telemetry is None:
            telemetry = Telemetry()
        #: the caller's telemetry context; worker trace events are folded
        #: into its log, and coordinator spans are recorded via a
        #: same-log child under the "coordinator" lane.
        self.telemetry = telemetry
        self._tele = telemetry.child("coordinator")
        #: master model cache; worker deltas are folded here and
        #: re-broadcast with the next round.  It keeps a *private*
        #: registry: its counters describe coordinator-side folding and
        #: would double-count reuse against the merged worker ``cache.*``
        #: totals if they shared a registry.
        self.master_cache = ModelCache()
        #: per-worker journal high-water marks, keyed **(pool epoch,
        #: pid)**: the master-cache mark each worker is known to have
        #: merged up to.  Broadcasts cover the delta since the *lowest*
        #: current-epoch mark (0 until every worker has reported once),
        #: so a worker that stole nothing all round still catches up
        #: later; receivers dedup re-shipped entries by fingerprint.
        #: The epoch key is what stops a replacement pool's recycled
        #: pids from inheriting a dead worker's mark and skipping deltas.
        self._pid_marks: Dict[Tuple[int, int], int] = {}
        #: externally-owned pool (bench harness); never closed/replaced here.
        self._external_pool = pool
        self._run_id: Optional[int] = None
        #: epoch of the pool our run_id was last configured on; a
        #: different epoch on acquisition means a replacement pool.
        self._pool_epoch: Optional[int] = None
        self._started = False
        self._latest_by_pid: Dict[Tuple[int, int], _WorkerSlice] = {}
        #: metric snapshots folded in from worker generations that were
        #: since reconfigured away (another session took the pool, or a
        #: crash replaced it) — merged_metrics() sums these bases with
        #: the live _latest_by_pid slices.
        self._metric_bases: List[Dict] = []
        self._states_base = 0
        #: per-query wall-clock deadline shipped to worker solvers.
        self.solver_deadline_s = solver_deadline_s
        #: chaos-test fault schedule shipped in the configure spec
        #: (workers rebuild their injector from it); None in production.
        self.fault_plan = fault_plan
        #: crashes a single state may cause before it is quarantined.
        self.quarantine_threshold = max(1, quarantine_threshold)
        #: hook ``(snapshot, crash_count) -> None`` fired when a state is
        #: quarantined; the Chef engine surfaces it as a typed event.
        self.on_quarantine = None
        #: optional disk-backed cache store: loaded on start(), appended
        #: on close(); carries component verdicts across runs/tenants.
        faults = None
        if fault_plan is not None:
            from repro.faults import make_injector

            faults = make_injector(fault_plan)
        self._store = (
            PersistentCacheStore(cache_store, faults=faults) if cache_store else None
        )
        self._persistent_fps: FrozenSet = frozenset()
        self._store_mark = 0
        self.batches = 0
        #: optional merge hook ``(chunk_index, WorkerResult) -> None``,
        #: invoked per chunk in deterministic chunk order right after
        #: its cache delta is folded into the master cache.  The Chef
        #: engine subscribes here to ingest records, classify pending
        #: snapshots and emit session events; ``self.batches`` is the
        #: current round index while the hook runs.
        self.on_merge = None

    # -- pool lifecycle -------------------------------------------------------

    def start(self) -> "ParallelExplorer":
        """Begin a run: seed from the cache store and warm-configure the pool.

        The configure lease is released immediately — leases are
        round-scoped, so between rounds the pool is free for other
        sessions (this is what makes concurrent sessions round-robin
        instead of serializing whole runs).
        """
        if self._started:
            return self
        # A new run means freshly-reset worker engines: drop any
        # previous run's cumulative per-worker counters (aggregation
        # would double-count them) and broadcast marks (reconfigured
        # workers hold nothing; pids can even be recycled).
        self._latest_by_pid.clear()
        self._pid_marks.clear()
        self._metric_bases = []
        self._states_base = 0
        self._run_id = None
        self._pool_epoch = None
        self.batches = 0
        if self._store is not None:
            with self._tele.span("parallel.cache_load", path=self._store.path):
                adopted = self._store.load_into(self.master_cache)
            self._persistent_fps = self._store.seen_fps()
            self._store_mark = self.master_cache.journal_mark()
            self.telemetry.registry.gauge("parallel.persistent_loaded").set(adopted)
        self._started = True
        try:
            pool = self._acquire_round()
        except BaseException:
            self._started = False
            raise
        self._release_round(pool)
        return self

    def flush_cache_store(self) -> None:
        """Append newly discovered entries to the store mid-run.

        Called at checkpoint cadence so a SIGKILLed run loses at most
        one checkpoint interval of solver verdicts; frame-level dedup in
        the store makes overlapping flushes harmless.
        """
        if self._store is None:
            return
        with self._tele.span("parallel.cache_flush", path=self._store.path):
            self._store.append_from(self.master_cache, self._store_mark)
        self._store_mark = self.master_cache.journal_mark()

    def close(self) -> None:
        """End the run and flush newly discovered entries to the store.

        With round-scoped leases there is no held lease to release — the
        pool was already free (and warm) the moment the last round's
        results were collected.
        """
        if not self._started:
            return
        self._started = False
        self._run_id = None
        self._pool_epoch = None
        if self._store is not None:
            with self._tele.span("parallel.cache_flush", path=self._store.path):
                appended = self._store.append_from(self.master_cache, self._store_mark)
            self._store_mark = self.master_cache.journal_mark()
            self.telemetry.registry.gauge("parallel.persistent_appended").set(appended)

    # -- round-scoped leasing --------------------------------------------------

    def _acquire_round(self) -> WorkerPool:
        """Lease the pool for one round, (re)configuring it when needed."""
        if self._external_pool is not None:
            pool = self._external_pool
            if not pool.acquire():
                if pool.broken:
                    raise WorkerCrashError("WorkerPool is broken (a worker died)")
                raise RuntimeError("WorkerPool is closed")
        else:
            pool, _ = acquire_pool(self.workers)
        try:
            self._ensure_configured(pool)
        except BaseException:
            self._release_round(pool)
            raise
        return pool

    def _release_round(self, pool: WorkerPool) -> None:
        if pool is self._external_pool:
            pool.release()
        else:
            release_pool(pool)

    def _ensure_configured(self, pool: WorkerPool) -> None:
        """Re-broadcast our spec unless the pool is still configured for us.

        Reconfiguring resets the worker engines, so whatever cumulative
        metric slices and journal marks we hold describe worker
        generations that no longer exist: fold the slices into the base
        accumulator and drop the marks (the next delta re-ships from 0 —
        sound, receivers dedup by fingerprint).
        """
        if (
            self._run_id is not None
            and pool.active_run_id == self._run_id
            and pool.epoch == self._pool_epoch
        ):
            return
        self._fold_metric_slices()
        self._pid_marks.clear()
        self._run_id = pool.configure(
            self.program,
            self.exec_config,
            self.namespace,
            self.solver_budget,
            trace_hlpc=self.trace_hlpc,
            trace=self.telemetry.enabled,
            persistent_fps=self._persistent_fps or None,
            run_id=self._run_id,
            solver_deadline_s=self.solver_deadline_s,
            fault_plan=self.fault_plan,
        )
        self._pool_epoch = pool.epoch
        registry = self.telemetry.registry
        registry.gauge("parallel.pool_spawns").set(pool.spawns)
        registry.gauge("parallel.program_ships").set(pool.program_ships)

    def _fold_metric_slices(self) -> None:
        if not self._latest_by_pid:
            return
        self._metric_bases.append(
            merge_snapshots([s.metrics for s in self._latest_by_pid.values()])
        )
        self._states_base += sum(
            s.states_created for s in self._latest_by_pid.values()
        )
        self._latest_by_pid.clear()

    def __enter__(self) -> "ParallelExplorer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- batched execution ----------------------------------------------------

    def submit(self, snapshots: List[StateSnapshot]) -> List[WorkerResult]:
        """Run one round across the pool; deterministic merge order.

        The batch splits into contiguous chunks fed through the shared
        task queue (work stealing); results come back in chunk order
        regardless of which worker ran which chunk.  A worker crash
        does not abort the round: the already-collected chunk results
        are folded exactly once, the lost positions are requeued on the
        replacement pool as singleton per-state items, repeat-offender
        states are quarantined, and the surviving results are
        reassembled per *original* chunk — so ``on_merge`` still fires
        in original chunk order and the merged stream matches an
        uninjected run.
        """
        if not self._started:
            raise RuntimeError("ParallelExplorer pool is not started")
        if not snapshots:
            return []
        round_no = self.batches
        chunk_count = min(len(snapshots), self.workers * self.steal_factor)
        base, extra = divmod(len(snapshots), chunk_count)
        chunks = []
        start = 0
        for index in range(chunk_count):
            size = base + (1 if index < extra else 0)
            chunks.append(snapshots[start : start + size])
            start += size
        # Work items, keyed by a never-reused wire position:
        # (original chunk, state offset inside it, requeue attempt, states).
        outstanding: Dict[int, Tuple[int, int, int, List[StateSnapshot]]] = {}
        item_of: Dict[int, Tuple[int, int, int, List[StateSnapshot]]] = {}
        next_position = 0
        for orig, chunk in enumerate(chunks):
            outstanding[next_position] = item_of[next_position] = (orig, 0, 0, chunk)
            next_position += 1
        collected: Dict[int, WorkerResult] = {}
        #: crashes blamed on each in-flight state (by snapshot identity,
        #: scoped to this round — snapshots live until the round merges).
        crash_counts: Dict[int, int] = {}
        registry = self.telemetry.registry
        configure_failures = 0
        while outstanding:
            # Lease per round: the pool is free for other sessions the
            # moment our results are collected, and FIFO acquisition
            # makes the interleaving round-robin fair.
            try:
                pool = self._acquire_round()
            except WorkerCrashError:
                if self._external_pool is not None:
                    raise
                configure_failures += 1
                if configure_failures > 4:
                    raise  # replacement pools keep dying at configure
                continue  # registry hands out a replacement pool
            configure_failures = 0
            epoch = pool.epoch
            crashed: Optional[WorkerCrashError] = None
            positions = sorted(outstanding)
            try:
                marks = [
                    mark
                    for (mark_epoch, _pid), mark in self._pid_marks.items()
                    if mark_epoch == epoch
                ]
                if len(marks) >= self.workers:
                    base_mark = min(marks)
                else:
                    base_mark = 0  # some worker has never reported; it knows nothing
                delta = self.master_cache.export_delta(base_mark)
                round_mark = self.master_cache.journal_mark()
                with self._tele.span(
                    "parallel.ship",
                    round=round_no,
                    states=sum(len(outstanding[p][3]) for p in positions),
                    chunks=len(positions),
                    delta=len(delta),
                ):
                    results = pool.run_round(
                        self._run_id,
                        round_no,
                        [outstanding[p][3] for p in positions],
                        delta,
                        positions=positions,
                        fault_keys=[
                            (round_no, outstanding[p][0], outstanding[p][2])
                            for p in positions
                        ],
                    )
            except WorkerCrashError as exc:
                crashed = exc
            finally:
                self._release_round(pool)
            if crashed is None:
                for position, result in zip(positions, results):
                    # This worker merged [base_mark, round_mark) on top
                    # of its own previous mark (>= base_mark), so it
                    # holds the full prefix now.
                    self._fold_result(epoch, result, round_mark)
                    collected[position] = result
                    del outstanding[position]
                continue
            # -- lost-chunk recovery ------------------------------------
            # Fold whatever the dead pool delivered before breaking,
            # keyed by the *dead* epoch and before the replacement pool
            # reconfigures (which folds these slices into the metric
            # bases exactly once).
            for position, result in sorted(crashed.partial.items()):
                if position not in outstanding:
                    continue
                self._fold_result(epoch, result, round_mark)
                collected[position] = result
                del outstanding[position]
            if self._external_pool is not None:
                raise crashed
            registry.counter("recovery.worker_crashes").inc()
            if not outstanding:
                continue
            # Blame every state of every lost chunk, quarantine repeat
            # offenders, and requeue the survivors as singleton items
            # under their original (round, chunk) coordinates — a state
            # that keeps killing workers only ever takes itself down.
            requeued = 0
            for position in sorted(outstanding):
                orig, offset, attempt, snaps = outstanding.pop(position)
                for j, snap in enumerate(snaps):
                    count = crash_counts.get(id(snap), 0) + 1
                    crash_counts[id(snap)] = count
                    if count >= self.quarantine_threshold:
                        registry.counter("recovery.quarantined_states").inc()
                        if self.on_quarantine is not None:
                            self.on_quarantine(snap, count)
                        continue
                    item = (orig, offset + j, attempt + 1, [snap])
                    outstanding[next_position] = item_of[next_position] = item
                    next_position += 1
                    requeued += 1
            registry.counter("recovery.requeued_chunks").inc(requeued)
        # -- deterministic reassembly & merge ------------------------------
        by_orig: Dict[int, List[Tuple[int, WorkerResult]]] = {}
        for position, result in collected.items():
            orig, offset, _attempt, _snaps = item_of[position]
            by_orig.setdefault(orig, []).append((offset, result))
        merged_results: List[WorkerResult] = []
        for orig in range(chunk_count):
            parts = sorted(by_orig.get(orig, ()), key=lambda part: part[0])
            if len(parts) == 1:
                combined = parts[0][1]
            elif not parts:
                combined = WorkerResult(pid=0)  # every state quarantined
            else:
                combined = WorkerResult(
                    pid=parts[-1][1].pid,
                    records=[r for _, res in parts for r in res.records],
                    pending=[s for _, res in parts for s in res.pending],
                    verdicts=tuple(
                        v for _, res in parts for v in res.verdicts
                    ),
                )
            with self._tele.span(
                "parallel.merge",
                round=round_no,
                chunk=orig,
                records=len(combined.records),
                pending=len(combined.pending),
            ):
                if self.on_merge is not None:
                    self.on_merge(orig, combined)
            merged_results.append(combined)
        self.batches += 1
        return merged_results

    def _fold_result(self, epoch: int, result: WorkerResult, round_mark: int) -> None:
        """Fold one collected chunk result into coordinator state.

        Exactly-once by construction: each wire position is collected at
        most once, cumulative metric slices overwrite by (epoch, pid)
        with the newest snapshot, and slices of epochs that died are
        moved to the base accumulator only when the replacement pool is
        configured (``_fold_metric_slices``).
        """
        self.master_cache.merge(result.cache_delta)
        self._latest_by_pid[(epoch, result.pid)] = _WorkerSlice(
            metrics=result.metrics,
            states_created=result.states_created,
        )
        self.telemetry.extend_events(result.trace_events)
        self._pid_marks[(epoch, result.pid)] = round_mark


    # -- high-level exhaustive exploration ------------------------------------

    def explore(self, max_states: int = 512) -> ExploreResult:
        """Explore from boot until the frontier drains or ``max_states``.

        ``max_states`` bounds activated (sat) states, checked between
        rounds — a round may overshoot by at most one batch.
        """
        start_time = time.monotonic()
        own_session = not self._started
        if own_session:
            self.start()
        frontier: List[StateSnapshot] = [boot_snapshot(self.program)]
        records: List[PathRecord] = []
        states_run = 0
        try:
            while frontier and states_run < max_states:
                take = min(
                    len(frontier),
                    self.workers * self.batch_size,
                    max_states - states_run,
                )
                batch = [frontier.pop() for _ in range(take)]
                for result in self.submit(batch):
                    records.extend(result.records)
                    frontier.extend(result.pending)
                    states_run += sum(1 for v in result.verdicts if v == "sat")
        finally:
            if own_session:
                self.close()
        merged = self.merged_metrics()
        return ExploreResult(
            records=records,
            engine_stats=split_prefixed(merged, "engine"),
            solver_stats=split_prefixed(merged, "solver"),
            cache_stats=split_prefixed(merged, "cache"),
            coordinator_cache=self.master_cache.stats_dict(),
            metrics=merged,
            workers=self.workers,
            batches=self.batches,
            states_run=states_run,
            pending_left=len(frontier),
            wall_time=time.monotonic() - start_time,
        )

    # -- statistics -----------------------------------------------------------

    def merged_metrics(self) -> Dict:
        """Pool-wide metrics: folded bases + latest cumulative snapshots.

        ``_metric_bases`` holds the totals of worker generations that
        were reconfigured away mid-run (another session took the pool,
        or a crash replaced it); ``_latest_by_pid`` holds the live
        generation's cumulative snapshots, one per (epoch, pid).
        """
        return merge_snapshots(
            self._metric_bases
            + [worker.metrics for worker in self._latest_by_pid.values()]
        )

    def aggregate(self, kind: str) -> Dict[str, int]:
        """Legacy counter-dict view of :meth:`merged_metrics`.

        ``kind`` is one of ``engine_stats`` / ``solver_stats`` /
        ``cache_stats`` — the prefix-split slice of the merged snapshot.
        """
        return split_prefixed(self.merged_metrics(), _STAT_PREFIXES[kind])

    def states_created(self) -> int:
        """Distinct states ever created across the pool, boot included.

        Matches the serial engine's ``_next_sid`` semantics: workers
        report only the forks they created (restores are excluded on the
        worker side), and the boot state is counted once here.
        """
        if not self._latest_by_pid and not self._metric_bases:
            return 0
        return (
            1
            + self._states_base
            + sum(r.states_created for r in self._latest_by_pid.values())
        )
