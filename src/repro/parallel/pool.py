"""Persistent worker pools for parallel exploration.

A :class:`WorkerPool` owns ``workers`` long-lived processes that survive
across ``explore()`` / ``Session.run()`` calls, killing the two constant
costs PR 4 paid per run: pool spin-up (fork + interpreter warm-up per
``multiprocessing.Pool``) and :class:`~repro.lowlevel.program.Program`
shipping.  The pool spawns lazily on first :meth:`configure`; idle
workers block on their queues (keep-alive is free); :meth:`close` is
explicit and idempotent.

Wire protocol (all queues are ``multiprocessing`` fork-context queues):

- one private **control queue per worker** — ``("configure", spec)`` and
  ``("stop",)`` messages.  :meth:`configure` broadcasts a run spec and
  blocks for one ack per worker, so a round never starts on a stale
  engine.
- one **shared task queue** — this is the work-stealing deque.  A round
  enqueues more chunks than workers (see the coordinator's
  ``steal_factor``); whichever worker drains its current chunk first
  takes the next, so one deep path no longer serializes the round.
- one **shared result queue** — chunk results tagged with
  ``(run_id, chunk_index)``; the coordinator reassembles deterministic
  chunk order regardless of which worker ran what.

The Program image ships **once per pool** per distinct program: the pool
content-hashes the pickled image and broadcasts the bytes only for a
digest the pool has not seen (``program_ships`` counts broadcasts);
workers keep a digest-keyed image cache, so reconfiguring for the same
program — even a different object compiled from the same source — ships
only the small spec.  Every task and ack carries the configure's
``run_id``; workers drop tasks from a stale configuration, which makes
pool reuse safe after an abandoned round.

Crash handling is fail-fast: result collection polls worker liveness,
and a dead process (or a worker-reported exception) raises
:class:`WorkerCrashError` immediately and marks the pool broken —
no hang, no partial merge.  Broken pools are replaced on the next
:func:`acquire_pool`.

:func:`acquire_pool` / :func:`release_pool` manage a process-wide shared
registry keyed by worker count — consecutive explorations reuse the warm
pool.  Acquisition **waits in FIFO order** when the pool is leased:
concurrent explorers (daemon sessions, threads) queue for the one warm
pool instead of silently paying full spawn + program-ship cost on a
private transient pool, and since the coordinator leases per *round*,
FIFO hand-off is exactly round-robin fair scheduling across sessions.
All shared pools are closed at interpreter exit.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing
import pickle
import queue as _queue
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.lowlevel.program import Program

__all__ = [
    "WorkerCrashError",
    "WorkerPool",
    "acquire_pool",
    "close_shared_pools",
    "release_pool",
    "shared_worker_pool",
]

#: Liveness-poll interval while waiting on the result queue (seconds).
_POLL = 0.1

#: Distinct program images a pool remembers digests for (FIFO evicted).
_DIGEST_MEMO = 8

#: Pool identity generator: every WorkerPool instance gets a unique
#: epoch, so journals/high-water marks keyed by (epoch, pid) can never
#: confuse a replacement pool's recycled pids with the crashed pool's.
_EPOCH_COUNTER = itertools.count(1)

#: Run identity generator — process-wide, not per pool, so a session
#: that restores its run onto a *replacement* pool (after a crash)
#: keeps an id no other session can ever be assigned.
_RUN_ID_COUNTER = itertools.count(1)


class WorkerCrashError(RuntimeError):
    """A worker process died or raised; the pool is broken (fail-fast).

    ``partial`` maps task position → already-collected
    :class:`~repro.parallel.worker.WorkerResult` for the round that
    crashed — everything the pool received before noticing the death.
    Lost-chunk recovery folds these exactly once and requeues only the
    positions that are missing.
    """

    def __init__(self, *args):
        super().__init__(*args)
        self.partial: Dict[int, object] = {}


class WorkerPool:
    """``workers`` persistent processes + the queues to drive them."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        #: unique pool identity; (epoch, pid) keys journals/high-water
        #: marks so a replacement pool's recycled pids stay distinct.
        self.epoch = next(_EPOCH_COUNTER)
        #: worker processes ever spawned by this pool (lifecycle tests
        #: assert warm reuse keeps this at ``workers``).
        self.spawns = 0
        #: program-image broadcasts (once per distinct program, not per run).
        self.program_ships = 0
        #: completed :meth:`configure` calls (one per explorer run).
        self.configures = 0
        #: workers that had to be terminated/killed by :meth:`close`.
        self.kills = 0
        #: the run the workers are currently configured for (None before
        #: the first configure); interleaved sessions use this to decide
        #: whether a freshly acquired pool needs reconfiguring.
        self.active_run_id: Optional[int] = None
        self.closed = False
        self.broken = False
        self._procs: List = []
        self._ctrl_qs: List = []
        self._task_q = None
        self._result_q = None
        #: id(program) -> (program ref, digest): skips re-pickling when
        #: the same object is configured again (ref keeps the id stable).
        self._digest_memo: Dict[int, Tuple[Program, str]] = {}
        #: digests whose image bytes the workers already hold.
        self._shipped: set = set()
        self._lease_cond = threading.Condition()
        self._lease_owner: Optional[object] = None
        self._lease_waiters: "deque" = deque()

    # -- leasing (shared-registry bookkeeping) --------------------------------

    @property
    def _leased(self) -> bool:
        return self._lease_owner is not None

    def acquire(self, timeout: Optional[float] = None) -> bool:
        """Lease the pool, waiting in FIFO order if it is already leased.

        Waiters are served strictly first-come-first-served, which is
        the fairness primitive concurrent sessions are scheduled by:
        with per-round leases, N waiting sessions alternate rounds
        round-robin.  Returns False if the pool closes or breaks while
        waiting, or the timeout elapses.
        """
        token = object()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lease_cond:
            self._lease_waiters.append(token)
            try:
                while True:
                    if self.closed or self.broken:
                        return False
                    if self._lease_owner is None and self._lease_waiters[0] is token:
                        self._lease_owner = token
                        return True
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return False
                    self._lease_cond.wait(remaining)
            finally:
                try:
                    self._lease_waiters.remove(token)
                except ValueError:
                    pass
                self._lease_cond.notify_all()

    def try_acquire(self) -> bool:
        """Lease the pool without waiting; False if leased or waited on."""
        with self._lease_cond:
            if (
                self._lease_owner is not None
                or self._lease_waiters
                or self.closed
                or self.broken
            ):
                return False
            self._lease_owner = object()
            return True

    def release(self) -> None:
        with self._lease_cond:
            self._lease_owner = None
            self._lease_cond.notify_all()

    # -- lifecycle ------------------------------------------------------------

    def _ensure_started(self) -> None:
        if self.closed:
            raise RuntimeError("WorkerPool is closed")
        if self.broken:
            raise WorkerCrashError("WorkerPool is broken (a worker died)")
        if self._procs:
            return
        from repro.parallel.worker import _pool_worker_main

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        for index in range(self.workers):
            ctrl_q = ctx.Queue()
            proc = ctx.Process(
                target=_pool_worker_main,
                args=(index, ctrl_q, self._task_q, self._result_q),
                daemon=True,
            )
            proc.start()
            self.spawns += 1
            self._ctrl_qs.append(ctrl_q)
            self._procs.append(proc)

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop the workers and reap every child; safe to call repeatedly.

        Shutdown escalates: a polite ``("stop",)`` plus ``join`` with a
        timeout, then ``terminate()`` (SIGTERM), then ``kill()``
        (SIGKILL, which reaps even a SIGSTOPped or wedged worker).  A
        broken control queue must not leave zombie children behind — the
        old best-effort close could, when a worker never drained its
        queue.  After close, no child of this pool is alive
        (``kills`` counts the ones that needed force).
        """
        if self.closed:
            return
        self.closed = True
        with self._lease_cond:
            self._lease_cond.notify_all()  # waiters see closed and bail
        # Polite phase; at interpreter exit multiprocessing's own atexit
        # cleanup may already have torn down queue feeder threads, so a
        # failed put just skips straight to the escalation below.
        for ctrl_q in self._ctrl_qs:
            try:
                ctrl_q.put(("stop",))
            except Exception:
                pass
        survivors = []
        for proc in self._procs:
            try:
                proc.join(timeout=join_timeout)
            except Exception:
                pass
            if proc.is_alive():
                survivors.append(proc)
        for proc in survivors:
            self.kills += 1
            try:
                proc.terminate()
                proc.join(timeout=join_timeout)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=join_timeout)
            except Exception:
                pass
        # Release queue feeder threads so interpreter exit never blocks
        # on a queue whose reader was just killed.
        for q in [self._task_q, self._result_q, *self._ctrl_qs]:
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        self._procs = []
        self._ctrl_qs = []
        self._task_q = None
        self._result_q = None
        self.active_run_id = None

    # -- program shipping ------------------------------------------------------

    def _program_digest(self, program: Program) -> Tuple[str, Optional[bytes]]:
        """Content hash of the pickled image; ``(digest, blob-to-ship)``.

        ``blob`` is None when the workers already hold this digest.
        Pickling is memoized per program *object*; the content hash
        additionally dedupes distinct objects with identical images
        (recompiling the same source yields byte-identical pickles).
        """
        memo = self._digest_memo.get(id(program))
        if memo is not None and memo[0] is program:
            digest = memo[1]
            if digest in self._shipped:
                return digest, None
            blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
            return digest, blob
        blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.blake2b(blob, digest_size=16).hexdigest()
        if len(self._digest_memo) >= _DIGEST_MEMO:
            self._digest_memo.pop(next(iter(self._digest_memo)))
        self._digest_memo[id(program)] = (program, digest)
        return digest, (None if digest in self._shipped else blob)

    # -- rounds ----------------------------------------------------------------

    def configure(
        self,
        program: Program,
        exec_config,
        namespace: str,
        solver_budget: int,
        trace_hlpc: bool = False,
        trace: bool = False,
        persistent_fps: Optional[frozenset] = None,
        run_id: Optional[int] = None,
        solver_deadline_s: Optional[float] = None,
        fault_plan=None,
    ) -> int:
        """Broadcast a run spec to every worker and wait for the acks.

        Returns the ``run_id`` tagging this configuration; tasks and
        results of other run ids are mutually ignored.  Each worker
        rebuilds its engine (fresh solver, cache, telemetry lane, intern
        tables) so a reused pool behaves exactly like fresh processes.
        ``persistent_fps`` tags cache entries loaded from a persistent
        store, so worker-side hits on them count as cross-run reuse.
        Passing an explicit ``run_id`` (one previously returned by this
        pool) *re*-configures the workers for that run — how interleaved
        sessions restore their configuration after another session used
        the pool, without invalidating their in-flight run identity.
        """
        self._ensure_started()
        digest, blob = self._program_digest(program)
        if blob is not None:
            self.program_ships += 1
        if run_id is None:
            run_id = next(_RUN_ID_COUNTER)
        spec = {
            "run_id": run_id,
            "program_digest": digest,
            "program_blob": blob,
            "exec_config": exec_config,
            "namespace": namespace,
            "solver_budget": solver_budget,
            "trace_hlpc": trace_hlpc,
            "trace": trace,
            "persistent_fps": persistent_fps,
            "solver_deadline_s": solver_deadline_s,
            "fault_plan": fault_plan,
        }
        for ctrl_q in self._ctrl_qs:
            ctrl_q.put(("configure", spec))
        self._collect(run_id, "configured", self.workers)
        self._shipped.add(digest)
        self.configures += 1
        self.active_run_id = run_id
        return run_id

    def run_round(
        self,
        run_id: int,
        round_no: int,
        chunks: List,
        delta,
        positions: Optional[List[int]] = None,
        fault_keys: Optional[List] = None,
    ) -> List:
        """Run one round of chunks across the pool; results in chunk order.

        Chunks go through the one shared task queue (work stealing);
        ``delta`` (model-cache entries since the last broadcast) rides
        inside every chunk task — workers merge it once per round and
        skip the copies, so correctness never depends on cross-queue
        ordering.  Raises :class:`WorkerCrashError` if any worker dies
        or reports an exception mid-round; the error carries the
        already-collected results as ``partial`` (position → result) so
        the coordinator can recover the lost positions only.

        ``positions`` relabels the chunks (defaults to 0..n-1) — lost-
        chunk recovery uses it to requeue survivors under their original
        coordinates; ``fault_keys`` rides one opaque key per chunk to
        the chaos-test injector in the workers.
        """
        if not self._procs:
            raise RuntimeError("WorkerPool is not started (configure first)")
        if positions is None:
            positions = list(range(len(chunks)))
        if fault_keys is None:
            fault_keys = [None] * len(chunks)
        for position, chunk, fault_key in zip(positions, chunks, fault_keys):
            self._task_q.put(
                ("chunk", run_id, round_no, position, chunk, delta, fault_key)
            )
        messages = self._collect(run_id, "result", len(chunks))
        messages.sort(key=lambda msg: msg[2])  # (kind, run_id, position, result)
        return [msg[3] for msg in messages]

    def _collect(self, run_id: int, want: str, count: int) -> List:
        """Gather ``count`` tagged messages, polling worker liveness.

        Messages from other run ids (abandoned rounds on a reused pool)
        are discarded; a worker-reported error or a dead process raises
        :class:`WorkerCrashError` and marks the pool broken.  The raised
        error carries every already-collected ``result`` message as
        ``partial`` (position → result) so lost-chunk recovery can fold
        the survivors exactly once and requeue only what is missing.
        """
        messages: List = []

        def crash(description: str) -> WorkerCrashError:
            self.broken = True
            error = WorkerCrashError(description)
            if want == "result":
                # Salvage stragglers already sitting in the queue —
                # completed chunks a surviving worker delivered between
                # the death and our noticing it.
                while True:
                    try:
                        msg = self._result_q.get_nowait()
                    except _queue.Empty:
                        break
                    if msg[0] == want and msg[1] == run_id:
                        messages.append(msg)
                error.partial = {msg[2]: msg[3] for msg in messages}
            return error

        while len(messages) < count:
            try:
                msg = self._result_q.get(timeout=_POLL)
            except _queue.Empty:
                dead = [proc.pid for proc in self._procs if not proc.is_alive()]
                if dead:
                    raise crash(
                        f"worker process(es) {dead} died while the pool waited "
                        f"for {want!r} messages ({len(messages)}/{count} received)"
                    )
                continue
            kind = msg[0]
            if kind == "error" and msg[1] == run_id:
                raise crash(f"worker {msg[2]} raised during {want!r}:\n{msg[3]}")
            if kind != want or msg[1] != run_id:
                continue  # stale message from an earlier configuration
            messages.append(msg)
        return messages

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "broken" if self.broken else "live"
        return (
            f"WorkerPool(workers={self.workers}, {state}, spawns={self.spawns}, "
            f"program_ships={self.program_ships})"
        )


# -- process-wide shared registry ---------------------------------------------

_SHARED_POOLS: Dict[int, WorkerPool] = {}


def shared_worker_pool(workers: int) -> WorkerPool:
    """The process-wide pool for this worker count (created/replaced lazily).

    Closed or broken registry entries are replaced transparently, so a
    crashed run never wedges later explorations.
    """
    pool = _SHARED_POOLS.get(workers)
    if pool is None or pool.closed or pool.broken:
        pool = _SHARED_POOLS[workers] = WorkerPool(workers)
    return pool


def acquire_pool(workers: int, timeout: Optional[float] = None) -> Tuple[WorkerPool, bool]:
    """Lease the shared pool for this worker count; ``(pool, transient)``.

    When the pool is already leased — concurrent explorers in one
    process, the common case under a service daemon — acquisition
    **waits in FIFO order** instead of falling back to a private
    transient pool: the old fallback silently paid full spawn +
    program-ship cost per concurrent session and broke the
    ``program_ships`` ship-once invariant.  ``transient`` is always
    False now and remains in the signature only for
    :func:`release_pool` symmetry.  A pool that closes or breaks while
    being waited on is replaced transparently; ``timeout`` bounds the
    total wait (:class:`TimeoutError` on expiry).
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        pool = shared_worker_pool(workers)
        remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
        if pool.acquire(timeout=remaining):
            return pool, False
        if not (pool.closed or pool.broken):
            raise TimeoutError(
                f"timed out after {timeout}s waiting for the shared "
                f"{workers}-worker pool lease"
            )
        # Closed/broken while we waited: loop — the registry hands out
        # a replacement.


def release_pool(pool: WorkerPool, transient: bool = False) -> None:
    """Return a lease; transient and broken pools are closed outright."""
    pool.release()
    if transient or pool.broken:
        pool.close()


def close_shared_pools() -> None:
    """Close every registry pool (also runs at interpreter exit)."""
    for pool in list(_SHARED_POOLS.values()):
        pool.close()
    _SHARED_POOLS.clear()


atexit.register(close_shared_pools)
