"""Worker-process half of parallel exploration.

Each worker owns a private :class:`LowLevelEngine` (same program, same
symbolic-variable namespace as the coordinator, an isolated
:class:`ModelCache`) and one :class:`~repro.obs.telemetry.Telemetry`
context whose lane is ``worker-<pid>`` — every counter the engine,
solver and cache increment lands in that one registry.  Per task it
first folds the coordinator's model-cache delta into its cache, then
activates and runs every state in the batch, and returns
terminated-path records, snapshots of the new pending alternates, a
cumulative snapshot of its metrics registry, the trace events recorded
during the batch (worker swimlanes in the Chrome trace), and the cache
entries it discovered since the merge (for the coordinator to fold and
re-broadcast).

Metrics snapshots are cumulative per worker process; the coordinator
keeps the latest snapshot per pid and merges at the end, so batch
boundaries do not double-count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lowlevel.executor import ExecutorConfig, LowLevelEngine
from repro.lowlevel.program import Program
from repro.obs.telemetry import Telemetry
from repro.parallel.snapshot import StateSnapshot, path_record_of, restore_state, snapshot_state
from repro.solver.cache import ModelCache
from repro.solver.csp import CspSolver

_ENGINE: Optional[LowLevelEngine] = None

#: Cumulative count of snapshots this worker has restored.  Restoring
#: consumes a fresh sid for a state that was already counted (as a fork,
#: or as the boot state) wherever it was created, so it is subtracted
#: from the reported states_created to keep the coordinator's total
#: comparable to a serial run.
_RESTORED = 0


@dataclass
class WorkerResult:
    """Everything one worker returns for one batch."""

    pid: int
    records: List = field(default_factory=list)
    pending: List[StateSnapshot] = field(default_factory=list)
    #: verdicts of activation per input state ("sat"/"unsat"/"timeout").
    verdicts: Tuple[str, ...] = ()
    #: cumulative metrics-registry snapshot for this worker process
    #: (``engine.*`` / ``solver.*`` / ``cache.*`` names — one registry).
    metrics: Dict = field(default_factory=dict)
    #: span events recorded during this batch (worker-lane trace slice).
    trace_events: List = field(default_factory=list)
    #: portable cache entries discovered during this batch.
    cache_delta: List = field(default_factory=list)
    #: states this worker has *created* (forks), excluding snapshots it
    #: merely restored — those are counted where they were first created.
    states_created: int = 0


def init_worker(
    program: Program,
    exec_config: ExecutorConfig,
    namespace: str,
    solver_budget: int,
    trace_hlpc: bool = False,
    trace: bool = False,
) -> None:
    """Pool initializer: build this process's engine once."""
    global _ENGINE
    telemetry = Telemetry(enabled=trace, lane=f"worker-{os.getpid()}")
    engine = LowLevelEngine(
        program,
        solver=CspSolver(
            budget=solver_budget,
            cache=ModelCache(registry=telemetry.registry),
            telemetry=telemetry,
        ),
        config=exec_config,
        telemetry=telemetry,
    )
    # All workers and the coordinator must agree on symbolic variable
    # names; override the per-process engine counter namespace.
    engine.namespace = namespace
    if trace_hlpc:
        _attach_hlpc_tracing(engine)
    _ENGINE = engine


def _attach_hlpc_tracing(engine: LowLevelEngine) -> None:
    """Record the (hlpc, opcode) stream per state for coordinator replay."""

    def on_log_pc(state, pc: int, opcode: int) -> None:
        trace = state.meta.get("hl_trace")
        if trace is None:
            trace = state.meta["hl_trace"] = []
        trace.append((pc, opcode))

    def on_fork(parent, child) -> None:
        child.meta = dict(parent.meta)
        trace = child.meta.get("hl_trace")
        if trace is not None:
            child.meta["hl_trace"] = list(trace)

    engine.on_log_pc = on_log_pc
    engine.on_fork = on_fork


def run_batch(task: Tuple[List[StateSnapshot], List]) -> WorkerResult:
    """Run one batch of snapshots; see module docstring for the protocol."""
    global _RESTORED
    snapshots, delta = task
    engine = _ENGINE
    assert engine is not None, "worker used before init_worker ran"
    telemetry = engine.telemetry
    _RESTORED += len(snapshots)
    cache = engine.solver.cache
    with telemetry.span("worker.merge_delta", entries=len(delta)):
        cache.merge(delta)
    mark = cache.journal_mark()

    records: List = []
    pending: List[StateSnapshot] = []
    verdicts: List[str] = []
    with telemetry.span("worker.batch", states=len(snapshots)):
        for snap in snapshots:
            with telemetry.span("snapshot.decode"):
                state = restore_state(snap, engine.program, engine._fresh_sid())
            verdict = engine.activate(state)
            verdicts.append(verdict)
            if verdict != "sat":
                continue
            children = engine.run_path(state)
            with telemetry.span("snapshot.encode", children=len(children)):
                pending.extend(snapshot_state(child) for child in children)
            if state.terminated():
                records.append(path_record_of(state))

    return WorkerResult(
        pid=os.getpid(),
        records=records,
        pending=pending,
        verdicts=tuple(verdicts),
        metrics=telemetry.registry.snapshot(),
        trace_events=telemetry.drain_events(),
        cache_delta=cache.export_delta(mark),
        states_created=engine._next_sid - _RESTORED,
    )
