"""Worker-process half of parallel exploration.

Each pool worker is a persistent process (see
:mod:`repro.parallel.pool`) driven by a small message loop
(:func:`_pool_worker_main`): ``configure`` messages rebuild the
per-process engine for a new run, chunk tasks from the shared
work-stealing queue execute batches of snapshots.  A configured worker
owns a private :class:`LowLevelEngine` (same program image — cached by
content digest across configures — same symbolic-variable namespace as
the coordinator, an isolated :class:`ModelCache`) and one
:class:`~repro.obs.telemetry.Telemetry` context whose lane is
``worker-<pid>``.

Per chunk it folds the coordinator's model-cache delta into its cache
(once per round — rounds re-ship the delta in every chunk so no
cross-queue ordering is needed, and the copies are skipped), activates
and runs every state in the chunk, and returns terminated-path records,
batch-encoded snapshots of the new pending alternates, a cumulative
snapshot of its metrics registry, the trace events recorded during the
chunk, and the cache entries it discovered since the merge.

With high-level tracing on, states carry only the **suffix** of their
(hlpc, opcode) stream since they were last restored (plus the running
path signature); the coordinator grafts suffixes onto its tree instead
of replaying whole traces — see :mod:`repro.parallel.snapshot`.

Metrics snapshots are cumulative per worker process *per configure*;
the coordinator keeps the latest snapshot per pid and merges at the
end, so chunk boundaries do not double-count.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lowlevel.executor import LowLevelEngine
from repro.lowlevel.program import Program
from repro.obs.telemetry import Telemetry
from repro.parallel.snapshot import (
    SnapshotDecoder,
    StateSnapshot,
    path_record_of,
    restore_state,
    snapshot_states,
)
from repro.solver.cache import ModelCache
from repro.solver.csp import CspSolver

_ENGINE: Optional[LowLevelEngine] = None

#: Cumulative count of snapshots this worker has restored since the last
#: configure.  Restoring consumes a fresh sid for a state that was
#: already counted (as a fork, or as the boot state) wherever it was
#: created, so it is subtracted from the reported states_created to keep
#: the coordinator's total comparable to a serial run.
_RESTORED = 0

#: run_id this worker is configured for; tasks tagged otherwise are
#: stale (from an abandoned round on a reused pool) and are dropped.
_RUN_ID: Optional[int] = None

#: last round whose cache delta was merged (every chunk of a round
#: carries the same delta; merge once, skip the copies).
_ROUND_MERGED = -1

#: program images resident in this process, keyed by content digest —
#: what makes the Program ship once per pool instead of once per run.
_PROGRAM_CACHE: Dict[str, Program] = {}

#: per-process chaos-test injector (None in production); rebuilt per
#: configure from the spec's fault plan so injection state resets with
#: the engine.
_FAULTS = None


@dataclass
class WorkerResult:
    """Everything one worker returns for one chunk."""

    pid: int
    records: List = field(default_factory=list)
    pending: List[StateSnapshot] = field(default_factory=list)
    #: verdicts of activation per input state ("sat"/"unsat"/"timeout").
    verdicts: Tuple[str, ...] = ()
    #: cumulative metrics-registry snapshot for this worker process
    #: (``engine.*`` / ``solver.*`` / ``cache.*`` names — one registry).
    metrics: Dict = field(default_factory=dict)
    #: span events recorded during this chunk (worker-lane trace slice).
    trace_events: List = field(default_factory=list)
    #: portable cache entries discovered during this chunk.
    cache_delta: List = field(default_factory=list)
    #: states this worker has *created* (forks), excluding snapshots it
    #: merely restored — those are counted where they were first created.
    states_created: int = 0


def configure_worker(spec: Dict) -> None:
    """Rebuild this process's engine for a new run.

    Resets the expression intern tables and symbolic-variable registry
    (a persistent worker must behave exactly like a fresh process —
    leaked interning across runs would corrupt structural identity) and
    builds a fresh engine/solver/cache/telemetry stack.  The program
    comes from the digest cache; a ``program_blob`` in the spec
    populates it first.
    """
    global _ENGINE, _RESTORED, _RUN_ID, _ROUND_MERGED, _FAULTS
    from repro.faults import make_injector
    from repro.lowlevel.expr import Sym, clear_intern_cache

    clear_intern_cache()
    Sym.reset_registry()
    _FAULTS = make_injector(spec.get("fault_plan"))
    digest = spec["program_digest"]
    blob = spec["program_blob"]
    if blob is not None:
        _PROGRAM_CACHE[digest] = pickle.loads(blob)
    program = _PROGRAM_CACHE[digest]
    telemetry = Telemetry(enabled=spec["trace"], lane=f"worker-{os.getpid()}")
    cache = ModelCache(registry=telemetry.registry)
    persistent_fps = spec.get("persistent_fps")
    if persistent_fps:
        # Entries with these fingerprints were loaded from a persistent
        # store; they arrive via the coordinator's delta broadcasts, and
        # hits on them count as cross-run reuse (cache.cross_run_hits).
        cache.mark_persistent(persistent_fps)
    engine = LowLevelEngine(
        program,
        solver=CspSolver(
            budget=spec["solver_budget"],
            cache=cache,
            telemetry=telemetry,
            deadline_s=spec.get("solver_deadline_s"),
            faults=_FAULTS,
        ),
        config=spec["exec_config"],
        telemetry=telemetry,
    )
    # All workers and the coordinator must agree on symbolic variable
    # names; override the per-process engine counter namespace.
    engine.namespace = spec["namespace"]
    if spec["trace_hlpc"]:
        _attach_hlpc_tracing(engine)
    _ENGINE = engine
    _RESTORED = 0
    _RUN_ID = spec["run_id"]
    _ROUND_MERGED = -1


def _attach_hlpc_tracing(engine: LowLevelEngine) -> None:
    """Maintain the since-restore HLPC suffix and path signature per state.

    Mirrors the coordinator's serial ``_on_log_pc`` for the pieces that
    must travel: ``hl_suffix`` is the (hlpc, opcode) stream since this
    state was last restored (the coordinator grafts it onto its tree),
    ``static_hlpc``/``hl_opcode`` track the current location for the
    CUPA classifiers, and ``hl_sig`` is the running whole-path signature
    (extended identically to serial mode, so high-level path identity is
    exact without ever shipping the full trace).
    """
    from repro.chef.hltree import HighLevelTree

    extend_signature = HighLevelTree.extend_signature

    def on_log_pc(state, pc: int, opcode: int) -> None:
        meta = state.meta
        suffix = meta.get("hl_suffix")
        if suffix is None:
            suffix = meta["hl_suffix"] = []
        suffix.append((pc, opcode))
        meta["static_hlpc"] = pc
        meta["hl_opcode"] = opcode
        meta["hl_sig"] = extend_signature(meta.get("hl_sig", 0), pc)

    def on_fork(parent, child) -> None:
        child.meta = dict(parent.meta)
        suffix = child.meta.get("hl_suffix")
        if suffix is not None:
            child.meta["hl_suffix"] = list(suffix)

    engine.on_log_pc = on_log_pc
    engine.on_fork = on_fork


def run_chunk(snapshots: List[StateSnapshot], delta: List, round_no: int) -> WorkerResult:
    """Run one chunk of snapshots; see module docstring for the protocol."""
    global _RESTORED, _ROUND_MERGED
    engine = _ENGINE
    assert engine is not None, "worker used before configure_worker ran"
    telemetry = engine.telemetry
    cache = engine.solver.cache
    with telemetry.span(
        "worker.merge_delta", entries=len(delta), skipped=round_no == _ROUND_MERGED
    ):
        if round_no != _ROUND_MERGED:
            cache.merge(delta)
            _ROUND_MERGED = round_no
    mark = cache.journal_mark()
    _RESTORED += len(snapshots)

    records: List = []
    children: List = []
    verdicts: List[str] = []
    decoder = SnapshotDecoder()
    with telemetry.span("worker.batch", states=len(snapshots)):
        for snap in snapshots:
            with telemetry.span("snapshot.decode"):
                state = restore_state(
                    snap, engine.program, engine._fresh_sid(), decoder=decoder
                )
            verdict = engine.activate(state)
            verdicts.append(verdict)
            if verdict != "sat":
                continue
            children.extend(engine.run_path(state))
            if state.terminated():
                records.append(path_record_of(state))
    with telemetry.span("snapshot.encode", children=len(children)):
        pending = snapshot_states(children) if children else []

    return WorkerResult(
        pid=os.getpid(),
        records=records,
        pending=pending,
        verdicts=tuple(verdicts),
        metrics=telemetry.registry.snapshot(),
        trace_events=telemetry.drain_events(),
        cache_delta=cache.export_delta(mark),
        states_created=engine._next_sid - _RESTORED,
    )


def _pool_worker_main(worker_index: int, ctrl_q, task_q, result_q) -> None:
    """Persistent worker loop: control messages first, then stolen chunks.

    Control messages (configure/stop) are only ever sent between rounds,
    so checking the private control queue before each blocking task-queue
    poll is enough — no cross-queue ordering is assumed anywhere.
    Exceptions during a chunk are reported as ``("error", ...)`` messages
    (the pool converts them to :class:`WorkerCrashError`); the loop keeps
    running so one bad chunk cannot also hang the round after it.
    """
    while True:
        try:
            msg = ctrl_q.get_nowait()
        except _queue.Empty:
            msg = None
        if msg is not None:
            if msg[0] == "stop":
                return
            if msg[0] == "configure":
                spec = msg[1]
                try:
                    configure_worker(spec)
                    result_q.put(("configured", spec["run_id"], worker_index, os.getpid()))
                except Exception:
                    result_q.put(
                        ("error", spec["run_id"], worker_index, traceback.format_exc())
                    )
            continue
        try:
            task = task_q.get(timeout=0.05)
        except _queue.Empty:
            continue
        _kind, run_id, round_no, position, snapshots, delta, fault_key = task
        if run_id != _RUN_ID:
            continue  # stale task from an abandoned round
        if _FAULTS is not None and _FAULTS.should_kill_task(fault_key):
            _FAULTS.kill_self()  # SIGKILL: no cleanup, no goodbye
        try:
            result = run_chunk(snapshots, delta, round_no)
            result_q.put(("result", run_id, position, result))
        except Exception:
            result_q.put(("error", run_id, worker_index, traceback.format_exc()))
