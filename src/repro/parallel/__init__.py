"""Sharded parallel exploration across worker processes.

The frontier of pending states is read-mostly by design (share-structure
``ConstraintSet`` chains, an engine-wide ``ModelCache``), so it shards:
a coordinator pops batches of pending states, ships them to
``multiprocessing`` workers as portable snapshots, and deterministically
merges the returned path records, new pending states and model-cache
deltas.  See ``docs/architecture.md`` ("Parallel exploration").
"""

from repro.parallel.coordinator import (
    ExploreResult,
    ParallelExplorer,
    PathRecord,
    path_set,
)
from repro.parallel.snapshot import (
    StateSnapshot,
    boot_snapshot,
    path_record_of,
    restore_state,
    snapshot_state,
)

__all__ = [
    "ExploreResult",
    "ParallelExplorer",
    "PathRecord",
    "StateSnapshot",
    "boot_snapshot",
    "path_record_of",
    "path_set",
    "restore_state",
    "snapshot_state",
]
