"""Sharded parallel exploration across worker processes.

The frontier of pending states is read-mostly by design (share-structure
``ConstraintSet`` chains, an engine-wide ``ModelCache``), so it shards:
a coordinator pops batches of pending states, ships them to persistent
pool workers as batch-encoded portable snapshots through a shared
work-stealing task queue, and deterministically merges the returned
path records, new pending states and model-cache deltas.  See
``docs/architecture.md`` ("Parallel exploration").
"""

from repro.parallel.coordinator import (
    ExploreResult,
    ParallelExplorer,
    PathRecord,
    path_set,
)
from repro.parallel.pool import (
    WorkerCrashError,
    WorkerPool,
    acquire_pool,
    close_shared_pools,
    release_pool,
    shared_worker_pool,
)
from repro.parallel.snapshot import (
    SnapshotDecoder,
    StateSnapshot,
    boot_snapshot,
    path_record_of,
    restore_state,
    snapshot_state,
    snapshot_states,
)

__all__ = [
    "ExploreResult",
    "ParallelExplorer",
    "PathRecord",
    "SnapshotDecoder",
    "StateSnapshot",
    "WorkerCrashError",
    "WorkerPool",
    "acquire_pool",
    "boot_snapshot",
    "close_shared_pools",
    "path_record_of",
    "path_set",
    "release_pool",
    "restore_state",
    "shared_worker_pool",
    "snapshot_state",
    "snapshot_states",
]
