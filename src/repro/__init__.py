"""repro — a reproduction of Chef (ASPLOS 2014).

Chef turns a vanilla interpreter into a symbolic execution engine for the
interpreter's language by executing the interpreter itself on a low-level
symbolic execution platform, tracing high-level program locations, and
steering exploration with class-uniform path analysis (CUPA).

Quickstart — the session API (``repro.api``)::

    from repro import ChefConfig, Session, TestCaseFound

    session = Session("minipy", '''
    def check(s):
        if s.find("@") < 3:
            raise ValueError("bad")
        return 1

    data = sym_string("\\x00\\x00\\x00\\x00\\x00")
    print(check(data))
    ''', ChefConfig(strategy="cupa-path", time_budget=5.0))

    for event in session.events():          # or: result = session.run()
        if isinstance(event, TestCaseFound):
            case = event.case
            print(case.input_string("b0"), case.exception_type)

``Session(language, source, config, solver=..., workers=N)`` accepts any
registered guest language (``repro.languages()`` lists them; register
your own with ``repro.register_language``).  The classic facades
(``MiniPyEngine``, ``MiniLuaEngine``, ``SymbolicTestRunner``) remain as
thin wrappers over the same machinery.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.api import (
    BatchMerged,
    BudgetExhausted,
    CheckpointSaved,
    GuestLanguage,
    MetricsUpdated,
    PathCompleted,
    RunFinished,
    Session,
    SessionEvent,
    StateQuarantined,
    SymbolicSession,
    TestCaseFound,
    UnknownLanguageError,
    get_language,
    languages,
    register_language,
)
from repro.chef import (
    Chef,
    ChefConfig,
    InterpreterBuildOptions,
    RunResult,
    TestCase,
    TestSuite,
)
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.interpreters.minilua import MiniLuaEngine
from repro.interpreters.minipy import MiniPyEngine
from repro.obs import Telemetry
from repro.symtest import SymbolicTest, SymbolicTestRunner

__version__ = "1.1.0"

__all__ = [
    "BatchMerged",
    "BudgetExhausted",
    "CheckpointSaved",
    "Chef",
    "ChefConfig",
    "FaultPlan",
    "GuestLanguage",
    "InterpreterBuildOptions",
    "MetricsUpdated",
    "MiniLuaEngine",
    "MiniPyEngine",
    "PathCompleted",
    "ReproError",
    "RunFinished",
    "RunResult",
    "Session",
    "SessionEvent",
    "StateQuarantined",
    "SymbolicSession",
    "SymbolicTest",
    "SymbolicTestRunner",
    "Telemetry",
    "TestCase",
    "TestCaseFound",
    "TestSuite",
    "UnknownLanguageError",
    "__version__",
    "get_language",
    "languages",
    "register_language",
]
