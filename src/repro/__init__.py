"""repro — a reproduction of Chef (ASPLOS 2014).

Chef turns a vanilla interpreter into a symbolic execution engine for the
interpreter's language by executing the interpreter itself on a low-level
symbolic execution platform, tracing high-level program locations, and
steering exploration with class-uniform path analysis (CUPA).

Quickstart::

    from repro import MiniPyEngine, ChefConfig

    engine = MiniPyEngine('''
    def check(s):
        if s.find("@") < 3:
            raise ValueError("bad")
        return 1

    data = sym_string("\\x00\\x00\\x00\\x00\\x00")
    print(check(data))
    ''', ChefConfig(strategy="cupa-path", time_budget=5.0))
    result = engine.run()
    for case in result.hl_test_cases:
        print(case.input_string("b0"), case.exception_type)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.chef import (
    Chef,
    ChefConfig,
    InterpreterBuildOptions,
    RunResult,
    TestCase,
    TestSuite,
)
from repro.errors import ReproError
from repro.interpreters.minilua import MiniLuaEngine
from repro.interpreters.minipy import MiniPyEngine
from repro.symtest import SymbolicTest, SymbolicTestRunner

__version__ = "1.0.0"

__all__ = [
    "Chef",
    "ChefConfig",
    "InterpreterBuildOptions",
    "MiniLuaEngine",
    "MiniPyEngine",
    "ReproError",
    "RunResult",
    "SymbolicTest",
    "SymbolicTestRunner",
    "TestCase",
    "TestSuite",
    "__version__",
]
