"""Deterministic fault injection for chaos-testing the engine.

A :class:`FaultPlan` is a small frozen (picklable) description of the
faults one run should suffer: kill the worker that picks up a given
chunk, wedge or fail solver queries, tear the tail off checkpoint/cache
writes, drop service connections mid-stream.  Plans travel inside the
worker-pool configure spec, so every process of a run injects from the
same schedule — the faults fire at deterministic points in the *work
stream* (task keys, query ordinals, write ordinals), never from timers,
which is what lets the chaos suite assert exact counter values and
path-multiset equality against uninjected runs.

Runtime state (how many queries seen, truncations left, connections
dropped) lives in a per-process :class:`FaultInjector` built from the
plan by :func:`make_injector`.  Every hook site in the engine is
guarded by ``if injector is not None`` — with no plan configured the
hooks cost one attribute check and nothing rides the wire.

``from_seed`` derives a plan pseudo-randomly from an integer seed so
chaos tests can sweep schedules while staying reproducible.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import SolverTimeout

__all__ = ["FaultInjector", "FaultPlan", "make_injector"]


@dataclass(frozen=True)
class FaultPlan:
    """One run's deterministic fault schedule (picklable, immutable).

    All fields default to "no fault"; a default-constructed plan is
    indistinguishable from running without one.
    """

    #: seed the plan was derived from (provenance only; the schedule
    #: below is what actually fires).
    seed: int = 0

    # -- worker kills ---------------------------------------------------------
    #: SIGKILL the worker that picks up task ``(round_no, chunk_index)``
    #: — the *original* round/chunk key, stable across requeues.
    kill_chunk: Optional[Tuple[int, int]] = None
    #: kill while the task's requeue attempt is below this count, so a
    #: state can crash its worker repeatedly (quarantine testing).
    kill_attempts: int = 1

    # -- solver ---------------------------------------------------------------
    #: from this per-process query ordinal on (0-based), every query
    #: sleeps ``wedge_seconds`` before solving — a wedged backend.
    wedge_from_query: Optional[int] = None
    #: how long a wedged query stalls (pair with a per-query deadline
    #: shorter than this to exercise graceful degradation).
    wedge_seconds: float = 0.25
    #: raise an injected :class:`~repro.errors.SolverTimeout` on every
    #: Nth query (1-based modulus; None = never).
    fail_query_every: Optional[int] = None

    # -- torn writes ----------------------------------------------------------
    #: chop this many bytes off the end of a checkpoint/cache file
    #: right after it is written (0 = no tearing).
    truncate_tail_bytes: int = 0
    #: how many writes to tear before the fault burns out.
    truncate_writes: int = 1

    # -- service --------------------------------------------------------------
    #: drop the client connection after streaming this many event lines.
    drop_connection_after_events: Optional[int] = None
    #: how many connections to drop before the fault burns out.
    drop_connections: int = 1

    @classmethod
    def from_seed(cls, seed: int, **overrides) -> "FaultPlan":
        """Pseudo-random plan derived from ``seed`` (reproducible).

        Picks a kill point in the first few rounds/chunks; explicit
        keyword overrides win over the derived values.
        """
        rng = random.Random(seed)
        derived = dict(
            seed=seed,
            kill_chunk=(rng.randrange(0, 2), rng.randrange(0, 4)),
        )
        derived.update(overrides)
        return cls(**derived)

    @property
    def is_noop(self) -> bool:
        return (
            self.kill_chunk is None
            and self.wedge_from_query is None
            and self.fail_query_every is None
            and self.truncate_tail_bytes == 0
            and self.drop_connection_after_events is None
        )


class FaultInjector:
    """Per-process mutable runtime of a :class:`FaultPlan`.

    One injector per process per configure; counters (queries seen,
    truncations left, connections dropped) reset when the worker is
    reconfigured, matching the fresh-engine-per-run contract.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._queries = 0
        self._truncations_left = plan.truncate_writes
        self._drops_left = plan.drop_connections

    # -- worker kills ---------------------------------------------------------

    def should_kill_task(self, fault_key: Optional[Tuple[int, int, int]]) -> bool:
        """True when the worker picking up ``fault_key`` must die.

        ``fault_key`` is ``(original_round, original_chunk, attempt)``;
        requeued work keeps its original round/chunk coordinates so the
        kill point is stable under recovery, and ``attempt`` lets the
        plan spare (or keep killing) the requeue.
        """
        plan = self.plan
        if plan.kill_chunk is None or fault_key is None:
            return False
        round_no, chunk_index, attempt = fault_key
        return (
            (round_no, chunk_index) == plan.kill_chunk
            and attempt < plan.kill_attempts
        )

    def kill_self(self) -> None:
        """SIGKILL the current process — an abrupt, unhandlable crash."""
        os.kill(os.getpid(), signal.SIGKILL)

    # -- solver ---------------------------------------------------------------

    def on_solver_query(self) -> None:
        """Hook at the head of every solver query; may stall or raise.

        A wedge stalls the query (the caller's per-query deadline is
        what turns the stall into a graceful ``unknown``); an injected
        failure raises :class:`~repro.errors.SolverTimeout`, which the
        backend already maps to ``unknown``.
        """
        plan = self.plan
        ordinal = self._queries
        self._queries += 1
        if (
            plan.fail_query_every is not None
            and plan.fail_query_every > 0
            and (ordinal + 1) % plan.fail_query_every == 0
        ):
            raise SolverTimeout(
                f"injected solver failure (query #{ordinal}, plan seed {plan.seed})"
            )
        if plan.wedge_from_query is not None and ordinal >= plan.wedge_from_query:
            time.sleep(plan.wedge_seconds)

    # -- torn writes ----------------------------------------------------------

    def maybe_truncate(self, path: str) -> bool:
        """Tear ``truncate_tail_bytes`` off the end of ``path``.

        Returns True when the file was torn; the fault burns out after
        ``truncate_writes`` applications.
        """
        plan = self.plan
        if plan.truncate_tail_bytes <= 0 or self._truncations_left <= 0:
            return False
        try:
            size = os.path.getsize(path)
        except OSError:
            return False
        self._truncations_left -= 1
        with open(path, "r+b") as handle:
            handle.truncate(max(0, size - plan.truncate_tail_bytes))
        return True

    # -- service --------------------------------------------------------------

    def should_drop_connection(self, events_sent: int) -> bool:
        """True when the daemon must drop the client after this event."""
        plan = self.plan
        if plan.drop_connection_after_events is None or self._drops_left <= 0:
            return False
        if events_sent >= plan.drop_connection_after_events:
            self._drops_left -= 1
            return True
        return False


def make_injector(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Injector for ``plan``; None for no plan or a no-op plan.

    Returning None is what makes every hook site zero-cost in the
    common case — the engine checks ``injector is not None`` and never
    touches the plan.
    """
    if plan is None or plan.is_noop:
        return None
    return FaultInjector(plan)


def strip_noop(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Normalise a no-op plan to None (keeps wire specs minimal)."""
    if plan is None or plan.is_noop:
        return None
    return plan
