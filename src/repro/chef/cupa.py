"""Class-Uniform Path Analysis (CUPA) — §3.2 and Fig. 5 of the paper.

CUPA organises the pending-state queue into a hierarchy of partitions.
Level *i* groups states by a classification function ``h_i``; selecting a
state performs a random descent: pick a class at each level (uniformly by
default, or by a per-level weight function), then pick a state in the
reached leaf.  States from prolific fork sites therefore stop dominating
selection: a class containing one state is as likely as one with hundreds.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

Classifier = Callable[[object], object]
WeightFn = Callable[[object, int], float]


class _Level:
    __slots__ = ("classes",)

    def __init__(self):
        self.classes: Dict[object, object] = {}


class CupaTree:
    """N-level CUPA partition tree holding pending states."""

    def __init__(
        self,
        classifiers: List[Classifier],
        rng: random.Random,
        weight_fns: Optional[List[Optional[WeightFn]]] = None,
    ):
        if not classifiers:
            raise ValueError("CUPA requires at least one classification level")
        self._classifiers = classifiers
        self._rng = rng
        self._weight_fns: List[Optional[WeightFn]] = (
            list(weight_fns) if weight_fns else [None] * len(classifiers)
        )
        if len(self._weight_fns) != len(classifiers):
            raise ValueError("one weight function slot per level required")
        self._root = _Level()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, state) -> None:
        node = self._root
        for index, classify in enumerate(self._classifiers):
            key = classify(state)
            if index == len(self._classifiers) - 1:
                leaf = node.classes.setdefault(key, [])
                leaf.append(state)
            else:
                node = node.classes.setdefault(key, _Level())
        self._size += 1

    def select(self) -> Optional[object]:
        """Random descent; removes and returns the selected state."""
        if self._size == 0:
            return None
        path: List[tuple] = []
        node = self._root
        for level_index in range(len(self._classifiers)):
            keys = [k for k, v in node.classes.items() if _subtree_size(v) > 0]
            if not keys:
                return None
            weight_fn = self._weight_fns[level_index]
            if weight_fn is None:
                key = self._rng.choice(sorted(keys, key=repr))
            else:
                ordered = sorted(keys, key=repr)
                weights = [max(weight_fn(k, level_index), 1e-12) for k in ordered]
                key = self._rng.choices(ordered, weights=weights, k=1)[0]
            path.append((node, key))
            node = node.classes[key]
        leaf: List = node  # type: ignore[assignment]
        state = leaf.pop(self._rng.randrange(len(leaf)))
        self._size -= 1
        self._prune(path)
        return state

    def select_weighted_leaf(self, leaf_weight: Callable[[object], float]) -> Optional[object]:
        """Like :meth:`select` but leaf states are weighted (fork weight)."""
        if self._size == 0:
            return None
        path: List[tuple] = []
        node = self._root
        for level_index in range(len(self._classifiers)):
            keys = [k for k, v in node.classes.items() if _subtree_size(v) > 0]
            if not keys:
                return None
            weight_fn = self._weight_fns[level_index]
            ordered = sorted(keys, key=repr)
            if weight_fn is None:
                key = self._rng.choice(ordered)
            else:
                weights = [max(weight_fn(k, level_index), 1e-12) for k in ordered]
                key = self._rng.choices(ordered, weights=weights, k=1)[0]
            path.append((node, key))
            node = node.classes[key]
        leaf: List = node  # type: ignore[assignment]
        weights = [max(leaf_weight(s), 1e-12) for s in leaf]
        index = self._rng.choices(range(len(leaf)), weights=weights, k=1)[0]
        state = leaf.pop(index)
        self._size -= 1
        self._prune(path)
        return state

    def _prune(self, path: List[tuple]) -> None:
        for node, key in reversed(path):
            child = node.classes[key]
            if _subtree_size(child) == 0:
                del node.classes[key]

    def states(self) -> List[object]:
        """All pending states (diagnostics)."""
        result: List[object] = []

        def walk(node) -> None:
            if isinstance(node, list):
                result.extend(node)
                return
            for child in node.classes.values():
                walk(child)

        walk(self._root)
        return result


def _subtree_size(node) -> int:
    if isinstance(node, list):
        return len(node)
    return sum(_subtree_size(child) for child in node.classes.values())
