"""Interpreter build options and engine configuration.

The paper's §4.2 optimizations are *compile-time* interpreter variants
(conditional compilation behind a ``--with-symbex`` configure flag).  Here
they are flag words written into the interpreter's static data segment
before boot; the Clay interpreters read them through dedicated globals.
Figure 11/12 benches ablate them cumulatively in the paper's order:

    no optimizations
    + symbolic pointer avoidance   (upper-bound malloc, interning off)
    + hash neutralization
    + fast-path elimination
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class InterpreterBuildOptions:
    """Which symbolic-execution-friendly interpreter build to run."""

    #: concretise allocation sizes via upper_bound() and disable interning.
    symbolic_pointer_avoidance: bool = False
    #: replace string/int hash functions with a constant.
    hash_neutralization: bool = False
    #: remove short-circuit fast paths (length checks, early returns).
    fast_path_elimination: bool = False

    @classmethod
    def vanilla(cls) -> "InterpreterBuildOptions":
        return cls()

    @classmethod
    def full(cls) -> "InterpreterBuildOptions":
        return cls(
            symbolic_pointer_avoidance=True,
            hash_neutralization=True,
            fast_path_elimination=True,
        )

    @classmethod
    def cumulative(cls, level: int) -> "InterpreterBuildOptions":
        """Build at cumulative optimization ``level`` 0..3 (Fig. 11 order)."""
        if not 0 <= level <= 3:
            raise ValueError(f"cumulative level must be 0..3, got {level}")
        return cls(
            symbolic_pointer_avoidance=level >= 1,
            hash_neutralization=level >= 2,
            fast_path_elimination=level >= 3,
        )

    @classmethod
    def cumulative_labels(cls) -> Dict[int, str]:
        return {
            0: "No Optimizations",
            1: "+ Symbolic Pointer Avoidance",
            2: "+ Hash Neutralization",
            3: "+ Fast Path Elimination",
        }

    def with_(self, **kwargs) -> "InterpreterBuildOptions":
        return replace(self, **kwargs)

    def as_flag_words(self) -> Dict[str, int]:
        """Global-name → value map consumed by the interpreter images."""
        return {
            "opt_symptr": int(self.symbolic_pointer_avoidance),
            "opt_hash_neutral": int(self.hash_neutralization),
            "opt_fastpath_elim": int(self.fast_path_elimination),
        }


@dataclass
class ChefConfig:
    """Configuration of one Chef run."""

    #: "random" (baseline), "cupa-path" (§3.3) or "cupa-cov" (§3.4).
    strategy: str = "cupa-path"
    #: RNG seed for the state-selection strategy.
    seed: int = 0
    #: wall-clock budget for the whole run, in seconds.
    time_budget: float = 10.0
    #: stop after this many completed low-level paths (0 = unlimited).
    max_ll_paths: int = 0
    #: stop after this many distinct high-level paths (0 = unlimited).
    max_hl_paths: int = 0
    #: per-path executed instruction budget (hang proxy; paper uses 60 s).
    path_instr_budget: int = 400_000
    #: solver search budget in steps.
    solver_budget: int = 12_000
    #: interpreter build to execute.
    interpreter_options: InterpreterBuildOptions = field(
        default_factory=InterpreterBuildOptions.full
    )
    #: de-emphasis factor for earlier forks in coverage CUPA (§3.4).
    fork_weight_p: float = 0.75
    #: sample interval (in completed ll paths) for the Fig. 10 time series.
    sample_every: int = 1
    #: worker processes for frontier exploration (1 = classic in-process
    #: loop; >1 shards pending states across a parallel worker pool).
    workers: int = 1
    #: states shipped per worker per round in parallel mode.
    worker_batch: int = 8
    #: record tracing spans (Chrome-trace export, per-phase histograms).
    #: Metrics counters are always on; this gates only the tracer.
    trace: bool = False
    #: path of a disk-backed model-cache journal
    #: (:class:`~repro.solver.cache.PersistentCacheStore`): loaded when
    #: the run starts, appended when it finishes, so component verdicts
    #: carry across runs (and across service tenants).  Cross-run hits
    #: require a deterministic symbolic namespace — fingerprints embed
    #: variable names (the service derives one from the program digest).
    cache_store: Optional[str] = None
    #: directory for crash-consistent campaign checkpoints (None = off).
    #: A SIGKILLed run resumes from ``<dir>/campaign.ckpt`` via
    #: ``Session.resume`` and completes the identical path multiset.
    checkpoint_dir: Optional[str] = None
    #: checkpoint cadence, in completed frontier rounds/paths.
    checkpoint_every: int = 4
    #: per-query wall-clock solver deadline in seconds (None = no
    #: deadline).  An over-deadline query returns *unknown* instead of
    #: hanging the run; counted under ``solver.deadline_unknowns``.
    solver_deadline_s: Optional[float] = None
    #: what to do with a pending state whose feasibility check came back
    #: unknown: "prune" drops it (sound for coverage, may miss paths),
    #: "feasible" optimistically activates it under its seed assignment.
    unknown_policy: str = "prune"
    #: deterministic fault-injection plan (:class:`repro.faults.FaultPlan`)
    #: for chaos tests; None or a no-op plan costs nothing.
    fault_plan: Optional[object] = None
    #: worker crashes blamed on one state before it is quarantined.
    quarantine_threshold: int = 3
    #: extra metadata carried into results (benchmarks stamp configs here).
    tags: Optional[Dict[str, str]] = None
