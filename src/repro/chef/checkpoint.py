"""Crash-consistent campaign checkpoints: persist frontier + tree + suite.

A checkpoint is everything a new process needs to continue an
interrupted Chef run and finish the *identical path multiset* (for
exhaustive runs — exploration order after resume is not preserved, the
set of reachable paths is):

- the program image and :class:`~repro.chef.options.ChefConfig`,
- the high-level execution tree and CFG (pickled wholesale, so the
  node ids anchoring pending snapshots stay valid across the resume),
- the test suite so far (path constraints stripped — they share
  interned expression structure that must not leak across processes;
  resumed streams re-emit the checkpointed path events from these),
- the pending frontier as batch-encoded
  :class:`~repro.parallel.snapshot.StateSnapshot` images, and
- the strategy RNG state and run counters.

The model-cache journal is *not* duplicated here: runs with
``checkpoint_dir`` set journal their cache to
``<dir>/model-cache.store`` through the torn-write-tolerant
:class:`~repro.solver.cache.PersistentCacheStore` framing, and resume
reloads it the same way any ``cache_store`` run would.

On-disk format mirrors the cache store: a magic header followed by
length-prefixed pickled frames, each ``(MAGIC, kind, payload)``.  Saves
go through a temp file + ``fsync`` + atomic rename, so a crash mid-save
leaves the previous checkpoint intact; loads recover the longest valid
frame prefix of a torn file and count the damage under
``checkpoint.corrupt_frames_skipped``.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

MAGIC = "repro-ckpt/1"
CHECKPOINT_NAME = "campaign.ckpt"
CACHE_STORE_NAME = "model-cache.store"

_LEN = struct.Struct(">Q")


def checkpoint_path(directory: str) -> str:
    return os.path.join(directory, CHECKPOINT_NAME)


def cache_store_path(directory: str) -> str:
    return os.path.join(directory, CACHE_STORE_NAME)


@dataclass
class Checkpoint:
    """In-memory image of one persisted campaign checkpoint."""

    config: Any  # ChefConfig (fault_plan stripped)
    namespace: str
    program_blob: bytes
    rng_state: Any
    ll_paths: int
    tree: Any  # HighLevelTree
    cfg: Any  # HighLevelCfg
    timeline: List[Tuple[float, int, int]] = field(default_factory=list)
    cases: List[Any] = field(default_factory=list)  # TestCase, constraints stripped
    frontier: List[Any] = field(default_factory=list)  # StateSnapshot
    #: torn/corrupt frames skipped while loading (0 for a clean file).
    corrupt_frames_skipped: int = 0


def _portable_case(case) -> Any:
    """Strip the non-portable constraint chain off a test case."""
    if getattr(case, "path_constraints", None) is None:
        return case
    return dataclasses.replace(case, path_constraints=None)


def save_checkpoint(
    directory: str,
    *,
    config,
    namespace: str,
    program_blob: bytes,
    rng_state,
    ll_paths: int,
    tree,
    cfg,
    timeline,
    cases,
    frontier,
    faults=None,
) -> str:
    """Atomically write ``<directory>/campaign.ckpt``; returns its path.

    Frames are written smallest-scope first (meta, tree, cases,
    frontier) so a torn tail costs the newest data, never the run
    identity.  ``faults`` is a chaos-test injector whose
    ``maybe_truncate`` hook fires after the rename (to exercise the
    torn-tail loader); production passes None.
    """
    os.makedirs(directory, exist_ok=True)
    path = checkpoint_path(directory)
    tmp = path + ".tmp"
    config = dataclasses.replace(config, fault_plan=None)
    frames = [
        (
            "meta",
            {
                "config": config,
                "namespace": namespace,
                "program_blob": program_blob,
                "rng_state": rng_state,
                "ll_paths": ll_paths,
                "timeline": list(timeline),
            },
        ),
        ("tree", {"tree": tree, "cfg": cfg}),
        ("cases", [_portable_case(c) for c in cases]),
        ("frontier", list(frontier)),
    ]
    with open(tmp, "wb") as fh:
        for kind, payload in frames:
            blob = pickle.dumps((MAGIC, kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
            fh.write(_LEN.pack(len(blob)) + blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    if faults is not None:
        faults.maybe_truncate(path)
    return path


def load_checkpoint(path: str) -> Checkpoint:
    """Load a checkpoint, recovering the longest valid frame prefix.

    A torn or corrupt frame ends the scan (frames are dependent in
    order, unlike cache-store frames); everything read up to it is
    returned, with the damage counted in ``corrupt_frames_skipped``.
    Raises ``FileNotFoundError`` if there is no checkpoint and
    ``ValueError`` if not even the meta frame is recoverable.
    """
    sections: Dict[str, Any] = {}
    skipped = 0
    with open(path, "rb") as fh:
        while True:
            header = fh.read(_LEN.size)
            if not header:
                break
            if len(header) < _LEN.size:
                skipped += 1
                break
            (length,) = _LEN.unpack(header)
            blob = fh.read(length)
            if len(blob) < length:
                skipped += 1
                break
            try:
                record = pickle.loads(blob)
            except Exception:
                skipped += 1
                break
            if (
                not isinstance(record, tuple)
                or len(record) != 3
                or record[0] != MAGIC
            ):
                skipped += 1
                break
            _magic, kind, payload = record
            sections[kind] = payload
    meta = sections.get("meta")
    if meta is None:
        raise ValueError(f"checkpoint {path!r} has no recoverable meta frame")
    tree_section = sections.get("tree") or {}
    return Checkpoint(
        config=meta["config"],
        namespace=meta["namespace"],
        program_blob=meta["program_blob"],
        rng_state=meta["rng_state"],
        ll_paths=meta["ll_paths"],
        timeline=meta["timeline"],
        tree=tree_section.get("tree"),
        cfg=tree_section.get("cfg"),
        cases=sections.get("cases", []),
        frontier=sections.get("frontier", []),
        corrupt_frames_skipped=skipped,
    )


def has_checkpoint(directory: str) -> bool:
    return os.path.exists(checkpoint_path(directory))
