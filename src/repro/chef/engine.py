"""The Chef engine loop: drive the LVM, trace HLPCs, select with CUPA.

This is the architecture of Fig. 4: the low-level engine executes the
interpreter; ``log_pc`` hypercalls stream high-level locations into the
high-level execution tree and CFG; a state-selection strategy (random or
CUPA) picks the next pending alternate state; each completed low-level
path yields a concrete test case, and the first path to exercise a new
high-level path yields a *high-level* test case.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.api.events import (
    BatchMerged,
    BudgetExhausted,
    CheckpointSaved,
    MetricsUpdated,
    PathCompleted,
    RunFinished,
    SessionEvent,
    StateQuarantined,
    TestCaseFound,
)
from repro.faults import make_injector
from repro.chef.hltree import HighLevelCfg, HighLevelTree
from repro.chef.options import ChefConfig
from repro.chef.strategies import make_strategy
from repro.chef.testcase import TestCase, TestSuite
from repro.lowlevel import api
from repro.lowlevel.executor import (
    DISCARDED_STATUSES as _DISCARDED_STATUSES,
    ExecutorConfig,
    LowLevelEngine,
    State,
)
from repro.lowlevel.machine import Status
from repro.lowlevel.program import Program
from repro.obs.metrics import split_prefixed
from repro.obs.telemetry import Telemetry
from repro.solver.backend import SolverBackend
from repro.solver.csp import make_default_solver


@dataclass
class RunResult:
    """Everything a benchmark needs from one Chef run."""

    suite: TestSuite
    hl_paths: int
    ll_paths: int
    duration: float
    #: (seconds, hl_paths_so_far, ll_paths_so_far) samples (Fig. 10).
    timeline: List[Tuple[float, int, int]] = field(default_factory=list)
    engine_stats: Dict[str, int] = field(default_factory=dict)
    solver_stats: Dict[str, int] = field(default_factory=dict)
    cfg_nodes: int = 0
    cfg_edges: int = 0
    tree_nodes: int = 0
    pending_left: int = 0
    states_created: int = 0
    tags: Dict[str, str] = field(default_factory=dict)

    @property
    def hl_test_cases(self) -> List[TestCase]:
        return self.suite.high_level_tests()

    def hl_to_ll_ratio(self) -> float:
        return self.hl_paths / self.ll_paths if self.ll_paths else 0.0


class _PendingHandle:
    """Strategy-facing stand-in for a pending state held as a snapshot.

    Exposes exactly the attributes the CUPA classifiers and weight
    functions read (``meta``, ``fork_ll_pc``, ``fork_group``,
    ``fork_index``, ``depth``); the snapshot itself is what gets shipped
    to a worker when the strategy selects this handle.
    """

    __slots__ = ("snapshot", "meta", "fork_ll_pc", "fork_group", "fork_index", "depth")

    def __init__(self, snapshot, meta, fork_group):
        self.snapshot = snapshot
        self.meta = meta
        self.fork_ll_pc = snapshot.fork_ll_pc
        self.fork_group = fork_group
        self.fork_index = snapshot.fork_index
        self.depth = snapshot.depth


class Chef:
    """Language-agnostic Chef engine over a prepared interpreter program.

    ``program`` must be a finalized LIR program whose static data already
    contains the interpreter's high-level program image and build-option
    flag words (the interpreter engines in
    :mod:`repro.interpreters` take care of that).
    """

    def __init__(
        self,
        program: Program,
        config: Optional[ChefConfig] = None,
        solver: Optional[SolverBackend] = None,
        telemetry: Optional[Telemetry] = None,
        worker_pool=None,
    ):
        self.config = config if config is not None else ChefConfig()
        #: optional externally-owned :class:`~repro.parallel.pool.WorkerPool`
        #: for parallel mode; by default the process-wide shared pool is
        #: leased per run (and kept warm between runs).
        self.worker_pool = worker_pool
        #: the engine-wide observability context, threaded through the
        #: solver, the low-level engine and (in parallel mode) the
        #: worker pool.  ``config.trace`` turns the span tracer on.
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(enabled=self.config.trace)
        )
        self._faults = make_injector(self.config.fault_plan)
        self.solver: SolverBackend = solver if solver is not None else make_default_solver(
            budget=self.config.solver_budget,
            telemetry=self.telemetry,
            deadline_s=self.config.solver_deadline_s,
            faults=self._faults,
        )
        self.tree = HighLevelTree()
        self.cfg = HighLevelCfg()
        self.ll = LowLevelEngine(
            program,
            solver=self.solver,
            config=ExecutorConfig(
                max_instrs_per_path=self.config.path_instr_budget,
                unknown_policy=self.config.unknown_policy,
            ),
            telemetry=self.telemetry,
        )
        self.ll.on_log_pc = self._on_log_pc
        self.ll.on_fork = self._on_fork
        self.ll.on_path_end = self._on_path_end
        self._rng = random.Random(self.config.seed)
        self.strategy = make_strategy(
            self.config.strategy, self._rng, self.cfg, self.config.fork_weight_p
        )
        self.suite = TestSuite()
        self._timeline: List[Tuple[float, int, int]] = []
        self._start_time = 0.0
        self._ll_paths = 0
        #: session events accumulated since the last stream() flush.
        self._event_buffer: List[SessionEvent] = []
        #: pending frontier restored from a checkpoint (None = fresh run).
        self._resume_frontier: Optional[List] = None
        self._program_blob_cache: Optional[bytes] = None

    # -- checkpoint / resume ----------------------------------------------------

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        telemetry: Optional[Telemetry] = None,
        worker_pool=None,
        **config_overrides,
    ) -> "Chef":
        """Rebuild an interrupted campaign from ``<dir>/campaign.ckpt``.

        The resumed engine re-emits the checkpointed path events at the
        head of its stream, so for exhaustive runs the resumed stream's
        path-event multiset equals the uninterrupted run's.
        ``config_overrides`` patch the persisted :class:`ChefConfig`
        (e.g. a fresh ``time_budget``).
        """
        import dataclasses as _dc
        import pickle as _pickle

        from repro.chef.checkpoint import load_checkpoint

        ckpt = load_checkpoint(path)
        config = ckpt.config
        if config_overrides:
            config = _dc.replace(config, **config_overrides)
        program = _pickle.loads(ckpt.program_blob)
        chef = cls(program, config=config, telemetry=telemetry, worker_pool=worker_pool)
        chef._seed_from_checkpoint(ckpt)
        return chef

    def _seed_from_checkpoint(self, ckpt) -> None:
        """Adopt a loaded :class:`~repro.chef.checkpoint.Checkpoint`."""
        if ckpt.tree is not None:
            self.tree = ckpt.tree
        if ckpt.cfg is not None:
            self.cfg = ckpt.cfg
        try:
            self._rng.setstate(ckpt.rng_state)
        except (TypeError, ValueError):
            pass  # fresh seed; selection order shifts, the path set doesn't
        # The strategy was built against the pre-resume cfg/rng objects.
        self.strategy = make_strategy(
            self.config.strategy, self._rng, self.cfg, self.config.fork_weight_p
        )
        self.ll.namespace = ckpt.namespace
        self._ll_paths = ckpt.ll_paths
        self._timeline = list(ckpt.timeline)
        self.suite = TestSuite()
        for case in ckpt.cases:
            self.suite.add(case)
            if ckpt.tree is None:
                # Tree frame was torn off: re-derive recorded-path state
                # so post-resume new_hl verdicts stay correct.
                self.tree.record_path(case.hl_path_signature)
            self._event_buffer.append(PathCompleted(case=case))
            if case.new_hl_path:
                self._event_buffer.append(TestCaseFound(case=case))
        self._resume_frontier = list(ckpt.frontier)
        registry = self.telemetry.registry
        registry.counter("checkpoint.resumes").inc()
        if ckpt.corrupt_frames_skipped:
            registry.counter("checkpoint.corrupt_frames_skipped").inc(
                ckpt.corrupt_frames_skipped
            )

    def _effective_cache_store(self) -> Optional[str]:
        """Model-cache journal path: explicit store, else checkpoint dir."""
        if self.config.cache_store:
            return self.config.cache_store
        if self.config.checkpoint_dir:
            import os as _os

            from repro.chef.checkpoint import cache_store_path

            _os.makedirs(self.config.checkpoint_dir, exist_ok=True)
            return cache_store_path(self.config.checkpoint_dir)
        return None

    def _program_blob(self) -> bytes:
        if self._program_blob_cache is None:
            import pickle as _pickle

            self._program_blob_cache = _pickle.dumps(self.ll.program)
        return self._program_blob_cache

    def _save_checkpoint(self, frontier_snaps: List) -> None:
        """Write one crash-consistent checkpoint and emit its event."""
        from repro.chef.checkpoint import save_checkpoint

        with self.telemetry.span(
            "chef.checkpoint", frontier=len(frontier_snaps), cases=len(self.suite.cases)
        ):
            path = save_checkpoint(
                self.config.checkpoint_dir,
                config=self.config,
                namespace=self.ll.namespace,
                program_blob=self._program_blob(),
                rng_state=self._rng.getstate(),
                ll_paths=self._ll_paths,
                tree=self.tree,
                cfg=self.cfg,
                timeline=self._timeline,
                cases=self.suite.cases,
                frontier=frontier_snaps,
                faults=self._faults,
            )
        registry = self.telemetry.registry
        registry.counter("checkpoint.saves").inc()
        registry.counter("checkpoint.frontier_states").inc(len(frontier_snaps))
        self._event_buffer.append(
            CheckpointSaved(
                path=path, frontier=len(frontier_snaps), cases=len(self.suite.cases)
            )
        )

    # -- listener hooks -------------------------------------------------------

    def _on_log_pc(self, state: State, pc: int, opcode: int) -> None:
        meta = state.meta
        prev = meta.get("static_hlpc")
        prev_op = meta.get("hl_opcode")
        self.cfg.observe(prev, prev_op, pc, opcode)
        meta["static_hlpc"] = pc
        meta["hl_opcode"] = opcode
        meta["dyn_node"] = self.tree.advance(meta.get("dyn_node", HighLevelTree.ROOT), pc)
        meta["hl_sig"] = HighLevelTree.extend_signature(meta.get("hl_sig", 0), pc)

    def _on_fork(self, parent: State, child: State) -> None:
        child.meta = dict(parent.meta)

    def _on_path_end(self, state: State) -> None:
        if state.machine.status in _DISCARDED_STATUSES:
            return  # don't build inputs/output copies just to drop them
        self._emit_test_case(
            status=state.machine.status,
            inputs=state.input_values(),
            events=((e.kind, e.a, e.b) for e in state.events),
            output=list(state.machine.output),
            hl_instr_count=state.hl_instr_count,
            ll_instr_count=state.instr_count,
            signature=state.meta.get("hl_sig", 0),
            path_constraints=state.path_condition,
        )

    def _emit_test_case(
        self,
        status: str,
        inputs,
        events,
        output,
        hl_instr_count: int,
        ll_instr_count: int,
        signature: int,
        path_constraints,
    ) -> None:
        """Terminal-path processing shared by serial and parallel modes.

        Applies the terminal-status filter, builds the :class:`TestCase`
        and samples the timeline; ``events`` is ``(kind, a, b)`` tuples.
        Keeping this in one place is what keeps ``workers=1`` and
        ``workers=N`` test suites equivalent.
        """
        if status in _DISCARDED_STATUSES:
            return
        self._ll_paths += 1
        new_hl = self.tree.record_path(signature)
        exception_type = None
        for kind, a, _b in events:
            if kind == api.EVENT_UNCAUGHT_EXCEPTION:
                exception_type = a
        case = TestCase(
            test_id=len(self.suite.cases),
            inputs=inputs,
            status=status,
            hl_path_signature=signature,
            new_hl_path=new_hl,
            exception_type=exception_type,
            hang=status == Status.BUDGET_EXCEEDED,
            interpreter_crash=status == Status.FAULT,
            output=output,
            hl_instr_count=hl_instr_count,
            ll_instr_count=ll_instr_count,
            wall_time=time.monotonic() - self._start_time,
            path_constraints=path_constraints,
        )
        self.suite.add(case)
        self._event_buffer.append(PathCompleted(case=case))
        if new_hl:
            self._event_buffer.append(TestCaseFound(case=case))
        if self._ll_paths % max(self.config.sample_every, 1) == 0:
            self._timeline.append(
                (case.wall_time, self.tree.distinct_paths(), self._ll_paths)
            )

    # -- main loop ---------------------------------------------------------------

    def run(self) -> RunResult:
        """Explore until the time/path budget is exhausted."""
        result: Optional[RunResult] = None
        for event in self.stream():
            if isinstance(event, RunFinished):
                result = event.result
        assert result is not None  # stream() always ends with RunFinished
        return result

    def stream(self) -> Iterator[SessionEvent]:
        """Incremental twin of :meth:`run`: yield typed session events.

        Events flush after every completed low-level path (serial mode)
        or after each merged *round* of worker chunks (parallel mode —
        the pool blocks until a round completes, so per-chunk events
        arrive together, in deterministic chunk order); the stream
        always ends with a :class:`RunFinished` carrying the full
        :class:`RunResult`.  The event *multiset* is deterministic
        across worker counts for exhaustive runs — see
        :mod:`repro.api.events`.
        """
        if self.config.workers > 1:
            yield from self._stream_parallel()
            return
        config = self.config
        telemetry = self.telemetry
        self._start_time = time.monotonic()
        self.ll.config.deadline = self._start_time + config.time_budget
        store = None
        store_mark = 0
        cache = getattr(self.solver, "cache", None)
        store_path = self._effective_cache_store()
        if store_path and cache is not None:
            from repro.solver.cache import PersistentCacheStore

            store = PersistentCacheStore(store_path, faults=self._faults)
            with telemetry.span("chef.cache_load", path=store.path):
                store.load_into(cache)
            store_mark = cache.journal_mark()
        if self._resume_frontier is not None:
            from repro.chef.hltree import HighLevelTree as _Tree
            from repro.parallel.snapshot import SnapshotDecoder, restore_state

            decoder = SnapshotDecoder()
            for snap in self._resume_frontier:
                restored = restore_state(
                    snap, self.ll.program, self.ll._fresh_sid(), decoder=decoder
                )
                restored.meta["dyn_node"] = restored.meta.get(
                    "tree_node", _Tree.ROOT
                )
                self.strategy.add(restored)
            self._resume_frontier = None
        else:
            state = self.ll.new_state()
            for child in self.ll.run_path(state):
                self.strategy.add(child)
        yield from self._flush_events()
        exhausted: Optional[str] = None
        metrics_emitted = 0
        ckpt_last = self._ll_paths
        ckpt_every = max(config.checkpoint_every, 1)
        sample_every = max(config.sample_every, 1)
        while True:
            exhausted = self._budget_reason()
            if exhausted is not None:
                break
            with telemetry.span("chef.select", pending=len(self.strategy)):
                candidate = self.strategy.select()
            if candidate is None:
                break
            if self.ll.activate(candidate) != "sat":
                continue
            for child in self.ll.run_path(candidate):
                self.strategy.add(child)
            yield from self._flush_events()
            if self._ll_paths - metrics_emitted >= sample_every:
                metrics_emitted = self._ll_paths
                yield MetricsUpdated(metrics=telemetry.metrics())
            if config.checkpoint_dir and self._ll_paths - ckpt_last >= ckpt_every:
                ckpt_last = self._ll_paths
                yield from self._checkpoint_serial(store, cache, store_mark)
                if store is not None:
                    store_mark = cache.journal_mark()
        if exhausted is not None:
            yield BudgetExhausted(reason=exhausted)
        if store is not None:
            with telemetry.span("chef.cache_flush", path=store.path):
                store.append_from(cache, store_mark)
        duration = time.monotonic() - self._start_time
        self._timeline.append((duration, self.tree.distinct_paths(), self._ll_paths))
        yield MetricsUpdated(metrics=telemetry.metrics())
        yield RunFinished(
            result=RunResult(
                suite=self.suite,
                hl_paths=self.tree.distinct_paths(),
                ll_paths=self._ll_paths,
                duration=duration,
                timeline=list(self._timeline),
                engine_stats=self.ll.stats.as_dict(),
                solver_stats=self._solver_stats(),
                cfg_nodes=self.cfg.node_count(),
                cfg_edges=self.cfg.edge_count(),
                tree_nodes=self.tree.node_count(),
                pending_left=len(self.strategy),
                states_created=self.ll._next_sid,
                tags=dict(config.tags or {}),
            )
        )

    def _flush_events(self) -> List[SessionEvent]:
        events, self._event_buffer = self._event_buffer, []
        return events

    def _checkpoint_serial(self, store, cache, store_mark: int):
        """Serial-mode checkpoint: snapshot the live frontier and persist.

        The strategy is drained and re-fed (selection RNG advances, so
        post-checkpoint exploration *order* can differ from a
        checkpoint-free run; exhaustive path sets do not).
        """
        from repro.chef.hltree import HighLevelTree as _Tree
        from repro.parallel.snapshot import snapshot_states

        if store is not None:
            store.append_from(cache, store_mark)
        states = self.strategy.drain()
        for live in states:
            live.meta["tree_node"] = live.meta.get("dyn_node", _Tree.ROOT)
        snaps = snapshot_states(states) if states else []
        self._save_checkpoint(snaps)
        for live in states:
            self.strategy.add(live)
        return self._flush_events()

    # -- parallel mode ---------------------------------------------------------

    def _stream_parallel(self) -> Iterator[SessionEvent]:
        """Shard the pending-state frontier across pool worker processes.

        Workers run low-level paths and stream back (a) terminated-path
        records carrying their since-restore HLPC *suffixes* and (b)
        snapshots of new pending states.  The coordinator grafts the
        suffixes onto the high-level tree/CFG (the same transitions the
        serial loop feeds incrementally — each transition arrives in
        exactly one suffix), generates test cases, classifies pending
        snapshots for the CUPA/strategy layer in O(suffix) per state,
        and merges model-cache deltas across the pool — all through the
        coordinator's ``on_merge`` hook, which fires per chunk in
        deterministic chunk order (each merge also emits a
        :class:`BatchMerged` event).
        Exploration *order* differs from serial (batching), so
        time-budgeted runs may cover different prefixes; exhaustive
        runs produce the identical path set, hence the identical
        path-event multiset.
        """
        from repro.parallel.coordinator import ParallelExplorer, warn_if_custom_backend
        from repro.parallel.snapshot import boot_snapshot

        warn_if_custom_backend(self.ll.solver)
        config = self.config
        self._start_time = time.monotonic()
        deadline = self._start_time + config.time_budget
        exec_config = ExecutorConfig(
            max_instrs_per_path=config.path_instr_budget,
            deadline=deadline,
            unknown_policy=config.unknown_policy,
        )
        solver_budget = getattr(self.ll.solver, "budget", None)
        if solver_budget is None:
            solver_budget = config.solver_budget
        explorer = ParallelExplorer(
            self.ll.program,
            workers=config.workers,
            config=exec_config,
            solver_budget=solver_budget,
            namespace=self.ll.namespace,
            batch_size=config.worker_batch,
            trace_hlpc=True,
            telemetry=self.telemetry,
            pool=self.worker_pool,
            cache_store=self._effective_cache_store(),
            solver_deadline_s=config.solver_deadline_s,
            fault_plan=config.fault_plan,
            quarantine_threshold=config.quarantine_threshold,
        )
        explorer.on_merge = lambda chunk_index, result: self._merge_chunk(
            explorer.batches, chunk_index, result
        )
        explorer.on_quarantine = lambda snap, crashes: self._event_buffer.append(
            StateQuarantined(
                hlpc=snap.meta.get("static_hlpc", -1), crashes=crashes
            )
        )
        exhausted: Optional[str] = None
        ckpt_every = max(config.checkpoint_every, 1)
        rounds = 0
        with explorer:
            if self._resume_frontier is not None:
                batch = list(self._resume_frontier)
                self._resume_frontier = None
            else:
                batch = [boot_snapshot(self.ll.program)]
            while batch:
                explorer.submit(batch)
                rounds += 1
                yield from self._flush_events()
                yield MetricsUpdated(metrics=explorer.merged_metrics())
                if config.checkpoint_dir and rounds % ckpt_every == 0:
                    explorer.flush_cache_store()
                    handles = self.strategy.drain()
                    self._save_checkpoint([h.snapshot for h in handles])
                    for handle in handles:
                        self.strategy.add(handle)
                    yield from self._flush_events()
                exhausted = self._budget_reason()
                if exhausted is not None:
                    break
                batch = self._pop_pending_batch(config.workers * config.worker_batch)
        yield from self._flush_events()
        if exhausted is not None:
            yield BudgetExhausted(reason=exhausted)
        duration = time.monotonic() - self._start_time
        self._timeline.append((duration, self.tree.distinct_paths(), self._ll_paths))
        merged = explorer.merged_metrics()
        # Fold the pool-wide totals into the engine context: from here on
        # Chef.telemetry.metrics() answers for the whole run, and the
        # legacy RunResult dicts below are prefix views of that snapshot.
        self.telemetry.adopt_snapshot(merged)
        solver_stats = split_prefixed(merged, "solver")
        for key, value in split_prefixed(merged, "cache").items():
            solver_stats[f"cache_{key}"] = value
        yield MetricsUpdated(metrics=self.telemetry.metrics())
        yield RunFinished(
            result=RunResult(
                suite=self.suite,
                hl_paths=self.tree.distinct_paths(),
                ll_paths=self._ll_paths,
                duration=duration,
                timeline=list(self._timeline),
                engine_stats=split_prefixed(merged, "engine"),
                solver_stats=solver_stats,
                cfg_nodes=self.cfg.node_count(),
                cfg_edges=self.cfg.edge_count(),
                tree_nodes=self.tree.node_count(),
                pending_left=len(self.strategy),
                states_created=explorer.states_created(),
                tags=dict(config.tags or {}),
            )
        )

    def _merge_chunk(self, round_no: int, chunk_index: int, result) -> None:
        """Coordinator ``on_merge`` hook: fold one worker chunk in.

        Runs in deterministic chunk order within each round; ingests the
        chunk's terminated-path records (emitting their path events),
        classifies its pending snapshots for the strategy layer, and
        closes the chunk with a :class:`BatchMerged` event.
        """
        for record in result.records:
            self._ingest_record(record)
        with self.telemetry.span("chef.classify", states=len(result.pending)):
            for snap in result.pending:
                self.strategy.add(self._pending_handle(snap, round_no, chunk_index))
        self._event_buffer.append(
            BatchMerged(
                round_no=round_no,
                chunk_index=chunk_index,
                records=len(result.records),
                pending=len(result.pending),
            )
        )

    def _ingest_record(self, record) -> None:
        """Parallel-mode twin of :meth:`_on_path_end`, fed by suffix replay.

        The replay mirrors what :meth:`_on_log_pc` does live in serial
        mode — CFG edges *and* dynamic-tree unfolding — but only over
        the record's since-restore suffix, grafted at ``start_node``:
        the prefix transitions were already ingested when the state that
        executed them terminated (every executed transition belongs to
        exactly one record's suffix, because forked children never
        re-execute their inherited prefix).  The path signature arrives
        precomputed (workers extend it with the serial recurrence), so
        the high-level structures and test suite end up identical; only
        then does the serial status filter decide whether the path
        yields a test case.
        """
        prev = record.start_hlpc
        prev_op = record.start_opcode
        node = record.start_node
        for pc, opcode in record.hl_suffix:
            self.cfg.observe(prev, prev_op, pc, opcode)
            node = self.tree.advance(node, pc)
            prev, prev_op = pc, opcode
        self.telemetry.registry.counter("coordinator.ingest_steps").inc(
            len(record.hl_suffix)
        )
        self._emit_test_case(
            status=record.status,
            inputs={name: list(values) for name, values in record.inputs},
            events=record.events,
            output=list(record.output),
            hl_instr_count=record.hl_instr_count,
            ll_instr_count=record.instr_count,
            signature=record.hl_sig,
            path_constraints=record.path_constraints,
        )

    def _pending_handle(self, snap, round_no: int, chunk_index: int) -> "_PendingHandle":
        """Classify a pending snapshot for the strategy layer.

        Grafts the snapshot's since-restore HLPC suffix onto the
        coordinator's high-level tree starting at the anchor node the
        snapshot was restored under (``meta["tree_node"]``, ROOT for
        boot descendants) — O(suffix length), not O(path depth).  The
        resulting node is stamped back into the snapshot meta as the
        anchor for the *next* hop, and the consumed suffix is dropped,
        so a ship → run → classify cycle never re-walks old transitions.
        ``coordinator.classify_steps`` counts the advances actually
        taken; ``coordinator.classify_full_trace`` counts what a
        full-trace replay would have cost (the state's whole high-level
        instruction count) — the regression gate asserts their ratio.
        Fork groups are remapped with the (round, chunk) origin because
        worker-local parent sids collide across processes.
        """
        meta = dict(snap.meta)
        suffix = meta.pop("hl_suffix", None) or ()
        node = meta.get("tree_node", HighLevelTree.ROOT)
        for pc, _opcode in suffix:
            node = self.tree.advance(node, pc)
        meta["dyn_node"] = node
        registry = self.telemetry.registry
        registry.counter("coordinator.classify_states").inc()
        registry.counter("coordinator.classify_steps").inc(len(suffix))
        registry.counter("coordinator.classify_full_trace").inc(snap.hl_instr_count)
        # Anchor the snapshot for its next restore: the worker will
        # start a fresh suffix from exactly this tree node.
        snap.meta.pop("hl_suffix", None)
        snap.meta["tree_node"] = node
        fork_group = snap.fork_group
        if fork_group is not None:
            fork_group = (round_no, chunk_index) + tuple(fork_group)
        return _PendingHandle(snap, meta, fork_group)

    def _pop_pending_batch(self, limit: int) -> List:
        with self.telemetry.span("chef.select", pending=len(self.strategy), limit=limit):
            batch = []
            while len(batch) < limit:
                handle = self.strategy.select()
                if handle is None:
                    break
                batch.append(handle.snapshot)
        return batch

    def _solver_stats(self) -> Dict[str, int]:
        """Backend counters plus this run's model-cache activity.

        The ``cache_*`` keys come from the telemetry view of the cache
        registry.  Default backends share the process-wide cache, whose
        counters are cumulative across runs; the low-level engine adopts
        that registry with *baseline* semantics, so these are this run's
        deltas — the bespoke snapshot-at-start bookkeeping this method
        used to carry lives in :meth:`Telemetry.adopt_registry` now.
        """
        stats = dict(self.solver.stats.as_dict())
        for key, value in split_prefixed(self.telemetry.metrics(), "cache").items():
            stats[f"cache_{key}"] = value
        return stats

    def _budget_reason(self) -> Optional[str]:
        """Which budget stopped exploration, or None while in budget."""
        config = self.config
        if time.monotonic() - self._start_time >= config.time_budget:
            return "time"
        if config.max_ll_paths and self._ll_paths >= config.max_ll_paths:
            return "ll-paths"
        if config.max_hl_paths and self.tree.distinct_paths() >= config.max_hl_paths:
            return "hl-paths"
        return None
