"""The Chef engine loop: drive the LVM, trace HLPCs, select with CUPA.

This is the architecture of Fig. 4: the low-level engine executes the
interpreter; ``log_pc`` hypercalls stream high-level locations into the
high-level execution tree and CFG; a state-selection strategy (random or
CUPA) picks the next pending alternate state; each completed low-level
path yields a concrete test case, and the first path to exercise a new
high-level path yields a *high-level* test case.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chef.hltree import HighLevelCfg, HighLevelTree
from repro.chef.options import ChefConfig
from repro.chef.strategies import make_strategy
from repro.chef.testcase import TestCase, TestSuite
from repro.lowlevel import api
from repro.lowlevel.executor import ExecutorConfig, LowLevelEngine, State
from repro.lowlevel.machine import Status
from repro.lowlevel.program import Program
from repro.solver.backend import SolverBackend
from repro.solver.csp import make_default_solver


@dataclass
class RunResult:
    """Everything a benchmark needs from one Chef run."""

    suite: TestSuite
    hl_paths: int
    ll_paths: int
    duration: float
    #: (seconds, hl_paths_so_far, ll_paths_so_far) samples (Fig. 10).
    timeline: List[Tuple[float, int, int]] = field(default_factory=list)
    engine_stats: Dict[str, int] = field(default_factory=dict)
    solver_stats: Dict[str, int] = field(default_factory=dict)
    cfg_nodes: int = 0
    cfg_edges: int = 0
    tree_nodes: int = 0
    pending_left: int = 0
    states_created: int = 0
    tags: Dict[str, str] = field(default_factory=dict)

    @property
    def hl_test_cases(self) -> List[TestCase]:
        return self.suite.high_level_tests()

    def hl_to_ll_ratio(self) -> float:
        return self.hl_paths / self.ll_paths if self.ll_paths else 0.0


class Chef:
    """Language-agnostic Chef engine over a prepared interpreter program.

    ``program`` must be a finalized LIR program whose static data already
    contains the interpreter's high-level program image and build-option
    flag words (the interpreter engines in
    :mod:`repro.interpreters` take care of that).
    """

    def __init__(
        self,
        program: Program,
        config: Optional[ChefConfig] = None,
        solver: Optional[SolverBackend] = None,
    ):
        self.config = config if config is not None else ChefConfig()
        self.solver: SolverBackend = solver if solver is not None else make_default_solver(
            budget=self.config.solver_budget
        )
        self.tree = HighLevelTree()
        self.cfg = HighLevelCfg()
        self.ll = LowLevelEngine(
            program,
            solver=self.solver,
            config=ExecutorConfig(max_instrs_per_path=self.config.path_instr_budget),
        )
        self.ll.on_log_pc = self._on_log_pc
        self.ll.on_fork = self._on_fork
        self.ll.on_path_end = self._on_path_end
        self._rng = random.Random(self.config.seed)
        self.strategy = make_strategy(
            self.config.strategy, self._rng, self.cfg, self.config.fork_weight_p
        )
        self.suite = TestSuite()
        self._timeline: List[Tuple[float, int, int]] = []
        self._start_time = 0.0
        self._ll_paths = 0

    # -- listener hooks -------------------------------------------------------

    def _on_log_pc(self, state: State, pc: int, opcode: int) -> None:
        meta = state.meta
        prev = meta.get("static_hlpc")
        prev_op = meta.get("hl_opcode")
        self.cfg.observe(prev, prev_op, pc, opcode)
        meta["static_hlpc"] = pc
        meta["hl_opcode"] = opcode
        meta["dyn_node"] = self.tree.advance(meta.get("dyn_node", HighLevelTree.ROOT), pc)
        meta["hl_sig"] = HighLevelTree.extend_signature(meta.get("hl_sig", 0), pc)

    def _on_fork(self, parent: State, child: State) -> None:
        child.meta = dict(parent.meta)

    def _on_path_end(self, state: State) -> None:
        status = state.machine.status
        if status in (
            Status.ASSUME_FAILED,
            Status.INFEASIBLE,
            Status.SOLVER_TIMEOUT,
            Status.DEADLINE,
        ):
            return
        self._ll_paths += 1
        signature = state.meta.get("hl_sig", 0)
        new_hl = self.tree.record_path(signature)
        exception_type = None
        for event in state.events:
            if event.kind == api.EVENT_UNCAUGHT_EXCEPTION:
                exception_type = event.a
        case = TestCase(
            test_id=len(self.suite.cases),
            inputs=state.input_values(),
            status=status,
            hl_path_signature=signature,
            new_hl_path=new_hl,
            exception_type=exception_type,
            hang=status == Status.BUDGET_EXCEEDED,
            interpreter_crash=status == Status.FAULT,
            output=list(state.machine.output),
            hl_instr_count=state.hl_instr_count,
            ll_instr_count=state.instr_count,
            wall_time=time.monotonic() - self._start_time,
            path_constraints=state.path_condition,
        )
        self.suite.add(case)
        if self._ll_paths % max(self.config.sample_every, 1) == 0:
            self._timeline.append(
                (case.wall_time, self.tree.distinct_paths(), self._ll_paths)
            )

    # -- main loop ---------------------------------------------------------------

    def run(self) -> RunResult:
        """Explore until the time/path budget is exhausted."""
        config = self.config
        self._cache_stats_start = self._cache_stats_snapshot()
        self._start_time = time.monotonic()
        self.ll.config.deadline = self._start_time + config.time_budget
        state = self.ll.new_state()
        for child in self.ll.run_path(state):
            self.strategy.add(child)
        while not self._budget_exhausted():
            candidate = self.strategy.select()
            if candidate is None:
                break
            if self.ll.activate(candidate) != "sat":
                continue
            for child in self.ll.run_path(candidate):
                self.strategy.add(child)
        duration = time.monotonic() - self._start_time
        self._timeline.append((duration, self.tree.distinct_paths(), self._ll_paths))
        return RunResult(
            suite=self.suite,
            hl_paths=self.tree.distinct_paths(),
            ll_paths=self._ll_paths,
            duration=duration,
            timeline=list(self._timeline),
            engine_stats=self.ll.stats.as_dict(),
            solver_stats=self._solver_stats(),
            cfg_nodes=self.cfg.node_count(),
            cfg_edges=self.cfg.edge_count(),
            tree_nodes=self.tree.node_count(),
            pending_left=len(self.strategy),
            states_created=self.ll._next_sid,
            tags=dict(config.tags or {}),
        )

    def _cache_stats_snapshot(self) -> Dict[str, int]:
        cache = getattr(self.solver, "cache", None)
        if cache is None or not hasattr(cache, "stats_dict"):
            return {}
        return dict(cache.stats_dict())

    def _solver_stats(self) -> Dict[str, int]:
        """Backend counters plus this run's model-cache activity.

        Default backends share the process-wide cache, so its counters
        are reported as deltas against the snapshot taken at run start
        — absolute values would be cumulative across runs.
        """
        stats = dict(self.solver.stats.as_dict())
        start = getattr(self, "_cache_stats_start", {})
        for key, value in self._cache_stats_snapshot().items():
            stats[f"cache_{key}"] = value - start.get(key, 0)
        return stats

    def _budget_exhausted(self) -> bool:
        config = self.config
        if time.monotonic() - self._start_time >= config.time_budget:
            return True
        if config.max_ll_paths and self._ll_paths >= config.max_ll_paths:
            return True
        if config.max_hl_paths and self.tree.distinct_paths() >= config.max_hl_paths:
            return True
        return False
