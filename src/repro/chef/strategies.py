"""State-selection strategies: random baseline and the two CUPA instances.

- :class:`RandomStrategy` — uniform over pending states (the paper's
  baseline configuration).
- :class:`PathCupaStrategy` — §3.3: two CUPA levels, (1) dynamic HLPC of
  the fork point in the unfolded high-level tree, (2) low-level PC of the
  forking instruction.
- :class:`CoverageCupaStrategy` — §3.4: classes by static HLPC, weighted
  ``1/d`` by CFG distance to the nearest potential branching point; within
  a class, states are weighted by fork weight (p = 0.75), favouring the
  most recent fork at a given low-level location.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.chef.cupa import CupaTree
from repro.chef.hltree import HighLevelCfg
from repro.lowlevel.executor import State


class SearchStrategy:
    """Interface shared by all strategies."""

    def add(self, state: State) -> None:
        raise NotImplementedError

    def select(self) -> Optional[State]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def drain(self) -> list:
        """Remove and return every pending item (checkpoint capture).

        Selection order is strategy/RNG dependent; callers that need the
        frontier to survive re-``add`` each item afterwards.
        """
        items = []
        while True:
            item = self.select()
            if item is None:
                break
            items.append(item)
        return items


class RandomStrategy(SearchStrategy):
    """Uniformly random selection over all pending states."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._states: list = []

    def add(self, state: State) -> None:
        self._states.append(state)

    def select(self) -> Optional[State]:
        if not self._states:
            return None
        index = self._rng.randrange(len(self._states))
        self._states[index], self._states[-1] = self._states[-1], self._states[index]
        return self._states.pop()

    def __len__(self) -> int:
        return len(self._states)


class PathCupaStrategy(SearchStrategy):
    """Path-optimized CUPA (§3.3)."""

    def __init__(self, rng: random.Random):
        self._tree = CupaTree(
            classifiers=[
                lambda s: s.meta.get("dyn_node", 0),   # dynamic HLPC
                lambda s: s.fork_ll_pc or 0,           # low-level x86-equivalent PC
            ],
            rng=rng,
        )

    def add(self, state: State) -> None:
        self._tree.add(state)

    def select(self) -> Optional[State]:
        return self._tree.select()

    def __len__(self) -> int:
        return len(self._tree)


class CoverageCupaStrategy(SearchStrategy):
    """Coverage-optimized CUPA (§3.4)."""

    def __init__(self, rng: random.Random, cfg: HighLevelCfg, fork_weight_p: float = 0.75):
        self._cfg = cfg
        self._p = fork_weight_p
        self._group_max: Dict[Tuple[int, int], int] = {}
        self._tree = CupaTree(
            classifiers=[lambda s: s.meta.get("static_hlpc", 0)],
            rng=rng,
            weight_fns=[self._hlpc_weight],
        )

    def _hlpc_weight(self, hlpc, _level: int) -> float:
        distance = self._cfg.distance_to_uncovered(hlpc)
        return 1.0 / (1.0 + distance)

    def _fork_weight(self, state: State) -> float:
        group = state.fork_group
        if group is None:
            return 1.0
        latest = self._group_max.get(group, state.fork_index)
        return self._p ** max(latest - state.fork_index, 0)

    def add(self, state: State) -> None:
        group = state.fork_group
        if group is not None:
            current = self._group_max.get(group, 0)
            if state.fork_index > current:
                self._group_max[group] = state.fork_index
        self._tree.add(state)

    def select(self) -> Optional[State]:
        return self._tree.select_weighted_leaf(self._fork_weight)

    def __len__(self) -> int:
        return len(self._tree)


def make_strategy(
    name: str,
    rng: random.Random,
    cfg: HighLevelCfg,
    fork_weight_p: float = 0.75,
) -> SearchStrategy:
    """Factory keyed by the ChefConfig.strategy field."""
    if name == "random":
        return RandomStrategy(rng)
    if name == "cupa-path":
        return PathCupaStrategy(rng)
    if name == "cupa-cov":
        return CoverageCupaStrategy(rng, cfg, fork_weight_p)
    raise ValueError(f"unknown strategy {name!r} (random, cupa-path, cupa-cov)")
