"""High-level execution tree and dynamically discovered high-level CFG.

The interpreter reports (HLPC, opcode) pairs through ``log_pc``.  From the
stream of reports along every low-level path, Chef maintains:

- a **high-level execution tree** (Fig. 3): the unfolding of high-level
  paths.  Each node is a *dynamic HLPC* — an occurrence of an HLPC in a
  particular path prefix.  Path-optimized CUPA classifies states by the
  dynamic HLPC at their fork point.

- a **high-level CFG**: static HLPC nodes with successor edges, discovered
  on the fly.  Coverage-optimized CUPA derives *potential branching
  points* from it (§3.4): nodes whose opcode is known to branch elsewhere
  but that currently have only one successor, and steers exploration
  toward states close to them.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, List, Optional, Set, Tuple

_HASH_MASK = (1 << 61) - 1


class HighLevelTree:
    """Unfolded high-level execution tree over dynamic HLPCs."""

    ROOT = 0

    def __init__(self):
        # node id -> {hlpc -> child node id}
        self._children: Dict[int, Dict[int, int]] = {self.ROOT: {}}
        self._hlpc_of: Dict[int, int] = {self.ROOT: -1}
        self._next_node = 1
        #: signatures of completed high-level paths.
        self._path_signatures: Set[int] = set()

    def advance(self, node: int, hlpc: int) -> int:
        """Move from dynamic node ``node`` along ``hlpc``; returns child id."""
        children = self._children[node]
        child = children.get(hlpc)
        if child is None:
            child = self._next_node
            self._next_node += 1
            children[hlpc] = child
            self._children[child] = {}
            self._hlpc_of[child] = hlpc
        return child

    def hlpc_of(self, node: int) -> int:
        return self._hlpc_of[node]

    def node_count(self) -> int:
        return self._next_node

    @staticmethod
    def extend_signature(signature: int, hlpc: int) -> int:
        """Incremental hash of a high-level path (order-sensitive)."""
        return ((signature * 1000003) ^ (hlpc + 0x9E3779B9)) & _HASH_MASK

    def record_path(self, signature: int) -> bool:
        """Record a completed high-level path; True if it was new."""
        if signature in self._path_signatures:
            return False
        self._path_signatures.add(signature)
        return True

    def distinct_paths(self) -> int:
        return len(self._path_signatures)


class HighLevelCfg:
    """Static high-level CFG, discovered edge by edge."""

    def __init__(self, rare_opcode_fraction: float = 0.10):
        self.successors: Dict[int, Set[int]] = {}
        self.opcode_of: Dict[int, int] = {}
        self._opcode_counts: Counter = Counter()
        self._rare_fraction = rare_opcode_fraction
        #: bumped on structural change; distance caches key on it.
        self.version = 0
        self._distance_cache: Dict[int, int] = {}
        self._cache_version = -1

    def observe(self, src: Optional[int], src_opcode: Optional[int], dst: int, dst_opcode: int) -> None:
        """Record the transition src → dst reported by log_pc."""
        changed = False
        if dst not in self.successors:
            self.successors[dst] = set()
            changed = True
        if dst not in self.opcode_of:
            self.opcode_of[dst] = dst_opcode
            self._opcode_counts[dst_opcode] += 1
        if src is not None and src_opcode is not None and src not in self.opcode_of:
            self.opcode_of[src] = src_opcode
            self._opcode_counts[src_opcode] += 1
        if src is not None:
            succ = self.successors.setdefault(src, set())
            if dst not in succ:
                succ.add(dst)
                changed = True
        if changed:
            self.version += 1

    # -- §3.4 heuristics ---------------------------------------------------------

    def branching_opcodes(self) -> Set[int]:
        """Opcodes observed to branch (out-degree ≥ 2), minus the rarest 10%.

        The paper drops the 10% least frequent branching opcodes because
        they correspond to exceptions and other rare control transfers.
        """
        counts: Counter = Counter()
        for hlpc, succ in self.successors.items():
            if len(succ) >= 2:
                counts[self.opcode_of.get(hlpc, -1)] += 1
        if not counts:
            return set()
        ordered = sorted(counts.items(), key=lambda kv: (kv[1], kv[0]))
        drop = int(len(ordered) * self._rare_fraction)
        return {opcode for opcode, _count in ordered[drop:]}

    def potential_branching_points(self) -> Set[int]:
        """HLPCs with a branching opcode but (currently) a single successor."""
        branching = self.branching_opcodes()
        result = set()
        for hlpc, succ in self.successors.items():
            if len(succ) == 1 and self.opcode_of.get(hlpc) in branching:
                result.add(hlpc)
        return result

    def distance_to_uncovered(self, hlpc: int) -> int:
        """Forward CFG distance to the closest potential branching point.

        Returns a large finite value when unreachable; cached per CFG
        version (a BFS from all targets, reversed).
        """
        if self._cache_version != self.version:
            self._rebuild_distances()
        return self._distance_cache.get(hlpc, 1_000_000)

    def _rebuild_distances(self) -> None:
        targets = self.potential_branching_points()
        predecessors: Dict[int, List[int]] = {}
        for src, succ in self.successors.items():
            for dst in succ:
                predecessors.setdefault(dst, []).append(src)
        distances: Dict[int, int] = {t: 0 for t in targets}
        queue = deque(targets)
        while queue:
            node = queue.popleft()
            for pred in predecessors.get(node, ()):
                if pred not in distances:
                    distances[pred] = distances[node] + 1
                    queue.append(pred)
        self._distance_cache = distances
        self._cache_version = self.version

    def node_count(self) -> int:
        return len(self.successors)

    def edge_count(self) -> int:
        return sum(len(s) for s in self.successors.values())

    def covered_hlpcs(self) -> Set[int]:
        return set(self.successors)
