"""Generated test cases and suites."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.solver.constraints import ConstraintSet


@dataclass
class TestCase:
    """One concrete input produced by symbolic execution.

    ``inputs`` maps symbolic-buffer names (in creation order: b0, b1, ...)
    to concrete word lists; string-typed inputs decode them as bytes.
    """

    __test__ = False  # not a pytest class, despite the name

    test_id: int
    inputs: Dict[str, List[int]]
    status: str
    #: signature of the high-level path this test exercises.
    hl_path_signature: int = 0
    #: True if this test was the first to exercise its high-level path.
    new_hl_path: bool = False
    #: uncaught high-level exception type id (None = none reported).
    exception_type: Optional[int] = None
    #: the per-path instruction budget was exhausted (potential hang).
    hang: bool = False
    #: the interpreter itself crashed (guest fault / abort).
    interpreter_crash: bool = False
    #: observable guest output words.
    output: List[int] = field(default_factory=list)
    #: executed high-level instructions along the path.
    hl_instr_count: int = 0
    #: executed low-level instructions along the path.
    ll_instr_count: int = 0
    #: wall-clock seconds since the run started when this test completed.
    wall_time: float = 0.0
    #: the path condition the inputs satisfy (shares structure with the
    #: engine's constraint chains; lets downstream tooling re-query the
    #: solver — e.g. to diversify inputs along the same path).
    path_constraints: Optional[ConstraintSet] = None

    @property
    def pc_atoms(self) -> int:
        """Number of path-condition atoms behind this test (0 if unknown)."""
        return len(self.path_constraints) if self.path_constraints is not None else 0

    def input_string(self, name: str) -> str:
        """Decode a buffer as a byte string (lossy for non-ASCII)."""
        return "".join(chr(v & 0xFF) for v in self.inputs.get(name, []))

    def __repr__(self) -> str:
        marks = []
        if self.new_hl_path:
            marks.append("new-hl")
        if self.exception_type is not None:
            marks.append(f"exc={self.exception_type}")
        if self.hang:
            marks.append("hang")
        if self.interpreter_crash:
            marks.append("crash")
        return f"TestCase(#{self.test_id} {self.status} {' '.join(marks)})"


@dataclass
class TestSuite:
    """All test cases from one Chef run, plus summary helpers."""

    __test__ = False  # not a pytest class, despite the name

    cases: List[TestCase] = field(default_factory=list)

    def add(self, case: TestCase) -> None:
        self.cases.append(case)

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)

    def high_level_tests(self) -> List[TestCase]:
        """Tests that each exercise a distinct high-level path."""
        return [c for c in self.cases if c.new_hl_path]

    def exceptions(self) -> Dict[int, List[TestCase]]:
        found: Dict[int, List[TestCase]] = {}
        for case in self.cases:
            if case.exception_type is not None:
                found.setdefault(case.exception_type, []).append(case)
        return found

    def hangs(self) -> List[TestCase]:
        return [c for c in self.cases if c.hang]

    def crashes(self) -> List[TestCase]:
        return [c for c in self.cases if c.interpreter_crash]
