"""Chef core: high-level-aware symbolic execution over the LVM.

This package implements the paper's primary contribution:

- :mod:`repro.chef.hltree` — the high-level execution tree and the
  dynamically discovered high-level CFG (§2.3, Fig. 3),
- :mod:`repro.chef.cupa` — Class-Uniform Path Analysis (§3.2, Fig. 5),
- :mod:`repro.chef.strategies` — the baseline and the path-/coverage-
  optimized CUPA instantiations (§3.3, §3.4),
- :mod:`repro.chef.options` — interpreter build options (§4.2),
- :mod:`repro.chef.engine` — the engine loop gluing it all together,
- :mod:`repro.chef.testcase` — generated test cases and suites.
"""

from repro.chef.options import ChefConfig, InterpreterBuildOptions
from repro.chef.hltree import HighLevelCfg, HighLevelTree
from repro.chef.cupa import CupaTree
from repro.chef.strategies import (
    CoverageCupaStrategy,
    PathCupaStrategy,
    RandomStrategy,
    make_strategy,
)
from repro.chef.testcase import TestCase, TestSuite
from repro.chef.engine import Chef, RunResult

__all__ = [
    "Chef",
    "ChefConfig",
    "CoverageCupaStrategy",
    "CupaTree",
    "HighLevelCfg",
    "HighLevelTree",
    "InterpreterBuildOptions",
    "PathCupaStrategy",
    "RandomStrategy",
    "RunResult",
    "TestCase",
    "TestSuite",
    "make_strategy",
]
