"""Symbolic test runner: symbolic mode and replay mode (§5.1).

In symbolic mode the runner concatenates the package source with the
generated driver and executes it in the Chef-generated engine.  In replay
mode it re-executes generated test cases in the vanilla host VM and
reports their concrete behaviour (output, exception, coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Set

from repro.api.session import SymbolicSession
from repro.chef.engine import RunResult
from repro.chef.options import ChefConfig
from repro.chef.testcase import TestCase
from repro.solver.backend import SolverBackend
from repro.symtest.library import SymbolicTest


@dataclass
class ReplayedCase:
    """Outcome of replaying one generated test in the vanilla VM."""

    case: TestCase
    output: List[int]
    exception_name: Optional[str]
    covered_lines: Set[int] = field(default_factory=set)
    hang: bool = False


class SymbolicTestRunner:
    """Drives a :class:`SymbolicTest` against a guest package.

    A thin wrapper over :class:`~repro.api.session.SymbolicSession`:
    the runner assembles the guest driver, the session owns language
    lookup, engine construction and exploration.
    """

    def __init__(
        self,
        package_source: str,
        test: SymbolicTest,
        config: Optional[ChefConfig] = None,
        solver: Optional[SolverBackend] = None,
        workers: Optional[int] = None,
    ):
        self.test = test
        self.config = config if config is not None else ChefConfig()
        if workers is not None:
            # Shard symbolic-mode exploration across worker processes
            # (replay mode is unaffected); don't mutate the caller's config.
            self.config = replace(self.config, workers=workers)
        self.solver = solver
        driver = test.build_driver()
        self.full_source = package_source.rstrip("\n") + "\n\n" + driver
        self.session = SymbolicSession(
            test.language, self.full_source, self.config, solver=solver
        )
        self.engine = self.session.engine

    # -- symbolic mode ---------------------------------------------------------

    def run_symbolic(self) -> RunResult:
        """Explore (once per session) and return the result.

        A session explores exactly once; calling this again re-explores
        on a fresh session over the same compiled engine (no source
        recompilation).
        """
        if self.session.started:
            self.session = SymbolicSession.for_engine(
                self.engine, self.config, language=self.test.language
            )
        return self.session.run()

    # -- replay mode --------------------------------------------------------------

    def replay_case(self, case: TestCase) -> ReplayedCase:
        result = self.engine.replay(case)
        exception_name = None
        if result.exception is not None:
            exception_name = self.engine.exception_name(result.exception.type_id)
        return ReplayedCase(
            case=case,
            output=list(result.output),
            exception_name=exception_name,
            covered_lines=set(result.covered_lines),
            hang=result.hit_budget,
        )

    def replay_suite(self, run: RunResult, high_level_only: bool = True) -> List[ReplayedCase]:
        cases = run.hl_test_cases if high_level_only else list(run.suite)
        return [self.replay_case(case) for case in cases]

    # -- metrics ----------------------------------------------------------------------

    def line_coverage(self, run: RunResult) -> float:
        covered, coverable = self.engine.coverage(run.suite)
        return len(covered) / coverable if coverable else 0.0
