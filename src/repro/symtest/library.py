"""SymbolicTest: declare symbolic inputs and a MiniPy/MiniLua driver.

The paper's symbolic tests are classes whose ``runTest`` builds symbolic
inputs through ``getString``/``getInt`` (Fig. 7).  Here the same API
*generates* the guest-language driver code: each ``getString`` becomes a
``sym_string`` call in the guest, which the instrumented interpreter turns
into a ``make_symbolic`` hypercall on its character buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.api.language import get_language
from repro.errors import ReproError

# Back-compat alias: driver codegen now routes through
# ``GuestLanguage.quote_literal``; the MiniPy quoter lives with the
# language registration.
from repro.interpreters.minipy.language import quote_minipy as _quote_minipy


@dataclass
class InputSpec:
    """One declared symbolic input."""

    kind: str          # "str" or "int"
    name: str          # guest variable name
    seed: object       # initial concrete value (str or int)
    lo: int = 0
    hi: int = 255


class SymbolicTest:
    """Base class for symbolic tests (mirrors the paper's Fig. 7).

    Subclasses override :meth:`setUp` (optional) and :meth:`runTest`; both
    may call :meth:`getString` / :meth:`getInt` to declare inputs and
    :meth:`emit` to append driver statements written in the guest
    language.  ``language`` is "minipy" (default) or "minilua".
    """

    language = "minipy"

    def __init__(self):
        self.inputs: List[InputSpec] = []
        self._lines: List[str] = []
        self._names = set()

    # -- the Fig. 7 API -------------------------------------------------------

    def setUp(self) -> None:
        """Prepare the test (override as needed)."""

    def runTest(self) -> None:
        raise NotImplementedError("symbolic tests must define runTest()")

    def getString(self, name: str, seed: str) -> str:
        """Declare a symbolic string; returns the guest variable name."""
        self._declare(name)
        self.inputs.append(InputSpec("str", name, seed))
        self._lines.append(self.guest_language().declare_string(name, seed))
        return name

    def getInt(self, name: str, seed: int, lo: int = 0, hi: int = 255) -> str:
        """Declare a symbolic integer with an inclusive domain."""
        self._declare(name)
        self.inputs.append(InputSpec("int", name, seed, lo, hi))
        self._lines.append(self.guest_language().declare_int(name, seed, lo, hi))
        return name

    def guest_language(self):
        """The registered :class:`GuestLanguage` this test targets."""
        return get_language(self.language)

    def emit(self, code: str) -> None:
        """Append driver statements (guest-language source)."""
        for line in code.strip("\n").split("\n"):
            self._lines.append(line)

    # -- driver assembly ----------------------------------------------------------

    def build_driver(self) -> str:
        """Generate the guest driver appended after the package source."""
        self.inputs = []
        self._lines = []
        self._names = set()
        self.setUp()
        self.runTest()
        if not self._lines:
            raise ReproError("symbolic test produced no driver code")
        return "\n".join(self._lines) + "\n"

    def _declare(self, name: str) -> None:
        if not name.isidentifier():
            raise ReproError(f"input name {name!r} is not an identifier")
        if name in self._names:
            raise ReproError(f"duplicate symbolic input {name!r}")
        self._names.add(name)


class SimpleSymbolicTest(SymbolicTest):
    """Convenience: a symbolic test from declarative parts.

    ``inputs`` is a list of ("str", name, seed) / ("int", name, seed, lo, hi)
    tuples; ``body`` is guest source using those names.
    """

    def __init__(self, inputs: List[tuple], body: str, language: str = "minipy"):
        super().__init__()
        self.language = language
        self._spec_inputs = inputs
        self._body = body

    def runTest(self) -> None:
        for spec in self._spec_inputs:
            if spec[0] == "str":
                self.getString(spec[1], spec[2])
            elif spec[0] == "int":
                lo = spec[3] if len(spec) > 3 else 0
                hi = spec[4] if len(spec) > 4 else 255
                self.getInt(spec[1], spec[2], lo, hi)
            else:
                raise ReproError(f"unknown input kind {spec[0]!r}")
        self.emit(self._body)
