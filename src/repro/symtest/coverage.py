"""Line-coverage helpers (the paper's coverage/luacov stand-in)."""

from __future__ import annotations

from typing import Iterable, Set, Tuple


def coverage_percent(covered: Set[int], coverable_count: int) -> float:
    """Line coverage as a percentage (0..100)."""
    if coverable_count <= 0:
        return 0.0
    return 100.0 * len(covered) / coverable_count


def merge_coverage(parts: Iterable[Set[int]]) -> Set[int]:
    merged: Set[int] = set()
    for part in parts:
        merged |= part
    return merged


def count_loc(source: str, *, comment_prefix: str) -> int:
    """Non-blank, non-comment source lines (the paper uses cloc).

    ``comment_prefix`` is keyword-only and has no default on purpose:
    the prefix belongs to the :class:`~repro.api.language.GuestLanguage`
    under measurement (``language.loc(source)`` passes it), and a silent
    ``"#"`` default let Lua sources be miscounted at call sites that
    forgot to pass one.
    """
    count = 0
    for line in source.split("\n"):
        stripped = line.strip()
        if stripped and not stripped.startswith(comment_prefix):
            count += 1
    return count
