"""Symbolic test library (the paper's §4.3 and Fig. 7).

A :class:`SymbolicTest` declares symbolic inputs (``getString``/``getInt``)
and a driver body; the runner executes it in *symbolic mode* (inside the
Chef-generated engine) or *replay mode* (concrete inputs in the vanilla
host VM), mirroring the paper's two-mode test runner.
"""

from repro.symtest.library import InputSpec, SymbolicTest
from repro.symtest.runner import ReplayedCase, SymbolicTestRunner
from repro.symtest.coverage import coverage_percent

__all__ = [
    "InputSpec",
    "ReplayedCase",
    "SymbolicTest",
    "SymbolicTestRunner",
    "coverage_percent",
]
