"""repro.obs — engine-wide observability (metrics, spans, exporters).

Three pieces, layered so any component can use the cheap parts alone:

- :mod:`repro.obs.metrics` — typed counters/gauges/histograms in a
  :class:`MetricsRegistry`; the single store behind ``SolverStats``,
  ``EngineStats`` and the :class:`~repro.solver.cache.ModelCache`
  counters.  Always on.
- :mod:`repro.obs.telemetry` — the :class:`Telemetry` context (one
  registry + one span tracer), threaded explicitly per engine; span
  tracing is opt-in and a no-op costs one branch.
- :mod:`repro.obs.export` — Chrome trace-event JSON (for
  ``chrome://tracing`` / Perfetto), JSON-lines event logs and a
  plain-text summary table.

See the "Observability" section of ``docs/architecture.md`` for the
span taxonomy and metric name catalogue.
"""

from repro.obs.export import (
    chrome_trace,
    summary_table,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    split_prefixed,
)
from repro.obs.telemetry import NULL_SPAN, Span, Telemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Telemetry",
    "chrome_trace",
    "merge_snapshots",
    "split_prefixed",
    "summary_table",
    "write_chrome_trace",
    "write_events_jsonl",
]
