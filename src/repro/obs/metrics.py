"""Typed metrics: counters, gauges, histograms and their registry.

This is the data half of the observability subsystem (the span tracer
lives in :mod:`repro.obs.telemetry`).  A :class:`MetricsRegistry` owns
every metric of one engine context; the ad-hoc counter dicts that used
to be hand-rolled in ``solver/csp.py`` (``SolverStats``),
``solver/cache.py`` (``ModelCache``) and ``lowlevel/executor.py``
(``EngineStats``) are now thin attribute views over registry counters,
so *one* registry holds the numbers every layer reports — benchmarks,
``Session.metrics()`` and the parallel coordinator all read the same
store instead of re-plumbing their own dicts.

Naming convention: dotted ``<component>.<counter>`` names
(``solver.queries``, ``cache.hits``, ``engine.forks``,
``span.solver.check``); :func:`split_prefixed` recovers the legacy
per-component dicts from a snapshot.

Snapshots are plain JSON-able dicts; :func:`merge_snapshots` folds any
number of them (numbers add, histogram dicts merge), which is how
per-worker registries aggregate to run totals without bespoke
summation code in the coordinator.

This module deliberately imports nothing from the engine so every layer
can depend on it without cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_property",
    "merge_snapshots",
    "split_prefixed",
]


class Counter:
    """Monotonic integer counter (mutable ``value`` for hot paths)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-written value (sizes, frontier depth, cache entries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming distribution summary with slowest-observation capture.

    Tracks count/sum/min/max plus the ``keep_slowest`` largest
    observations with their labels — the span tracer feeds per-query
    wall times here, so the slowest solver queries of a run survive in
    the summary with enough context to find them again.
    """

    __slots__ = ("name", "count", "total", "min", "max", "keep_slowest", "slowest")

    def __init__(self, name: str, keep_slowest: int = 0):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.keep_slowest = keep_slowest
        #: (value, label) pairs, largest value first.
        self.slowest: List[Tuple[float, Optional[str]]] = []

    def observe(self, value: float, label: Optional[str] = None) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.keep_slowest:
            slowest = self.slowest
            if len(slowest) < self.keep_slowest or value > slowest[-1][0]:
                slowest.append((value, label))
                slowest.sort(key=lambda pair: -pair[0])
                del slowest[self.keep_slowest:]

    def snapshot(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "slowest": [list(pair) for pair in self.slowest],
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, sum={self.total:.6f})"


class MetricsRegistry:
    """Name → metric store; the single bookkeeping surface of a context.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instance afterwards (asking for a name under a
    different type raises — a name means one thing).
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, *args)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, keep_slowest: int = 0) -> Histogram:
        return self._get(name, Histogram, keep_slowest)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every metric in place (handles stay valid)."""
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                metric.count = 0
                metric.total = 0.0
                metric.min = None
                metric.max = None
                metric.slowest.clear()
            else:
                metric.value = 0

    def snapshot(self) -> Dict:
        """Flat JSON-able view: numbers for counters/gauges, dicts for
        histograms."""
        out: Dict = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out


def merge_snapshots(snapshots) -> Dict:
    """Fold registry snapshots into totals (numbers add, histograms merge).

    This is the one aggregation path for parallel runs: each worker
    ships its registry snapshot, the coordinator folds them here.
    Gauges add too — for the gauges we keep (cache entries), the sum
    over disjoint worker caches is the meaningful pool-wide total.
    """
    merged: Dict = {}
    for snap in snapshots:
        for name, value in snap.items():
            if isinstance(value, dict):
                into = merged.setdefault(
                    name, {"count": 0, "sum": 0.0, "min": None, "max": None, "slowest": []}
                )
                into["count"] += value.get("count", 0)
                into["sum"] += value.get("sum", 0.0)
                for bound, pick in (("min", min), ("max", max)):
                    v = value.get(bound)
                    if v is not None:
                        into[bound] = v if into[bound] is None else pick(into[bound], v)
                slowest = into["slowest"] + [list(p) for p in value.get("slowest", [])]
                slowest.sort(key=lambda pair: -pair[0])
                into["slowest"] = slowest[:8]
            else:
                merged[name] = merged.get(name, 0) + value
    return merged


def split_prefixed(snapshot: Dict, prefix: str) -> Dict:
    """Legacy per-component dict from a flat snapshot.

    ``split_prefixed(snap, "solver")`` returns ``{"queries": ..., ...}``
    — exactly the shape ``SolverStats.as_dict()`` always reported, so
    benchmark JSON and CI gates consume the registry's numbers verbatim.
    """
    dot = prefix + "."
    return {
        name[len(dot):]: value
        for name, value in snapshot.items()
        if name.startswith(dot) and not isinstance(value, dict)
    }


def counter_property(field: str) -> property:
    """Attribute view over ``self._counters[field]``.

    The stats classes (``SolverStats``, ``EngineStats``) and
    :class:`~repro.solver.cache.ModelCache` keep their historical
    ``stats.queries``-style attributes; reads return the plain int and
    writes (including ``+=``) update the registry counter, so existing
    call sites and tests keep working against the one true store.
    """

    def _get(self):
        return self._counters[field].value

    def _set(self, value):
        self._counters[field].value = value

    return property(_get, _set)
