"""Traced-workload smoke check: ``python -m repro.obs.smoke``.

Runs the branchy Clay workload through a traced Chef session (serial or
parallel), asserts that the key metrics every dashboard depends on are
present and non-zero, and writes the three exporter artifacts into
``--out``:

- ``trace.json``   — Chrome trace-event JSON (chrome://tracing, Perfetto)
- ``events.jsonl`` — raw span events, one JSON object per line
- ``summary.txt``  — plain-text metric/span tables

CI's ``metrics-smoke`` job runs this at two worker counts and uploads
the artifacts, so every PR leaves behind an openable trace of the
parallel coordinator/worker lanes.  Exit status is non-zero when a
required metric is missing or zero, making the check usable as a
plain shell step.
"""

from __future__ import annotations

import argparse
import os
import sys

#: metrics that must be present and non-zero after any traced run.
REQUIRED_NONZERO = (
    "engine.paths_completed",
    "engine.forks",
    "engine.instrs_executed",
    "solver.queries",
    "solver.sat",
    "cache.stores",
    "span.solver.check",
    "span.engine.run_path",
)


def run_smoke(num_bytes: int, workers: int, out_dir: str) -> int:
    from repro.api.session import SymbolicSession
    from repro.bench.workloads import branchy_source
    from repro.chef.options import ChefConfig
    from repro.clay import compile_program
    from repro.obs.export import summary_table, write_chrome_trace, write_events_jsonl

    compiled = compile_program(branchy_source(num_bytes))
    config = ChefConfig(time_budget=120.0, workers=workers, trace=True)
    session = SymbolicSession.from_program(compiled.program, config)
    result = session.run()
    metrics = session.metrics()

    os.makedirs(out_dir, exist_ok=True)
    write_chrome_trace(os.path.join(out_dir, "trace.json"), session.telemetry)
    write_events_jsonl(os.path.join(out_dir, "events.jsonl"), session.telemetry)
    summary = summary_table(session.telemetry)
    with open(os.path.join(out_dir, "summary.txt"), "w", encoding="utf-8") as handle:
        handle.write(summary + "\n")
    print(summary)

    failures = []
    expected_paths = 1 << num_bytes
    if result.ll_paths != expected_paths:
        failures.append(f"ll_paths: expected {expected_paths}, got {result.ll_paths}")
    for name in REQUIRED_NONZERO:
        value = metrics.get(name)
        if isinstance(value, dict):
            value = value.get("count", 0)
        if not value:
            failures.append(f"metric {name!r} missing or zero (got {value!r})")
    if result.solver_stats.get("queries") != metrics.get("solver.queries"):
        failures.append(
            "RunResult/metrics disagree on solver queries: "
            f"{result.solver_stats.get('queries')} vs {metrics.get('solver.queries')}"
        )
    if workers > 1:
        lanes = {event["lane"] for event in session.telemetry.events}
        if "coordinator" not in lanes or not any(
            lane.startswith("worker-") for lane in lanes
        ):
            failures.append(f"expected coordinator+worker trace lanes, got {sorted(lanes)}")

    print(
        f"\nsmoke: {result.ll_paths} paths, workers={workers}, "
        f"{metrics.get('solver.queries')} solver queries, "
        f"{len(session.telemetry.events)} trace events -> {out_dir}"
    )
    if failures:
        for failure in failures:
            print(f"smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print("smoke OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke", description=__doc__.split("\n", 1)[0]
    )
    parser.add_argument("--bytes", type=int, default=4, dest="num_bytes",
                        help="symbolic input bytes (2**bytes feasible paths)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (1 = serial loop)")
    parser.add_argument("--out", default="obs-smoke",
                        help="artifact directory (created if missing)")
    args = parser.parse_args(argv)
    return run_smoke(args.num_bytes, args.workers, args.out)


if __name__ == "__main__":
    sys.exit(main())
