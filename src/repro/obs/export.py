"""Exporters: Chrome trace-event JSON, JSON-lines, plain-text summary.

The Chrome trace export is the one that explains parallel runs: every
telemetry context records its events with a ``lane`` name
("coordinator", "worker-<pid>"), and the exporter maps each lane to its
own thread row — load the file in ``chrome://tracing`` or
https://ui.perfetto.dev and the coordinator's ship/merge spans line up
against the workers' solver/snapshot spans, making the serial sections
(and hence any sub-1× "speedup") visible instead of inferred.

Internal event form (produced by :class:`repro.obs.telemetry.Span`):
``{"name", "ph", "ts", "dur", "pid", "lane", "args"}`` with times in
``time.perf_counter`` seconds; the Chrome export rebases to the
earliest event and converts to microseconds, per the trace-event
format's ``X`` (complete) and ``M`` (metadata) phases.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = [
    "chrome_trace",
    "summary_table",
    "write_chrome_trace",
    "write_events_jsonl",
]


def _lanes_in_order(events: List[Dict]) -> List[str]:
    """Unique lane names: coordinator/main first, then by appearance."""
    seen: List[str] = []
    for event in events:
        lane = event.get("lane", "main")
        if lane not in seen:
            seen.append(lane)
    head = [lane for lane in seen if lane in ("coordinator", "main")]
    return head + [lane for lane in seen if lane not in ("coordinator", "main")]


def chrome_trace(events: List[Dict], metrics: Optional[Dict] = None) -> Dict:
    """Trace-event JSON document (the ``{"traceEvents": [...]}`` form).

    One process row, one thread row per lane; ``metrics`` (a registry
    snapshot) rides along under ``otherData`` so a trace file is
    self-describing.
    """
    lanes = _lanes_in_order(events)
    tids = {lane: index + 1 for index, lane in enumerate(lanes)}
    t0 = min((event["ts"] for event in events), default=0.0)
    trace_events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro symbolic execution"},
        }
    ]
    for lane in lanes:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": 1,
                "tid": tids[lane],
                "args": {"name": lane},
            }
        )
        trace_events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "ts": 0,
                "pid": 1,
                "tid": tids[lane],
                "args": {"sort_index": tids[lane]},
            }
        )
    for event in events:
        trace_events.append(
            {
                "name": event["name"],
                "ph": event.get("ph", "X"),
                "ts": (event["ts"] - t0) * 1e6,
                "dur": event.get("dur", 0.0) * 1e6,
                "pid": 1,
                "tid": tids[event.get("lane", "main")],
                "args": dict(event.get("args") or {}),
            }
        )
    document: Dict = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if metrics is not None:
        document["otherData"] = {"metrics": metrics}
    return document


def write_chrome_trace(path: str, telemetry) -> str:
    """Write the telemetry context's events as a Chrome trace file."""
    document = chrome_trace(telemetry.events, metrics=telemetry.metrics())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def write_events_jsonl(path: str, telemetry) -> str:
    """Write one JSON object per span event (machine-greppable log)."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in telemetry.events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
    return path


def _render(headers, rows) -> str:
    cells = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def summary_table(telemetry) -> str:
    """Plain-text run summary: metric catalogue + span time breakdown.

    Sections: scalar metrics (counters/gauges) sorted by name, then
    span histograms sorted by total time with their slowest captures.
    """
    metrics = telemetry.metrics()
    scalar_rows = [
        [name, value]
        for name, value in sorted(metrics.items())
        if not isinstance(value, dict)
    ]
    span_items = sorted(
        ((name, value) for name, value in metrics.items() if isinstance(value, dict)),
        key=lambda item: -item[1].get("sum", 0.0),
    )
    span_rows = []
    slowest_lines = []
    for name, hist in span_items:
        count = hist.get("count", 0)
        total = hist.get("sum", 0.0)
        mean = total / count if count else 0.0
        span_rows.append(
            [
                name,
                count,
                f"{total * 1e3:.3f}",
                f"{mean * 1e6:.1f}",
                f"{(hist.get('max') or 0.0) * 1e6:.1f}",
            ]
        )
        for value, label in hist.get("slowest", [])[:1]:
            slowest_lines.append(
                f"  {name}: {value * 1e3:.3f} ms  ({label or 'no attrs'})"
            )
    sections = ["== metrics ==", _render(["metric", "value"], scalar_rows)]
    if span_rows:
        sections += [
            "",
            "== spans ==",
            _render(["span", "count", "total ms", "mean us", "max us"], span_rows),
            "",
            "== slowest per span ==",
            "\n".join(slowest_lines),
        ]
    return "\n".join(sections)
