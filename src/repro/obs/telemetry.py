"""The Telemetry context: one metrics registry + one span tracer.

A :class:`Telemetry` object is the per-engine observability context.
It is threaded *explicitly* through the layers (solver, low-level
engine, Chef, session, parallel workers) — there are no globals, so
concurrent sessions in one process stay isolated.  Components that are
constructed without one get a private disabled context: their metrics
still accumulate (counters are always on — they back the stats objects
benchmarks read), but no spans are recorded.

Tracing is opt-in because spans cost two clock reads and an event
append each.  Disabled-mode overhead is a single branch: hot code
guards on ``telemetry.enabled`` (or calls :meth:`Telemetry.span`,
which returns the shared no-op span); the benchmark suite holds this
to ≤5% on the dispatch microbenchmark.

Span events use wall-clock seconds from ``time.perf_counter`` —
on Linux a system-wide monotonic clock, so spans recorded in forked
worker processes land on the same time axis as the coordinator's and
the Chrome-trace export shows real lane overlap.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, merge_snapshots

__all__ = ["NULL_SPAN", "Span", "Telemetry"]

#: Slowest-observation capture depth for span histograms.
_KEEP_SLOWEST = 5


class _NullSpan:
    """Shared no-op span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One timed phase; records a trace event and a duration histogram.

    Use as a context manager::

        with telemetry.span("solver.check", atoms=len(atoms)) as span:
            result = ...
            span.set(status=result.status)

    On exit the span appends a Chrome-trace-shaped event to its
    telemetry context and observes its duration into the
    ``span.<name>`` histogram (with slowest-capture, labelled by the
    span's attributes — this is where "what were the slowest solver
    queries" comes from).
    """

    __slots__ = ("_telemetry", "name", "attrs", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict):
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> bool:
        end = time.perf_counter()
        telemetry = self._telemetry
        duration = end - self._start
        telemetry.events.append(
            {
                "name": self.name,
                "ph": "X",
                "ts": self._start,
                "dur": duration,
                "pid": telemetry.pid,
                "lane": telemetry.lane,
                "args": self.attrs,
            }
        )
        label = (
            ", ".join(f"{k}={v}" for k, v in self.attrs.items()) if self.attrs else None
        )
        telemetry.registry.histogram("span." + self.name, _KEEP_SLOWEST).observe(
            duration, label=label
        )
        return False


class Telemetry:
    """Per-engine observability context: registry + tracer + event log.

    ``enabled`` gates the *tracer* only; the registry is always live.
    ``lane`` names this context's swimlane in trace exports
    ("coordinator", "worker-<pid>", ...).
    """

    def __init__(
        self,
        enabled: bool = False,
        registry: Optional[MetricsRegistry] = None,
        lane: str = "main",
    ):
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.lane = lane
        self.pid = os.getpid()
        #: span/instant events in internal form (seconds; see exporters).
        self.events: List[Dict] = []
        #: adopted (registry, baseline-snapshot) pairs — foreign registries
        #: whose numbers belong in this context's metrics() view.
        self._adopted: List = []
        #: adopted static snapshots (e.g. merged per-worker registries).
        self._adopted_snapshots: List[Dict] = []

    def child(self, lane: str) -> "Telemetry":
        """A view of this context under another lane name.

        Shares the registry, the event log (the lists are the same
        objects) and the enabled flag; only the lane label differs —
        the coordinator uses this to put its ship/merge spans on their
        own swimlane next to the engine's.
        """
        twin = Telemetry(enabled=self.enabled, registry=self.registry, lane=lane)
        twin.events = self.events
        twin._adopted = self._adopted
        twin._adopted_snapshots = self._adopted_snapshots
        return twin

    # -- tracing --------------------------------------------------------------

    def span(self, name: str, **attrs):
        """A timed span, or the shared no-op when tracing is disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs) -> None:
        """Zero-duration marker event (dropped when tracing is disabled)."""
        if not self.enabled:
            return
        self.events.append(
            {
                "name": name,
                "ph": "i",
                "ts": time.perf_counter(),
                "dur": 0.0,
                "pid": self.pid,
                "lane": self.lane,
                "args": attrs,
            }
        )

    def drain_events(self) -> List[Dict]:
        """Return and clear the event log (workers ship these per batch)."""
        events, self.events = self.events, []
        return events

    def extend_events(self, events) -> None:
        """Fold another context's drained events into this log."""
        self.events.extend(events)

    # -- metrics aggregation --------------------------------------------------

    def adopt_registry(self, registry: MetricsRegistry, baseline: bool = False) -> None:
        """Include a foreign registry in :meth:`metrics`.

        ``baseline=True`` snapshots the registry now and reports only
        the delta — used for the process-wide model cache, whose
        counters are cumulative across runs.  Adopting the context's
        own registry is a no-op.
        """
        if registry is self.registry:
            return
        if any(reg is registry for reg, _base in self._adopted):
            return
        self._adopted.append((registry, registry.snapshot() if baseline else None))

    def adopt_snapshot(self, snapshot: Dict) -> None:
        """Include a static snapshot (e.g. merged worker totals)."""
        self._adopted_snapshots.append(snapshot)

    def metrics(self) -> Dict:
        """Merged snapshot: own registry + adopted registries/snapshots."""
        parts: List[Dict] = [self.registry.snapshot()]
        for registry, base in self._adopted:
            snap = registry.snapshot()
            if base:
                snap = _subtract(snap, base)
            parts.append(snap)
        parts.extend(self._adopted_snapshots)
        return merge_snapshots(parts)


def _subtract(snapshot: Dict, baseline: Dict) -> Dict:
    """Numeric delta of two snapshots (histograms pass through)."""
    out: Dict = {}
    for name, value in snapshot.items():
        if isinstance(value, dict):
            out[name] = value
        else:
            out[name] = value - baseline.get(name, 0)
    return out
