"""Concolic low-level symbolic execution engine (the S2E stand-in).

The engine executes one LVM state at a time along its concrete path (the
bold line of Fig. 1 in the paper), forking *pending* alternate states at
symbolic branches.  Pending states have no input assignment; they are
activated lazily when a search strategy selects them, at which point the
solver either produces an assignment (a new test input) or proves the
alternate infeasible.

Symbolic memory addresses are handled by bounded forking over feasible
concrete values — the behaviour the paper attributes to low-level engines
("fork the execution state for each possible concrete value", §4.2), which
is what makes un-neutralised hash functions explode.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GuestFault
from repro.lowlevel import api
from repro.lowlevel.expr import (
    Expr,
    Sym,
    evaluate,
    is_symbolic,
    mk_binop,
    mk_unop,
    negate_condition,
    truth_condition,
)
from repro.lowlevel.machine import MachineState, Status
from repro.lowlevel.program import Opcode, Program
from repro.obs.metrics import MetricsRegistry, counter_property
from repro.obs.telemetry import Telemetry
from repro.solver.backend import SolverBackend
from repro.solver.constraints import ConstraintSet
from repro.solver.csp import make_default_solver

_CONCRETE_BIN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "land": lambda a, b: int(bool(a) and bool(b)),
    "lor": lambda a, b: int(bool(a) or bool(b)),
}

_MAX_SHIFT = 512

#: Terminal statuses that represent exploration artifacts rather than
#: guest behaviours (unsat alternates, solver timeouts, deadline cuts).
#: Higher layers — the Chef test-case hooks, the session event bus —
#: filter these up front so discarded paths cost nothing.
DISCARDED_STATUSES = frozenset(
    (Status.ASSUME_FAILED, Status.INFEASIBLE, Status.SOLVER_TIMEOUT, Status.DEADLINE)
)

#: atomic under the GIL — engines are built from concurrent session
#: threads under the service daemon, and a read-increment-write race
#: here would hand two engines the same namespace.
_ENGINE_COUNTER = itertools.count(1)


def fresh_namespace(prefix: str = "e") -> str:
    """Process-unique symbolic-variable namespace (e.g. ``"e3:"``).

    Engines namespace their variables so several (with different input
    domains) can coexist in one process despite the global Sym registry;
    a parallel run pins one namespace across its whole worker pool.
    """
    return f"{prefix}{next(_ENGINE_COUNTER)}:"


@dataclass
class PathEvent:
    """A high-level event reported by the guest (EVENT hypercall)."""

    kind: int
    a: int
    b: int


@dataclass
class ExecutorConfig:
    """Tunables of the low-level engine."""

    #: per-path executed-instruction budget (the paper's hang detector uses
    #: a 60 s wall-clock bound; we use a deterministic instruction bound).
    max_instrs_per_path: int = 2_000_000
    #: bounded fan-out when dereferencing a symbolic pointer.
    symptr_fork_limit: int = 3
    #: solver step budget for each symbolic-pointer enumeration probe.
    symptr_solver_budget: int = 2_000
    #: cap on upper_bound results for unbounded expressions.
    upper_bound_cap: int = 1 << 20
    #: optional wall-clock deadline (time.monotonic()); paths running past
    #: it stop with Status.DEADLINE and are not turned into test cases.
    deadline: Optional[float] = None
    #: policy for pending states whose feasibility check returns unknown
    #: (solver deadline/budget): "prune" discards the state, "feasible"
    #: optimistically activates it under its seed assignment — the seed
    #: satisfied every constraint up to the last fork, so the replayed
    #: prefix is real even if the final branch is unproven.
    unknown_policy: str = "prune"


class State:
    """One symbolic execution state (machine + path condition + input)."""

    __slots__ = (
        "sid", "machine", "path_condition", "assignment", "seed_assignment",
        "pending", "parent_sid", "fork_ll_pc", "fork_group", "fork_index",
        "depth", "instr_count", "hl_instr_count", "events", "debug",
        "sym_buffers", "fault_message", "meta", "_conc_memo",
        "_last_fork_loc", "_consec_forks",
    )

    def __init__(self, sid: int, machine: MachineState):
        self.sid = sid
        self.machine = machine
        self.path_condition: ConstraintSet = ConstraintSet.empty()
        self.assignment: Optional[Dict[str, int]] = {}
        self.seed_assignment: Dict[str, int] = {}
        self.pending = False
        self.parent_sid: Optional[int] = None
        self.fork_ll_pc: Optional[int] = None
        self.fork_group: Optional[Tuple[int, int]] = None
        self.fork_index: int = 0
        self.depth = 0
        self.instr_count = 0
        self.hl_instr_count = 0
        self.events: List[PathEvent] = []
        self.debug: List = []
        #: list of (name_base, addr, length, lo, hi) symbolic buffers.
        self.sym_buffers: List[Tuple[str, int, int, int, int]] = []
        self.fault_message: Optional[str] = None
        #: scratch area for higher layers (Chef attaches HL bookkeeping).
        self.meta: Dict = {}
        self._conc_memo: dict = {}
        self._last_fork_loc: Optional[int] = None
        self._consec_forks = 0

    # -- concrete shadow ----------------------------------------------------

    def conc(self, value) -> int:
        """Concrete value of ``value`` under this state's assignment."""
        if not isinstance(value, Expr):
            return value
        if self.assignment is None:
            raise GuestFault("pending state has no concrete assignment")
        env = self.assignment
        memo = self._conc_memo
        missing = [v for v in value.free_vars() if v.name not in env]
        for var in missing:
            env[var.name] = self.seed_assignment.get(var.name, var.lo)
        return evaluate(value, env, memo)

    @property
    def status(self) -> str:
        if self.pending:
            return Status.PENDING
        return self.machine.status

    def terminated(self) -> bool:
        return self.machine.status in Status.TERMINAL

    def add_constraint(self, atom) -> None:
        if isinstance(atom, Expr):
            self.path_condition = self.path_condition.append(atom)
            # Concolic invariant: every atom this state adds holds under
            # its own concrete assignment (conc() filled in the atom's
            # variables while deciding which way to go), so the extended
            # set is satisfiable by construction — record the model so
            # the solver can answer sibling/descendant queries
            # incrementally instead of re-solving the whole chain.
            if self.assignment is not None:
                self.path_condition.note_model(self.assignment)

    def input_values(self) -> Dict[str, List[int]]:
        """Concrete content of every symbolic buffer (the test case).

        Keys are the display names ("b0", "b1", ... in creation order);
        the engine-unique namespace prefix is stripped.
        """
        result: Dict[str, List[int]] = {}
        for base, _addr, length, lo, _hi in self.sym_buffers:
            values = []
            for i in range(length):
                name = f"{base}_{i}"
                if self.assignment is not None and name in self.assignment:
                    values.append(self.assignment[name])
                else:
                    values.append(self.seed_assignment.get(name, lo))
            result[base.rsplit(":", 1)[-1]] = values
        return result

    def __repr__(self) -> str:
        return (
            f"State(sid={self.sid}, status={self.status}, "
            f"|pc|={len(self.path_condition)}, instrs={self.instr_count})"
        )


#: Counter fields, registered as ``engine.<field>`` in the obs registry.
_ENGINE_STAT_FIELDS = (
    "paths_completed",
    "forks",
    "symptr_forks",
    "instrs_executed",
    "states_activated",
    "states_infeasible",
    "states_timeout",
    "states_unknown_adopted",
    "events",
)


class EngineStats:
    """Execution counters — an attribute view over ``engine.*`` registry
    counters (see :mod:`repro.obs.metrics`), so the engine, benchmarks
    and ``Session.metrics()`` all read one store."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            field: self.registry.counter(f"engine.{field}")
            for field in _ENGINE_STAT_FIELDS
        }

    def as_dict(self) -> Dict[str, int]:
        return {field: counter.value for field, counter in self._counters.items()}


for _engine_field in _ENGINE_STAT_FIELDS:
    setattr(EngineStats, _engine_field, counter_property(_engine_field))
del _engine_field


class LowLevelEngine:
    """Executes LIR symbolically; higher layers drive path selection."""

    def __init__(
        self,
        program: Program,
        solver: Optional[SolverBackend] = None,
        config: Optional[ExecutorConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if not program.finalized:
            program.finalize()
        self.program = program
        if telemetry is None:
            # Inherit the solver's context when it has one, else a fresh
            # (disabled) private context — metrics always accumulate.
            telemetry = getattr(solver, "telemetry", None) or Telemetry()
        self.telemetry = telemetry
        self.solver: SolverBackend = (
            solver if solver is not None else make_default_solver(telemetry=telemetry)
        )
        # One metrics() view per engine: adopt the registries of a
        # caller-supplied solver and of the (possibly process-wide,
        # hence baseline-delta'd) model cache.
        solver_registry = getattr(getattr(self.solver, "stats", None), "registry", None)
        if solver_registry is not None:
            telemetry.adopt_registry(solver_registry)
        cache_registry = getattr(getattr(self.solver, "cache", None), "registry", None)
        if cache_registry is not None:
            telemetry.adopt_registry(cache_registry, baseline=True)
        self.config = config if config is not None else ExecutorConfig()
        self.stats = EngineStats(telemetry.registry)
        self._next_sid = 0
        self.namespace = fresh_namespace()
        # Listener hooks (set by the Chef engine).
        self.on_log_pc: Optional[Callable[[State, int, int], None]] = None
        self.on_fork: Optional[Callable[[State, State], None]] = None
        self.on_path_end: Optional[Callable[[State], None]] = None
        self.on_event: Optional[Callable[[State, PathEvent], None]] = None

    # -- state management ----------------------------------------------------

    def new_state(self) -> State:
        state = State(self._fresh_sid(), MachineState.boot(self.program))
        return state

    def _fresh_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _fork(self, parent: State, alt_atom, alt_target: Optional[int]) -> State:
        child = State(self._fresh_sid(), parent.machine.fork())
        # Structural sharing: the child's path condition extends the
        # parent's chain in place — no per-fork copying of the prefix.
        child.path_condition = parent.path_condition
        if isinstance(alt_atom, Expr):
            child.path_condition = child.path_condition.append(alt_atom)
        child.assignment = None
        child.seed_assignment = dict(parent.assignment or {})
        child.pending = True
        child.parent_sid = parent.sid
        child.depth = parent.depth + 1
        child.instr_count = parent.instr_count
        child.hl_instr_count = parent.hl_instr_count
        child.events = list(parent.events)
        child.sym_buffers = list(parent.sym_buffers)
        if alt_target is not None:
            child.machine.top.pc = alt_target
        # Fork-weight bookkeeping (§3.4): consecutive forks at one location.
        loc = parent.machine.current_ll_pc()
        child.fork_ll_pc = loc
        if parent._last_fork_loc == loc:
            parent._consec_forks += 1
        else:
            parent._last_fork_loc = loc
            parent._consec_forks = 1
        child.fork_group = (parent.sid, loc)
        child.fork_index = parent._consec_forks
        self.stats.forks += 1
        if self.on_fork:
            self.on_fork(parent, child)
        return child

    def activate(self, state: State) -> str:
        """Give a pending state an input assignment.

        Returns "sat", "unsat" or "timeout"; the state's status is updated
        accordingly.
        """
        if not state.pending:
            return "sat"
        telemetry = self.telemetry
        if telemetry.enabled:
            with telemetry.span(
                "engine.activate", sid=state.sid, atoms=len(state.path_condition)
            ) as span:
                verdict = self._activate_pending(state)
                span.set(verdict=verdict)
            return verdict
        return self._activate_pending(state)

    def _activate_pending(self, state: State) -> str:
        """Feasibility probe + model assignment for a pending state."""
        result = self.solver.check(
            state.path_condition, hint=state.seed_assignment
        )
        if result.is_unknown:
            if self.config.unknown_policy == "feasible":
                # Graceful degradation: adopt the seed assignment and
                # keep exploring rather than losing the whole subtree to
                # one wedged query.
                state.assignment = dict(state.seed_assignment)
                state.pending = False
                state._conc_memo = {}
                self.stats.states_activated += 1
                self.stats.states_unknown_adopted += 1
                return "sat"
            state.pending = False
            state.machine.status = Status.SOLVER_TIMEOUT
            self.stats.states_timeout += 1
            return "timeout"
        if result.is_unsat:
            state.pending = False
            state.machine.status = Status.INFEASIBLE
            self.stats.states_infeasible += 1
            return "unsat"
        assignment = dict(state.seed_assignment)
        assignment.update(result.model)
        state.assignment = assignment
        state.pending = False
        state._conc_memo = {}
        self.stats.states_activated += 1
        return "sat"

    # -- frontier exploration -------------------------------------------------

    def explore(self, max_states: int = 512, workers: int = 1, batch_size: int = 8):
        """Exhaustively explore from boot, optionally across processes.

        ``workers=1`` runs the classic in-process loop — activate/run on
        this engine instance, bit-for-bit identical to driving
        :meth:`run_path` by hand (no snapshotting anywhere on the path).
        ``workers>1`` shards the frontier across a
        :class:`~repro.parallel.coordinator.ParallelExplorer` pool.
        Returns an :class:`~repro.parallel.coordinator.ExploreResult`
        either way; for exhaustive runs the explored path set is
        identical across worker counts.
        """
        if workers > 1:
            from repro.parallel.coordinator import ParallelExplorer, warn_if_custom_backend
            from repro.solver.csp import DEFAULT_BUDGET

            warn_if_custom_backend(self.solver)
            explorer = ParallelExplorer(
                self.program,
                workers=workers,
                config=self.config,
                solver_budget=(
                    budget
                    if (budget := getattr(self.solver, "budget", None)) is not None
                    else DEFAULT_BUDGET
                ),
                batch_size=batch_size,
                telemetry=self.telemetry,
            )
            return explorer.explore(max_states=max_states)

        import time as _time

        from repro.parallel.coordinator import ExploreResult
        from repro.parallel.snapshot import path_record_of

        start_time = _time.monotonic()
        records = []
        state = self.new_state()
        queue = self.run_path(state)
        if state.terminated():
            records.append(path_record_of(state))
        states_run = 1
        while queue and states_run < max_states:
            candidate = queue.pop()
            if self.activate(candidate) != "sat":
                continue
            queue.extend(self.run_path(candidate))
            if candidate.terminated():
                records.append(path_record_of(candidate))
            states_run += 1
        cache = getattr(self.solver, "cache", None)
        return ExploreResult(
            records=records,
            engine_stats=self.stats.as_dict(),
            solver_stats=self.solver.stats.as_dict() if hasattr(self.solver, "stats") else {},
            cache_stats=cache.stats_dict() if hasattr(cache, "stats_dict") else {},
            workers=1,
            batches=0,
            states_run=states_run,
            pending_left=len(queue),
            wall_time=_time.monotonic() - start_time,
        )

    # -- path execution -------------------------------------------------------

    def run_path(self, state: State, max_instrs: Optional[int] = None) -> List[State]:
        """Run ``state`` along its concrete path until it terminates.

        Returns the pending alternate states forked along the way.
        Instrumented at *batch* granularity — one span per executed
        path, never per instruction, so the dispatch loop itself stays
        untouched and disabled-mode overhead is one branch per path.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._run_path_impl(state, max_instrs)
        start_instrs = state.instr_count
        with telemetry.span("engine.run_path", sid=state.sid) as span:
            pending = self._run_path_impl(state, max_instrs)
            span.set(
                instrs=state.instr_count - start_instrs,
                forks=len(pending),
                status=state.status,
            )
        return pending

    def _run_path_impl(self, state: State, max_instrs: Optional[int]) -> List[State]:
        if state.pending:
            raise GuestFault("cannot run a pending state; activate() it first")
        pending: List[State] = []
        budget = max_instrs if max_instrs is not None else self.config.max_instrs_per_path
        machine = state.machine
        try:
            self._exec_loop(state, pending, budget)
        except GuestFault as fault:
            machine.status = Status.FAULT
            state.fault_message = str(fault)
        except ZeroDivisionError:
            machine.status = Status.FAULT
            state.fault_message = "division by zero"
        if machine.status in Status.TERMINAL:
            self.stats.paths_completed += 1
            if self.on_path_end:
                self.on_path_end(state)
        return pending

    def _exec_loop(self, state: State, pending: List[State], budget: int) -> None:
        machine = state.machine
        conc = state.conc
        deadline = self.config.deadline
        while machine.status == Status.RUNNING:
            if state.instr_count >= budget:
                machine.status = Status.BUDGET_EXCEEDED
                return
            if (
                deadline is not None
                and state.instr_count % 4096 == 0
                and time.monotonic() > deadline
            ):
                machine.status = Status.DEADLINE
                return
            frame = machine.frames[-1]
            instrs = frame.func.instrs
            if frame.pc >= len(instrs):
                raise GuestFault(
                    f"fell off the end of {frame.func.name!r} at pc {frame.pc}"
                )
            ins = instrs[frame.pc]
            op = ins.op
            regs = frame.regs
            state.instr_count += 1
            self.stats.instrs_executed += 1

            if op == Opcode.BIN:
                va = regs[ins.a]
                vb = regs[ins.b]
                binop = ins.extra
                if type(va) is int and type(vb) is int:
                    func = _CONCRETE_BIN.get(binop)
                    if func is not None:
                        regs[ins.dst] = func(va, vb)
                    else:
                        regs[ins.dst] = self._concrete_slow_bin(binop, va, vb)
                else:
                    regs[ins.dst] = self._symbolic_bin(state, binop, va, vb)
                frame.pc += 1
            elif op == Opcode.CONST:
                regs[ins.dst] = ins.a
                frame.pc += 1
            elif op == Opcode.MOVE:
                regs[ins.dst] = regs[ins.a]
                frame.pc += 1
            elif op == Opcode.LOAD:
                addr = self._resolve_address(state, regs[ins.a], pending)
                regs[ins.dst] = machine.mem_read(addr)
                frame.pc += 1
            elif op == Opcode.STORE:
                addr = self._resolve_address(state, regs[ins.a], pending)
                machine.mem_write(addr, regs[ins.b])
                frame.pc += 1
            elif op == Opcode.BR:
                cond = regs[ins.a]
                if type(cond) is int:
                    frame.pc = ins.b if cond else ins.extra
                else:
                    conc_cond = conc(cond)
                    if conc_cond:
                        taken, alt = ins.b, ins.extra
                        atom = truth_condition(cond)
                        alt_atom = negate_condition(cond)
                    else:
                        taken, alt = ins.extra, ins.b
                        atom = negate_condition(cond)
                        alt_atom = truth_condition(cond)
                    if isinstance(alt_atom, Expr):
                        pending.append(self._fork(state, alt_atom, alt))
                    state.add_constraint(atom)
                    frame.pc = taken
            elif op == Opcode.JMP:
                frame.pc = ins.a
            elif op == Opcode.CALL:
                func = self.program.get_function(ins.extra)
                args = [regs[r] for r in ins.args or ()]
                frame.pc += 1
                machine.push_frame(func, args, ins.dst)
            elif op == Opcode.RET:
                value = regs[ins.a] if ins.a is not None else 0
                machine.pop_frame(value)
            elif op == Opcode.UN:
                va = regs[ins.a]
                if type(va) is int:
                    if ins.extra == "neg":
                        regs[ins.dst] = -va
                    elif ins.extra == "lnot":
                        regs[ins.dst] = int(va == 0)
                    else:
                        regs[ins.dst] = ~va
                else:
                    regs[ins.dst] = mk_unop(ins.extra, va)
                frame.pc += 1
            elif op == Opcode.HYPER:
                args = [regs[r] for r in ins.args or ()]
                frame.pc += 1
                result = self._hypercall(state, ins.extra, args, pending)
                if ins.dst is not None:
                    regs[ins.dst] = result if result is not None else 0
            else:  # pragma: no cover - all opcodes covered
                raise GuestFault(f"unknown opcode {op}")

    # -- operators -------------------------------------------------------------

    def _concrete_slow_bin(self, op: str, a: int, b: int) -> int:
        if op == "div":
            if b == 0:
                raise GuestFault("division by zero")
            return a // b
        if op == "mod":
            if b == 0:
                raise GuestFault("modulo by zero")
            return a % b
        if op == "shl":
            if b < 0 or b > _MAX_SHIFT:
                raise GuestFault(f"shift amount {b} out of range")
            return a << b
        if op == "shr":
            if b < 0 or b > _MAX_SHIFT:
                raise GuestFault(f"shift amount {b} out of range")
            return a >> b
        raise GuestFault(f"unknown binary operator {op!r}")

    def _symbolic_bin(self, state: State, op: str, va, vb):
        if op in ("div", "mod"):
            if is_symbolic(vb):
                conc_b = state.conc(vb)
                if conc_b == 0:
                    raise GuestFault(f"symbolic {op} by zero on this path")
                # Constrain the divisor away from zero on this path; the
                # zero-divisor path is dropped (documented deviation).
                state.add_constraint(mk_binop("ne", vb, 0))
            elif vb == 0:
                raise GuestFault(f"{op} by zero")
        if op in ("shl", "shr") and is_symbolic(vb):
            conc_b = state.conc(vb)
            state.add_constraint(mk_binop("eq", vb, conc_b))
            vb = conc_b
        if op in ("shl", "shr") and (vb < 0 or vb > _MAX_SHIFT):
            raise GuestFault(f"shift amount {vb} out of range")
        return mk_binop(op, va, vb)

    # -- symbolic pointers -------------------------------------------------------

    def _resolve_address(self, state: State, addr_val, pending: List[State]):
        if type(addr_val) is int:
            return addr_val
        conc_addr = state.conc(addr_val)
        # Bounded enumeration of alternative targets (§4.2).
        known = [conc_addr]
        for _ in range(self.config.symptr_fork_limit):
            probe = state.path_condition.extend(
                mk_binop("ne", addr_val, v) for v in known
            )
            result = self.solver.check(
                probe,
                hint=state.assignment,
                budget=self.config.symptr_solver_budget,
            )
            if not result.is_sat:
                break
            env = dict(state.seed_assignment)
            env.update(result.model)
            other = evaluate(addr_val, env)
            child = self._fork(state, mk_binop("eq", addr_val, other), None)
            pending.append(child)
            self.stats.symptr_forks += 1
            known.append(other)
        state.add_constraint(mk_binop("eq", addr_val, conc_addr))
        return conc_addr

    # -- hypercalls ---------------------------------------------------------------

    def _hypercall(self, state: State, name: str, args: List, pending: List[State]):
        if name == api.LOG_PC:
            pc = state.conc(args[0])
            opcode = state.conc(args[1]) if len(args) > 1 else 0
            state.hl_instr_count += 1
            if self.on_log_pc:
                self.on_log_pc(state, pc, opcode)
            return 0
        if name == api.MAKE_SYMBOLIC:
            return self._make_symbolic(state, args)
        if name == api.IS_SYMBOLIC:
            return int(any(is_symbolic(a) for a in args))
        if name == api.CONCRETIZE:
            value = args[0]
            if not is_symbolic(value):
                return value
            conc = state.conc(value)
            state.add_constraint(mk_binop("eq", value, conc))
            return conc
        if name == api.UPPER_BOUND:
            return self._upper_bound(state, args[0])
        if name == api.ASSUME:
            cond = args[0]
            if not is_symbolic(cond):
                if cond == 0:
                    state.machine.status = Status.ASSUME_FAILED
                return 0
            if state.conc(cond) == 0:
                state.machine.status = Status.ASSUME_FAILED
                return 0
            state.add_constraint(truth_condition(cond))
            return 0
        if name == api.START_SYMBOLIC:
            state.meta["symbolic_started"] = True
            return 0
        if name == api.END_SYMBOLIC:
            state.machine.status = Status.HALTED
            state.machine.halt_code = state.conc(args[0]) if args else 0
            return 0
        if name == api.OUT:
            state.machine.output.append(state.conc(args[0]))
            return 0
        if name == api.EVENT:
            event = PathEvent(
                kind=state.conc(args[0]),
                a=state.conc(args[1]) if len(args) > 1 else 0,
                b=state.conc(args[2]) if len(args) > 2 else 0,
            )
            state.events.append(event)
            self.stats.events += 1
            if self.on_event:
                self.on_event(state, event)
            return 0
        if name == api.ABORT:
            code = state.conc(args[0]) if args else 1
            state.machine.status = Status.FAULT
            state.machine.halt_code = code
            state.fault_message = f"guest abort({code})"
            return 0
        if name == api.TRACE:
            state.debug.append(args[0] if args else None)
            return 0
        raise GuestFault(f"unknown hypercall {name!r}")

    def _make_symbolic(self, state: State, args: List) -> int:
        addr = state.conc(args[0])
        length = state.conc(args[1])
        lo = state.conc(args[2]) if len(args) > 2 else 0
        hi = state.conc(args[3]) if len(args) > 3 else 255
        base = f"{self.namespace}b{len(state.sym_buffers)}"
        state.sym_buffers.append((base, addr, length, lo, hi))
        for i in range(length):
            name = f"{base}_{i}"
            var = Sym(name, lo, hi)
            seed = state.conc(state.machine.mem_read(addr + i))
            seed = min(max(seed, lo), hi)
            if state.assignment is not None:
                state.assignment[name] = seed
            state.seed_assignment[name] = seed
            state.machine.mem_write(addr + i, var)
        return addr

    def _upper_bound(self, state: State, value) -> int:
        """Concrete upper bound of a symbolic value on this path (Fig. 6).

        A sound *over*-approximation suffices for allocation sizing, so we
        use interval analysis over the input domains instead of an exact
        optimisation query (which profiling showed dominates runtime).
        """
        if not is_symbolic(value):
            return value
        from repro.solver.interval import interval_eval

        domains = {v.name: (v.lo, v.hi) for v in value.free_vars()}
        bound = interval_eval(value, domains).hi
        if bound is None:
            return self.config.upper_bound_cap
        conc = state.conc(value)
        return max(min(bound, self.config.upper_bound_cap), conc)
