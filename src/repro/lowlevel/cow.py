"""Copy-on-write mapping used for forked machine state.

Forking a symbolic execution state must be cheap: the paper's engine forks
at every symbolic low-level branch, and interpreters branch constantly.
:class:`CowMap` is a layered dictionary: a fork shares the frozen parent
layers and writes go to a private top layer.  Layers are compacted when
the chain grows too deep, bounding lookup cost.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

_TOMBSTONE = object()

#: Compact the layer chain when it exceeds this depth.
_MAX_DEPTH = 12


class CowMap:
    """A mapping with O(1) logical copy.

    Only the operations the machine needs are implemented: get/set/delete,
    containment, iteration and length.  Keys and values are arbitrary.
    """

    __slots__ = ("_layers", "_top", "_size", "_base")

    def __init__(self, initial: Optional[Dict] = None):
        self._layers = []  # frozen ancestor dicts, oldest first
        self._top: Dict = dict(initial) if initial else {}
        self._size: Optional[int] = len(self._top)
        #: externally shared frozen dict at the bottom of the chain (set
        #: by :meth:`from_base_and_delta`); compaction keeps it distinct
        #: so :meth:`delta_against` can diff in O(writes) forever.
        self._base: Optional[Dict] = None

    def fork(self) -> "CowMap":
        """Return a logical copy sharing all current data."""
        if self._top:
            self._layers = self._layers + [self._top]
            self._top = {}
        # Compact BEFORE copying layer references to the child: one flatten
        # serves both maps (they are content-identical at this point),
        # instead of flattening the same chain twice.
        if len(self._layers) > _MAX_DEPTH:
            self._compact()
        child = CowMap.__new__(CowMap)
        child._layers = list(self._layers)
        child._top = {}
        child._size = self._size
        child._base = self._base
        return child

    def _compact(self) -> None:
        if self._base is not None and self._layers and self._layers[0] is self._base:
            # Merge everything *above* the shared base into one overlay,
            # leaving the base untouched at the bottom: folding it in
            # would permanently disable delta_against's O(writes) fast
            # path for this lineage.  Tombstones must survive the merge
            # when the base still holds the deleted key.
            base = self._layers[0]
            overlay: Dict = {}
            for layer in self._layers[1:]:
                overlay.update(layer)
            overlay.update(self._top)
            for key in [k for k, v in overlay.items() if v is _TOMBSTONE and k not in base]:
                del overlay[key]
            self._layers = [base, overlay]
            self._top = {}
            return
        flat: Dict = {}
        for layer in self._layers:
            flat.update(layer)
        flat.update(self._top)
        for key in [k for k, v in flat.items() if v is _TOMBSTONE]:
            del flat[key]
        self._layers = [flat]
        self._top = {}
        self._size = len(flat)

    def get(self, key, default=None):
        top = self._top
        if key in top:
            value = top[key]
            return default if value is _TOMBSTONE else value
        for layer in reversed(self._layers):
            if key in layer:
                value = layer[key]
                return default if value is _TOMBSTONE else value
        return default

    def __getitem__(self, key):
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def __setitem__(self, key, value) -> None:
        self._top[key] = value
        self._size = None

    def __delitem__(self, key) -> None:
        if key not in self:
            raise KeyError(key)
        self._top[key] = _TOMBSTONE
        self._size = None

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def keys(self) -> Iterator:
        seen = set()
        for layer in [self._top] + list(reversed(self._layers)):
            for key, value in layer.items():
                if key in seen:
                    continue
                seen.add(key)
                if value is not _TOMBSTONE:
                    yield key

    def items(self) -> Iterator:
        for key in self.keys():
            yield key, self[key]

    def __iter__(self) -> Iterator:
        return self.keys()

    def __len__(self) -> int:
        if self._size is None:
            self._size = sum(1 for _ in self.keys())
        return self._size

    def to_dict(self) -> Dict:
        """Materialise the full mapping (tests and debugging)."""
        return dict(self.items())

    # -- snapshot codec helpers (parallel exploration) ----------------------

    def delta_against(self, base: Dict) -> "Tuple[Dict, Tuple]":
        """``(changed, deleted)`` such that ``base`` + delta == this map.

        ``changed`` holds keys whose value differs from ``base`` (or are
        absent there); ``deleted`` lists ``base`` keys no longer present.
        Used to ship machine memory as a compact diff against the
        program's static data instead of the full flattened image.

        When ``base`` is this map's own bottom layer (boot states and
        restored snapshots share static data by reference), only the
        layers above it are scanned — the cost is proportional to actual
        writes, not the whole memory image.
        """
        if self._layers and self._layers[0] is base:
            overlay: Dict = {}
            for layer in self._layers[1:]:
                overlay.update(layer)
            overlay.update(self._top)
            changed = {}
            deleted = []
            for key, value in overlay.items():
                if value is _TOMBSTONE:
                    if key in base:
                        deleted.append(key)
                elif key not in base or base[key] is not value and base[key] != value:
                    changed[key] = value
            return changed, tuple(deleted)
        flat = self.to_dict()
        changed = {
            key: value
            for key, value in flat.items()
            if key not in base or base[key] is not value and base[key] != value
        }
        deleted = tuple(key for key in base if key not in flat)
        return changed, deleted

    @classmethod
    def from_base_and_delta(cls, base: Dict, changed: Dict, deleted=()) -> "CowMap":
        """Rebuild a map from a shared frozen ``base`` layer plus a delta.

        ``base`` is stored by reference as a frozen ancestor layer (the
        caller promises not to mutate it — program static data qualifies);
        the delta becomes the private top layer.  The base is kept even
        when it is currently empty: :meth:`delta_against`'s fast path
        matches the layer *by identity*, and dropping an empty base here
        would push every forked descendant of this map onto the full
        re-flatten path (and re-scan the shared image on every snapshot
        once the program's static data is non-trivial).
        """
        restored = cls.__new__(cls)
        restored._layers = [base] if base is not None else []
        restored._top = dict(changed)
        for key in deleted:
            restored._top[key] = _TOMBSTONE
        restored._size = None
        restored._base = base if base is not None else None
        return restored

    def __repr__(self) -> str:
        return f"CowMap({len(self)} entries, {len(self._layers)} layers)"
