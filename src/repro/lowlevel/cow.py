"""Copy-on-write mapping used for forked machine state.

Forking a symbolic execution state must be cheap: the paper's engine forks
at every symbolic low-level branch, and interpreters branch constantly.
:class:`CowMap` is a layered dictionary: a fork shares the frozen parent
layers and writes go to a private top layer.  Layers are compacted when
the chain grows too deep, bounding lookup cost.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

_TOMBSTONE = object()

#: Compact the layer chain when it exceeds this depth.
_MAX_DEPTH = 12


class CowMap:
    """A mapping with O(1) logical copy.

    Only the operations the machine needs are implemented: get/set/delete,
    containment, iteration and length.  Keys and values are arbitrary.
    """

    __slots__ = ("_layers", "_top", "_size")

    def __init__(self, initial: Optional[Dict] = None):
        self._layers = []  # frozen ancestor dicts, oldest first
        self._top: Dict = dict(initial) if initial else {}
        self._size: Optional[int] = len(self._top)

    def fork(self) -> "CowMap":
        """Return a logical copy sharing all current data."""
        child = CowMap.__new__(CowMap)
        if self._top:
            self._layers = self._layers + [self._top]
            self._top = {}
        child._layers = list(self._layers)
        child._top = {}
        child._size = self._size
        if len(self._layers) > _MAX_DEPTH:
            self._compact()
            child._compact()
        return child

    def _compact(self) -> None:
        flat: Dict = {}
        for layer in self._layers:
            flat.update(layer)
        flat.update(self._top)
        for key in [k for k, v in flat.items() if v is _TOMBSTONE]:
            del flat[key]
        self._layers = [flat]
        self._top = {}
        self._size = len(flat)

    def get(self, key, default=None):
        top = self._top
        if key in top:
            value = top[key]
            return default if value is _TOMBSTONE else value
        for layer in reversed(self._layers):
            if key in layer:
                value = layer[key]
                return default if value is _TOMBSTONE else value
        return default

    def __getitem__(self, key):
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def __setitem__(self, key, value) -> None:
        self._top[key] = value
        self._size = None

    def __delitem__(self, key) -> None:
        if key not in self:
            raise KeyError(key)
        self._top[key] = _TOMBSTONE
        self._size = None

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def keys(self) -> Iterator:
        seen = set()
        for layer in [self._top] + list(reversed(self._layers)):
            for key, value in layer.items():
                if key in seen:
                    continue
                seen.add(key)
                if value is not _TOMBSTONE:
                    yield key

    def items(self) -> Iterator:
        for key in self.keys():
            yield key, self[key]

    def __iter__(self) -> Iterator:
        return self.keys()

    def __len__(self) -> int:
        if self._size is None:
            self._size = sum(1 for _ in self.keys())
        return self._size

    def to_dict(self) -> Dict:
        """Materialise the full mapping (tests and debugging)."""
        return dict(self.items())

    def __repr__(self) -> str:
        return f"CowMap({len(self)} entries, {len(self._layers)} layers)"
