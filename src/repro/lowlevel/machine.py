"""Machine state of the LVM: frames, registers, word memory."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import GuestFault
from repro.lowlevel.cow import CowMap
from repro.lowlevel.program import Function, Program


class Status:
    """Lifecycle of one execution state."""

    RUNNING = "running"
    HALTED = "halted"              # clean end_symbolic / main returned
    FAULT = "fault"                # guest fault (abort, bad memory, ÷0)
    ASSUME_FAILED = "assume"       # assume() contradicted the concrete path
    BUDGET_EXCEEDED = "budget"     # per-path instruction budget (hang proxy)
    PENDING = "pending"            # forked alternate, not yet activated
    INFEASIBLE = "infeasible"      # solver proved the alternate impossible
    SOLVER_TIMEOUT = "solver-timeout"
    DEADLINE = "deadline"          # run wall-clock budget expired mid-path

    TERMINAL = {HALTED, FAULT, ASSUME_FAILED, BUDGET_EXCEEDED, INFEASIBLE,
                SOLVER_TIMEOUT, DEADLINE}


class Frame:
    """One activation record: function, program counter, registers."""

    __slots__ = ("func", "pc", "regs", "ret_dst")

    def __init__(self, func: Function, ret_dst: Optional[int] = None):
        self.func = func
        self.pc = 0
        self.regs: List = [0] * func.n_regs
        self.ret_dst = ret_dst

    def copy(self) -> "Frame":
        clone = Frame.__new__(Frame)
        clone.func = self.func
        clone.pc = self.pc
        clone.regs = list(self.regs)
        clone.ret_dst = self.ret_dst
        return clone


class MachineState:
    """Mutable machine state; forked via :meth:`fork`."""

    __slots__ = ("program", "frames", "memory", "status", "halt_code", "output")

    MAX_CALL_DEPTH = 256

    def __init__(self, program: Program, memory: Optional[CowMap] = None):
        if not program.finalized:
            raise GuestFault("program must be finalized before execution")
        self.program = program
        self.frames: List[Frame] = []
        # Static data rides along as the frozen bottom layer *by
        # reference* (writes only ever land in upper layers): boot costs
        # no copy, and snapshot deltas can diff against it in O(writes).
        self.memory = (
            memory
            if memory is not None
            else CowMap.from_base_and_delta(program.static_data, {})
        )
        self.status = Status.RUNNING
        self.halt_code: Optional[int] = None
        self.output: List[int] = []

    @classmethod
    def boot(cls, program: Program) -> "MachineState":
        state = cls(program)
        state.frames.append(Frame(program.get_function(program.entry)))
        return state

    def fork(self) -> "MachineState":
        clone = MachineState.__new__(MachineState)
        clone.program = self.program
        clone.frames = [f.copy() for f in self.frames]
        clone.memory = self.memory.fork()
        clone.status = self.status
        clone.halt_code = self.halt_code
        clone.output = list(self.output)
        return clone

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def current_ll_pc(self) -> int:
        """Globally unique id of the next instruction to execute."""
        frame = self.top
        return frame.func.instr_id(frame.pc)

    def push_frame(self, func: Function, args: List, ret_dst: Optional[int]) -> None:
        if len(self.frames) >= self.MAX_CALL_DEPTH:
            raise GuestFault("guest call stack overflow")
        frame = Frame(func, ret_dst=ret_dst)
        if len(args) != func.n_params:
            raise GuestFault(
                f"call to {func.name!r} with {len(args)} args, "
                f"expected {func.n_params}"
            )
        frame.regs[: len(args)] = args
        self.frames.append(frame)

    def pop_frame(self, return_value) -> None:
        finished = self.frames.pop()
        if not self.frames:
            # Returning from the entry function ends the execution cleanly.
            self.status = Status.HALTED
            self.halt_code = 0
            return
        if finished.ret_dst is not None:
            self.top.regs[finished.ret_dst] = return_value

    def mem_read(self, addr: int):
        return self.memory.get(addr, 0)

    def mem_write(self, addr: int, value) -> None:
        self.memory[addr] = value

    def read_words(self, addr: int, count: int) -> List:
        return [self.mem_read(addr + i) for i in range(count)]

    def write_words(self, addr: int, values) -> None:
        for i, v in enumerate(values):
            self.mem_write(addr + i, v)

    def snapshot_regs(self) -> Dict[str, List]:
        """Debugging helper: register contents per frame."""
        return {f"{i}:{frame.func.name}": list(frame.regs)
                for i, frame in enumerate(self.frames)}
