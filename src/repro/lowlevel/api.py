"""The Chef guest API (Table 1 of the paper).

Interpreters running on the LVM call these as ``HYPER`` instructions.  The
set mirrors the paper exactly, with two reproduction-specific additions
(``out`` for observable output, ``event`` for high-level events such as
uncaught interpreter exceptions, used by the test library).
"""

from __future__ import annotations

#: log_pc(pc, opcode) — declare the current high-level program location.
LOG_PC = "log_pc"
#: start_symbolic() — begin the symbolic phase of a test.
START_SYMBOLIC = "start_symbolic"
#: end_symbolic() — terminate the symbolic state (test case boundary).
END_SYMBOLIC = "end_symbolic"
#: make_symbolic(addr, len, lo, hi) — mark a guest buffer symbolic.
MAKE_SYMBOLIC = "make_symbolic"
#: concretize(value) -> int — pin a value to its concrete interpretation.
CONCRETIZE = "concretize"
#: upper_bound(value) -> int — max value on the current path (Fig. 6).
UPPER_BOUND = "upper_bound"
#: is_symbolic(value) -> 0/1.
IS_SYMBOLIC = "is_symbolic"
#: assume(expr) — constrain the current path.
ASSUME = "assume"

# Reproduction-specific extensions -----------------------------------------
#: out(value) — append a concretised word to the observable output.
OUT = "out"
#: event(kind, a, b) — report a high-level event (uncaught exception, ...).
EVENT = "event"
#: abort(code) — unrecoverable guest fault (interpreter crash).
ABORT = "abort"
#: trace(value) — debugging aid; concretises and records the value.
TRACE = "trace"

#: The calls the paper's Table 1 lists, in order.
TABLE1_CALLS = (
    LOG_PC,
    START_SYMBOLIC,
    END_SYMBOLIC,
    MAKE_SYMBOLIC,
    CONCRETIZE,
    UPPER_BOUND,
    IS_SYMBOLIC,
    ASSUME,
)

#: All hypercalls the executor accepts.
ALL_CALLS = TABLE1_CALLS + (OUT, EVENT, ABORT, TRACE)

#: Event kinds carried by the EVENT hypercall.
EVENT_UNCAUGHT_EXCEPTION = 1
EVENT_TEST_ARRIVED = 2
EVENT_CUSTOM = 3
