"""Symbolic expression DAG over unbounded integers.

Machine values are either plain Python ``int`` (concrete) or :class:`Expr`
nodes (symbolic).  Expressions are *interned*: structurally identical nodes
are the same object, which makes structural equality an ``is`` check and
lets downstream caches key on ``id()``.

Booleans are represented as the integers 0 and 1, as in machine code.
Comparison operators therefore produce 0/1-valued expressions, and branch
conditions are "expression != 0".

The factory functions :func:`mk_binop` / :func:`mk_unop` perform light
canonicalisation (constant folding, identities) at construction time; the
heavier rewrites live in :mod:`repro.lowlevel.simplify`.
"""

from __future__ import annotations

import operator
import sys
from hashlib import blake2b
from typing import Dict, FrozenSet, Iterable, Optional, Union

# Deeply nested expressions arise from loops over symbolic buffers (hash
# functions, string scans).  Recursive traversals need headroom.
if sys.getrecursionlimit() < 100_000:
    sys.setrecursionlimit(100_000)

Value = Union[int, "Expr"]

#: Binary operators.  Comparison operators evaluate to 0/1.
BINOPS = {
    "add", "sub", "mul", "div", "mod",
    "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
    "land", "lor",
}

#: Unary operators.  ``lnot`` evaluates to 0/1.
UNOPS = {"neg", "bnot", "lnot"}

_CMP_NEGATION = {
    "eq": "ne", "ne": "eq",
    "lt": "ge", "ge": "lt",
    "gt": "le", "le": "gt",
}

_CMP_SWAP = {"eq": "eq", "ne": "ne", "lt": "gt", "gt": "lt", "le": "ge", "ge": "le"}

COMPARISONS = frozenset(_CMP_NEGATION)

_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor", "eq", "ne", "land", "lor"})


class Expr:
    """Base class of interned symbolic expression nodes."""

    __slots__ = ("_free", "__weakref__")

    def free_vars(self) -> FrozenSet["Sym"]:
        raise NotImplementedError

    def evaluate(self, env: Dict[str, int], memo: Optional[dict] = None) -> int:
        """Evaluate under a complete assignment ``env`` (name -> int)."""
        raise NotImplementedError

    def depth(self) -> int:
        raise NotImplementedError

    # Interned nodes: identity is structural equality.
    def __eq__(self, other: object) -> bool:  # pragma: no cover - trivial
        return self is other

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return id(self)

    def __reduce__(self):
        # Pickle as a flat post-order instruction list, NOT as nested
        # constructor calls: pickle walks __reduce__ arguments recursively
        # in C, so an operand-chain encoding blows the C stack (hard
        # segfault, no RecursionError) on the deep expressions this module
        # raises sys.recursionlimit for.  Rebuilding goes through the
        # intern table, so a restored node IS the receiving process's
        # interned node and id()-keyed caches stay sound.
        instrs, refs = flatten_values((self,))
        return (_rebuild_graph, (instrs, refs[0]))


class Sym(Expr):
    """A symbolic input variable with an inclusive finite domain.

    Variables are created by ``make_symbolic`` guest calls; the domain is
    what makes the CSP solver's search finite (bytes default to 0..255).
    """

    __slots__ = ("name", "lo", "hi")

    _registry: Dict[str, "Sym"] = {}

    def __new__(cls, name: str, lo: int = 0, hi: int = 255):
        existing = cls._registry.get(name)
        if existing is not None:
            if (existing.lo, existing.hi) != (lo, hi):
                raise ValueError(
                    f"symbolic variable {name!r} re-declared with a different "
                    f"domain ({existing.lo},{existing.hi}) vs ({lo},{hi})"
                )
            return existing
        self = object.__new__(cls)
        self.name = name
        self.lo = lo
        self.hi = hi
        cls._registry[name] = self
        return self

    @classmethod
    def reset_registry(cls) -> None:
        """Forget all variables (used between independent engine runs)."""
        cls._registry.clear()
        _fp_memo.clear()

    def __reduce__(self):
        # Re-intern through the registry on unpickle: a variable of the
        # same name in the receiving process IS this variable.
        return (Sym, (self.name, self.lo, self.hi))

    def free_vars(self) -> FrozenSet["Sym"]:
        return frozenset((self,))

    def evaluate(self, env: Dict[str, int], memo: Optional[dict] = None) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise KeyError(f"no value for symbolic variable {self.name!r}") from None

    def depth(self) -> int:
        return 1

    def __repr__(self) -> str:
        return self.name


class BinExpr(Expr):
    """Binary operation node; operands are ``int`` or interned ``Expr``."""

    __slots__ = ("op", "a", "b")

    def free_vars(self) -> FrozenSet[Sym]:
        free = getattr(self, "_free", None)
        if free is None:
            free = _operand_free(self.a) | _operand_free(self.b)
            self._free = free
        return free

    def evaluate(self, env: Dict[str, int], memo: Optional[dict] = None) -> int:
        if memo is None:
            memo = {}
        return _eval(self, env, memo)

    def depth(self) -> int:
        return 1 + max(_operand_depth(self.a), _operand_depth(self.b))

    def __repr__(self) -> str:
        return f"({self.a!r} {self.op} {self.b!r})"


class UnExpr(Expr):
    """Unary operation node."""

    __slots__ = ("op", "a")

    def free_vars(self) -> FrozenSet[Sym]:
        free = getattr(self, "_free", None)
        if free is None:
            free = _operand_free(self.a)
            self._free = free
        return free

    def evaluate(self, env: Dict[str, int], memo: Optional[dict] = None) -> int:
        if memo is None:
            memo = {}
        return _eval(self, env, memo)

    def depth(self) -> int:
        return 1 + _operand_depth(self.a)

    def __repr__(self) -> str:
        return f"{self.op}({self.a!r})"


def _operand_free(v: Value) -> FrozenSet[Sym]:
    return v.free_vars() if isinstance(v, Expr) else frozenset()


def _operand_depth(v: Value) -> int:
    return v.depth() if isinstance(v, Expr) else 0


def is_symbolic(v: Value) -> bool:
    """True if ``v`` is a symbolic expression rather than a concrete int."""
    return isinstance(v, Expr)


# ---------------------------------------------------------------------------
# Concrete evaluation
# ---------------------------------------------------------------------------

def _concrete_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("guest division by zero")
    return a // b


def _concrete_mod(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("guest modulo by zero")
    return a % b


#: op name -> concrete implementation.  ``_eval`` is the hottest loop in
#: the engine (every conc() shadow evaluation lands here), so dispatch is
#: one dict lookup instead of a 19-arm if-chain.
BINOP_FUNCS: Dict[str, object] = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "div": _concrete_div,
    "mod": _concrete_mod,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
    "shl": operator.lshift,
    "shr": operator.rshift,
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "land": lambda a, b: int(bool(a) and bool(b)),
    "lor": lambda a, b: int(bool(a) or bool(b)),
}

UNOP_FUNCS: Dict[str, object] = {
    "neg": operator.neg,
    "bnot": operator.invert,
    "lnot": lambda a: int(a == 0),
}


def _apply_binop(op: str, a: int, b: int) -> int:
    func = BINOP_FUNCS.get(op)
    if func is None:
        raise ValueError(f"unknown binary operator {op!r}")
    return func(a, b)


def _apply_unop(op: str, a: int) -> int:
    func = UNOP_FUNCS.get(op)
    if func is None:
        raise ValueError(f"unknown unary operator {op!r}")
    return func(a)


def _eval(expr: Value, env: Dict[str, int], memo: dict) -> int:
    """Iterative post-order evaluation (avoids deep recursion)."""
    if not isinstance(expr, Expr):
        return expr
    key = id(expr)
    hit = memo.get(key)
    if hit is not None:
        return hit
    stack = [expr]
    while stack:
        node = stack[-1]
        nid = id(node)
        if nid in memo:
            stack.pop()
            continue
        if isinstance(node, Sym):
            memo[nid] = node.evaluate(env)
            stack.pop()
        elif isinstance(node, UnExpr):
            a = node.a
            if isinstance(a, Expr) and id(a) not in memo:
                stack.append(a)
                continue
            av = memo[id(a)] if isinstance(a, Expr) else a
            memo[nid] = UNOP_FUNCS[node.op](av)
            stack.pop()
        else:
            assert isinstance(node, BinExpr)
            a, b = node.a, node.b
            pushed = False
            if isinstance(a, Expr) and id(a) not in memo:
                stack.append(a)
                pushed = True
            if isinstance(b, Expr) and id(b) not in memo:
                stack.append(b)
                pushed = True
            if pushed:
                continue
            av = memo[id(a)] if isinstance(a, Expr) else a
            bv = memo[id(b)] if isinstance(b, Expr) else b
            memo[nid] = BINOP_FUNCS[node.op](av, bv)
            stack.pop()
    return memo[key]


def evaluate(v: Value, env: Dict[str, int], memo: Optional[dict] = None) -> int:
    """Evaluate a value (int or Expr) under a complete assignment."""
    if not isinstance(v, Expr):
        return v
    return _eval(v, env, {} if memo is None else memo)


# ---------------------------------------------------------------------------
# Interned constructors with light canonicalisation
# ---------------------------------------------------------------------------

_intern: Dict[tuple, Expr] = {}


def clear_intern_cache() -> None:
    """Drop the interning table (tests use this to bound memory)."""
    _intern.clear()
    # Fingerprints memoize on id(); a cleared table recycles ids.
    _fp_memo.clear()


def _key_of(v: Value):
    return id(v) if isinstance(v, Expr) else ("i", v)


def _intern_bin(op: str, a: Value, b: Value) -> BinExpr:
    key = (op, _key_of(a), _key_of(b))
    node = _intern.get(key)
    if node is None:
        node = object.__new__(BinExpr)
        node.op = op
        node.a = a
        node.b = b
        _intern[key] = node
    return node  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Stable structural fingerprints
# ---------------------------------------------------------------------------
#
# ``id()`` identifies an interned node only within one process.  Parallel
# exploration ships expression graphs between processes, so cross-process
# consumers (snapshot tests, model-cache delta merging, path identity)
# need a name for a node that every process computes identically.  The
# fingerprint is a 64-bit blake2b digest of the node's structure; it is
# independent of interning order, process, and PYTHONHASHSEED.

_fp_memo: Dict[int, int] = {}


def _fp_digest(*parts) -> int:
    payload = "\x1f".join(str(p) for p in parts).encode()
    return int.from_bytes(blake2b(payload, digest_size=8).digest(), "big")


def fingerprint(v: Value) -> int:
    """Stable 64-bit structural fingerprint of a value (int or Expr).

    Structurally identical expressions get identical fingerprints in
    every process; memoized per interned node.
    """
    if not isinstance(v, Expr):
        return _fp_digest("i", v)
    memo = _fp_memo
    hit = memo.get(id(v))
    if hit is not None:
        return hit
    stack = [v]
    while stack:
        node = stack[-1]
        nid = id(node)
        if nid in memo:
            stack.pop()
            continue
        if isinstance(node, Sym):
            memo[nid] = _fp_digest("s", node.name, node.lo, node.hi)
            stack.pop()
        elif isinstance(node, UnExpr):
            a = node.a
            if isinstance(a, Expr) and id(a) not in memo:
                stack.append(a)
                continue
            fa = memo[id(a)] if isinstance(a, Expr) else _fp_digest("i", a)
            memo[nid] = _fp_digest("u", node.op, fa)
            stack.pop()
        else:
            assert isinstance(node, BinExpr)
            a, b = node.a, node.b
            pushed = False
            if isinstance(a, Expr) and id(a) not in memo:
                stack.append(a)
                pushed = True
            if isinstance(b, Expr) and id(b) not in memo:
                stack.append(b)
                pushed = True
            if pushed:
                continue
            fa = memo[id(a)] if isinstance(a, Expr) else _fp_digest("i", a)
            fb = memo[id(b)] if isinstance(b, Expr) else _fp_digest("i", b)
            memo[nid] = _fp_digest("b", node.op, fa, fb)
            stack.pop()
    return memo[id(v)]


# ---------------------------------------------------------------------------
# Iterative pickling codec
# ---------------------------------------------------------------------------
#
# Expression graphs are serialized as a flat post-order instruction list;
# operands reference earlier instruction indices.  Flattening and
# rebuilding are both iterative, so arbitrarily deep graphs survive
# pickling (a nested-constructor encoding recurses inside pickle's C
# implementation and segfaults long before RecursionError can fire).
# Shared subgraphs are emitted once per flatten call; separately pickled
# values duplicate structure on the wire but re-intern to shared nodes on
# load.

def flatten_values(values) -> "tuple":
    """Flatten Exprs/ints into ``(instrs, refs)`` with shared structure.

    ``instrs`` is a tuple of instructions — ``("i", int)``, ``("s", name,
    lo, hi)``, ``("u", op, aref)``, ``("b", op, aref, bref)`` — where refs
    are indices of earlier instructions; ``refs[i]`` is the instruction
    index of ``values[i]``.  Nodes shared between the given values are
    emitted once.
    """
    instrs: list = []
    memo: Dict[int, int] = {}
    const_memo: Dict[int, int] = {}

    def const_ref(v) -> int:
        idx = const_memo.get(v)
        if idx is None:
            idx = len(instrs)
            instrs.append(("i", v))
            const_memo[v] = idx
        return idx

    for root in values:
        if not isinstance(root, Expr):
            const_ref(root)
            continue
        stack = [root]
        while stack:
            node = stack[-1]
            nid = id(node)
            if nid in memo:
                stack.pop()
                continue
            if isinstance(node, Sym):
                memo[nid] = len(instrs)
                instrs.append(("s", node.name, node.lo, node.hi))
                stack.pop()
            elif isinstance(node, UnExpr):
                a = node.a
                if isinstance(a, Expr):
                    if id(a) not in memo:
                        stack.append(a)
                        continue
                    aref = memo[id(a)]
                else:
                    aref = const_ref(a)
                memo[nid] = len(instrs)
                instrs.append(("u", node.op, aref))
                stack.pop()
            else:
                assert isinstance(node, BinExpr)
                a, b = node.a, node.b
                pushed = False
                if isinstance(a, Expr) and id(a) not in memo:
                    stack.append(a)
                    pushed = True
                if isinstance(b, Expr) and id(b) not in memo:
                    stack.append(b)
                    pushed = True
                if pushed:
                    continue
                aref = memo[id(a)] if isinstance(a, Expr) else const_ref(a)
                bref = memo[id(b)] if isinstance(b, Expr) else const_ref(b)
                memo[nid] = len(instrs)
                instrs.append(("b", node.op, aref, bref))
                stack.pop()
    refs = tuple(
        memo[id(v)] if isinstance(v, Expr) else const_memo[v] for v in values
    )
    return tuple(instrs), refs


def rebuild_values(instrs):
    """Evaluate a :func:`flatten_values` instruction list to values.

    Interned constructors (not mk_binop/mk_unop) rebuild each node: the
    graph already survived canonicalisation when it was first built, so
    its exact structure is restored and deduped against this process's
    intern table.
    """
    vals: list = []
    for ins in instrs:
        tag = ins[0]
        if tag == "i":
            vals.append(ins[1])
        elif tag == "s":
            vals.append(Sym(ins[1], ins[2], ins[3]))
        elif tag == "u":
            vals.append(_intern_un(ins[1], vals[ins[2]]))
        else:
            vals.append(_intern_bin(ins[1], vals[ins[2]], vals[ins[3]]))
    return vals


def rebuild_values_cached(instrs, cache: Optional[dict]):
    """Batch re-intern entry point: :func:`rebuild_values` memoized.

    The parallel snapshot codec encodes a whole chunk of states against
    one shared instruction table; every state in the chunk then restores
    against the *same* ``instrs`` tuple.  ``cache`` (keyed by
    ``id(instrs)``) makes the table rebuild once per chunk instead of
    once per state.  The caller owns the cache's lifetime and must keep
    the instruction tuples alive while it is in use (ids are only stable
    while the object is); pass ``None`` to bypass caching.
    """
    if cache is None:
        return rebuild_values(instrs)
    key = id(instrs)
    vals = cache.get(key)
    if vals is None:
        vals = cache[key] = rebuild_values(instrs)
    return vals


def _rebuild_graph(instrs, ref):
    """Unpickle target for a single flattened value."""
    return rebuild_values(instrs)[ref]


def _intern_un(op: str, a: Value) -> UnExpr:
    key = (op, _key_of(a))
    node = _intern.get(key)
    if node is None:
        node = object.__new__(UnExpr)
        node.op = op
        node.a = a
        _intern[key] = node
    return node  # type: ignore[return-value]


def mk_binop(op: str, a: Value, b: Value) -> Value:
    """Build ``a op b`` with constant folding and identity rules."""
    if op not in BINOPS:
        raise ValueError(f"unknown binary operator {op!r}")
    a_sym = isinstance(a, Expr)
    b_sym = isinstance(b, Expr)
    if not a_sym and not b_sym:
        return _apply_binop(op, a, b)

    # Canonical operand order for commutative ops: constant on the right.
    if op in _COMMUTATIVE and not a_sym and b_sym:
        a, b = b, a
        a_sym, b_sym = b_sym, a_sym
    # Comparisons with the constant on the left are flipped.
    if op in _CMP_SWAP and not a_sym and b_sym:
        a, b = b, a
        op = _CMP_SWAP[op]
        a_sym, b_sym = True, False

    if not b_sym:
        if op in ("add", "sub", "or", "xor", "shl", "shr") and b == 0:
            return a
        if op == "mul":
            if b == 0:
                return 0
            if b == 1:
                return a
        if op == "div" and b == 1:
            return a
        if op == "and" and b == 0:
            return 0
        if op == "land" and b == 0:
            return 0
        if op == "lor" and b != 0:
            return 1

    if a_sym and b_sym and a is b:
        if op in ("sub", "xor"):
            return 0
        if op in ("eq", "le", "ge"):
            return 1
        if op in ("ne", "lt", "gt"):
            return 0
        if op in ("and", "or"):
            return a

    # (x op c1) op c2 folding for associative chains with constants.
    if (
        not b_sym
        and isinstance(a, BinExpr)
        and not isinstance(a.b, Expr)
        and op == a.op
        and op in ("add", "mul", "and", "or", "xor")
    ):
        folded = _apply_binop(op, a.b, b)
        return mk_binop(op, a.a, folded)
    if not b_sym and isinstance(a, BinExpr) and not isinstance(a.b, Expr):
        if a.op == "add" and op == "sub":
            return mk_binop("add", a.a, a.b - b)
        if a.op == "sub" and op == "add":
            return mk_binop("add", a.a, b - a.b)
        # Comparison of an offset expression against a constant.
        if op in COMPARISONS and a.op == "add":
            return mk_binop(op, a.a, b - a.b)

    return _intern_bin(op, a, b)


def mk_unop(op: str, a: Value) -> Value:
    """Build ``op a`` with constant folding and double-negation removal."""
    if op not in UNOPS:
        raise ValueError(f"unknown unary operator {op!r}")
    if not isinstance(a, Expr):
        return _apply_unop(op, a)
    if op == "neg" and isinstance(a, UnExpr) and a.op == "neg":
        return a.a
    if op == "bnot" and isinstance(a, UnExpr) and a.op == "bnot":
        return a.a
    if op == "lnot":
        if isinstance(a, UnExpr) and a.op == "lnot":
            # lnot(lnot(x)) == (x != 0)
            return mk_binop("ne", a.a, 0)
        if isinstance(a, BinExpr) and a.op in _CMP_NEGATION:
            return mk_binop(_CMP_NEGATION[a.op], a.a, a.b)
    return _intern_un(op, a)


def negate_condition(cond: Value) -> Value:
    """Logical negation of a branch condition (``cond`` is truthy-int)."""
    if not isinstance(cond, Expr):
        return int(cond == 0)
    if isinstance(cond, BinExpr) and cond.op in _CMP_NEGATION:
        return mk_binop(_CMP_NEGATION[cond.op], cond.a, cond.b)
    return mk_unop("lnot", cond)


def truth_condition(cond: Value) -> Value:
    """Normalise a value used as a branch condition to a 0/1 expression."""
    if not isinstance(cond, Expr):
        return int(cond != 0)
    if isinstance(cond, BinExpr) and (cond.op in COMPARISONS or cond.op in ("land", "lor")):
        return cond
    if isinstance(cond, UnExpr) and cond.op == "lnot":
        return cond
    return mk_binop("ne", cond, 0)


def conjoin(conds: Iterable[Value]) -> Value:
    """Conjunction of conditions (used for reporting, not solving)."""
    acc: Value = 1
    for c in conds:
        acc = mk_binop("land", acc, truth_condition(c))
    return acc
