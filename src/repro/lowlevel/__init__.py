"""Low-level symbolic execution substrate (the S2E stand-in).

This subpackage provides:

- :mod:`repro.lowlevel.expr` — symbolic expression DAG over integers,
- :mod:`repro.lowlevel.cow` — copy-on-write mappings for cheap state forks,
- :mod:`repro.lowlevel.program` — the LIR instruction set and program model,
- :mod:`repro.lowlevel.machine` — machine state (frames, memory),
- :mod:`repro.lowlevel.executor` — the concolic low-level engine,
- :mod:`repro.lowlevel.api` — the Chef guest API (Table 1 of the paper).
"""

from repro.lowlevel.expr import (
    BinExpr,
    Expr,
    Sym,
    UnExpr,
    is_symbolic,
    mk_binop,
    mk_unop,
    negate_condition,
)
from repro.lowlevel.cow import CowMap
from repro.lowlevel.program import (
    Function,
    Instr,
    Opcode,
    Program,
)
from repro.lowlevel.machine import Frame, MachineState, Status
from repro.lowlevel.executor import (
    ExecutorConfig,
    LowLevelEngine,
    PathEvent,
    State,
)

__all__ = [
    "BinExpr",
    "CowMap",
    "Expr",
    "ExecutorConfig",
    "Frame",
    "Function",
    "Instr",
    "LowLevelEngine",
    "MachineState",
    "Opcode",
    "PathEvent",
    "Program",
    "State",
    "Status",
    "Sym",
    "UnExpr",
    "is_symbolic",
    "mk_binop",
    "mk_unop",
    "negate_condition",
]
