"""LIR: the instruction set of the low-level virtual machine (LVM).

The LVM plays the role of the x86 machine under S2E in the paper: the Clay
compiler (:mod:`repro.clay`) lowers interpreter source code to LIR, and the
low-level engine executes LIR symbolically, oblivious to any high-level
program the interpreter may itself be interpreting.

Design notes:

- register machine with per-function virtual registers (all operands are
  register indices; immediates are materialised by ``CONST``),
- word-oriented memory addressed by integers (no byte packing — this keeps
  the memory model simple without changing the path structure),
- ``HYPER`` instructions are the guest→engine API (Table 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MachineError


class Opcode:
    """LIR opcodes (plain ints for dispatch speed)."""

    CONST = 0   # dst <- imm (a holds the immediate)
    MOVE = 1    # dst <- reg a
    BIN = 2     # dst <- a <extra> b
    UN = 3      # dst <- <extra> a
    LOAD = 4    # dst <- memory[reg a]
    STORE = 5   # memory[reg a] <- reg b
    JMP = 6     # goto instruction index a
    BR = 7      # if reg a then goto b else goto extra
    CALL = 8    # dst <- call extra(args...)
    RET = 9     # return reg a (or 0 when a is None)
    HYPER = 10  # dst <- hypercall extra(args...)

    NAMES = {
        CONST: "const", MOVE: "move", BIN: "bin", UN: "un", LOAD: "load",
        STORE: "store", JMP: "jmp", BR: "br", CALL: "call", RET: "ret",
        HYPER: "hyper",
    }


class Instr:
    """One LIR instruction; field meaning depends on :class:`Opcode`."""

    __slots__ = ("op", "dst", "a", "b", "extra", "args")

    def __init__(self, op: int, dst=None, a=None, b=None, extra=None, args=None):
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b
        self.extra = extra
        self.args = args

    def __repr__(self) -> str:
        name = Opcode.NAMES.get(self.op, f"op{self.op}")
        parts = [name]
        if self.dst is not None:
            parts.append(f"r{self.dst} <-")
        if self.op == Opcode.CONST:
            parts.append(str(self.a))
        elif self.op == Opcode.BIN:
            parts.append(f"r{self.a} {self.extra} r{self.b}")
        elif self.op == Opcode.UN:
            parts.append(f"{self.extra} r{self.a}")
        elif self.op in (Opcode.MOVE, Opcode.LOAD, Opcode.RET):
            parts.append("r%s" % self.a if self.a is not None else "-")
        elif self.op == Opcode.STORE:
            parts.append(f"[r{self.a}] <- r{self.b}")
        elif self.op == Opcode.JMP:
            parts.append(f"@{self.a}")
        elif self.op == Opcode.BR:
            parts.append(f"r{self.a} ? @{self.b} : @{self.extra}")
        elif self.op in (Opcode.CALL, Opcode.HYPER):
            arglist = ", ".join(f"r{r}" for r in (self.args or ()))
            parts.append(f"{self.extra}({arglist})")
        return " ".join(parts)


@dataclass
class Function:
    """A compiled LIR function."""

    name: str
    n_params: int
    n_regs: int
    instrs: List[Instr] = field(default_factory=list)
    #: global id of instruction 0; assigned by Program.finalize().
    base_id: int = -1
    #: optional source line per instruction (debugging).
    lines: List[int] = field(default_factory=list)

    def instr_id(self, index: int) -> int:
        """Globally unique low-level PC for the instruction at ``index``."""
        if self.base_id < 0:
            raise MachineError(f"function {self.name!r} not finalized")
        return self.base_id + index

    def disassemble(self) -> str:
        header = f"fn {self.name}({self.n_params} params, {self.n_regs} regs)"
        body = "\n".join(f"  {i:4d}: {instr!r}" for i, instr in enumerate(self.instrs))
        return f"{header}\n{body}"


class Program:
    """A complete LIR program: functions, static data and an entry point."""

    def __init__(self, entry: str = "main"):
        self.functions: Dict[str, Function] = {}
        self.entry = entry
        #: initial memory image (word address -> int).
        self.static_data: Dict[int, int] = {}
        #: first address past static data; guests initialise heaps here.
        self.data_end: int = 0
        self._finalized = False
        self._id_to_loc: Dict[int, Tuple[str, int]] = {}

    def add_function(self, func: Function) -> None:
        if self._finalized:
            raise MachineError("cannot add functions after finalize()")
        if func.name in self.functions:
            raise MachineError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func

    def set_static(self, addr: int, values: Sequence[int]) -> None:
        for offset, value in enumerate(values):
            self.static_data[addr + offset] = value
        self.data_end = max(self.data_end, addr + len(values))

    def finalize(self) -> "Program":
        """Assign global instruction ids; must be called before execution."""
        next_id = 0
        self._id_to_loc.clear()
        for name in sorted(self.functions):
            func = self.functions[name]
            func.base_id = next_id
            for index in range(len(func.instrs)):
                self._id_to_loc[next_id + index] = (name, index)
            next_id += len(func.instrs)
        self._finalized = True
        return self

    @property
    def finalized(self) -> bool:
        return self._finalized

    def locate(self, instr_id: int) -> Tuple[str, int]:
        """Map a global low-level PC back to (function, index)."""
        try:
            return self._id_to_loc[instr_id]
        except KeyError:
            raise MachineError(f"unknown instruction id {instr_id}") from None

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise MachineError(f"undefined function {name!r}") from None

    def total_instrs(self) -> int:
        return sum(len(f.instrs) for f in self.functions.values())

    def disassemble(self) -> str:
        return "\n\n".join(
            self.functions[name].disassemble() for name in sorted(self.functions)
        )


class FunctionBuilder:
    """Incrementally builds a :class:`Function` (used by the Clay codegen)."""

    def __init__(self, name: str, n_params: int):
        self.name = name
        self.n_params = n_params
        self._next_reg = n_params
        self.instrs: List[Instr] = []
        self.lines: List[int] = []
        self._labels: Dict[int, Optional[int]] = {}
        self._next_label = 0
        self._current_line = 0

    def set_line(self, line: int) -> None:
        self._current_line = line

    def new_reg(self) -> int:
        reg = self._next_reg
        self._next_reg += 1
        return reg

    def new_label(self) -> int:
        label = self._next_label
        self._next_label += 1
        self._labels[label] = None
        return label

    def place_label(self, label: int) -> None:
        if self._labels.get(label) is not None:
            raise MachineError(f"label {label} placed twice in {self.name}")
        self._labels[label] = len(self.instrs)

    def emit(self, op: int, dst=None, a=None, b=None, extra=None, args=None) -> int:
        self.instrs.append(Instr(op, dst=dst, a=a, b=b, extra=extra, args=args))
        self.lines.append(self._current_line)
        return len(self.instrs) - 1

    def const(self, value: int) -> int:
        dst = self.new_reg()
        self.emit(Opcode.CONST, dst=dst, a=value)
        return dst

    def finish(self) -> Function:
        # Patch label references: JMP.a, BR.b, BR.extra hold label tokens
        # wrapped as ("label", n) until now.
        resolved = {}
        for label, index in self._labels.items():
            if index is None:
                raise MachineError(f"label {label} never placed in {self.name}")
            resolved[label] = index

        def patch(value):
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "label":
                return resolved[value[1]]
            return value

        for instr in self.instrs:
            if instr.op == Opcode.JMP:
                instr.a = patch(instr.a)
            elif instr.op == Opcode.BR:
                instr.b = patch(instr.b)
                instr.extra = patch(instr.extra)
        func = Function(
            name=self.name,
            n_params=self.n_params,
            n_regs=self._next_reg,
            instrs=self.instrs,
            lines=self.lines,
        )
        return func

    @staticmethod
    def label_ref(label: int) -> tuple:
        return ("label", label)
