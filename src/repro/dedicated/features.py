"""Table 4: language-feature support of Chef vs dedicated engines.

Support levels use the paper's three-way classification.  The CHEF column
is verified against the live engine by probe programs in the Table 4
benchmark; the CutiePy/NICE/Commuter columns reproduce the paper's
assessment of those systems (CutiePy and Commuter are not reimplemented
here; NICE's row is backed by :mod:`repro.dedicated.nice`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

SUPPORT_FULL = "complete"
SUPPORT_PARTIAL = "partial"
SUPPORT_NONE = "none"

#: (group, feature) -> {engine: support level}, rows in the paper's order.
FEATURE_MATRIX: List[Tuple[str, str, Dict[str, str]]] = [
    ("meta", "Engine type", {
        "CHEF": "Vanilla", "CutiePy": "Vanilla", "NICE": "Vanilla",
        "Commuter": "Model",
    }),
    ("Data types", "Integers", {
        "CHEF": SUPPORT_FULL, "CutiePy": SUPPORT_PARTIAL,
        "NICE": SUPPORT_FULL, "Commuter": SUPPORT_FULL,
    }),
    ("Data types", "Strings", {
        "CHEF": SUPPORT_FULL, "CutiePy": SUPPORT_PARTIAL,
        "NICE": SUPPORT_PARTIAL, "Commuter": SUPPORT_PARTIAL,
    }),
    ("Data types", "Floating point", {
        "CHEF": SUPPORT_PARTIAL, "CutiePy": SUPPORT_PARTIAL,
        "NICE": SUPPORT_NONE, "Commuter": SUPPORT_NONE,
    }),
    ("Data types", "Lists and maps", {
        "CHEF": SUPPORT_FULL, "CutiePy": SUPPORT_PARTIAL,
        "NICE": SUPPORT_PARTIAL, "Commuter": SUPPORT_FULL,
    }),
    ("Data types", "User-defined classes", {
        # Documented deviation: MiniPy has no classes, so this row is
        # assessed over the paper's claims, not verified by a probe.
        "CHEF": SUPPORT_FULL, "CutiePy": SUPPORT_PARTIAL,
        "NICE": SUPPORT_PARTIAL, "Commuter": SUPPORT_PARTIAL,
    }),
    ("Operations", "Data manipulation", {
        "CHEF": SUPPORT_FULL, "CutiePy": SUPPORT_PARTIAL,
        "NICE": SUPPORT_PARTIAL, "Commuter": SUPPORT_PARTIAL,
    }),
    ("Operations", "Basic control flow", {
        "CHEF": SUPPORT_FULL, "CutiePy": SUPPORT_FULL,
        "NICE": SUPPORT_FULL, "Commuter": SUPPORT_FULL,
    }),
    ("Operations", "Advanced control flow", {
        "CHEF": SUPPORT_FULL, "CutiePy": SUPPORT_PARTIAL,
        "NICE": SUPPORT_NONE, "Commuter": SUPPORT_NONE,
    }),
    ("Operations", "Native methods", {
        "CHEF": SUPPORT_FULL, "CutiePy": SUPPORT_PARTIAL,
        "NICE": SUPPORT_NONE, "Commuter": SUPPORT_NONE,
    }),
]

#: probe programs used to *verify* the CHEF and NICE columns at bench
#: time.  Each probe must complete under CHEF; the expectation records
#: whether the NICE-style engine handles it or raises UnsupportedFeature.
PROBES: List[Tuple[str, str, bool]] = [
    # (feature, MiniPy program, supported_by_dedicated_nice)
    ("Integers", "x = sym_int(0, 0, 9)\nif x > 4:\n    print(1)\nelse:\n    print(0)\n", True),
    ("Strings", 's = sym_string("ab")\nif s.find("a") == 0:\n    print(1)\n', False),
    ("Lists and maps", "d = {1: 2}\nx = sym_int(0, 0, 3)\nif x in d:\n    print(1)\n", True),
    ("Advanced control flow",
     "x = sym_int(0, 0, 3)\ntry:\n    if x == 2:\n        raise ValueError(\"v\")\n    print(0)\nexcept ValueError:\n    print(1)\n",
     False),
    ("Native methods", 's = sym_string("ab")\nprint(re_match("a.", s))\n', False),
]
