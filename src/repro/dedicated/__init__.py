"""Hand-made dedicated engines and comparisons (§6.6 of the paper).

- :mod:`repro.dedicated.nice` — a NICE-PySE-style dedicated concolic
  engine working directly on MiniPy bytecode with symbolic integer
  wrappers and input re-execution, including an optional replica of the
  ``if not <expr>`` branch-selection bug the paper found in NICE,
- :mod:`repro.dedicated.features` — the Table 4 feature matrix,
- :mod:`repro.dedicated.differential` — uses the Chef-generated engine as
  a reference implementation to find bugs in the dedicated engine.
"""

from repro.dedicated.nice import DedicatedNiceEngine, DedicatedResult, UnsupportedFeature
from repro.dedicated.features import FEATURE_MATRIX, SUPPORT_FULL, SUPPORT_NONE, SUPPORT_PARTIAL
from repro.dedicated.differential import DifferentialReport, differential_test

__all__ = [
    "DedicatedNiceEngine",
    "DedicatedResult",
    "DifferentialReport",
    "FEATURE_MATRIX",
    "SUPPORT_FULL",
    "SUPPORT_NONE",
    "SUPPORT_PARTIAL",
    "UnsupportedFeature",
    "differential_test",
]
